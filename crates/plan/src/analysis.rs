//! Static analyses over comprehension ASTs: variable mentions (for
//! generator dependency classification), the planner-safe expression
//! class (for reorderable predicates), conjunct splitting, and a helper
//! to locate the comprehension inside a phrase for `:plan`.

use machiavelli_syntax::ast::{BinOp, Expr, ExprKind, Generator};
use machiavelli_syntax::symbol::Symbol;

/// Conservative syntactic test: does `e` mention any of `names` as an
/// identifier? Shadowing is ignored, erring toward "mentions" — the same
/// test the evaluator's `select_loop` uses to decide which generator
/// sources it may pre-evaluate, so planner and fallback always classify
/// a generator the same way (this matters when sources allocate `ref`
/// identities: evaluating once vs. per binding is observable).
pub fn mentions_any(e: &Expr, names: &[Symbol]) -> bool {
    if names.is_empty() {
        return false;
    }
    use ExprKind::*;
    match &e.kind {
        Var(x) => names.contains(x),
        Unit | Int(_) | Real(_) | Str(_) | Bool(_) | OpVal(_) | Raise(_) => false,
        Lambda { body, .. } => mentions_any(body, names),
        App { func, args } => {
            mentions_any(func, names) || args.iter().any(|a| mentions_any(a, names))
        }
        If {
            cond,
            then_branch,
            else_branch,
        } => {
            mentions_any(cond, names)
                || mentions_any(then_branch, names)
                || mentions_any(else_branch, names)
        }
        Record(fields) => fields.iter().any(|(_, fe)| mentions_any(fe, names)),
        Field { expr, .. }
        | Inject { expr, .. }
        | As { expr, .. }
        | Deref(expr)
        | Ref(expr)
        | MakeDynamic(expr)
        | Coerce { expr, .. }
        | Project { expr, .. } => mentions_any(expr, names),
        Modify { expr, value, .. } => mentions_any(expr, names) || mentions_any(value, names),
        Case {
            expr,
            arms,
            default,
        } => {
            mentions_any(expr, names)
                || arms.iter().any(|a| mentions_any(&a.body, names))
                || default.as_ref().is_some_and(|d| mentions_any(d, names))
        }
        Set(items) => items.iter().any(|i| mentions_any(i, names)),
        Union { left, right }
        | Unionc { left, right }
        | Con { left, right }
        | Join { left, right }
        | Assign {
            target: left,
            value: right,
        }
        | Binop { left, right, .. } => mentions_any(left, names) || mentions_any(right, names),
        Hom { f, op, z, set } => {
            mentions_any(f, names)
                || mentions_any(op, names)
                || mentions_any(z, names)
                || mentions_any(set, names)
        }
        HomStar { f, op, set } => {
            mentions_any(f, names) || mentions_any(op, names) || mentions_any(set, names)
        }
        Let { bound, body, .. } => mentions_any(bound, names) || mentions_any(body, names),
        Select {
            result,
            generators,
            pred,
        } => {
            mentions_any(result, names)
                || mentions_any(pred, names)
                || generators.iter().any(|g| mentions_any(&g.source, names))
        }
        Unop { expr, .. } => mentions_any(expr, names),
        Rec { body, .. } => mentions_any(body, names),
    }
}

/// The planner-safe expression class: pure (no references, no fresh
/// identities), total (cannot raise — `div`/`mod` are excluded because
/// they raise on zero), terminating (no application, no recursion), and
/// binder-free (no `fn`/`let`/`case`/`select`, so [`mentions_any`] is
/// exact on safe expressions). Evaluating a safe expression more often,
/// less often, or in a different order than the nested-loop semantics is
/// unobservable.
pub fn is_safe_expr(e: &Expr) -> bool {
    use ExprKind::*;
    match &e.kind {
        Unit | Int(_) | Real(_) | Str(_) | Bool(_) | Var(_) => true,
        Record(fields) => fields.iter().all(|(_, fe)| is_safe_expr(fe)),
        Field { expr, .. } => is_safe_expr(expr),
        If {
            cond,
            then_branch,
            else_branch,
        } => is_safe_expr(cond) && is_safe_expr(then_branch) && is_safe_expr(else_branch),
        Set(items) => items.iter().all(is_safe_expr),
        Union { left, right } | Con { left, right } => is_safe_expr(left) && is_safe_expr(right),
        Binop { op, left, right } => {
            // `div`/`mod` raise on a zero divisor; everything else on
            // this list is total on type-correct operands.
            !matches!(op, BinOp::Div | BinOp::Mod) && is_safe_expr(left) && is_safe_expr(right)
        }
        Unop { expr, .. } => is_safe_expr(expr),
        // Applications, folds, references, dynamics, variants (`as` can
        // raise), `modify`, `join`/`project` (can fail on inconsistent
        // values), binders and nested comprehensions: not reorderable.
        _ => false,
    }
}

/// Does `e` mention only variables from `allowed`? Used to decide
/// whether an index over a relation is **cacheable**: a build-key or
/// pushed-filter expression closed under the row binder has a meaning
/// independent of the enclosing environment, so the resulting index is
/// a pure function of (relation storage, expression text) and may be
/// memoized across queries. Exact on the planner-safe expression class
/// (which is binder-free); conservatively `false` on anything that
/// introduces binders or falls outside it.
pub fn closed_under(e: &Expr, allowed: &[Symbol]) -> bool {
    use ExprKind::*;
    match &e.kind {
        Var(x) => allowed.contains(x),
        Unit | Int(_) | Real(_) | Str(_) | Bool(_) => true,
        Record(fields) => fields.iter().all(|(_, fe)| closed_under(fe, allowed)),
        Field { expr, .. } | Unop { expr, .. } => closed_under(expr, allowed),
        If {
            cond,
            then_branch,
            else_branch,
        } => {
            closed_under(cond, allowed)
                && closed_under(then_branch, allowed)
                && closed_under(else_branch, allowed)
        }
        Set(items) => items.iter().all(|i| closed_under(i, allowed)),
        Union { left, right } | Con { left, right } | Binop { left, right, .. } => {
            closed_under(left, allowed) && closed_under(right, allowed)
        }
        // Binder-introducing or non-safe constructs: assume they reach
        // outside. (The planner only asks about planner-safe
        // expressions, which exclude all of these.)
        _ => false,
    }
}

/// Can evaluating `e` yield a set that *shares backing storage* across
/// evaluations? `Var` reads, field projections and dereferences return
/// clones of stored values (O(1) `Rc` bumps — same `storage_id` every
/// time until the value is replaced), so indexes over them can be
/// cached and actually hit. Constructors and applications — set
/// literals, `union`, view calls like `EmployeeView(persons)` — build
/// **fresh** storage on every evaluation: an index cached for one
/// evaluation's output can never be looked up again, so caching it
/// would only pin dead clones until the LRU budget evicts them. (To
/// get index reuse over a derived relation, bind it: `val emps =
/// EmployeeView(persons);` and query `emps`.)
pub fn stable_source(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Var(_) => true,
        ExprKind::Field { expr, .. } | ExprKind::Deref(expr) => stable_source(expr),
        _ => false,
    }
}

/// One conjunct of a decomposed `with` clause.
///
/// `strict` records the error discipline of the evaluator's `andalso`:
/// every conjunct except the syntactically last one is the left operand
/// of some `andalso`, whose dynamic rule *raises* on a non-boolean,
/// while the final conjunct's value is only pattern-matched against
/// `true` (a non-boolean silently rejects the binding). Safe conjuncts
/// in type-checked programs are always boolean; the executor keeps the
/// distinction anyway so that when an ill-typed conjunct *is* evaluated,
/// it reports the same error class as `select_loop` (reordering/pruning
/// for ill-typed programs remains outside the contract — see the crate
/// docs).
#[derive(Debug, Clone, Copy)]
pub struct Conjunct<'a> {
    pub expr: &'a Expr,
    pub strict: bool,
}

/// Split a predicate into its `andalso` conjuncts, in evaluation order,
/// dropping literal `true`s. An empty result means the predicate is a
/// tautology.
pub fn split_conjuncts(pred: &Expr) -> Vec<Conjunct<'_>> {
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match &e.kind {
            ExprKind::Binop {
                op: BinOp::Andalso,
                left,
                right,
            } => {
                walk(left, out);
                walk(right, out);
            }
            ExprKind::Bool(true) => {}
            _ => out.push(e),
        }
    }
    let mut flat = Vec::new();
    walk(pred, &mut flat);
    let last = flat.len().saturating_sub(1);
    flat.into_iter()
        .enumerate()
        .map(|(i, expr)| Conjunct {
            expr,
            strict: i != last,
        })
        .collect()
}

/// Locate the outermost `select` comprehension in an expression
/// (pre-order), for `Session::plan_of` / the `:plan` REPL command.
pub fn find_select(e: &Expr) -> Option<(&[Generator], &Expr, &Expr)> {
    use ExprKind::*;
    if let Select {
        result,
        generators,
        pred,
    } = &e.kind
    {
        return Some((generators, pred, result));
    }
    match &e.kind {
        Unit | Int(_) | Real(_) | Str(_) | Bool(_) | Var(_) | OpVal(_) | Raise(_) => None,
        Lambda { body, .. } | Rec { body, .. } => find_select(body),
        App { func, args } => find_select(func).or_else(|| args.iter().find_map(find_select)),
        If {
            cond,
            then_branch,
            else_branch,
        } => find_select(cond)
            .or_else(|| find_select(then_branch))
            .or_else(|| find_select(else_branch)),
        Record(fields) => fields.iter().find_map(|(_, fe)| find_select(fe)),
        Field { expr, .. }
        | Inject { expr, .. }
        | As { expr, .. }
        | Deref(expr)
        | Ref(expr)
        | MakeDynamic(expr)
        | Coerce { expr, .. }
        | Project { expr, .. }
        | Unop { expr, .. } => find_select(expr),
        Modify { expr, value, .. } => find_select(expr).or_else(|| find_select(value)),
        Case {
            expr,
            arms,
            default,
        } => find_select(expr)
            .or_else(|| arms.iter().find_map(|a| find_select(&a.body)))
            .or_else(|| default.as_deref().and_then(find_select)),
        Set(items) => items.iter().find_map(find_select),
        Union { left, right }
        | Unionc { left, right }
        | Con { left, right }
        | Join { left, right }
        | Assign {
            target: left,
            value: right,
        }
        | Binop { left, right, .. } => find_select(left).or_else(|| find_select(right)),
        Hom { f, op, z, set } => find_select(f)
            .or_else(|| find_select(op))
            .or_else(|| find_select(z))
            .or_else(|| find_select(set)),
        HomStar { f, op, set } => find_select(f)
            .or_else(|| find_select(op))
            .or_else(|| find_select(set)),
        Let { bound, body, .. } => find_select(bound).or_else(|| find_select(body)),
        Select { .. } => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machiavelli_syntax::parse_expr;

    #[test]
    fn safe_class_membership() {
        for src in [
            "x.A = y.B",
            "x.Salary > 100000",
            "x.A + 1 < 3 andalso not(y.B = 2) orelse true",
            "if x.A > 0 then x.B else y.B",
            "con([A=1], x)",
            "union(x.S, y.S) = {1}",
            "(x.A, y.B) = (1, 2)",
        ] {
            assert!(is_safe_expr(&parse_expr(src).unwrap()), "{src}");
        }
        for src in [
            "1 div x.A = 0",
            "x.A mod 2 = 0",
            "f(x) = 1",
            "member(x, S)",
            "(x as Label) = 1",
            "!r = 1",
            "hom((fn(v) => v), +, 0, x.S) > 0",
            "(select v where v <- x.S with true) = {}",
            "let val a = x.A in a = 1 end",
        ] {
            assert!(!is_safe_expr(&parse_expr(src).unwrap()), "{src}");
        }
    }

    #[test]
    fn conjunct_splitting_and_strictness() {
        let e = parse_expr("(a andalso true) andalso (b andalso c)").unwrap();
        let cs = split_conjuncts(&e);
        assert_eq!(cs.len(), 3);
        assert!(cs[0].strict && cs[1].strict && !cs[2].strict);

        // orelse is one conjunct, not split.
        let e = parse_expr("a orelse b").unwrap();
        assert_eq!(split_conjuncts(&e).len(), 1);

        // A literal-true predicate has no conjuncts.
        let e = parse_expr("true").unwrap();
        assert!(split_conjuncts(&e).is_empty());
    }

    #[test]
    fn mentions_tracks_generator_vars() {
        let xs = [Symbol::intern("x")];
        assert!(mentions_any(&parse_expr("x.Suppliers").unwrap(), &xs));
        assert!(!mentions_any(&parse_expr("parts").unwrap(), &xs));
        // Conservative under shadowing: still counts as a mention.
        assert!(mentions_any(&parse_expr("(fn(x) => x.A)(y)").unwrap(), &xs));
    }

    #[test]
    fn closed_under_classifies_cacheability() {
        let x = [Symbol::intern("x")];
        for src in [
            "x.K",
            "x.K + 1",
            "2",
            "(x.A, x.B)",
            "if x.A > 0 then x.B else 0",
        ] {
            assert!(closed_under(&parse_expr(src).unwrap(), &x), "{src}");
        }
        for src in ["x.K = limit", "y.K", "x.A + base", "f(x)"] {
            assert!(!closed_under(&parse_expr(src).unwrap(), &x), "{src}");
        }
    }

    #[test]
    fn stable_sources_are_lvalue_chains() {
        for src in ["parts", "x.SubParts", "!dbref", "(!st).Employees"] {
            assert!(stable_source(&parse_expr(src).unwrap()), "{src}");
        }
        for src in ["EmployeeView(persons)", "{[K=1]}", "union(r, s)"] {
            assert!(!stable_source(&parse_expr(src).unwrap()), "{src}");
        }
    }

    #[test]
    fn find_select_descends() {
        let e = parse_expr("card(select x where x <- S with true) + 1").unwrap();
        let (gens, _, _) = find_select(&e).unwrap();
        assert_eq!(gens.len(), 1);
        assert!(find_select(&parse_expr("1 + 2").unwrap()).is_none());
    }
}
