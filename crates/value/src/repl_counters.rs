//! **Process-wide replication counters** — the replication layer's
//! observability feed, surfaced through the server's `METRICS`
//! exposition and `HEALTH`.
//!
//! They live here for the same layering reason as [`crate::wal_counters`]:
//! the wal and repl crates call the `note_*` hooks, while the server
//! (which renders them) already depends on `machiavelli-value`.
//!
//! Counters are cumulative across every replicated session in the
//! process and monotone except through [`reset_repl_counters`] (test
//! setup only).

use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of the process-wide replication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplCounters {
    /// Incremental chunks served to followers (empty caught-up replies
    /// included — each `SHIP` answered with groups counts once).
    pub ships: u64,
    /// On-the-wire bytes of shipped group chunks.
    pub ship_bytes: u64,
    /// Full-state snapshot transfers served (stale cursor, diverged
    /// prefix, or a follower too far behind a checkpoint).
    pub snap_transfers: u64,
    /// Commit groups applied on followers.
    pub groups_applied: u64,
    /// Shipped groups rejected for carrying a stale generation — the
    /// fencing counter; nonzero means an old primary tried to replay
    /// after a promotion.
    pub stale_rejected: u64,
    /// Follower acks recorded by a primary.
    pub acks: u64,
    /// Follower acks dropped by the injected ack-loss fault.
    pub acks_lost: u64,
    /// Promotions performed (follower fenced up to primary).
    pub promotions: u64,
}

static SHIPS: AtomicU64 = AtomicU64::new(0);
static SHIP_BYTES: AtomicU64 = AtomicU64::new(0);
static SNAP_TRANSFERS: AtomicU64 = AtomicU64::new(0);
static GROUPS_APPLIED: AtomicU64 = AtomicU64::new(0);
static STALE_REJECTED: AtomicU64 = AtomicU64::new(0);
static ACKS: AtomicU64 = AtomicU64::new(0);
static ACKS_LOST: AtomicU64 = AtomicU64::new(0);
static PROMOTIONS: AtomicU64 = AtomicU64::new(0);

/// Tally one incremental ship of `bytes` chunk bytes.
pub fn note_repl_ship(bytes: u64) {
    SHIPS.fetch_add(1, Ordering::Relaxed);
    SHIP_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Tally one full-state snapshot transfer.
pub fn note_repl_snap_transfer() {
    SNAP_TRANSFERS.fetch_add(1, Ordering::Relaxed);
}

/// Tally `groups` commit groups applied on a follower.
pub fn note_repl_groups_applied(groups: u64) {
    GROUPS_APPLIED.fetch_add(groups, Ordering::Relaxed);
}

/// Tally one stale-generation rejection (the fencing counter).
pub fn note_repl_stale_rejected() {
    STALE_REJECTED.fetch_add(1, Ordering::Relaxed);
}

/// Tally one follower ack recorded by a primary.
pub fn note_repl_ack() {
    ACKS.fetch_add(1, Ordering::Relaxed);
}

/// Tally one follower ack dropped by the injected ack-loss fault.
pub fn note_repl_ack_lost() {
    ACKS_LOST.fetch_add(1, Ordering::Relaxed);
}

/// Tally one promotion.
pub fn note_repl_promotion() {
    PROMOTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot the replication counters.
pub fn repl_counters() -> ReplCounters {
    ReplCounters {
        ships: SHIPS.load(Ordering::Relaxed),
        ship_bytes: SHIP_BYTES.load(Ordering::Relaxed),
        snap_transfers: SNAP_TRANSFERS.load(Ordering::Relaxed),
        groups_applied: GROUPS_APPLIED.load(Ordering::Relaxed),
        stale_rejected: STALE_REJECTED.load(Ordering::Relaxed),
        acks: ACKS.load(Ordering::Relaxed),
        acks_lost: ACKS_LOST.load(Ordering::Relaxed),
        promotions: PROMOTIONS.load(Ordering::Relaxed),
    }
}

/// Zero the replication counters (test setup; counters are
/// process-wide, so tests that assert deltas should
/// snapshot-and-subtract instead).
pub fn reset_repl_counters() {
    for c in [
        &SHIPS,
        &SHIP_BYTES,
        &SNAP_TRANSFERS,
        &GROUPS_APPLIED,
        &STALE_REJECTED,
        &ACKS,
        &ACKS_LOST,
        &PROMOTIONS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_accumulate_into_the_snapshot() {
        let before = repl_counters();
        note_repl_ship(256);
        note_repl_snap_transfer();
        note_repl_groups_applied(4);
        note_repl_stale_rejected();
        note_repl_ack();
        note_repl_ack_lost();
        note_repl_promotion();
        let after = repl_counters();
        assert!(after.ships > before.ships);
        assert!(after.ship_bytes >= before.ship_bytes + 256);
        assert!(after.snap_transfers > before.snap_transfers);
        assert!(after.groups_applied >= before.groups_applied + 4);
        assert!(after.stale_rejected > before.stale_rejected);
        assert!(after.acks > before.acks);
        assert!(after.acks_lost > before.acks_lost);
        assert!(after.promotions > before.promotions);
    }
}
