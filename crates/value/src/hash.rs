//! Structural hashing of description values.
//!
//! The hash join used to render keys to strings (`show_value`) and hash
//! the text — one heap allocation and a full pretty-print per build and
//! probe row, plus a latent reliance on the renderer being injective.
//! [`ValueKey`] hashes value *structure* directly:
//!
//! * base values hash their payload (reals by `to_bits()`, which agrees
//!   with the `total_cmp`-based equality: equal iff identical bits);
//! * records hash `(label id, field)` pairs in canonical order — label
//!   ids are pointer-identity keys (`usize`, process-local), consistent
//!   with `Symbol` equality;
//! * refs and dynamics hash their *identity*, exactly as [`value_eq`]
//!   compares them;
//! * function values (kept out of keys by the type system, but the
//!   order is total) hash by address/opcode.
//!
//! `ValueKey`'s `Eq` is [`value_eq`], so `Hash`/`Eq` are consistent by
//! construction and `HashMap<ValueKey, …>` is collision-correct for
//! every value, not just those the renderer distinguishes.

use crate::value::{value_eq, Value};
use std::hash::{Hash, Hasher};

/// Feed the structural hash of `v` into `state`.
pub fn hash_value<H: Hasher>(v: &Value, state: &mut H) {
    match v {
        Value::Unit => state.write_u8(0),
        Value::Bool(b) => {
            state.write_u8(1);
            state.write_u8(u8::from(*b));
        }
        Value::Int(n) => {
            state.write_u8(2);
            state.write_i64(*n);
        }
        Value::Real(r) => {
            state.write_u8(3);
            // total_cmp equality ⟺ identical bit patterns.
            state.write_u64(r.to_bits());
        }
        Value::Str(s) => {
            state.write_u8(4);
            state.write(s.as_bytes());
            state.write_u8(0xff);
        }
        Value::Record(fs) => {
            state.write_u8(5);
            state.write_usize(fs.len());
            for (l, fv) in fs.entries() {
                state.write_usize(l.id());
                hash_value(fv, state);
            }
        }
        Value::Variant(l, p) => {
            state.write_u8(6);
            state.write_usize(l.id());
            hash_value(p, state);
        }
        Value::Set(items) => {
            state.write_u8(7);
            state.write_usize(items.len());
            for item in items.iter() {
                hash_value(item, state);
            }
        }
        Value::Ref(r) => {
            state.write_u8(8);
            state.write_u64(r.id);
        }
        Value::Dynamic(d) => {
            state.write_u8(9);
            state.write_u64(d.id);
        }
        Value::Closure(c) => {
            state.write_u8(10);
            state.write_usize(std::rc::Rc::as_ptr(c) as usize);
        }
        Value::Op(op) => {
            state.write_u8(11);
            state.write_u8(*op as u8);
        }
        Value::Builtin(b) => {
            state.write_u8(12);
            state.write_u8(*b as u8);
        }
    }
}

/// A borrowed value usable as a `HashMap` key: `Hash` is structural
/// ([`hash_value`]), `Eq` is [`value_eq`].
#[derive(Debug, Clone, Copy)]
pub struct ValueKey<'a>(pub &'a Value);

impl Hash for ValueKey<'_> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        hash_value(self.0, state);
    }
}

impl PartialEq for ValueKey<'_> {
    fn eq(&self, other: &Self) -> bool {
        value_eq(self.0, other.0)
    }
}

impl Eq for ValueKey<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::RefValue;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashMap;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        hash_value(v, &mut s);
        std::hash::Hasher::finish(&s)
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = Value::record([("B".into(), Value::Int(2)), ("A".into(), Value::Int(1))]);
        let b = Value::record([("A".into(), Value::Int(1)), ("B".into(), Value::Int(2))]);
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn distinct_types_hash_differently() {
        assert_ne!(h(&Value::Int(1)), h(&Value::Bool(true)));
        assert_ne!(h(&Value::Int(0)), h(&Value::Unit));
    }

    #[test]
    fn real_bits_and_total_cmp_agree() {
        let pos = Value::Real(0.0);
        let neg = Value::Real(-0.0);
        // total_cmp distinguishes the zeros, so the hash may too; the
        // invariant that matters is equal ⇒ equal hash.
        assert_ne!(pos, neg);
        assert_eq!(h(&pos), h(&Value::Real(0.0)));
        let nan = Value::Real(f64::NAN);
        assert_eq!(h(&nan), h(&nan.clone()));
    }

    #[test]
    fn refs_hash_by_identity() {
        let r = RefValue::new(Value::Int(1));
        let same = Value::Ref(r.clone());
        let alias = Value::Ref(r);
        let other = Value::Ref(RefValue::new(Value::Int(1)));
        assert_eq!(h(&same), h(&alias));
        assert_ne!(same, other);
    }

    #[test]
    #[allow(clippy::mutable_key_type)] // refs hash by immutable identity
    fn value_key_in_hashmap() {
        let rows = [
            Value::record([("K".into(), Value::Int(1))]),
            Value::record([("K".into(), Value::Int(2))]),
        ];
        let mut table: HashMap<ValueKey<'_>, usize> = HashMap::new();
        for (i, r) in rows.iter().enumerate() {
            table.insert(ValueKey(r), i);
        }
        let probe = Value::record([("K".into(), Value::Int(2))]);
        assert_eq!(table.get(&ValueKey(&probe)), Some(&1));
    }

    #[test]
    #[allow(clippy::mutable_key_type)] // refs hash by immutable identity
    fn values_with_identical_rendering_stay_distinct() {
        // The old string-keyed join hashed `show_value` output; these two
        // *distinct* records render identically ("[A=1, B=2, C=3]")
        // because the crafted label contains `=`/`, `. Structural
        // hashing keeps them apart.
        let honest = Value::record([
            ("A".into(), Value::Int(1)),
            ("B".into(), Value::Int(2)),
            ("C".into(), Value::Int(3)),
        ]);
        let forged = Value::record([
            ("A".into(), Value::Int(1)),
            ("B=2, C".into(), Value::Int(3)),
        ]);
        assert_eq!(
            crate::display::show_value(&honest),
            crate::display::show_value(&forged),
            "renderer collision is real"
        );
        assert_ne!(honest, forged);
        assert_ne!(ValueKey(&honest), ValueKey(&forged));
        let mut table: HashMap<ValueKey<'_>, &'static str> = HashMap::new();
        table.insert(ValueKey(&honest), "honest");
        table.insert(ValueKey(&forged), "forged");
        assert_eq!(table.len(), 2, "no key collapse under structural hashing");
    }
}
