//! Kinds of type variables.
//!
//! Following \[OB88\], Machiavelli's inference variables are *kinded*:
//!
//! * `Any` — the paper's `'a`: any type at all;
//! * `Desc` — the paper's `"a`: any description type (equality and the
//!   database operations are available);
//! * `Record { fields, desc }` — the paper's `[('a) l:τ, …]`: any record
//!   type containing at least `fields`; when `desc` is set the record must
//!   moreover be a description type (printed `[("a) l:τ, …]`);
//! * `Variant { fields, desc }` — dually, `<('a) l:τ, …>`.

use crate::ty::{Label, Ty};
use std::collections::BTreeMap;

/// The kind of an unbound type variable.
#[derive(Debug, Clone)]
pub enum Kind {
    /// `'a` — unconstrained.
    Any,
    /// `"a` — must be a description type.
    Desc,
    /// `[('a) l:τ, …]` — a record containing at least these fields.
    Record {
        fields: BTreeMap<Label, Ty>,
        desc: bool,
    },
    /// `<('a) l:τ, …>` — a variant containing at least these fields.
    Variant {
        fields: BTreeMap<Label, Ty>,
        desc: bool,
    },
}

impl Kind {
    /// A record kind from an iterator of fields.
    pub fn record(fields: impl IntoIterator<Item = (Label, Ty)>, desc: bool) -> Kind {
        Kind::Record {
            fields: fields.into_iter().collect(),
            desc,
        }
    }

    /// A variant kind from an iterator of fields.
    pub fn variant(fields: impl IntoIterator<Item = (Label, Ty)>, desc: bool) -> Kind {
        Kind::Variant {
            fields: fields.into_iter().collect(),
            desc,
        }
    }

    /// All types mentioned by the kind (the field types).
    pub fn field_types(&self) -> Vec<Ty> {
        match self {
            Kind::Any | Kind::Desc => Vec::new(),
            Kind::Record { fields, .. } | Kind::Variant { fields, .. } => {
                fields.values().cloned().collect()
            }
        }
    }

    /// Whether the kind already requires description-ness.
    pub fn requires_desc(&self) -> bool {
        match self {
            Kind::Any => false,
            Kind::Desc => true,
            Kind::Record { desc, .. } | Kind::Variant { desc, .. } => *desc,
        }
    }

    /// Return a copy with the description requirement switched on.
    pub fn with_desc(&self) -> Kind {
        match self {
            Kind::Any | Kind::Desc => Kind::Desc,
            Kind::Record { fields, .. } => Kind::Record {
                fields: fields.clone(),
                desc: true,
            },
            Kind::Variant { fields, .. } => Kind::Variant {
                fields: fields.clone(),
                desc: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::t_int;

    #[test]
    fn with_desc_promotes() {
        assert!(Kind::Any.with_desc().requires_desc());
        assert!(Kind::record([("A".into(), t_int())], false)
            .with_desc()
            .requires_desc());
    }

    #[test]
    fn field_types_of_record_kind() {
        let k = Kind::record([("A".into(), t_int())], false);
        assert_eq!(k.field_types().len(), 1);
        assert!(Kind::Desc.field_types().is_empty());
    }
}
