//! Rendering of physical plans for `Session::plan_of` and the REPL's
//! `:plan` command. One operator per line, children indented two spaces;
//! expressions print in concrete syntax via the syntax crate's pretty
//! printer. Golden-plan tests pin this format.
//!
//! Store-backed operators carry an index marker: `HashJoin[idx cached]`
//! when the session's index store currently holds a live index with the
//! operator's fingerprint (the next execution will probe it),
//! `HashJoin[idx build]` when the next execution will build one, and a
//! bare `HashJoin` when the build table is environment-dependent and
//! never cached. A cached index in **plain** form additionally renders
//! the parallel probe the next execution can run against it —
//! `HashJoin[idx cached, par n=4]` — when the lane is enabled with more
//! than one thread and the probe keys are statically eligible. The
//! marker is a *display-level* probe by fingerprint — rendering a plan
//! does not evaluate the source, so the store cannot be asked for the
//! exact (storage, fingerprint) key the executor uses.
//!
//! A swappable join (see `physical::SwapInfo`) whose *first-generator*
//! side holds the live cached index renders with its sides exchanged as
//! `HashJoin[idx cached, swapped]` — the orientation the executor will
//! choose at open. (The size-based flip for two uncached sides depends
//! on relation cardinalities and cannot be predicted without
//! evaluating; it renders in the unswapped orientation.)
//!
//! Uncached joins that are statically eligible for the inline
//! partition lane render `HashJoin[par n=4]` (the configured worker
//! count) when the lane is enabled with more than one thread. Like the
//! idx marker this is display-level: whether an execution actually
//! parallelizes additionally depends on size cutoffs and every key
//! extracting to plain data.
//!
//! A scan or build side whose pushed filters are statically eligible
//! for the **columnar morsel lane** (see the crate docs) renders
//! `Scan[columnar par n=4]` / `Build[columnar par n=4]`. Display-level
//! again: an actual offload additionally depends on the relation
//! clearing `MACHIAVELLI_COLUMNAR_MIN_ROWS` and every row extracting to
//! plain form. Two such scans under one join are the
//! independent-generator schedule — both sides filter as one morsel
//! batch.

use crate::analysis::Conjunct;
use crate::physical::{columnar_eligible, IndexKey, ParInfo, PhysOp, PhysicalPlan};
use machiavelli_store::IndexKind;
use machiavelli_syntax::pretty::expr_to_string;
use machiavelli_syntax::symbol::Symbol;
use std::fmt::Write as _;

/// The `[idx cached]` / `[idx build]` marker for a cacheable operator.
fn idx_marker(fingerprint: &str) -> &'static str {
    if machiavelli_store::with_store(|s| s.has_fingerprint(fingerprint)) {
        "[idx cached]"
    } else {
        "[idx build]"
    }
}

/// The configured worker count, when the parallel lane is live on this
/// thread (`None` when disabled or single-threaded).
fn live_threads() -> Option<usize> {
    if machiavelli_value::tuning::parallel_enabled() {
        let n = machiavelli_value::tuning::par_threads();
        if n > 1 {
            return Some(n);
        }
    }
    None
}

/// The `, par n=…` suffix for a cached **plain** index with eligible
/// probe keys: the next execution probes it with parallel workers.
fn cached_par_suffix(kind: IndexKind, par: &Option<ParInfo>) -> String {
    match (kind, par, live_threads()) {
        (IndexKind::Plain, Some(_), Some(n)) => format!(", par n={n}"),
        _ => String::new(),
    }
}

/// The `[par n=…]` marker for an uncached join statically eligible for
/// the inline partition lane (build and probe sides both covered).
fn par_marker(par: &Option<ParInfo>) -> String {
    if par.as_ref().is_some_and(|i| i.build_ok) {
        if let Some(n) = live_threads() {
            return format!("[par n={n}]");
        }
    }
    String::new()
}

/// The `[columnar par n=…]` marker for a scan or build side whose
/// pushed filters are statically eligible for the columnar morsel
/// lane. Display-level like the par marker: an actual offload
/// additionally depends on the relation clearing the columnar row
/// cutoff and every row extracting to plain form.
fn columnar_marker(filters: &[Conjunct<'_>], var: Symbol) -> String {
    if columnar_eligible(filters, var) {
        if let Some(n) = live_threads() {
            return format!("[columnar par n={n}]");
        }
    }
    String::new()
}

/// Render the operator tree, e.g.:
///
/// ```text
/// Project (x.Pname, y.Sname)
///   HashJoin[idx build] probe(x.S#) build(y.S#)
///     Scan x <- parts
///     Build y <- suppliers filter (y.City = "Paris")
/// ```
pub fn explain(plan: &PhysicalPlan<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Project {}", expr_to_string(plan.result));
    render(&plan.root, 1, &mut out);
    // Drop the trailing newline for easy embedding in REPL output.
    out.truncate(out.trim_end().len());
    out
}

/// The ` filter (…)` suffix of a scan/build line. Shared with the
/// executor's trace-span labels (`physical::op_label`), so `:plan` and
/// `:analyze` render filters identically.
pub(crate) fn filters_suffix(filters: &[Conjunct<'_>]) -> String {
    if filters.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> = filters.iter().map(|c| expr_to_string(c.expr)).collect();
    format!(" filter ({})", rendered.join(" andalso "))
}

/// Comma-joined key expressions for `probe(…)`/`build(…)` lists.
/// Shared with the executor's trace-span labels.
pub(crate) fn keys_list(keys: &[&machiavelli_syntax::ast::Expr]) -> String {
    keys.iter()
        .map(|k| expr_to_string(k))
        .collect::<Vec<_>>()
        .join(", ")
}

fn render(op: &PhysOp<'_>, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match op {
        PhysOp::Scan {
            var,
            source,
            filters,
        } => {
            let _ = writeln!(
                out,
                "{pad}Scan{} {var} <- {}{}",
                columnar_marker(filters, *var),
                expr_to_string(source),
                filters_suffix(filters)
            );
        }
        PhysOp::NestedLoop {
            input,
            var,
            source,
            dependent,
            filters,
        } => {
            let dep = if *dependent { " (dependent)" } else { "" };
            let _ = writeln!(
                out,
                "{pad}NestedLoop {var} <- {}{dep}{}",
                expr_to_string(source),
                filters_suffix(filters)
            );
            render(input, depth + 1, out);
        }
        PhysOp::IndexScan {
            var,
            source,
            keys,
            filters,
            fingerprint,
        } => {
            let rendered: Vec<String> = keys
                .iter()
                .map(|IndexKey { on, probe }| {
                    format!("{} = {}", expr_to_string(on), expr_to_string(probe))
                })
                .collect();
            let _ = writeln!(
                out,
                "{pad}IndexScan{} {var} <- {} key({}){}",
                idx_marker(fingerprint),
                expr_to_string(source),
                rendered.join(", "),
                filters_suffix(filters)
            );
        }
        PhysOp::HashJoin {
            input,
            var,
            source,
            filters,
            probe_keys,
            build_keys,
            fingerprint,
            par,
            swap,
        } => {
            // Predict the build-side flip the executor will take at
            // open: the swapped side holds the live cached index and
            // the normal side does not. Mirrors the open-time decision
            // at display level (by fingerprint, not storage).
            let normal_kind = fingerprint
                .as_ref()
                .and_then(|fp| machiavelli_store::with_store(|s| s.fingerprint_kind(fp)));
            if normal_kind.is_none() {
                if let Some(sw) = swap {
                    let swapped_kind =
                        machiavelli_store::with_store(|s| s.fingerprint_kind(&sw.fingerprint));
                    if let (
                        Some(kind),
                        PhysOp::Scan {
                            var: pvar,
                            source: psource,
                            filters: pfilters,
                        },
                    ) = (swapped_kind, input.as_ref())
                    {
                        // Sides exchange: the second generator streams,
                        // the first builds (its pushed filters baked in).
                        let _ = writeln!(
                            out,
                            "{pad}HashJoin[idx cached, swapped{}] probe({}) build({})",
                            cached_par_suffix(kind, &sw.par),
                            keys_list(build_keys),
                            keys_list(probe_keys)
                        );
                        let _ = writeln!(
                            out,
                            "{pad}  Scan{} {var} <- {}{}",
                            columnar_marker(filters, *var),
                            expr_to_string(source),
                            filters_suffix(filters)
                        );
                        let _ = writeln!(
                            out,
                            "{pad}  Build{} {pvar} <- {}{}",
                            columnar_marker(pfilters, *pvar),
                            expr_to_string(psource),
                            filters_suffix(pfilters)
                        );
                        return;
                    }
                }
            }
            let marker = match (fingerprint, normal_kind) {
                (Some(_), Some(kind)) => {
                    format!("[idx cached{}]", cached_par_suffix(kind, par))
                }
                (Some(_), None) => "[idx build]".to_string(),
                (None, _) => par_marker(par),
            };
            let _ = writeln!(
                out,
                "{pad}HashJoin{marker} probe({}) build({})",
                keys_list(probe_keys),
                keys_list(build_keys)
            );
            render(input, depth + 1, out);
            let _ = writeln!(
                out,
                "{pad}  Build{} {var} <- {}{}",
                columnar_marker(filters, *var),
                expr_to_string(source),
                filters_suffix(filters)
            );
        }
        PhysOp::Filter { input, conjuncts } => {
            let rendered: Vec<String> = conjuncts.iter().map(|c| expr_to_string(c.expr)).collect();
            let _ = writeln!(out, "{pad}Filter ({})", rendered.join(" andalso "));
            render(input, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::compile;
    use machiavelli_syntax::ast::ExprKind;
    use machiavelli_syntax::parse_expr;

    fn plan_text(src: &str) -> String {
        // Render against an empty store so the idx marker is
        // deterministic (`[idx build]`), and with one worker thread so
        // no machine-dependent `[par n=…]` marker appears.
        machiavelli_store::with_store(|s| s.reset());
        machiavelli_value::tuning::set_par_threads(Some(1));
        let e = parse_expr(src).unwrap();
        let ExprKind::Select {
            result,
            generators,
            pred,
        } = &e.kind
        else {
            panic!()
        };
        explain(&compile(generators, pred, result).unwrap().physical())
    }

    #[test]
    fn hash_join_rendering() {
        let text =
            plan_text("select (x.A, y.B) where x <- r, y <- s with x.K = y.K andalso y.B > 1");
        assert_eq!(
            text,
            "Project (x.A, y.B)\n  \
             HashJoin[idx build] probe(x.K) build(y.K)\n    \
             Scan x <- r\n    \
             Build y <- s filter (y.B > 1)"
        );
    }

    #[test]
    fn uncached_eligible_join_renders_par_marker() {
        // View-call sources construct fresh storage, so the join is
        // never store-cached — with a multi-threaded lane it renders
        // the par marker instead.
        machiavelli_store::with_store(|s| s.reset());
        let prev = machiavelli_value::tuning::set_par_threads(Some(4));
        let e = parse_expr("select (x.A, y.B) where x <- V(r), y <- W(s) with x.K = y.K").unwrap();
        let ExprKind::Select {
            result,
            generators,
            pred,
        } = &e.kind
        else {
            panic!()
        };
        let text = explain(&compile(generators, pred, result).unwrap().physical());
        machiavelli_value::tuning::set_par_threads(prev);
        assert_eq!(
            text,
            "Project (x.A, y.B)\n  \
             HashJoin[par n=4] probe(x.K) build(y.K)\n    \
             Scan x <- V(r)\n    \
             Build y <- W(s)"
        );
    }

    #[test]
    fn independent_generators_render_columnar_markers() {
        // Both generators carry binder-closed, par-evaluable pushed
        // filters: the independent-generator shape — both sides render
        // columnar, and the executor filters them as one morsel batch.
        machiavelli_store::with_store(|s| s.reset());
        let prev = machiavelli_value::tuning::set_par_threads(Some(4));
        let e = parse_expr(
            "select (x.A, y.B) where x <- V(r), y <- W(s) \
             with x.A > 1 andalso x.K = y.K andalso y.B > 2",
        )
        .unwrap();
        let ExprKind::Select {
            result,
            generators,
            pred,
        } = &e.kind
        else {
            panic!()
        };
        let text = explain(&compile(generators, pred, result).unwrap().physical());
        machiavelli_value::tuning::set_par_threads(prev);
        assert_eq!(
            text,
            "Project (x.A, y.B)\n  \
             HashJoin[par n=4] probe(x.K) build(y.K)\n    \
             Scan[columnar par n=4] x <- V(r) filter (x.A > 1)\n    \
             Build[columnar par n=4] y <- W(s) filter (y.B > 2)"
        );
    }

    #[test]
    fn environment_dependent_join_renders_without_marker() {
        let text =
            plan_text("select (x.A, y.B) where x <- r, y <- s with x.K = y.K andalso y.B > cutoff");
        assert_eq!(
            text,
            "Project (x.A, y.B)\n  \
             HashJoin probe(x.K) build(y.K)\n    \
             Scan x <- r\n    \
             Build y <- s filter (y.B > cutoff)"
        );
    }

    #[test]
    fn index_scan_rendering() {
        let text = plan_text("select x.A where x <- r with x.K = limit andalso x.A > 0");
        assert_eq!(
            text,
            "Project x.A\n  \
             IndexScan[idx build] x <- r key(x.K = limit) filter (x.A > 0)"
        );
    }

    #[test]
    fn nested_loop_and_residual_rendering() {
        let text = plan_text("select x where x <- r, y <- s with x.K < y.K");
        assert_eq!(
            text,
            "Project x\n  \
             Filter (x.K < y.K)\n    \
             NestedLoop y <- s\n      \
             Scan x <- r"
        );
    }

    #[test]
    fn dependent_rendering() {
        let text = plan_text("select s where p <- db, s <- p.Suppliers with true");
        assert_eq!(
            text,
            "Project s\n  \
             NestedLoop s <- p.Suppliers (dependent)\n    \
             Scan p <- db"
        );
    }
}
