//! WAL-shipping replication for Machiavelli.
//!
//! A primary streams its committed WAL groups, per durable session, to
//! follower nodes; followers apply them through the same machinery
//! crash recovery uses, so a follower's log is **byte-identical** to
//! the primary's acked prefix — identical state by construction, with
//! pointer identity included.
//!
//! Three layers:
//!
//! * [`node`] — [`ReplNode`], a single-process replication endpoint
//!   (one `Session` + `SessionLog` with a role). The chaos harness
//!   drives pairs of these through kills, torn ships, and promotions.
//! * [`client`] — [`Replicator`], the background thread a follower
//!   server runs: dials the primary's wire port, pulls `SHIP` chunks
//!   per session with exponential backoff + jitter, applies them to
//!   the local [`machiavelli_server::Server`], and `ACK`s.
//! * `machid` (binary) — the TCP server, now role-aware
//!   (`MACHID_ROLE=primary|follower`) with graceful `SIGTERM`
//!   shutdown: stop accepting, drain in-flight work, checkpoint every
//!   durable session, flush replication acks.
//!
//! The contract (stream format, cursor/fencing rules, failover
//! semantics, knobs) is documented in `docs/REPLICATION.md`.

pub mod client;
pub mod node;
pub mod proto;

pub use client::{Replicator, ReplicatorConfig, ReplicatorStatus};
pub use node::{NodeError, PullOutcome, ReplNode, Role};
