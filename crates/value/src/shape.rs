//! Runtime *shapes* — the structural skeletons of description values.
//!
//! `unionc` (§5) needs the glb `δ₁ ⊓ δ₂` of the two sets' element types at
//! runtime. The evaluator is type-erased, so we recover a conservative
//! skeleton from the values themselves: [`shape_of`] computes a value's
//! shape, [`merge`] refines shapes *within* one homogeneous set (variant
//! branches accumulate), and [`glb_shape`] intersects shapes *across* the
//! two operand sets (record labels intersect, exactly mirroring the
//! type-level `⊓`).

use crate::display::show_value;
use crate::error::ValueError;
use crate::value::{Fields, Label, Value};
use std::collections::BTreeMap;

/// A structural skeleton of a description value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// No information (the shape of elements of an empty set).
    Unknown,
    Unit,
    Bool,
    Int,
    Real,
    Str,
    /// Refs and dynamics are atomic for projection purposes.
    RefAtom,
    DynAtom,
    Record(BTreeMap<Label, Shape>),
    Variant(BTreeMap<Label, Shape>),
    Set(Box<Shape>),
}

/// Compute the shape of a single value.
pub fn shape_of(v: &Value) -> Result<Shape, ValueError> {
    Ok(match v {
        Value::Unit => Shape::Unit,
        Value::Bool(_) => Shape::Bool,
        Value::Int(_) => Shape::Int,
        Value::Real(_) => Shape::Real,
        Value::Str(_) => Shape::Str,
        Value::Ref(_) => Shape::RefAtom,
        Value::Dynamic(_) => Shape::DynAtom,
        Value::Record(fs) => Shape::Record(
            fs.iter()
                .map(|(l, fv)| Ok((*l, shape_of(fv)?)))
                .collect::<Result<_, ValueError>>()?,
        ),
        Value::Variant(l, p) => Shape::Variant([(*l, shape_of(p)?)].into_iter().collect()),
        Value::Set(s) => {
            let mut elem = Shape::Unknown;
            for item in s.iter() {
                elem = merge(elem, shape_of(item)?)?;
            }
            Shape::Set(Box::new(elem))
        }
        Value::Closure(_) | Value::Op(_) | Value::Builtin(_) => {
            return Err(ValueError::NotADescription(show_value(v)))
        }
    })
}

/// Shape of a whole set's elements (merged across all elements).
pub fn element_shape(
    items: impl IntoIterator<Item = impl std::borrow::Borrow<Value>>,
) -> Result<Shape, ValueError> {
    let mut elem = Shape::Unknown;
    for item in items {
        elem = merge(elem, shape_of(item.borrow())?)?;
    }
    Ok(elem)
}

/// Refinement merge *within* a homogeneous set: same constructors merge
/// componentwise, and variant branches accumulate (two elements of the
/// same variant type may exhibit different branches).
pub fn merge(a: Shape, b: Shape) -> Result<Shape, ValueError> {
    use Shape::*;
    Ok(match (a, b) {
        (Unknown, s) | (s, Unknown) => s,
        (Unit, Unit) => Unit,
        (Bool, Bool) => Bool,
        (Int, Int) => Int,
        (Real, Real) => Real,
        (Str, Str) => Str,
        (RefAtom, RefAtom) => RefAtom,
        (DynAtom, DynAtom) => DynAtom,
        (Record(xs), Record(ys)) => {
            if !xs.keys().eq(ys.keys()) {
                return Err(ValueError::HeterogeneousSet {
                    first: format!("{:?}", xs.keys().collect::<Vec<_>>()),
                    second: format!("{:?}", ys.keys().collect::<Vec<_>>()),
                });
            }
            let mut out = BTreeMap::new();
            let mut ys = ys;
            for (l, x) in xs {
                let y = ys.remove(&l).expect("same keys");
                out.insert(l, merge(x, y)?);
            }
            Record(out)
        }
        (Variant(xs), Variant(ys)) => {
            let mut out = xs;
            for (l, y) in ys {
                match out.remove(&l) {
                    Some(x) => {
                        let m = merge(x, y)?;
                        out.insert(l, m);
                    }
                    None => {
                        out.insert(l, y);
                    }
                }
            }
            Variant(out)
        }
        (Set(x), Set(y)) => Set(Box::new(merge(*x, *y)?)),
        (a, b) => {
            return Err(ValueError::HeterogeneousSet {
                first: format!("{a:?}"),
                second: format!("{b:?}"),
            })
        }
    })
}

/// Greatest-lower-bound skeleton *across* two sets: record labels
/// intersect (incompatible common labels are dropped, as in the
/// type-level `⊓`); variants keep the union of observed branches with
/// glb'd payloads; scalar shapes must agree.
pub fn glb_shape(a: &Shape, b: &Shape) -> Option<Shape> {
    use Shape::*;
    Some(match (a, b) {
        (Unknown, s) | (s, Unknown) => s.clone(),
        (Unit, Unit) => Unit,
        (Bool, Bool) => Bool,
        (Int, Int) => Int,
        (Real, Real) => Real,
        (Str, Str) => Str,
        (RefAtom, RefAtom) => RefAtom,
        (DynAtom, DynAtom) => DynAtom,
        (Record(xs), Record(ys)) => {
            let mut out = BTreeMap::new();
            for (l, x) in xs {
                if let Some(y) = ys.get(l) {
                    if let Some(g) = glb_shape(x, y) {
                        out.insert(*l, g);
                    }
                    // Incompatible common label: dropped.
                }
            }
            Record(out)
        }
        (Variant(xs), Variant(ys)) => {
            // Branches observed in either set stay projectable.
            let mut out = xs.clone();
            for (l, y) in ys {
                match out.get(l) {
                    Some(x) => {
                        let g = glb_shape(x, y)?;
                        out.insert(*l, g);
                    }
                    None => {
                        out.insert(*l, y.clone());
                    }
                }
            }
            Variant(out)
        }
        (Set(x), Set(y)) => Set(Box::new(glb_shape(x, y)?)),
        _ => return None,
    })
}

/// Project a value onto a shape: record positions keep only the shape's
/// labels; everything else is structural recursion; `Unknown` keeps the
/// value unchanged.
pub fn project_by_shape(v: &Value, s: &Shape) -> Result<Value, ValueError> {
    Ok(match (v, s) {
        (_, Shape::Unknown) => v.clone(),
        (Value::Record(fs), Shape::Record(ss)) => {
            let mut out = Vec::with_capacity(ss.len());
            for (l, fshape) in ss {
                let Some(fv) = fs.get(l) else {
                    return Err(ValueError::NoSuchField {
                        value: show_value(v),
                        label: l.to_string(),
                    });
                };
                out.push((*l, project_by_shape(fv, fshape)?));
            }
            Value::Record(Fields::from_sorted_vec(out))
        }
        (Value::Variant(l, p), Shape::Variant(ss)) => match ss.get(l) {
            Some(pshape) => Value::Variant(*l, Box::new(project_by_shape(p, pshape)?)),
            None => v.clone(),
        },
        (Value::Set(items), Shape::Set(es)) => Value::Set(
            items
                .iter()
                .map(|item| project_by_shape(item, es))
                .collect::<Result<crate::set::MSet, _>>()?,
        ),
        _ => v.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn student(name: &str, advisor: i64) -> Value {
        Value::record([
            ("Name".into(), Value::str(name)),
            ("Advisor".into(), Value::Int(advisor)),
        ])
    }

    fn employee(name: &str, salary: i64) -> Value {
        Value::record([
            ("Name".into(), Value::str(name)),
            ("Salary".into(), Value::Int(salary)),
        ])
    }

    #[test]
    fn shape_of_record() {
        let s = shape_of(&student("joe", 1)).unwrap();
        let Shape::Record(fs) = s else { panic!() };
        assert_eq!(fs.len(), 2);
        assert_eq!(fs["Name"], Shape::Str);
    }

    #[test]
    fn merge_accumulates_variant_branches() {
        let a = shape_of(&Value::variant("BasePart", Value::Int(1))).unwrap();
        let b = shape_of(&Value::variant("CompositePart", Value::Str("x".into()))).unwrap();
        let m = merge(a, b).unwrap();
        let Shape::Variant(fs) = m else { panic!() };
        assert_eq!(fs.len(), 2);
    }

    #[test]
    fn glb_intersects_record_labels() {
        let a = shape_of(&student("a", 1)).unwrap();
        let b = shape_of(&employee("b", 2)).unwrap();
        let g = glb_shape(&a, &b).unwrap();
        let Shape::Record(fs) = g else { panic!() };
        assert_eq!(fs.keys().cloned().collect::<Vec<_>>(), vec!["Name"]);
    }

    #[test]
    fn glb_drops_incompatible_common_labels() {
        let a = shape_of(&Value::record([
            ("A".into(), Value::Int(1)),
            ("B".into(), Value::Int(2)),
        ]))
        .unwrap();
        let b = shape_of(&Value::record([
            ("A".into(), Value::str("s")),
            ("B".into(), Value::Int(3)),
        ]))
        .unwrap();
        let g = glb_shape(&a, &b).unwrap();
        let Shape::Record(fs) = g else { panic!() };
        assert_eq!(fs.keys().cloned().collect::<Vec<_>>(), vec!["B"]);
    }

    #[test]
    fn project_by_shape_record() {
        let skel = glb_shape(
            &shape_of(&student("x", 1)).unwrap(),
            &shape_of(&employee("y", 2)).unwrap(),
        )
        .unwrap();
        let projected = project_by_shape(&student("joe", 7), &skel).unwrap();
        assert_eq!(
            projected,
            Value::record([("Name".into(), Value::str("joe"))])
        );
    }

    #[test]
    fn empty_set_shape_is_unknown_elem() {
        let s = shape_of(&Value::set([])).unwrap();
        assert_eq!(s, Shape::Set(Box::new(Shape::Unknown)));
    }

    #[test]
    fn heterogeneous_set_detected() {
        let a = shape_of(&Value::Int(1)).unwrap();
        let b = shape_of(&Value::str("x")).unwrap();
        assert!(merge(a, b).is_err());
    }
}
