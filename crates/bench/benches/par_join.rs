//! PR 4/5 bench — the parallel hash-join lanes vs the sequential
//! planner paths, across relation sizes and worker-thread counts.
//!
//! Two externally bound relations of `n` int-keyed rows each are
//! equi-joined through `Session::eval_one` (parse + infer + plan +
//! execute).
//!
//! The `par_join` group measures the **inline partition lane** (PR 4):
//! the index store is disabled so every iteration really builds and
//! probes, isolating seq vs par on the same work:
//!
//! * `seq`  — parallel lane disabled (the PR 2/3 planner path);
//! * `parK` — plain-value partition lane with K worker threads (the
//!   join cutoff is lowered so every size engages the lane).
//!
//! The `cached_par_probe` group measures the **composed lane** (PR 5):
//! store enabled and warm, so the build phase is gone entirely and the
//! only difference is how the cached plain index is probed:
//!
//! * `cached_seq`  — the sequential probe over the cached index;
//! * `cached_parK` — K workers probing the shared `Arc` index (probe
//!   cutoff lowered so every size engages).
//!
//! Keys overlap on the top eighth of the key space with unique matches,
//! so the output (≈ n/8 small tuples) never dominates the build/probe
//! machinery under test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machiavelli::value::{tuning, Value};
use machiavelli::Session;
use std::time::Duration;

/// Short measurement windows so the full figure suite runs in minutes;
/// rerun individual benches with Criterion CLI flags for precision.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn rows(n: usize, key_offset: usize) -> Value {
    Value::set((0..n).map(|i| {
        Value::record([
            ("K".into(), Value::Int((i + key_offset) as i64)),
            ("A".into(), Value::Int(i as i64)),
            ("C".into(), Value::Int((i % 97) as i64)),
        ])
    }))
}

fn join_session(n: usize) -> Session {
    let mut s = Session::new();
    // `s` keys overlap the top eighth of `r`'s key space 1:1: the join
    // streams n build + n probe rows but emits only ~n/8 matches, so
    // build/probe — the machinery under test — dominates, not output
    // materialization (which is identical in both lanes anyway).
    s.bind_external("r", rows(n, 0), "{[K: int, A: int, C: int]}")
        .unwrap();
    s.bind_external("s", rows(n, n - n / 8), "{[K: int, A: int, C: int]}")
        .unwrap();
    s
}

/// The comprehension under test, wrapped in an emptiness check so the
/// per-iteration `it` binding is one bool (a bare select would chain a
/// fresh n/8-row set into the environment every iteration, and the
/// accumulated retention distorts the timing).
const QUERY: &str = "(select (x.A, y.A) where x <- r, y <- s with x.K = y.K) = {};";

fn run_seq(s: &mut Session) -> Value {
    let prev = tuning::set_parallel_enabled(false);
    let out = s.eval_one(QUERY).unwrap().value;
    tuning::set_parallel_enabled(prev);
    out
}

fn run_par(s: &mut Session, threads: usize) -> Value {
    let prev_t = tuning::set_par_threads(Some(threads));
    let prev_rows = tuning::set_par_join_min_build_rows(Some(1));
    let out = s.eval_one(QUERY).unwrap().value;
    tuning::set_par_join_min_build_rows(prev_rows);
    tuning::set_par_threads(prev_t);
    out
}

fn bench_par_join(c: &mut Criterion) {
    // Every iteration must rebuild: cached builds bypass the lane.
    machiavelli::store::set_store_enabled(false);
    let mut group = c.benchmark_group("par_join");
    group.sample_size(10);
    for n in [2_000usize, 10_000, 100_000] {
        let mut s = join_session(n);
        // Sanity: the lanes agree (and the result is non-trivial)
        // before anything is timed.
        let seq = run_seq(&mut s);
        assert_eq!(seq, Value::Bool(false), "join unexpectedly empty at n={n}");
        tuning::reset_par_stats();
        assert_eq!(run_par(&mut s, 4), seq, "lanes diverge at n={n}");
        assert_eq!(
            tuning::par_stats().par_joins,
            1,
            "lane not engaged at n={n}"
        );

        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| run_seq(&mut s))
        });
        for threads in [2usize, 4, 8] {
            group.bench_with_input(BenchmarkId::new(format!("par{threads}"), n), &n, |b, _| {
                b.iter(|| run_par(&mut s, threads))
            });
        }
    }
    group.finish();
    machiavelli::store::set_store_enabled(true);
}

/// Run the query with the store enabled (warm after the first call):
/// `threads = None` is the sequential probe over the cached index,
/// `Some(k)` the parallel cached probe with a 1-row probe cutoff.
fn run_cached(s: &mut Session, threads: Option<usize>) -> Value {
    let prev_on = tuning::set_parallel_enabled(threads.is_some());
    let prev_t = tuning::set_par_threads(threads);
    let prev_probe = tuning::set_par_probe_min_rows(Some(1));
    let out = s.eval_one(QUERY).unwrap().value;
    tuning::set_par_probe_min_rows(prev_probe);
    tuning::set_par_threads(prev_t);
    tuning::set_parallel_enabled(prev_on);
    out
}

fn bench_cached_par_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("cached_par_probe");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let mut s = join_session(n);
        s.store_reset();
        // Warm the cache, then sanity-check agreement and engagement.
        let seq = run_cached(&mut s, None);
        assert_eq!(seq, Value::Bool(false), "join unexpectedly empty at n={n}");
        let builds = s.store_stats().builds;
        assert_eq!(builds, 1, "build not cached at n={n}");
        tuning::reset_par_stats();
        assert_eq!(run_cached(&mut s, Some(4)), seq, "lanes diverge at n={n}");
        let stats = tuning::par_stats();
        assert_eq!(
            (stats.par_probes, stats.par_probe_fallbacks),
            (1, 0),
            "cached probe not engaged at n={n}: {stats:?}"
        );
        assert_eq!(s.store_stats().builds, builds, "rebuilt at n={n}");

        group.bench_with_input(BenchmarkId::new("cached_seq", n), &n, |b, _| {
            b.iter(|| run_cached(&mut s, None))
        });
        for threads in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("cached_par{threads}"), n),
                &n,
                |b, _| b.iter(|| run_cached(&mut s, Some(threads))),
            );
        }
        assert_eq!(s.store_stats().builds, builds, "cache lost during bench");
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_par_join, bench_cached_par_probe
}
criterion_main!(benches);
