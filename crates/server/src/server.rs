//! The session server: a fixed worker pool hosting many interpreter
//! sessions over the process-wide shared index tier.
//!
//! # Architecture
//!
//! [`Session`] is deliberately single-threaded (`Rc`-based environments),
//! so sessions never migrate: each worker thread **owns** the sessions
//! routed to it (`sid % workers`), and clients talk to workers through
//! bounded job queues. The `Send` unit is the job, not the session.
//!
//! Resilience is layered:
//!
//! * **Isolation** — every query runs under `catch_unwind`. A panic
//!   poisons only its own session (subsequent queries on it get
//!   [`ServerError::SessionPoisoned`]); the worker, its other sessions,
//!   and the server keep running.
//! * **Governance** — each query carries a [`QueryGuard`] (deadline,
//!   cancellation flag, row budget) that the evaluator polls
//!   cooperatively; trips surface as structured errors, never aborts.
//! * **Admission** — job queues are bounded; a full queue sheds the
//!   request with [`ServerError::Busy`] instead of queueing unbounded
//!   work.
//! * **Sharing** — workers enable the process-wide shared index tier,
//!   so equal-content hot indexes are built once and adopted by every
//!   session (see `machiavelli_store::shared`).

use crate::error::ServerError;
use machiavelli::plan::physical::panic_message;
use machiavelli::{is_read_only_source, Session, SessionError};
use machiavelli_eval::EvalError;
use machiavelli_store::shared;
use machiavelli_value::faults::{self, FaultConfig, InjectedFaults};
use machiavelli_value::governor::{self, QueryGuard, ServerCounters};
use machiavelli_value::repl_counters::{note_repl_ack, note_repl_ack_lost, note_repl_promotion};
use machiavelli_wal::{
    install_replica, LogCursor, ReplicaApplyReport, SessionLog, Ship, SnapshotTransfer, WalError,
};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The replication role a server plays. Dynamic: `PROMOTE` flips a
/// follower to primary at runtime; the config field only sets the
/// starting role.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ServerRole {
    /// Accepts writes; streams committed WAL groups to followers.
    #[default]
    Primary,
    /// Applies shipped groups; serves read-only `EVAL`s, answers
    /// writes with `ERR read-only`.
    Follower,
}

impl fmt::Display for ServerRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerRole::Primary => write!(f, "primary"),
            ServerRole::Follower => write!(f, "follower"),
        }
    }
}

const ROLE_PRIMARY: u8 = 0;
const ROLE_FOLLOWER: u8 = 1;

fn role_to_u8(role: ServerRole) -> u8 {
    match role {
        ServerRole::Primary => ROLE_PRIMARY,
        ServerRole::Follower => ROLE_FOLLOWER,
    }
}

fn role_from_u8(v: u8) -> ServerRole {
    if v == ROLE_FOLLOWER {
        ServerRole::Follower
    } else {
        ServerRole::Primary
    }
}

/// The last ack a primary recorded from its follower, per session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AckState {
    /// Generation the follower acked at.
    pub gen: u64,
    /// Commit groups the follower had applied in that generation.
    pub groups: u64,
}

/// One session slot's health, as reported by `HEALTH`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotHealth {
    pub sid: u64,
    /// Poisoned by an earlier panic (only `CLOSE`/`RESTORE` work).
    pub poisoned: bool,
    /// The slot's log is doomed (awaiting a healing checkpoint).
    pub doomed_log: bool,
    /// Current log generation (`None` for in-memory sessions).
    pub gen: Option<u64>,
    /// Commit groups in the current log (`None` for in-memory).
    pub groups: Option<u64>,
    /// Replication lag in groups behind this server (primary view:
    /// own groups minus the follower's last same-generation ack;
    /// `None` on followers and for in-memory sessions).
    pub lag: Option<u64>,
}

/// The server's health snapshot behind the `HEALTH` verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    pub role: ServerRole,
    pub slots: Vec<SlotHealth>,
}

/// Server tuning knobs. `Clone` so each worker thread can carry its
/// own.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (and session shards). At least one worker always
    /// starts, even under injected spawn failures.
    pub workers: usize,
    /// Bounded per-worker job queue; a full queue sheds with
    /// [`ServerError::Busy`].
    pub queue_cap: usize,
    /// Default per-query deadline (None = no deadline).
    pub default_deadline: Option<Duration>,
    /// Default per-query row budget (None = unlimited). Charged as
    /// sets materialize, so runaway queries trip before exhausting
    /// memory.
    pub row_budget: Option<usize>,
    /// Enable the process-wide shared index tier on worker threads.
    pub shared_store: bool,
    /// Fault-injection configuration installed on every worker thread
    /// (None = inherit the environment's `MACHIAVELLI_FAULT_*` knobs).
    pub faults: Option<FaultConfig>,
    /// Root directory for durable sessions. When set, every session
    /// gets a write-ahead log under `<root>/session-<sid>`, each
    /// successful evaluation commits before its result is reported,
    /// and `OPEN` recovers whatever an earlier process left behind —
    /// a killed server comes back serving the same bindings. `None`
    /// (the default) keeps sessions purely in-memory.
    pub durable_root: Option<std::path::PathBuf>,
    /// The replication role this server starts in. Followers enforce
    /// read-only `EVAL`s and apply shipped WAL groups; `PROMOTE` flips
    /// a follower to primary at runtime.
    pub role: ServerRole,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_cap: 64,
            default_deadline: None,
            row_budget: governor::query_max_rows(),
            shared_store: true,
            faults: None,
            durable_root: None,
            role: ServerRole::Primary,
        }
    }
}

/// A point-in-time snapshot of server health.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Process-wide session/query counters.
    pub counters: ServerCounters,
    /// Shared index tier counters.
    pub shared: shared::SharedStats,
    /// Injected-fault counters (all zero unless fault injection is on).
    pub injected: InjectedFaults,
    /// Worker threads actually running.
    pub workers: usize,
    /// Worker threads that failed to start (injected or real).
    pub worker_spawn_failures: usize,
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.counters;
        let s = &self.shared;
        write!(
            f,
            "workers {}(-{}) sessions {}/{}/{} queries {}ok {}shed {}ddl {}cancel {}rows \
             shared {}pub {}adopt {}miss {}recov",
            self.workers,
            self.worker_spawn_failures,
            c.sessions_started,
            c.sessions_panicked,
            c.sessions_closed,
            c.queries_completed,
            c.queries_shed,
            c.deadlines_hit,
            c.queries_cancelled,
            c.row_budgets_hit,
            s.publishes,
            s.adoptions,
            s.misses,
            s.lock_recoveries,
        )
    }
}

enum Job {
    Open {
        sid: u64,
        reply: Sender<Result<u64, ServerError>>,
    },
    Eval {
        sid: u64,
        src: String,
        guard: Arc<QueryGuard>,
        reply: Sender<Result<Vec<String>, ServerError>>,
    },
    Close {
        sid: u64,
        reply: Sender<Result<(), ServerError>>,
    },
    /// Force a checkpoint of the session's durable state (wire `SAVE`).
    Save {
        sid: u64,
        reply: Sender<Result<u64, ServerError>>,
    },
    /// Discard the in-memory session and re-materialize it from its
    /// durable state (wire `RESTORE`) — also the recovery path for a
    /// poisoned durable session.
    Restore {
        sid: u64,
        reply: Sender<Result<usize, ServerError>>,
    },
    /// The slot's replication cursor and group count.
    Cursor {
        sid: u64,
        reply: Sender<Result<(LogCursor, u64), ServerError>>,
    },
    /// Serve one follower catch-up request (primary side).
    Ship {
        sid: u64,
        cursor: LogCursor,
        reply: Sender<Result<Ship, ServerError>>,
    },
    /// Apply a shipped chunk (follower side); replies with the report
    /// and the advanced cursor to ack with.
    ReplApply {
        sid: u64,
        gen: u64,
        bytes: Vec<u8>,
        reply: Sender<Result<(ReplicaApplyReport, LogCursor), ServerError>>,
    },
    /// Install a full snapshot transfer and rebuild the slot from it
    /// (follower healing / deep catch-up).
    ReplInstall {
        sid: u64,
        transfer: Box<SnapshotTransfer>,
        reply: Sender<Result<usize, ServerError>>,
    },
    /// Checkpoint every durable, healthy slot this worker owns (the
    /// promotion fence and the graceful-shutdown flush). Replies with
    /// the number of slots checkpointed. Being a queued job, it also
    /// acts as a drain barrier: every eval admitted before it commits
    /// first.
    CheckpointAll {
        reply: Sender<Result<u64, ServerError>>,
    },
    /// Per-slot health for this worker.
    Health {
        reply: Sender<Vec<SlotHealth>>,
    },
    /// Session ids this worker currently hosts.
    Sids {
        reply: Sender<Vec<u64>>,
    },
    Shutdown,
}

struct WorkerHandle {
    tx: SyncSender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// An in-flight query: a handle to cancel it and to wait for the
/// structured result.
pub struct Pending {
    guard: Arc<QueryGuard>,
    rx: Receiver<Result<Vec<String>, ServerError>>,
}

impl Pending {
    /// Request cooperative cancellation; the evaluator stops at its
    /// next governance tick and the query returns
    /// [`ServerError::Cancelled`].
    pub fn cancel(&self) {
        self.guard.cancel();
    }

    /// The query's guard (deadline / budget state).
    pub fn guard(&self) -> &Arc<QueryGuard> {
        &self.guard
    }

    /// Block until the query finishes (or is stopped).
    pub fn wait(self) -> Result<Vec<String>, ServerError> {
        self.rx.recv().unwrap_or(Err(ServerError::Shutdown))
    }
}

/// The multi-session server. Cheap to share: all methods take `&self`,
/// so wrap in `Arc` to serve many client threads.
pub struct Server {
    workers: Vec<WorkerHandle>,
    spawn_failures: usize,
    next_sid: AtomicU64,
    config: ServerConfig,
    /// Admitted queries not yet finished (queued + evaluating), across
    /// all workers — the `METRICS` queue-depth gauge. Incremented at
    /// admission, decremented by the owning worker when the job's reply
    /// is sent.
    queue_depth: Arc<AtomicI64>,
    /// The replication role, shared with every worker (`ROLE_*`); flips
    /// atomically on `PROMOTE`.
    role: Arc<AtomicU8>,
    /// Primary side: the last ack recorded per session — the data the
    /// lag gauge is computed from.
    acks: Arc<Mutex<HashMap<u64, AckState>>>,
}

impl Server {
    /// Start the worker pool. The first worker always starts —
    /// injected spawn failures degrade the pool, never kill the
    /// server.
    pub fn start(config: ServerConfig) -> Server {
        // Install the fault config on the *calling* thread only while
        // spawning, so `spawn_denied` rolls against it.
        let prev = config.faults.map(|fc| faults::set_fault_config(Some(fc)));
        let queue_depth = Arc::new(AtomicI64::new(0));
        let role = Arc::new(AtomicU8::new(role_to_u8(config.role)));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        let mut spawn_failures = 0;
        for i in 0..config.workers.max(1) {
            if i > 0 && faults::spawn_denied() {
                spawn_failures += 1;
                continue;
            }
            let (tx, rx) = sync_channel(config.queue_cap.max(1));
            let depth = queue_depth.clone();
            let worker_role = role.clone();
            let worker_config = config.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("machid-worker-{i}"))
                .spawn(move || worker_main(rx, worker_config, depth, worker_role));
            match spawned {
                Ok(handle) => workers.push(WorkerHandle {
                    tx,
                    handle: Some(handle),
                }),
                Err(_) => spawn_failures += 1,
            }
        }
        if let Some(prev) = prev {
            faults::set_fault_config(prev);
        }
        Server {
            workers,
            spawn_failures,
            next_sid: AtomicU64::new(1),
            config,
            queue_depth,
            role,
            acks: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Worker threads actually serving sessions.
    pub fn live_workers(&self) -> usize {
        self.workers.len()
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    fn route(&self, sid: u64) -> Result<&WorkerHandle, ServerError> {
        if self.workers.is_empty() {
            return Err(ServerError::Shutdown);
        }
        let i = (sid as usize) % self.workers.len();
        self.workers.get(i).ok_or(ServerError::Shutdown)
    }

    /// Open a fresh session (with the standard prelude) on its home
    /// worker. Prelude evaluation is shielded from fault injection, so
    /// opens are deterministic; faults target queries.
    pub fn open_session(&self) -> Result<u64, ServerError> {
        let sid = self.next_sid.fetch_add(1, Ordering::Relaxed);
        let worker = self.route(sid)?;
        let (reply, rx) = std::sync::mpsc::channel();
        worker
            .tx
            .send(Job::Open { sid, reply })
            .map_err(|_| ServerError::Shutdown)?;
        rx.recv().unwrap_or(Err(ServerError::Shutdown))
    }

    /// Submit a query under the server's default deadline and row
    /// budget. Non-blocking admission: a full worker queue returns
    /// [`ServerError::Busy`] immediately.
    pub fn submit(&self, sid: u64, src: &str) -> Result<Pending, ServerError> {
        self.submit_with(sid, src, Arc::new(self.default_guard()))
    }

    /// Submit a query under an explicit guard (custom deadline,
    /// budget, or a pre-cancelled guard for testing).
    pub fn submit_with(
        &self,
        sid: u64,
        src: &str,
        guard: Arc<QueryGuard>,
    ) -> Result<Pending, ServerError> {
        let worker = self.route(sid)?;
        let (reply, rx) = std::sync::mpsc::channel();
        let job = Job::Eval {
            sid,
            src: src.to_string(),
            guard: guard.clone(),
            reply,
        };
        match worker.tx.try_send(job) {
            Ok(()) => {
                self.queue_depth.fetch_add(1, Ordering::Relaxed);
                Ok(Pending { guard, rx })
            }
            Err(TrySendError::Full(_)) => {
                governor::note_query_shed();
                Err(ServerError::Busy)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServerError::Shutdown),
        }
    }

    /// Submit and wait: the blocking convenience used by the wire
    /// protocol.
    pub fn eval(&self, sid: u64, src: &str) -> Result<Vec<String>, ServerError> {
        self.submit(sid, src)?.wait()
    }

    /// Force a checkpoint of the session's durable state, compacting
    /// the delta log into the snapshot. Returns the new generation.
    /// Requires [`ServerConfig::durable_root`].
    pub fn save_session(&self, sid: u64) -> Result<u64, ServerError> {
        let worker = self.route(sid)?;
        let (reply, rx) = std::sync::mpsc::channel();
        worker
            .tx
            .send(Job::Save { sid, reply })
            .map_err(|_| ServerError::Shutdown)?;
        rx.recv().unwrap_or(Err(ServerError::Shutdown))
    }

    /// Throw away the in-memory session and recover it from its
    /// durable state (snapshot + log replay). Returns the number of
    /// bindings restored. Works on poisoned sessions — this is how a
    /// client un-poisons a durable session without losing its data.
    pub fn restore_session(&self, sid: u64) -> Result<usize, ServerError> {
        let worker = self.route(sid)?;
        let (reply, rx) = std::sync::mpsc::channel();
        worker
            .tx
            .send(Job::Restore { sid, reply })
            .map_err(|_| ServerError::Shutdown)?;
        rx.recv().unwrap_or(Err(ServerError::Shutdown))
    }

    /// The server's current replication role.
    pub fn role(&self) -> ServerRole {
        role_from_u8(self.role.load(Ordering::Relaxed))
    }

    /// Promote this server to primary, fencing the old one: every
    /// durable session checkpoints, which bumps its generation, so any
    /// groups a re-appearing old primary ships are stamped with a now
    /// stale generation and rejected whole. Idempotent — promoting a
    /// primary is a no-op. Returns the number of slots fenced.
    pub fn promote(&self) -> Result<u64, ServerError> {
        let was = self.role.swap(ROLE_PRIMARY, Ordering::SeqCst);
        if was == ROLE_PRIMARY {
            return Ok(0);
        }
        let fenced = self.checkpoint_all()?;
        note_repl_promotion();
        Ok(fenced)
    }

    /// Checkpoint every durable, healthy session on every worker — the
    /// promotion fence and the graceful-shutdown flush. Because the
    /// checkpoint rides the same FIFO queues as evals, every eval
    /// admitted before this call commits before its slot checkpoints.
    pub fn checkpoint_all(&self) -> Result<u64, ServerError> {
        let mut total = 0u64;
        for w in &self.workers {
            let (reply, rx) = std::sync::mpsc::channel();
            w.tx.send(Job::CheckpointAll { reply })
                .map_err(|_| ServerError::Shutdown)?;
            total += rx.recv().unwrap_or(Err(ServerError::Shutdown))?;
        }
        Ok(total)
    }

    /// Open (or re-open) a session under a *specific* id — how a
    /// follower mirrors the primary's session space. Idempotent: an
    /// already-open sid is left untouched. Future plain opens never
    /// collide with an adopted id.
    pub fn adopt_session(&self, sid: u64) -> Result<u64, ServerError> {
        self.next_sid.fetch_max(sid + 1, Ordering::Relaxed);
        let worker = self.route(sid)?;
        let (reply, rx) = std::sync::mpsc::channel();
        worker
            .tx
            .send(Job::Open { sid, reply })
            .map_err(|_| ServerError::Shutdown)?;
        rx.recv().unwrap_or(Err(ServerError::Shutdown))
    }

    /// Session ids currently hosted, across all workers, ascending.
    pub fn session_ids(&self) -> Vec<u64> {
        let mut sids = Vec::new();
        for w in &self.workers {
            let (reply, rx) = std::sync::mpsc::channel();
            if w.tx.send(Job::Sids { reply }).is_ok() {
                if let Ok(mut s) = rx.recv() {
                    sids.append(&mut s);
                }
            }
        }
        sids.sort_unstable();
        sids
    }

    /// A session's replication cursor and committed-group count.
    pub fn cursor(&self, sid: u64) -> Result<(LogCursor, u64), ServerError> {
        let worker = self.route(sid)?;
        let (reply, rx) = std::sync::mpsc::channel();
        worker
            .tx
            .send(Job::Cursor { sid, reply })
            .map_err(|_| ServerError::Shutdown)?;
        rx.recv().unwrap_or(Err(ServerError::Shutdown))
    }

    /// Serve one follower catch-up request against a session's log
    /// (primary side of the `SHIP` verb).
    pub fn ship(&self, sid: u64, cursor: LogCursor) -> Result<Ship, ServerError> {
        let worker = self.route(sid)?;
        let (reply, rx) = std::sync::mpsc::channel();
        worker
            .tx
            .send(Job::Ship { sid, cursor, reply })
            .map_err(|_| ServerError::Shutdown)?;
        rx.recv().unwrap_or(Err(ServerError::Shutdown))
    }

    /// Apply a shipped chunk to a local follower session, returning the
    /// apply report and the advanced cursor to ack with.
    pub fn replica_apply(
        &self,
        sid: u64,
        gen: u64,
        bytes: Vec<u8>,
    ) -> Result<(ReplicaApplyReport, LogCursor), ServerError> {
        let worker = self.route(sid)?;
        let (reply, rx) = std::sync::mpsc::channel();
        worker
            .tx
            .send(Job::ReplApply {
                sid,
                gen,
                bytes,
                reply,
            })
            .map_err(|_| ServerError::Shutdown)?;
        rx.recv().unwrap_or(Err(ServerError::Shutdown))
    }

    /// Install a full snapshot transfer under a local follower session
    /// and rebuild it from disk. Returns the bindings+records restored.
    pub fn replica_install(
        &self,
        sid: u64,
        transfer: SnapshotTransfer,
    ) -> Result<usize, ServerError> {
        let worker = self.route(sid)?;
        let (reply, rx) = std::sync::mpsc::channel();
        worker
            .tx
            .send(Job::ReplInstall {
                sid,
                transfer: Box::new(transfer),
                reply,
            })
            .map_err(|_| ServerError::Shutdown)?;
        rx.recv().unwrap_or(Err(ServerError::Shutdown))
    }

    /// Record a follower's ack (primary side of the `ACK` verb).
    /// Subject to the injected ack-loss fault: a dropped ack leaves lag
    /// visibly high until the next one lands. Returns whether the ack
    /// was recorded.
    pub fn record_ack(&self, sid: u64, gen: u64, groups: u64) -> bool {
        if faults::ack_loss_due() {
            note_repl_ack_lost();
            return false;
        }
        note_repl_ack();
        let mut acks = self.acks.lock().unwrap_or_else(|p| p.into_inner());
        let entry = acks.entry(sid).or_default();
        // Acks can race out of order; never regress within a
        // generation, always follow a generation bump.
        if gen > entry.gen || (gen == entry.gen && groups > entry.groups) {
            *entry = AckState { gen, groups };
        }
        true
    }

    /// The last ack recorded for a session, if any.
    pub fn acked(&self, sid: u64) -> Option<AckState> {
        self.acks
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&sid)
            .copied()
    }

    /// Per-slot health plus the server's role — the `HEALTH` verb.
    /// Lag is the primary-side view: own groups minus the follower's
    /// last same-generation ack (a cross-generation ack counts as fully
    /// behind, since the follower must re-sync through a snapshot).
    pub fn health(&self) -> HealthReport {
        let role = self.role();
        let mut slots = Vec::new();
        for w in &self.workers {
            let (reply, rx) = std::sync::mpsc::channel();
            if w.tx.send(Job::Health { reply }).is_ok() {
                if let Ok(mut s) = rx.recv() {
                    slots.append(&mut s);
                }
            }
        }
        slots.sort_unstable_by_key(|s| s.sid);
        if role == ServerRole::Primary {
            let acks = self.acks.lock().unwrap_or_else(|p| p.into_inner());
            for slot in &mut slots {
                if let (Some(gen), Some(groups)) = (slot.gen, slot.groups) {
                    slot.lag = Some(match acks.get(&slot.sid) {
                        Some(a) if a.gen == gen => groups.saturating_sub(a.groups),
                        _ => groups,
                    });
                }
            }
        }
        HealthReport { role, slots }
    }

    /// Close a session (also the only operation a poisoned session
    /// accepts).
    pub fn close_session(&self, sid: u64) -> Result<(), ServerError> {
        let worker = self.route(sid)?;
        let (reply, rx) = std::sync::mpsc::channel();
        worker
            .tx
            .send(Job::Close { sid, reply })
            .map_err(|_| ServerError::Shutdown)?;
        rx.recv().unwrap_or(Err(ServerError::Shutdown))
    }

    /// Snapshot server health: session/query counters, shared-tier
    /// counters, injected-fault counters, pool size.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            counters: governor::server_counters(),
            shared: shared::shared_stats(),
            injected: faults::injected_faults(),
            workers: self.workers.len(),
            worker_spawn_failures: self.spawn_failures,
        }
    }

    /// Render the server's health as Prometheus-style text exposition
    /// (behind the wire `METRICS` verb, newline-escaped onto one
    /// response line): the per-query latency histogram with fixed
    /// buckets, the queue-depth gauge, session/query counters
    /// (shed/panic included), the shared-tier counters and hit ratio,
    /// and one `machiavelli_declines_total` series per typed
    /// [`machiavelli_trace::DeclineReason`].
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let lat = machiavelli_trace::latency_snapshot();
        out.push_str("# TYPE machiavelli_query_latency_seconds histogram\n");
        for (bound_ns, cumulative) in &lat.buckets {
            let le = if *bound_ns == u64::MAX {
                "+Inf".to_string()
            } else {
                format!("{}", *bound_ns as f64 / 1e9)
            };
            let _ = writeln!(
                out,
                "machiavelli_query_latency_seconds_bucket{{le=\"{le}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "machiavelli_query_latency_seconds_sum {}",
            lat.sum_ns as f64 / 1e9
        );
        let _ = writeln!(out, "machiavelli_query_latency_seconds_count {}", lat.count);
        out.push_str("# TYPE machiavelli_queue_depth gauge\n");
        let _ = writeln!(
            out,
            "machiavelli_queue_depth {}",
            self.queue_depth.load(Ordering::Relaxed).max(0)
        );
        let c = governor::server_counters();
        for (name, v) in [
            ("sessions_started", c.sessions_started),
            ("sessions_panicked", c.sessions_panicked),
            ("sessions_closed", c.sessions_closed),
            ("queries_completed", c.queries_completed),
            ("queries_shed", c.queries_shed),
            ("queries_deadline", c.deadlines_hit),
            ("queries_cancelled", c.queries_cancelled),
            ("queries_row_budget", c.row_budgets_hit),
        ] {
            let _ = writeln!(out, "# TYPE machiavelli_{name}_total counter");
            let _ = writeln!(out, "machiavelli_{name}_total {v}");
        }
        let sh = shared::shared_stats();
        for (name, v) in [
            ("shared_publishes", sh.publishes),
            ("shared_adoptions", sh.adoptions),
            ("shared_misses", sh.misses),
            ("shared_lock_recoveries", sh.lock_recoveries),
        ] {
            let _ = writeln!(out, "# TYPE machiavelli_{name}_total counter");
            let _ = writeln!(out, "machiavelli_{name}_total {v}");
        }
        let w = machiavelli_value::wal_counters();
        for (name, v) in [
            ("wal_records_appended", w.records_appended),
            ("wal_bytes_logged", w.bytes_logged),
            ("wal_commits", w.commits),
            ("wal_checkpoints", w.checkpoints),
            ("wal_recoveries", w.recoveries),
            ("wal_torn_tails_truncated", w.torn_tails_truncated),
        ] {
            let _ = writeln!(out, "# TYPE machiavelli_{name}_total counter");
            let _ = writeln!(out, "machiavelli_{name}_total {v}");
        }
        let r = machiavelli_value::repl_counters::repl_counters();
        for (name, v) in [
            ("repl_ships", r.ships),
            ("repl_ship_bytes", r.ship_bytes),
            ("repl_snap_transfers", r.snap_transfers),
            ("repl_groups_applied", r.groups_applied),
            ("repl_stale_rejected", r.stale_rejected),
            ("repl_acks", r.acks),
            ("repl_acks_lost", r.acks_lost),
            ("repl_promotions", r.promotions),
        ] {
            let _ = writeln!(out, "# TYPE machiavelli_{name}_total counter");
            let _ = writeln!(out, "machiavelli_{name}_total {v}");
        }
        out.push_str("# TYPE machiavelli_repl_role gauge\n");
        let _ = writeln!(
            out,
            "machiavelli_repl_role {}",
            self.role.load(Ordering::Relaxed)
        );
        if self.config.durable_root.is_some() {
            out.push_str("# TYPE machiavelli_repl_lag_groups gauge\n");
            for slot in self.health().slots {
                if let Some(lag) = slot.lag {
                    let _ = writeln!(
                        out,
                        "machiavelli_repl_lag_groups{{sid=\"{}\"}} {lag}",
                        slot.sid
                    );
                }
            }
        }
        out.push_str("# TYPE machiavelli_shared_hit_ratio gauge\n");
        let probes = sh.adoptions + sh.misses;
        let ratio = if probes == 0 {
            0.0
        } else {
            sh.adoptions as f64 / probes as f64
        };
        let _ = writeln!(out, "machiavelli_shared_hit_ratio {ratio}");
        out.push_str("# TYPE machiavelli_declines_total counter\n");
        for (reason, n) in machiavelli_trace::global_declines() {
            let _ = writeln!(
                out,
                "machiavelli_declines_total{{reason=\"{}\"}} {n}",
                reason.code()
            );
        }
        out
    }

    fn default_guard(&self) -> QueryGuard {
        let deadline = self.config.default_deadline.map(|d| Instant::now() + d);
        QueryGuard::new(deadline, self.config.row_budget)
    }

    /// Stop accepting work, drain the queues, and join the workers.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Job::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

struct SessionSlot {
    session: Session,
    poisoned: bool,
    /// The session's write-ahead log when the server runs with a
    /// durable root; `None` for purely in-memory sessions.
    wal: Option<SessionLog>,
}

/// The durable directory for one session id. Session ids restart from
/// 1 on every server start, so a restarted `machid` re-opens the same
/// directories and recovers the same sessions.
fn session_dir(root: &std::path::Path, sid: u64) -> std::path::PathBuf {
    root.join(format!("session-{sid}"))
}

fn worker_main(
    rx: Receiver<Job>,
    config: ServerConfig,
    queue_depth: Arc<AtomicI64>,
    role: Arc<AtomicU8>,
) {
    shared::set_shared_enabled(config.shared_store);
    if let Some(fc) = config.faults {
        faults::set_fault_config(Some(fc));
    }
    let mut sessions: HashMap<u64, SessionSlot> = HashMap::new();
    while let Ok(job) = rx.recv() {
        let follower = role.load(Ordering::Relaxed) == ROLE_FOLLOWER;
        match job {
            Job::Open { sid, reply } => {
                // Adoption is idempotent: re-opening a live sid (a
                // replicator pass after a reconnect) keeps the slot.
                let result = if sessions.contains_key(&sid) {
                    Ok(sid)
                } else {
                    open_session(&mut sessions, &config, sid)
                };
                let _ = reply.send(result);
            }
            Job::Eval {
                sid,
                src,
                guard,
                reply,
            } => {
                let result = run_eval(&mut sessions, sid, &src, &guard, follower);
                // The query leaves the gauge before the reply is
                // delivered, so a caller who has seen its result (and
                // then asks for METRICS) never observes itself as
                // still in flight.
                queue_depth.fetch_sub(1, Ordering::Relaxed);
                let _ = reply.send(result);
            }
            Job::Close { sid, reply } => {
                let result = if sessions.remove(&sid).is_some() {
                    governor::note_session_closed();
                    Ok(())
                } else {
                    Err(ServerError::NoSuchSession(sid))
                };
                let _ = reply.send(result);
            }
            Job::Save { sid, reply } => {
                // A follower checkpoint would bump the generation away
                // from the primary's stream: a write, so refused.
                let result = if follower {
                    Err(ServerError::ReadOnly)
                } else {
                    run_save(&mut sessions, sid)
                };
                let _ = reply.send(result);
            }
            Job::Restore { sid, reply } => {
                let _ = reply.send(run_restore(&mut sessions, &config, sid));
            }
            Job::Cursor { sid, reply } => {
                let _ = reply.send(run_cursor(&mut sessions, sid));
            }
            Job::Ship { sid, cursor, reply } => {
                let _ = reply.send(run_ship(&mut sessions, sid, cursor));
            }
            Job::ReplApply {
                sid,
                gen,
                bytes,
                reply,
            } => {
                let _ = reply.send(run_repl_apply(&mut sessions, sid, gen, &bytes));
            }
            Job::ReplInstall {
                sid,
                transfer,
                reply,
            } => {
                let _ = reply.send(run_repl_install(&mut sessions, &config, sid, &transfer));
            }
            Job::CheckpointAll { reply } => {
                let _ = reply.send(run_checkpoint_all(&mut sessions));
            }
            Job::Health { reply } => {
                let mut slots: Vec<SlotHealth> = sessions
                    .iter()
                    .map(|(&sid, slot)| SlotHealth {
                        sid,
                        poisoned: slot.poisoned,
                        doomed_log: slot.wal.as_ref().is_some_and(SessionLog::is_doomed),
                        gen: slot.wal.as_ref().map(SessionLog::generation),
                        groups: slot.wal.as_ref().map(SessionLog::groups),
                        lag: None,
                    })
                    .collect();
                slots.sort_unstable_by_key(|s| s.sid);
                let _ = reply.send(slots);
            }
            Job::Sids { reply } => {
                let mut sids: Vec<u64> = sessions.keys().copied().collect();
                sids.sort_unstable();
                let _ = reply.send(sids);
            }
            Job::Shutdown => break,
        }
    }
}

fn durable_slot(
    sessions: &mut HashMap<u64, SessionSlot>,
    sid: u64,
) -> Result<&mut SessionSlot, ServerError> {
    let slot = sessions
        .get_mut(&sid)
        .ok_or(ServerError::NoSuchSession(sid))?;
    if slot.wal.is_none() {
        return Err(ServerError::Replication(
            "session has no durable log (durability is disabled)".into(),
        ));
    }
    Ok(slot)
}

fn run_cursor(
    sessions: &mut HashMap<u64, SessionSlot>,
    sid: u64,
) -> Result<(LogCursor, u64), ServerError> {
    let slot = durable_slot(sessions, sid)?;
    let wal = slot.wal.as_ref().expect("checked durable");
    Ok((wal.cursor(), wal.groups()))
}

fn run_ship(
    sessions: &mut HashMap<u64, SessionSlot>,
    sid: u64,
    cursor: LogCursor,
) -> Result<Ship, ServerError> {
    let slot = durable_slot(sessions, sid)?;
    let wal = slot.wal.as_mut().expect("checked durable");
    wal.ship_from(cursor)
        .map_err(|e| ServerError::Replication(e.to_string()))
}

fn run_repl_apply(
    sessions: &mut HashMap<u64, SessionSlot>,
    sid: u64,
    gen: u64,
    bytes: &[u8],
) -> Result<(ReplicaApplyReport, LogCursor), ServerError> {
    let slot = durable_slot(sessions, sid)?;
    if slot.poisoned {
        return Err(ServerError::SessionPoisoned(sid));
    }
    let SessionSlot { session, wal, .. } = slot;
    let wal = wal.as_mut().expect("checked durable");
    match wal.replica_apply(session, gen, bytes) {
        Ok(report) => Ok((report, wal.cursor())),
        Err(WalError::StaleGeneration { got, have }) => {
            Err(ServerError::StaleGeneration { got, have })
        }
        Err(e) => Err(ServerError::Replication(e.to_string())),
    }
}

fn run_repl_install(
    sessions: &mut HashMap<u64, SessionSlot>,
    config: &ServerConfig,
    sid: u64,
    transfer: &SnapshotTransfer,
) -> Result<usize, ServerError> {
    let slot = durable_slot(sessions, sid)?;
    let root = config
        .durable_root
        .as_ref()
        .ok_or_else(|| ServerError::Replication("durability is disabled".into()))?;
    let dir = session_dir(root, sid);
    install_replica(&dir, transfer).map_err(|e| ServerError::Replication(e.to_string()))?;
    // Rebuild the slot from the installed state — the restore path,
    // shielded the same way.
    let shield = faults::set_fault_config(Some(FaultConfig::off()));
    let rebuilt = catch_unwind(AssertUnwindSafe(
        || -> Result<(SessionSlot, usize), ServerError> {
            let mut session =
                Session::try_new().map_err(|e| ServerError::SessionInit(e.to_string()))?;
            let (wal, report) = SessionLog::open(&dir, &mut session)
                .map_err(|e| ServerError::Replication(e.to_string()))?;
            let restored = report.snapshot_bindings + report.records_replayed as usize;
            Ok((
                SessionSlot {
                    session,
                    poisoned: false,
                    wal: Some(wal),
                },
                restored,
            ))
        },
    ));
    faults::set_fault_config(shield);
    match rebuilt {
        Ok(Ok((fresh, restored))) => {
            *slot = fresh;
            Ok(restored)
        }
        Ok(Err(e)) => Err(e),
        Err(payload) => Err(ServerError::SessionInit(panic_message(payload.as_ref()))),
    }
}

fn run_checkpoint_all(sessions: &mut HashMap<u64, SessionSlot>) -> Result<u64, ServerError> {
    let mut done = 0u64;
    let mut first_err = None;
    for (_, slot) in sessions.iter_mut() {
        if slot.poisoned {
            continue;
        }
        let Some(wal) = slot.wal.as_mut() else {
            continue;
        };
        match wal.checkpoint(&slot.session) {
            Ok(()) => done += 1,
            Err(e) => {
                // Same failure posture as SAVE: the slot poisons, the
                // sweep keeps fencing the others.
                slot.poisoned = true;
                governor::note_session_panicked();
                first_err.get_or_insert(ServerError::Durability(e.to_string()));
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(done),
    }
}

fn open_session(
    sessions: &mut HashMap<u64, SessionSlot>,
    config: &ServerConfig,
    sid: u64,
) -> Result<u64, ServerError> {
    // Shield the prelude (and recovery) from fault injection: faults
    // target queries, and deterministic opens keep chaos assertions
    // crisp.
    let shield = faults::set_fault_config(Some(FaultConfig::off()));
    let made = catch_unwind(AssertUnwindSafe(|| -> Result<SessionSlot, ServerError> {
        let mut session =
            Session::try_new().map_err(|e| ServerError::SessionInit(e.to_string()))?;
        let wal = match &config.durable_root {
            Some(root) => Some(
                SessionLog::open(&session_dir(root, sid), &mut session)
                    .map_err(|e| ServerError::Durability(e.to_string()))?
                    .0,
            ),
            None => None,
        };
        Ok(SessionSlot {
            session,
            poisoned: false,
            wal,
        })
    }));
    faults::set_fault_config(shield);
    match made {
        Ok(Ok(slot)) => {
            sessions.insert(sid, slot);
            governor::note_session_started();
            Ok(sid)
        }
        Ok(Err(e)) => Err(e),
        Err(payload) => Err(ServerError::SessionInit(panic_message(payload.as_ref()))),
    }
}

fn run_save(sessions: &mut HashMap<u64, SessionSlot>, sid: u64) -> Result<u64, ServerError> {
    let slot = sessions
        .get_mut(&sid)
        .ok_or(ServerError::NoSuchSession(sid))?;
    if slot.poisoned {
        return Err(ServerError::SessionPoisoned(sid));
    }
    let Some(wal) = slot.wal.as_mut() else {
        return Err(ServerError::Durability("durability is disabled".into()));
    };
    match wal.checkpoint(&slot.session) {
        Ok(()) => Ok(wal.generation()),
        Err(e) => {
            // Disk state is ambiguous relative to memory; refuse
            // further queries rather than drift (see run_eval).
            slot.poisoned = true;
            governor::note_session_panicked();
            Err(ServerError::Durability(e.to_string()))
        }
    }
}

fn run_restore(
    sessions: &mut HashMap<u64, SessionSlot>,
    config: &ServerConfig,
    sid: u64,
) -> Result<usize, ServerError> {
    let slot = sessions
        .get_mut(&sid)
        .ok_or(ServerError::NoSuchSession(sid))?;
    let Some(root) = &config.durable_root else {
        return Err(ServerError::Durability("durability is disabled".into()));
    };
    if slot.wal.is_none() {
        return Err(ServerError::Durability(
            "session has no durable state".into(),
        ));
    }
    // Deliberately no poison check: RESTORE is how a poisoned durable
    // session comes back — in-memory state (possibly torn mid-update by
    // a panic) is discarded and rebuilt from the last durable commit.
    let shield = faults::set_fault_config(Some(FaultConfig::off()));
    let rebuilt = catch_unwind(AssertUnwindSafe(
        || -> Result<(SessionSlot, usize), ServerError> {
            let mut session =
                Session::try_new().map_err(|e| ServerError::SessionInit(e.to_string()))?;
            let (wal, report) = SessionLog::open(&session_dir(root, sid), &mut session)
                .map_err(|e| ServerError::Durability(e.to_string()))?;
            let restored = report.snapshot_bindings + report.records_replayed as usize;
            Ok((
                SessionSlot {
                    session,
                    poisoned: false,
                    wal: Some(wal),
                },
                restored,
            ))
        },
    ));
    faults::set_fault_config(shield);
    match rebuilt {
        Ok(Ok((fresh, restored))) => {
            *slot = fresh;
            Ok(restored)
        }
        Ok(Err(e)) => Err(e),
        Err(payload) => Err(ServerError::SessionInit(panic_message(payload.as_ref()))),
    }
}

fn run_eval(
    sessions: &mut HashMap<u64, SessionSlot>,
    sid: u64,
    src: &str,
    guard: &Arc<QueryGuard>,
    follower: bool,
) -> Result<Vec<String>, ServerError> {
    let slot = sessions
        .get_mut(&sid)
        .ok_or(ServerError::NoSuchSession(sid))?;
    if slot.poisoned {
        return Err(ServerError::SessionPoisoned(sid));
    }
    // Followers serve queries, not writes: declarations and `:=` are
    // refused before evaluation so replica state never forks from the
    // shipped stream. (Unparsable sources fall through — the evaluator
    // reports the real parse error.)
    if follower && !is_read_only_source(src) {
        return Err(ServerError::ReadOnly);
    }
    // Queue wait may already have consumed the deadline (or the client
    // cancelled before we started): trip without evaluating.
    if let Some(trip) = guard.check() {
        governor::note_trip(trip);
        return Err(ServerError::from_trip(trip));
    }
    let prev = governor::install(Some(guard.clone()));
    let t0 = machiavelli_trace::now_ns();
    let outcome = catch_unwind(AssertUnwindSafe(|| slot.session.run(src)));
    // Evaluation wall time (queue wait excluded — shed/depth cover the
    // admission side), observed for every query that ran, whatever the
    // outcome: error latencies are latencies too.
    machiavelli_trace::observe_query_ns(machiavelli_trace::now_ns().saturating_sub(t0));
    governor::install(prev);
    // Attribute this evaluation's ref writes to this session *now*,
    // whatever the outcome — errors and panics have real partial
    // writes, and the thread-local dirty channel is shared by every
    // session this worker hosts.
    if let Some(wal) = slot.wal.as_mut() {
        wal.absorb_dirty();
    }
    match outcome {
        Ok(Ok(outcomes)) => {
            // Commit before reporting: memory now holds this
            // evaluation, so disk must too before the client can
            // observe a result it might rely on. A commit failure
            // fail-hards (poison + typed error) — a session that
            // silently drifted ahead of its log would turn the next
            // crash into data loss. Followers never commit: their log
            // is the primary's byte-for-byte, and a read-only eval's
            // scratch `it` binding must not fork it.
            if !follower {
                if let Some(wal) = slot.wal.as_mut() {
                    if let Err(e) = wal.commit(&slot.session, &outcomes) {
                        slot.poisoned = true;
                        governor::note_session_panicked();
                        return Err(ServerError::Durability(e.to_string()));
                    }
                }
            }
            // A trip can latch after the last governance tick (row
            // charges land when a set materializes, which may be the
            // query's final step). The latch is sticky: honor it even
            // though evaluation ran to completion, so ceilings are
            // ceilings.
            if let Some(trip) = guard.tripped() {
                governor::note_trip(trip);
                return Err(ServerError::from_trip(trip));
            }
            governor::note_query_completed();
            Ok(outcomes.iter().map(|o| o.show()).collect())
        }
        Ok(Err(SessionError::Eval(EvalError::Interrupted(trip)))) => {
            governor::note_trip(trip);
            Err(ServerError::from_trip(trip))
        }
        Ok(Err(e)) => {
            // An ordinary query error: the query *completed*, with a
            // diagnosis. The session stays healthy.
            governor::note_query_completed();
            Err(ServerError::Query(e.to_string()))
        }
        Err(payload) => {
            // The evaluator panicked. The session's environments may
            // be torn mid-update, so poison it; the worker and its
            // other sessions are untouched. The unwind also skipped any
            // in-flight trace scopes — reset the thread's tracer so the
            // next query on this worker starts at depth zero.
            machiavelli_trace::abort_query();
            slot.poisoned = true;
            governor::note_session_panicked();
            Err(ServerError::SessionPanicked(panic_message(
                payload.as_ref(),
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_cap: 8,
            default_deadline: None,
            row_budget: None,
            shared_store: false,
            faults: Some(FaultConfig::off()),
            durable_root: None,
            role: ServerRole::Primary,
        }
    }

    #[test]
    fn open_eval_close_roundtrip() {
        let server = Server::start(quiet());
        let sid = server.open_session().expect("open");
        let out = server.eval(sid, "1 + 2;").expect("eval");
        assert_eq!(out, vec!["val it = 3 : int".to_string()]);
        server.close_session(sid).expect("close");
        assert_eq!(server.eval(sid, "1;"), Err(ServerError::NoSuchSession(sid)));
        server.shutdown();
    }

    #[test]
    fn sessions_are_independent_and_sticky() {
        let server = Server::start(quiet());
        let a = server.open_session().expect("open a");
        let b = server.open_session().expect("open b");
        server.eval(a, "val x = 10;").expect("bind in a");
        // `x` is visible in a, unbound in b.
        assert!(server.eval(a, "x + 1;").is_ok());
        match server.eval(b, "x + 1;") {
            Err(ServerError::Query(msg)) => assert!(msg.contains("type error")),
            other => panic!("expected a type error from session b, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn query_errors_do_not_poison() {
        let server = Server::start(quiet());
        let sid = server.open_session().expect("open");
        assert!(matches!(
            server.eval(sid, "definitely not machiavelli"),
            Err(ServerError::Query(_))
        ));
        assert!(server.eval(sid, "2 * 21;").is_ok(), "session still healthy");
        server.shutdown();
    }

    #[test]
    fn pre_cancelled_guard_trips_before_evaluating() {
        let server = Server::start(quiet());
        let sid = server.open_session().expect("open");
        let guard = Arc::new(QueryGuard::unlimited());
        guard.cancel();
        let pending = server.submit_with(sid, "1 + 1;", guard).expect("admit");
        assert_eq!(pending.wait(), Err(ServerError::Cancelled));
        server.shutdown();
    }

    #[test]
    fn routing_is_deterministic_per_sid() {
        let server = Server::start(quiet());
        // Many sessions across two workers: each keeps its own state.
        let sids: Vec<u64> = (0..6)
            .map(|_| server.open_session().expect("open"))
            .collect();
        for (i, &sid) in sids.iter().enumerate() {
            server.eval(sid, &format!("val mine = {i};")).expect("bind");
        }
        for (i, &sid) in sids.iter().enumerate() {
            let out = server.eval(sid, "mine;").expect("read");
            assert_eq!(out, vec![format!("val it = {i} : int")]);
        }
        server.shutdown();
    }
}
