//! Type inference: Milner's algorithm W extended with kinded variables
//! and conditional constraints, following \[OB88\] / §3.3 of the paper.
//!
//! Top-level behaviour mirrors the paper's interactive sessions:
//!
//! * non-expansive phrases (functions, literals, …) are **generalized**
//!   into conditional type schemes — unresolved `lub`/`glb` conditions
//!   print as the `where { … }` clause (e.g. `Join3`);
//! * expansive phrases (applications, queries, …) are evaluated by the
//!   interpreter, so their types are **resolved**: the solver runs in
//!   forced mode, committing kinded variables to minimal instances — this
//!   reproduces the fully ground types the paper prints for Figure 3's
//!   queries.

use crate::constraint::{solve, Constraint};
use crate::error::TypeError;
use crate::kind::Kind;
use crate::lower::lower_closed;
use crate::scheme::{generalize, instantiate, Scheme};
use crate::ty::{
    resolve, t_arrow, t_bool, t_dynamic, t_int, t_real, t_record, t_ref, t_set, t_str, t_tuple,
    t_unit, t_variant, Ty, Type, VarGen,
};
use crate::unify::{require_desc, unify};
use machiavelli_syntax::ast::{BinOp, Expr, ExprKind, Phrase, PhraseKind, UnOp};
use machiavelli_syntax::symbol::Symbol;
use std::rc::Rc;

/// A lexically scoped type environment, keyed by interned symbols so
/// lookups compare interned-pointer ids, not string contents.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    bindings: Vec<(Symbol, Scheme)>,
}

impl TypeEnv {
    pub fn new() -> Self {
        Self::default()
    }

    /// Push a binding (shadowing any previous one).
    pub fn bind(&mut self, name: impl Into<Symbol>, scheme: Scheme) {
        self.bindings.push((name.into(), scheme));
    }

    /// Pop the most recent `n` bindings.
    pub fn pop(&mut self, n: usize) {
        for _ in 0..n {
            self.bindings.pop();
        }
    }

    /// Look up a name (innermost binding wins).
    pub fn lookup(&self, name: impl Into<Symbol>) -> Option<&Scheme> {
        let name = name.into();
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n.id() == name.id())
            .map(|(_, s)| s)
    }

    /// Iterate over all bindings (outermost first).
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Scheme)> {
        self.bindings.iter().map(|(n, s)| (*n, s))
    }
}

/// The stateful inferencer: fresh-variable supply, current `let` level,
/// and the set of pending conditional constraints.
#[derive(Debug, Default)]
pub struct Inferencer {
    pub gen: VarGen,
    level: u32,
    pub constraints: Vec<Constraint>,
}

/// Result of inferring one top-level phrase.
#[derive(Debug, Clone)]
pub struct PhraseType {
    /// The name bound (`it` for bare expressions).
    pub name: Symbol,
    /// The (possibly conditional) scheme entered into the environment.
    pub scheme: Scheme,
}

impl Inferencer {
    pub fn new() -> Self {
        Self::default()
    }

    /// An inferencer whose variable ids continue from `start` (see
    /// [`VarGen::starting_at`]).
    pub fn starting_at(start: u64) -> Self {
        Inferencer {
            gen: VarGen::starting_at(start),
            ..Self::default()
        }
    }

    fn fresh(&self, kind: Kind) -> Ty {
        self.gen.fresh_ty(kind, self.level)
    }

    /// Build the initial environment containing the builtin values that
    /// are ordinary identifiers (the special forms — `join`, `hom`, … —
    /// are AST nodes, not identifiers).
    pub fn builtin_env(&self) -> TypeEnv {
        let mut env = TypeEnv::new();
        // union : ∀"a. ({"a} * {"a}) -> {"a}
        let d = self.gen.fresh(Kind::Desc, u32::MAX);
        let dt: Ty = Rc::new(Type::Var(d.clone()));
        let set = t_set(dt);
        env.bind(
            "union",
            Scheme {
                vars: vec![d],
                constraints: Vec::new(),
                body: t_arrow(t_tuple([set.clone(), set.clone()]), set),
            },
        );
        // not : bool -> bool
        env.bind("not", Scheme::mono(t_arrow(t_bool(), t_bool())));
        // applyc : ∀"a "b 'c. (("a -> 'c) * "b) -> 'c  where "a <= "b
        //
        // The §6 sketch: replace the application rule by
        //   e : σ → τ   e' : ρ   ρ ≤ σ
        //   ---------------------------
        //          e(e') : τ
        // so a function over a *smaller* description type accepts any
        // larger argument, coerced implicitly. `applyc(f, x)` is that
        // rule as a combinator: the condition `"a <= "b` is carried in
        // the conditional scheme and checked at each use.
        let dom = self.gen.fresh(Kind::Desc, u32::MAX);
        let arg = self.gen.fresh(Kind::Desc, u32::MAX);
        let out = self.gen.fresh(Kind::Any, u32::MAX);
        let dom_ty: Ty = Rc::new(Type::Var(dom.clone()));
        let arg_ty: Ty = Rc::new(Type::Var(arg.clone()));
        let out_ty: Ty = Rc::new(Type::Var(out.clone()));
        env.bind(
            "applyc",
            Scheme {
                vars: vec![dom.clone(), arg, out],
                constraints: vec![Constraint::Sub {
                    sub: dom_ty.clone(),
                    sup: arg_ty.clone(),
                }],
                body: t_arrow(t_tuple([t_arrow(dom_ty, out_ty.clone()), arg_ty]), out_ty),
            },
        );
        env
    }

    /// Infer a top-level phrase, updating `env` with the new binding.
    ///
    /// On failure the pending-constraint set is rolled back to its state
    /// before the phrase, so one ill-typed phrase cannot poison later
    /// ones (the session keeps running, as in the paper's interactive
    /// transcripts).
    pub fn infer_phrase(
        &mut self,
        env: &mut TypeEnv,
        phrase: &Phrase,
    ) -> Result<PhraseType, TypeError> {
        let snapshot = self.constraints.clone();
        let result = self.infer_phrase_inner(env, phrase);
        if result.is_err() {
            self.constraints = snapshot;
        }
        result
    }

    fn infer_phrase_inner(
        &mut self,
        env: &mut TypeEnv,
        phrase: &Phrase,
    ) -> Result<PhraseType, TypeError> {
        match &phrase.kind {
            PhraseKind::Val { name, expr } => {
                let scheme = self.infer_top(env, expr, None)?;
                env.bind(*name, scheme.clone());
                Ok(PhraseType {
                    name: *name,
                    scheme,
                })
            }
            PhraseKind::Fun { name, params, body } => {
                let lambda = Expr::new(
                    ExprKind::Lambda {
                        params: params.clone(),
                        body: Box::new(body.clone()),
                    },
                    phrase.span,
                );
                let scheme = self.infer_top(env, &lambda, Some(*name))?;
                env.bind(*name, scheme.clone());
                Ok(PhraseType {
                    name: *name,
                    scheme,
                })
            }
            PhraseKind::Expr(expr) => {
                let scheme = self.infer_top(env, expr, None)?;
                env.bind("it", scheme.clone());
                Ok(PhraseType {
                    name: Symbol::intern("it"),
                    scheme,
                })
            }
        }
    }

    /// Infer a top-level expression; `rec_name` makes the binding visible
    /// recursively (for `fun`).
    fn infer_top(
        &mut self,
        env: &mut TypeEnv,
        expr: &Expr,
        rec_name: Option<Symbol>,
    ) -> Result<Scheme, TypeError> {
        self.level = 1;
        let mut popped = 0;
        if let Some(name) = rec_name {
            let placeholder = self.fresh(Kind::Any);
            env.bind(name, Scheme::mono(placeholder));
            popped = 1;
        }
        let result = (|| {
            let t = self.infer_expr(env, expr)?;
            if let Some(name) = rec_name {
                let placeholder = env.lookup(name).unwrap().body.clone();
                unify(&placeholder, &t)?;
            }
            // Gentle pass first: resolve whatever is ground.
            solve(&mut self.constraints, &self.gen, self.level, false)?;
            if is_nonexpansive(expr) {
                Ok(generalize(&t, &mut self.constraints, 0))
            } else {
                // The interpreter will evaluate this phrase: commit
                // blocked kinded variables (forced mode), then present a
                // monomorphic scheme carrying any still-symbolic
                // conditions for display.
                solve(&mut self.constraints, &self.gen, self.level, true)?;
                let residual = self.constraints_mentioning(&t);
                Ok(Scheme {
                    vars: Vec::new(),
                    constraints: residual,
                    body: t,
                })
            }
        })();
        env.pop(popped);
        self.level = 0;
        result
    }

    /// Copies of pending constraints that mention variables of `t`
    /// (for display on monomorphic phrases).
    fn constraints_mentioning(&self, t: &Ty) -> Vec<Constraint> {
        let mut tvars = Vec::new();
        crate::ty::free_vars(t, &mut tvars);
        self.constraints
            .iter()
            .filter(|c| {
                let mut cvars = Vec::new();
                for ct in c.types() {
                    crate::ty::free_vars(&ct, &mut cvars);
                }
                cvars.iter().any(|v| tvars.contains(v))
            })
            .cloned()
            .collect()
    }

    /// Infer the type of an expression.
    pub fn infer_expr(&mut self, env: &mut TypeEnv, e: &Expr) -> Result<Ty, TypeError> {
        use ExprKind::*;
        match &e.kind {
            Unit => Ok(t_unit()),
            Int(_) => Ok(t_int()),
            Real(_) => Ok(t_real()),
            Str(_) => Ok(t_str()),
            Bool(_) => Ok(t_bool()),
            Var(name) => {
                let scheme = env
                    .lookup(*name)
                    .ok_or_else(|| TypeError::UnboundVariable(name.to_string()))?
                    .clone();
                Ok(instantiate(
                    &scheme,
                    &self.gen,
                    self.level,
                    &mut self.constraints,
                ))
            }
            Lambda { params, body } => {
                let param_tys: Vec<Ty> = params.iter().map(|_| self.fresh(Kind::Any)).collect();
                for (p, t) in params.iter().zip(&param_tys) {
                    env.bind(*p, Scheme::mono(t.clone()));
                }
                let body_ty = self.infer_expr(env, body);
                env.pop(params.len());
                let body_ty = body_ty?;
                let dom = if param_tys.len() == 1 {
                    param_tys.into_iter().next().unwrap()
                } else {
                    t_tuple(param_tys)
                };
                Ok(t_arrow(dom, body_ty))
            }
            App { func, args } => {
                let f_ty = self.infer_expr(env, func)?;
                let arg_tys: Vec<Ty> = args
                    .iter()
                    .map(|a| self.infer_expr(env, a))
                    .collect::<Result<_, _>>()?;
                let dom = if arg_tys.len() == 1 {
                    arg_tys.into_iter().next().unwrap()
                } else {
                    t_tuple(arg_tys)
                };
                let out = self.fresh(Kind::Any);
                unify(&f_ty, &t_arrow(dom, out.clone()))?;
                Ok(out)
            }
            If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.infer_expr(env, cond)?;
                unify(&c, &t_bool())?;
                let t = self.infer_expr(env, then_branch)?;
                let f = self.infer_expr(env, else_branch)?;
                unify(&t, &f)?;
                Ok(t)
            }
            Record(fields) => {
                let mut tys = Vec::with_capacity(fields.len());
                for (l, fe) in fields {
                    tys.push((*l, self.infer_expr(env, fe)?));
                }
                Ok(t_record(tys))
            }
            Field { expr, label } => {
                let t = self.infer_expr(env, expr)?;
                let field_ty = self.fresh(Kind::Any);
                let rec_var = self.fresh(Kind::record([(*label, field_ty.clone())], false));
                unify(&t, &rec_var)?;
                Ok(field_ty)
            }
            Modify { expr, label, value } => {
                let t = self.infer_expr(env, expr)?;
                let v = self.infer_expr(env, value)?;
                let rec_var = self.fresh(Kind::record([(*label, v)], false));
                unify(&t, &rec_var)?;
                Ok(t)
            }
            Inject { label, expr } => {
                let t = self.infer_expr(env, expr)?;
                Ok(self.fresh(Kind::variant([(*label, t)], false)))
            }
            Case {
                expr,
                arms,
                default,
            } => {
                let scrut = self.infer_expr(env, expr)?;
                let result = self.fresh(Kind::Any);
                let mut arm_fields = Vec::with_capacity(arms.len());
                for arm in arms {
                    let payload = self.fresh(Kind::Any);
                    env.bind(arm.var, Scheme::mono(payload.clone()));
                    let body_ty = self.infer_expr(env, &arm.body);
                    env.pop(1);
                    unify(&body_ty?, &result)?;
                    arm_fields.push((arm.label, payload));
                }
                match default {
                    None => {
                        // Exactly these variants (the paper's Fig. 1
                        // `phone` prints a closed variant).
                        unify(&scrut, &t_variant(arm_fields))?;
                    }
                    Some(d) => {
                        // At least these variants; `other` covers the rest.
                        let var = self.fresh(Kind::variant(arm_fields, false));
                        unify(&scrut, &var)?;
                        let d_ty = self.infer_expr(env, d)?;
                        unify(&d_ty, &result)?;
                    }
                }
                Ok(result)
            }
            As { expr, label } => {
                let t = self.infer_expr(env, expr)?;
                let payload = self.fresh(Kind::Any);
                let var = self.fresh(Kind::variant([(*label, payload.clone())], false));
                unify(&t, &var)?;
                Ok(payload)
            }
            Set(items) => {
                let elem = self.fresh(Kind::Desc);
                for item in items {
                    let t = self.infer_expr(env, item)?;
                    unify(&t, &elem)?;
                }
                Ok(t_set(elem))
            }
            Union { left, right } => {
                let elem = self.fresh(Kind::Desc);
                let l = self.infer_expr(env, left)?;
                let r = self.infer_expr(env, right)?;
                unify(&l, &t_set(elem.clone()))?;
                unify(&r, &t_set(elem.clone()))?;
                Ok(t_set(elem))
            }
            Unionc { left, right } => {
                let l = self.infer_expr(env, left)?;
                let r = self.infer_expr(env, right)?;
                let d1 = self.fresh(Kind::Desc);
                let d2 = self.fresh(Kind::Desc);
                unify(&l, &t_set(d1.clone()))?;
                unify(&r, &t_set(d2.clone()))?;
                let out = self.fresh(Kind::Desc);
                self.constraints.push(Constraint::Glb {
                    result: out.clone(),
                    left: d1,
                    right: d2,
                });
                Ok(t_set(out))
            }
            Hom { f, op, z, set } => {
                // The set is inferred first so a concrete (possibly
                // recursive) element type grounds the element variable
                // before the body of `f` constrains it — mirrors the
                // generator-first order of `select`.
                let elem = self.fresh(Kind::Desc);
                let acc = self.fresh(Kind::Any);
                let s_ty = self.infer_expr(env, set)?;
                unify(&s_ty, &t_set(elem.clone()))?;
                let f_ty = self.infer_expr(env, f)?;
                unify(&f_ty, &t_arrow(elem, acc.clone()))?;
                let op_ty = self.infer_expr(env, op)?;
                unify(
                    &op_ty,
                    &t_arrow(t_tuple([acc.clone(), acc.clone()]), acc.clone()),
                )?;
                let z_ty = self.infer_expr(env, z)?;
                unify(&z_ty, &acc)?;
                Ok(acc)
            }
            HomStar { f, op, set } => {
                let elem = self.fresh(Kind::Desc);
                let acc = self.fresh(Kind::Any);
                let s_ty = self.infer_expr(env, set)?;
                unify(&s_ty, &t_set(elem.clone()))?;
                let f_ty = self.infer_expr(env, f)?;
                unify(&f_ty, &t_arrow(elem, acc.clone()))?;
                let op_ty = self.infer_expr(env, op)?;
                unify(
                    &op_ty,
                    &t_arrow(t_tuple([acc.clone(), acc.clone()]), acc.clone()),
                )?;
                Ok(acc)
            }
            Ref(inner) => {
                let t = self.infer_expr(env, inner)?;
                Ok(t_ref(t))
            }
            Deref(inner) => {
                let t = self.infer_expr(env, inner)?;
                let content = self.fresh(Kind::Any);
                unify(&t, &t_ref(content.clone()))?;
                Ok(content)
            }
            Assign { target, value } => {
                let t = self.infer_expr(env, target)?;
                let v = self.infer_expr(env, value)?;
                unify(&t, &t_ref(v))?;
                Ok(t_unit())
            }
            Con { left, right } => {
                let l = self.infer_expr(env, left)?;
                let r = self.infer_expr(env, right)?;
                require_desc(&l)?;
                require_desc(&r)?;
                let witness = self.fresh(Kind::Desc);
                self.constraints.push(Constraint::Lub {
                    result: witness,
                    left: l,
                    right: r,
                });
                Ok(t_bool())
            }
            Join { left, right } => {
                let l = self.infer_expr(env, left)?;
                let r = self.infer_expr(env, right)?;
                require_desc(&l)?;
                require_desc(&r)?;
                let out = self.fresh(Kind::Desc);
                self.constraints.push(Constraint::Lub {
                    result: out.clone(),
                    left: l,
                    right: r,
                });
                Ok(out)
            }
            Project { expr, ty } => {
                let source = self.infer_expr(env, expr)?;
                require_desc(&source)?;
                let target = lower_closed(ty)?;
                self.sub_propagate(&target, &source)?;
                Ok(target)
            }
            Let { name, bound, body } => {
                let scheme = if is_nonexpansive(bound) {
                    self.level += 1;
                    let t = self.infer_expr(env, bound);
                    self.level -= 1;
                    generalize(&t?, &mut self.constraints, self.level)
                } else {
                    Scheme::mono(self.infer_expr(env, bound)?)
                };
                env.bind(*name, scheme);
                let out = self.infer_expr(env, body);
                env.pop(1);
                out
            }
            Select {
                result,
                generators,
                pred,
            } => {
                for g in generators {
                    let src = self.infer_expr(env, &g.source)?;
                    let elem = self.fresh(Kind::Desc);
                    unify(&src, &t_set(elem.clone()))?;
                    env.bind(g.var, Scheme::mono(elem));
                }
                let out = (|| {
                    let p = self.infer_expr(env, pred)?;
                    unify(&p, &t_bool())?;
                    let r = self.infer_expr(env, result)?;
                    require_desc(&r)?;
                    Ok(t_set(r))
                })();
                env.pop(generators.len());
                out
            }
            Binop { op, left, right } => {
                let l = self.infer_expr(env, left)?;
                let r = self.infer_expr(env, right)?;
                self.binop_result(*op, &l, &r)
            }
            Unop { op, expr } => {
                let t = self.infer_expr(env, expr)?;
                match op {
                    UnOp::Neg => {
                        let t = resolve(&t);
                        match &*t {
                            Type::Real => Ok(t_real()),
                            _ => {
                                unify(&t, &t_int())?;
                                Ok(t_int())
                            }
                        }
                    }
                    UnOp::Not => {
                        unify(&t, &t_bool())?;
                        Ok(t_bool())
                    }
                }
            }
            OpVal(op) => {
                let (l, r, out) = self.binop_value_type(*op);
                Ok(t_arrow(t_tuple([l, r]), out))
            }
            Rec { name, body } => {
                if !matches!(body.kind, ExprKind::Lambda { .. }) {
                    return Err(TypeError::RecNotFunction);
                }
                let placeholder = self.fresh(Kind::Any);
                env.bind(*name, Scheme::mono(placeholder.clone()));
                let t = self.infer_expr(env, body);
                env.pop(1);
                unify(&placeholder, &t?)?;
                Ok(placeholder)
            }
            Raise(_) => Ok(self.fresh(Kind::Any)),
            MakeDynamic(inner) => {
                let t = self.infer_expr(env, inner)?;
                require_desc(&t)?;
                Ok(t_dynamic())
            }
            Coerce { expr, ty } => {
                let t = self.infer_expr(env, expr)?;
                unify(&t, &t_dynamic())?;
                lower_closed(ty)
            }
        }
    }

    /// Eagerly propagate the projection constraint `sub ≤ sup`: the
    /// annotation `sub` is closed and finite, so the relationship
    /// decomposes structurally; record positions become record-kinded
    /// variables, base/ref/dynamic positions unify. Recursive annotation
    /// types leave a residual [`Constraint::Sub`].
    fn sub_propagate(&mut self, sub: &Ty, sup: &Ty) -> Result<(), TypeError> {
        let sub = resolve(sub);
        match &*sub {
            Type::Unit
            | Type::Int
            | Type::Bool
            | Type::Str
            | Type::Real
            | Type::Dynamic
            | Type::Ref(_) => unify(sup, &sub),
            Type::Set(d) => {
                let s = self.fresh(Kind::Desc);
                unify(sup, &t_set(s.clone()))?;
                self.sub_propagate(d, &s)
            }
            Type::Record(fields) => {
                let holes: Vec<(crate::ty::Label, Ty)> =
                    fields.keys().map(|l| (*l, self.fresh(Kind::Any))).collect();
                let var = self.fresh(Kind::Record {
                    fields: holes.iter().cloned().collect(),
                    desc: true,
                });
                unify(sup, &var)?;
                for (l, hole) in &holes {
                    self.sub_propagate(&fields[l], hole)?;
                }
                Ok(())
            }
            Type::Variant(fields) => {
                // Variant labels are preserved by the ordering: the source
                // must be a variant with exactly these labels.
                let holes: Vec<(crate::ty::Label, Ty)> =
                    fields.keys().map(|l| (*l, self.fresh(Kind::Any))).collect();
                unify(sup, &t_variant(holes.clone()))?;
                for (l, hole) in &holes {
                    self.sub_propagate(&fields[l], hole)?;
                }
                Ok(())
            }
            Type::Rec(..) | Type::RecVar(_) | Type::Var(_) => {
                self.constraints.push(Constraint::Sub {
                    sub: sub.clone(),
                    sup: sup.clone(),
                });
                Ok(())
            }
            Type::Arrow(..) => Err(TypeError::NotDescription(crate::display::show_type(&sub))),
        }
    }

    fn binop_result(&mut self, op: BinOp, l: &Ty, r: &Ty) -> Result<Ty, TypeError> {
        use BinOp::*;
        match op {
            // `+ - * div mod` are overloaded on int and real, defaulting
            // to int when the operands leave the choice open (SML-style).
            Add | Sub | Mul | Div | Mod => {
                let t = self.numeric_operands(l, r)?;
                Ok(t)
            }
            RealDiv => {
                unify(l, &t_real())?;
                unify(r, &t_real())?;
                Ok(t_real())
            }
            Concat => {
                unify(l, &t_str())?;
                unify(r, &t_str())?;
                Ok(t_str())
            }
            Eq | Ne => {
                unify(l, r)?;
                require_desc(l)?;
                Ok(t_bool())
            }
            // Comparisons overload on int, real and string (default int).
            Lt | Gt | Le | Ge => {
                self.comparable_operands(l, r)?;
                Ok(t_bool())
            }
            Andalso | Orelse => {
                unify(l, &t_bool())?;
                unify(r, &t_bool())?;
                Ok(t_bool())
            }
        }
    }

    /// Unify the operands together, then admit int or real (defaulting an
    /// undetermined type to int).
    fn numeric_operands(&mut self, l: &Ty, r: &Ty) -> Result<Ty, TypeError> {
        unify(l, r)?;
        let t = resolve(l);
        match &*t {
            Type::Int | Type::Real => Ok(t),
            Type::Var(_) => {
                unify(&t, &t_int())?;
                Ok(t_int())
            }
            _ => {
                // Not numeric: report via the int unification error.
                unify(&t, &t_int())?;
                Ok(t_int())
            }
        }
    }

    /// As [`Self::numeric_operands`] but also admitting strings.
    fn comparable_operands(&mut self, l: &Ty, r: &Ty) -> Result<(), TypeError> {
        unify(l, r)?;
        let t = resolve(l);
        match &*t {
            Type::Int | Type::Real | Type::Str => Ok(()),
            Type::Var(_) => unify(&t, &t_int()),
            _ => unify(&t, &t_int()),
        }
    }

    /// The type of a first-class operator value (a binary function on a
    /// pair).
    fn binop_value_type(&mut self, op: BinOp) -> (Ty, Ty, Ty) {
        use BinOp::*;
        match op {
            Add | Sub | Mul | Div | Mod => (t_int(), t_int(), t_int()),
            RealDiv => (t_real(), t_real(), t_real()),
            Concat => (t_str(), t_str(), t_str()),
            Eq | Ne => {
                let d = self.fresh(Kind::Desc);
                (d.clone(), d, t_bool())
            }
            Lt | Gt | Le | Ge => (t_int(), t_int(), t_bool()),
            Andalso | Orelse => (t_bool(), t_bool(), t_bool()),
        }
    }
}

/// ML-style value restriction: only syntactic values generalize.
pub fn is_nonexpansive(e: &Expr) -> bool {
    use ExprKind::*;
    match &e.kind {
        Unit | Int(_) | Real(_) | Str(_) | Bool(_) | Var(_) | Lambda { .. } | OpVal(_) => true,
        Record(fields) => fields.iter().all(|(_, fe)| is_nonexpansive(fe)),
        Set(items) => items.iter().all(is_nonexpansive),
        Inject { expr, .. } => is_nonexpansive(expr),
        Rec { body, .. } => is_nonexpansive(body),
        _ => false,
    }
}

/// Convenience: infer a whole program from scratch, returning the phrase
/// types in order.
pub fn infer_program(src: &str) -> Result<Vec<PhraseType>, String> {
    let program = machiavelli_syntax::parse_program(src).map_err(|e| e.to_string())?;
    let mut inferencer = Inferencer::new();
    let mut env = inferencer.builtin_env();
    let mut out = Vec::with_capacity(program.len());
    for phrase in &program {
        out.push(
            inferencer
                .infer_phrase(&mut env, phrase)
                .map_err(|e| e.to_string())?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Infer the last phrase of `src` and return its rendered scheme.
    fn infer_last(src: &str) -> String {
        let phrases = infer_program(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        phrases.last().unwrap().scheme.show()
    }

    fn infer_err(src: &str) -> String {
        infer_program(src).unwrap_err()
    }

    #[test]
    fn identity_is_polymorphic() {
        assert_eq!(infer_last("fun id(x) = x;"), "'a -> 'a");
        assert_eq!(infer_last("fun id(x) = x; id(1);"), "int");
    }

    #[test]
    fn literal_types() {
        assert_eq!(infer_last("1;"), "int");
        assert_eq!(infer_last("\"hello\";"), "string");
        assert_eq!(infer_last("true;"), "bool");
        assert_eq!(infer_last("1.5;"), "real");
        assert_eq!(infer_last("();"), "unit");
    }

    #[test]
    fn field_selection_is_polymorphic() {
        assert_eq!(infer_last("fun name(x) = x.Name;"), "[('a) Name:'b] -> 'b");
    }

    #[test]
    fn wealthy_example_from_intro() {
        let shown =
            infer_last("fun Wealthy(S) = select x.Name where x <- S with x.Salary > 100000;");
        assert_eq!(shown, "{[(\"a) Name:\"b,Salary:int]} -> {\"b}");
    }

    #[test]
    fn increment_age_from_fig1() {
        let shown = infer_last("fun increment_age(x) = modify(x, Age, x.Age + 1);");
        assert_eq!(shown, "[('a) Age:int] -> [('a) Age:int]");
    }

    #[test]
    fn phone_from_fig1() {
        let shown = infer_last(
            "fun phone(x) = (case x.Status of Employee of y => y.Extension,
                                              Consultant of y => y.Telephone);",
        );
        assert_eq!(
            shown,
            "[('a) Status:<Consultant:[('b) Telephone:'c],Employee:[('d) Extension:'c]>] -> 'c"
        );
    }

    #[test]
    fn join3_conditional_scheme() {
        let shown = infer_last("fun Join3(x,y,z) = join(x,join(y,z));");
        assert_eq!(
            shown,
            "(\"a * \"b * \"c) -> \"d where { \"d = \"a lub \"e, \"e = \"b lub \"c }"
        );
    }

    #[test]
    fn join3_application_resolves() {
        let shown = infer_last(
            "fun Join3(x,y,z) = join(x,join(y,z));
             Join3([Name=\"Joe\"],[Age=21],[Office=27]);",
        );
        assert_eq!(shown, "[Age:int,Name:string,Office:int]");
    }

    #[test]
    fn join_inconsistent_records_rejected() {
        let err = infer_err("join([Name=[First=\"Joe\"], Age=21], [Name=\"Joe\"]);");
        assert!(err.contains("no least upper bound"), "{err}");
    }

    #[test]
    fn project_example() {
        let shown =
            infer_last("project([Name=\"Joe\", Age=21, Salary=22340], [Name:string, Salary:int]);");
        assert_eq!(shown, "[Name:string,Salary:int]");
    }

    #[test]
    fn project_nested() {
        let shown = infer_last(
            "project([Name=[First=\"Joe\", Last=\"Doe\"], Salary=12345], [Name:[Last:string]]);",
        );
        assert_eq!(shown, "[Name:[Last:string]]");
    }

    #[test]
    fn project_not_substructure_rejected() {
        let err = infer_err("project([Age=21], [Name:string]);");
        assert!(err.contains("no field `Name`"), "{err}");
    }

    #[test]
    fn set_literals_and_union() {
        assert_eq!(infer_last("{1,2,3};"), "{int}");
        assert_eq!(infer_last("union({1},{2});"), "{int}");
        assert!(infer_err("{1,\"two\"};").contains("mismatch"));
    }

    #[test]
    fn sets_of_functions_rejected() {
        let err = infer_err("{(fn(x) => x)};");
        assert!(err.contains("not a description type"), "{err}");
    }

    #[test]
    fn hom_types() {
        assert_eq!(infer_last("hom((fn(x) => x), +, 0, {1,2,3});"), "int");
        assert_eq!(
            infer_last("fun sum(S) = hom((fn(x) => x), +, 0, S);"),
            "{int} -> int"
        );
        assert_eq!(
            infer_last("fun map(f,S) = hom((fn(x) => {f(x)}), union, {}, S);"),
            "((\"a -> \"b) * {\"a}) -> {\"b}"
        );
    }

    #[test]
    fn select_with_multiple_generators() {
        let shown = infer_last(
            "fun pairs(R,S) = select [A=x.A, B=y.B] where x <- R, y <- S with x.A = y.B;",
        );
        assert_eq!(
            shown,
            "({[(\"a) A:\"b]} * {[(\"c) B:\"b]}) -> {[A:\"b,B:\"b]}"
        );
    }

    #[test]
    fn references_and_assignment() {
        assert_eq!(
            infer_last("val d = ref([Building=45]);"),
            "ref([Building:int])"
        );
        assert_eq!(
            infer_last("val d = ref([Building=45]); !d;"),
            "[Building:int]"
        );
        assert_eq!(
            infer_last("val d = ref([Building=45]); d := modify(!d, Building, 67);"),
            "unit"
        );
    }

    #[test]
    fn ref_equality_is_allowed() {
        assert_eq!(infer_last("ref(3) = ref(3);"), "bool");
    }

    #[test]
    fn variant_injection_open() {
        let shown = infer_last("(Consultant of [Telephone=2221234]);");
        assert_eq!(shown, "<('a) Consultant:[Telephone:int]>");
    }

    #[test]
    fn case_with_other_keeps_row_open() {
        let shown = infer_last("fun isVal(x) = (case x of Value of v => true, other => false);");
        assert_eq!(shown, "<('a) Value:'b> -> bool");
    }

    #[test]
    fn as_extraction() {
        let shown = infer_last("fun getval(x) = x as Value;");
        assert_eq!(shown, "<('a) Value:'b> -> 'b");
    }

    #[test]
    fn unionc_glb() {
        let shown = infer_last("unionc({[Name=\"a\", Advisor=1]}, {[Name=\"b\", Salary=2]});");
        assert_eq!(shown, "{[Name:string]}");
    }

    #[test]
    fn con_is_bool() {
        assert_eq!(infer_last("con([A=1],[B=2]);"), "bool");
    }

    #[test]
    fn recursive_fun_closure() {
        let shown = infer_last(
            "fun member(x,S) = hom((fn(y) => x = y), orelse, false, S);
             fun Closure(R) =
               let val r = select [A=x.A,B=y.B]
                           where x <- R, y <- R
                           with (x.B = y.A) andalso not(member([A=x.A,B=y.B],R))
               in if r = {} then R else Closure(union(R,r))
               end;",
        );
        // Note: the predicate `x.B = y.A` forces the A and B fields to
        // share a type, so the principal type identifies them. (The
        // paper's Figure 4 prints distinct letters "a, "b but the two
        // are necessarily equal under its own equality rule.)
        assert_eq!(shown, "{[A:\"a,B:\"a]} -> {[A:\"a,B:\"a]}");
    }

    #[test]
    fn occurs_check_reported() {
        let err = infer_err("fun selfapp(x) = x(x);");
        assert!(err.contains("occurs check"), "{err}");
    }

    #[test]
    fn unbound_variable_reported() {
        let err = infer_err("nosuch;");
        assert!(err.contains("unbound variable `nosuch`"), "{err}");
    }

    #[test]
    fn dynamic_roundtrip() {
        assert_eq!(infer_last("dynamic([Name=\"Joe\"]);"), "dynamic");
        assert_eq!(
            infer_last("dynamic(dynamic([Name=\"Joe\"]), [Name: string]);"),
            "[Name:string]"
        );
    }

    #[test]
    fn let_polymorphism() {
        assert_eq!(
            infer_last("let id = (fn(x) => x) in (id(1), id(\"a\")) end;"),
            "int * string"
        );
    }

    #[test]
    fn value_restriction_blocks_generalization() {
        // `ref` results must not generalize.
        let err = infer_err(
            "fun id(x) = x;
             val r = ref(id);
             (r := (fn(x) => x + 1), (!r)(\"uh oh\"));",
        );
        assert!(!err.is_empty());
    }

    #[test]
    fn forced_resolution_of_variant_join() {
        // The Figure 3 shape: joining a ground variantful relation with a
        // variant-kinded literal resolves to the ground type.
        let shown = infer_last(
            "val parts = {[Pname=\"bolt\", Pinfo=(BasePart of [Cost=5])],
                          [Pname=\"engine\", Pinfo=(CompositePart of [AssemCost=1000])]};
             join(parts, {[Pinfo=(BasePart of [])]});",
        );
        assert_eq!(
            shown,
            "{[Pinfo:<BasePart:[Cost:int],CompositePart:[AssemCost:int]>,Pname:string]}"
        );
    }

    #[test]
    fn fun_with_tuple_of_sets() {
        let shown = infer_last("fun intersect(S,T) = join(S,T);");
        assert!(shown.contains("where"), "{shown}");
    }

    #[test]
    fn comparisons_overload_on_int_real_string() {
        assert_eq!(infer_last("\"a\" > \"b\";"), "bool");
        assert_eq!(infer_last("1.5 < 2.0;"), "bool");
        assert_eq!(infer_last("1 < 2;"), "bool");
        // … but not on bools or records.
        assert!(infer_err("true < false;").contains("mismatch"));
        assert!(infer_err("[A=1] < [A=2];").contains("mismatch"));
    }

    #[test]
    fn arithmetic_overloads_with_int_default() {
        assert_eq!(infer_last("1.5 + 2.5;"), "real");
        assert_eq!(infer_last("1 + 2;"), "int");
        // Undetermined operands default to int.
        assert_eq!(infer_last("fun dbl(x) = x + x;"), "int -> int");
        assert!(infer_err("\"a\" + \"b\";").contains("mismatch"));
    }

    #[test]
    fn string_concat() {
        assert_eq!(infer_last("\"a\" ^ \"b\";"), "string");
    }

    #[test]
    fn empty_set_stays_polymorphic_symbolically() {
        assert_eq!(infer_last("{};"), "{\"a}");
    }

    #[test]
    fn tuples_infer_as_products() {
        assert_eq!(infer_last("(1, \"two\", true);"), "int * string * bool");
    }
}
