//! A line-oriented wire protocol over any `BufRead`/`Write` pair.
//!
//! One request per line, one response line per request (newlines in
//! values are escaped as `\n`), so the protocol is testable on byte
//! buffers and usable over TCP (`machid`) or a pipe:
//!
//! ```text
//! OPEN                -> OK <sid>
//! EVAL <sid> <src>    -> VAL <outcomes; "; "-joined>  |  ERR <kind> <message>
//! CLOSE <sid>         -> OK closed <sid>              |  ERR <kind> <message>
//! SAVE <sid>          -> OK saved <sid> gen <g>       |  ERR <kind> <message>
//! RESTORE <sid>       -> OK restored <sid> <n>        |  ERR <kind> <message>
//! STATS               -> OK <stats line>
//! METRICS             -> OK <Prometheus text exposition, newline-escaped>
//! HEALTH              -> OK role <role> slots <n> [<sid>:<status>:gen=<g>:groups=<n>:lag=<l|->]…
//! SIDS                -> OK sids <n> [<sid>]…
//! SHIP <sid> <gen> <off> <crc> -> OK ship groups <gen> <from> <n> <hex|->
//!                              |  OK ship snapshot <gen> <snaphex|-> <loghex>
//! ACK <sid> <gen> <groups>     -> OK ack <sid>
//! PROMOTE             -> OK promoted <role> fenced <n>
//! QUIT                -> OK bye   (ends the connection)
//! ```
//!
//! `SAVE` forces a checkpoint of a durable session; `RESTORE` discards
//! its in-memory state and recovers from disk (including a poisoned
//! session). Both require the server to run with a durable root.
//!
//! `SHIP`/`ACK`/`SIDS` are the replication channel a follower's
//! replicator drives against the primary (chunk payloads hex-encoded —
//! WAL frames are binary and the protocol is line-oriented); `PROMOTE`
//! fences a follower up to primary; `HEALTH` is for load balancers.
//!
//! `ERR` responses carry the stable [`ServerError::kind`] tag first, so
//! clients can branch on `deadline` / `busy` / `session-panicked`
//! without parsing prose.
//!
//! Request lines are capped (`MACHID_MAX_LINE_BYTES`, default 1 MiB):
//! an oversized or newline-free stream gets a typed
//! `ERR protocol line-too-long …`, the offending line is discarded,
//! and the connection stays usable — one client cannot grow a buffer
//! without bound.

use crate::error::ServerError;
use crate::server::Server;
use machiavelli_wal::{LogCursor, Ship};
use std::io::{self, BufRead, Write};
use std::sync::OnceLock;

/// Default request-line cap (bytes, newline included).
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

fn env_max_line_bytes() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("MACHID_MAX_LINE_BYTES")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 64)
            .unwrap_or(DEFAULT_MAX_LINE_BYTES)
    })
}

/// Escape a response payload onto a single line.
fn one_line(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Undo [`one_line`]: `\n` back to a newline, `\\` back to a
/// backslash. Clients apply this to `VAL`/`OK` payloads.
pub fn unescape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Lowercase hex encoding for binary replication payloads.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write as _;
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Decode [`to_hex`] output. `None` on odd length or a non-hex digit.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

fn hex_or_dash(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        "-".to_string()
    } else {
        to_hex(bytes)
    }
}

fn err_line(e: &ServerError) -> String {
    format!("ERR {} {}", e.kind(), one_line(&e.to_string()))
}

/// Discard input up to and including the next newline (or EOF) — the
/// tail of an oversized request line.
fn drain_line<R: BufRead>(reader: &mut R) -> io::Result<()> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                reader.consume(i + 1);
                return Ok(());
            }
            None => {
                let n = available.len();
                reader.consume(n);
            }
        }
    }
}

/// Serve one client connection until `QUIT` or EOF, with the line cap
/// from `MACHID_MAX_LINE_BYTES` (default 1 MiB). Every request gets
/// exactly one response line; protocol mistakes get `ERR protocol …`
/// and the connection stays usable.
pub fn serve_connection<R: BufRead, W: Write>(
    server: &Server,
    reader: R,
    out: W,
) -> io::Result<()> {
    serve_connection_with_limit(server, reader, out, env_max_line_bytes())
}

/// [`serve_connection`] with an explicit request-line cap in bytes.
pub fn serve_connection_with_limit<R: BufRead, W: Write>(
    server: &Server,
    mut reader: R,
    mut out: W,
    max_line: usize,
) -> io::Result<()> {
    let max_line = max_line.max(8);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        // Bounded read: at most cap+1 bytes land in memory however
        // newline-free the stream is. Reading exactly cap+1 without a
        // trailing newline is the oversize signature.
        let n = io::Read::take(&mut reader, max_line as u64 + 1).read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(());
        }
        if buf.len() > max_line && buf.last() != Some(&b'\n') {
            drain_line(&mut reader)?;
            writeln!(out, "{}", err_line(&ServerError::LineTooLong(max_line)))?;
            out.flush()?;
            continue;
        }
        let Ok(line) = std::str::from_utf8(&buf) else {
            writeln!(out, "ERR protocol request is not valid utf-8")?;
            out.flush()?;
            continue;
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let response = match cmd {
            "OPEN" => match server.open_session() {
                Ok(sid) => format!("OK {sid}"),
                Err(e) => err_line(&e),
            },
            "EVAL" => match rest.split_once(char::is_whitespace) {
                Some((sid, src)) => match sid.parse::<u64>() {
                    Ok(sid) => match server.eval(sid, src) {
                        Ok(outcomes) => format!("VAL {}", one_line(&outcomes.join("; "))),
                        Err(e) => err_line(&e),
                    },
                    Err(_) => format!("ERR protocol bad session id: {}", one_line(sid)),
                },
                None => "ERR protocol usage: EVAL <sid> <src>".to_string(),
            },
            "CLOSE" => match rest.parse::<u64>() {
                Ok(sid) => match server.close_session(sid) {
                    Ok(()) => format!("OK closed {sid}"),
                    Err(e) => err_line(&e),
                },
                Err(_) => format!("ERR protocol bad session id: {}", one_line(rest)),
            },
            "SAVE" => match rest.parse::<u64>() {
                Ok(sid) => match server.save_session(sid) {
                    Ok(gen) => format!("OK saved {sid} gen {gen}"),
                    Err(e) => err_line(&e),
                },
                Err(_) => format!("ERR protocol bad session id: {}", one_line(rest)),
            },
            "RESTORE" => match rest.parse::<u64>() {
                Ok(sid) => match server.restore_session(sid) {
                    Ok(n) => format!("OK restored {sid} {n}"),
                    Err(e) => err_line(&e),
                },
                Err(_) => format!("ERR protocol bad session id: {}", one_line(rest)),
            },
            "STATS" => format!("OK {}", server.stats()),
            "METRICS" => format!("OK {}", one_line(&server.metrics_text())),
            "HEALTH" => {
                let report = server.health();
                let mut line = format!("OK role {} slots {}", report.role, report.slots.len());
                for slot in &report.slots {
                    let status = if slot.poisoned {
                        "poisoned"
                    } else if slot.doomed_log {
                        "doomed-log"
                    } else {
                        "ok"
                    };
                    let opt = |v: Option<u64>| v.map_or("-".to_string(), |v| v.to_string());
                    line.push_str(&format!(
                        " {}:{}:gen={}:groups={}:lag={}",
                        slot.sid,
                        status,
                        opt(slot.gen),
                        opt(slot.groups),
                        opt(slot.lag),
                    ));
                }
                line
            }
            "SIDS" => {
                let sids = server.session_ids();
                let mut line = format!("OK sids {}", sids.len());
                for sid in sids {
                    line.push_str(&format!(" {sid}"));
                }
                line
            }
            "SHIP" => {
                let mut parts = rest.split_whitespace();
                let parsed = (|| {
                    let sid = parts.next()?.parse::<u64>().ok()?;
                    let gen = parts.next()?.parse::<u64>().ok()?;
                    let offset = parts.next()?.parse::<u64>().ok()?;
                    let crc = parts.next()?.parse::<u32>().ok()?;
                    Some((sid, LogCursor { gen, offset, crc }))
                })();
                match parsed {
                    Some((sid, cursor)) => match server.ship(sid, cursor) {
                        Ok(Ship::Groups {
                            gen,
                            from,
                            groups,
                            bytes,
                        }) => format!(
                            "OK ship groups {gen} {from} {groups} {}",
                            hex_or_dash(&bytes)
                        ),
                        Ok(Ship::Snapshot(t)) => format!(
                            "OK ship snapshot {} {} {}",
                            t.gen,
                            t.snap.as_deref().map_or("-".to_string(), to_hex),
                            hex_or_dash(&t.log),
                        ),
                        Err(e) => err_line(&e),
                    },
                    None => "ERR protocol usage: SHIP <sid> <gen> <offset> <crc>".to_string(),
                }
            }
            "ACK" => {
                let mut parts = rest.split_whitespace();
                let parsed = (|| {
                    let sid = parts.next()?.parse::<u64>().ok()?;
                    let gen = parts.next()?.parse::<u64>().ok()?;
                    let groups = parts.next()?.parse::<u64>().ok()?;
                    Some((sid, gen, groups))
                })();
                match parsed {
                    Some((sid, gen, groups)) => {
                        // A "lost" ack models the network eating it: the
                        // primary still answers, it just never saw it.
                        let _ = server.record_ack(sid, gen, groups);
                        format!("OK ack {sid}")
                    }
                    None => "ERR protocol usage: ACK <sid> <gen> <groups>".to_string(),
                }
            }
            "PROMOTE" => match server.promote() {
                Ok(fenced) => format!("OK promoted {} fenced {fenced}", server.role()),
                Err(e) => err_line(&e),
            },
            "QUIT" => {
                writeln!(out, "OK bye")?;
                out.flush()?;
                return Ok(());
            }
            other => format!("ERR protocol unknown command: {}", one_line(other)),
        };
        writeln!(out, "{response}")?;
        out.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, ServerRole};
    use machiavelli_value::faults::FaultConfig;

    fn quiet_server() -> Server {
        Server::start(ServerConfig {
            workers: 1,
            queue_cap: 8,
            default_deadline: None,
            row_budget: None,
            shared_store: false,
            faults: Some(FaultConfig::off()),
            durable_root: None,
            role: ServerRole::Primary,
        })
    }

    fn drive(server: &Server, script: &str) -> Vec<String> {
        let mut out = Vec::new();
        serve_connection(server, script.as_bytes(), &mut out).expect("serve");
        String::from_utf8(out)
            .expect("utf8")
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn roundtrip_over_byte_buffers() {
        let server = quiet_server();
        let lines = drive(&server, "OPEN\nEVAL 1 1 + 2;\nCLOSE 1\nQUIT\n");
        assert_eq!(lines[0], "OK 1");
        assert_eq!(lines[1], "VAL val it = 3 : int");
        assert_eq!(lines[2], "OK closed 1");
        assert_eq!(lines[3], "OK bye");
    }

    #[test]
    fn errors_carry_machine_readable_kinds() {
        let server = quiet_server();
        let lines = drive(
            &server,
            "EVAL 99 1;\nOPEN\nEVAL 1 nonsense ;;;\nCLOSE 99\nNOPE\nEVAL x 1;\n",
        );
        assert!(lines[0].starts_with("ERR no-such-session "), "{}", lines[0]);
        assert_eq!(lines[1], "OK 1");
        assert!(lines[2].starts_with("ERR query "), "{}", lines[2]);
        assert!(lines[3].starts_with("ERR no-such-session "), "{}", lines[3]);
        assert!(
            lines[4].starts_with("ERR protocol unknown command"),
            "{}",
            lines[4]
        );
        assert!(
            lines[5].starts_with("ERR protocol bad session id"),
            "{}",
            lines[5]
        );
    }

    #[test]
    fn stats_and_blank_lines() {
        let server = quiet_server();
        let lines = drive(&server, "\n  \nSTATS\nQUIT\n");
        assert!(
            lines[0].starts_with("OK workers 1(-0) sessions "),
            "{}",
            lines[0]
        );
        assert_eq!(lines[1], "OK bye");
    }

    #[test]
    fn multiline_values_are_escaped() {
        assert_eq!(one_line("a\nb\\c"), "a\\nb\\\\c");
    }

    #[test]
    fn escape_round_trips() {
        for s in ["a\nb\\c", "\\n", "\n\n\\", "plain", "", "tail\\"] {
            assert_eq!(unescape_line(&one_line(s)), s, "{s:?}");
        }
        // Unknown escapes and a trailing backslash pass through.
        assert_eq!(unescape_line("a\\qb\\"), "a\\qb\\");
    }

    #[test]
    fn hex_round_trips() {
        for bytes in [&b""[..], &b"\x00\xff\x10"[..], &b"machiavelli"[..]] {
            assert_eq!(from_hex(&to_hex(bytes)).as_deref(), Some(bytes));
        }
        assert_eq!(from_hex("abc"), None, "odd length");
        assert_eq!(from_hex("zz"), None, "non-hex digit");
    }

    #[test]
    fn oversized_line_gets_typed_error_and_connection_survives() {
        let server = quiet_server();
        let long = "X".repeat(4096);
        let script = format!("OPEN\n{long}\nEVAL 1 1 + 2;\nQUIT\n");
        let mut out = Vec::new();
        serve_connection_with_limit(&server, script.as_bytes(), &mut out, 128).expect("serve");
        let lines: Vec<String> = String::from_utf8(out)
            .expect("utf8")
            .lines()
            .map(str::to_string)
            .collect();
        assert_eq!(lines[0], "OK 1");
        assert!(
            lines[1].starts_with("ERR protocol line-too-long"),
            "{}",
            lines[1]
        );
        assert_eq!(lines[2], "VAL val it = 3 : int", "connection still usable");
        assert_eq!(lines[3], "OK bye");
    }

    #[test]
    fn newline_free_stream_is_bounded_and_eof_safe() {
        // No newline at all: the server must not buffer the stream
        // whole, and EOF after the oversized junk must end cleanly.
        let server = quiet_server();
        let mut out = Vec::new();
        let junk = "Y".repeat(1000);
        serve_connection_with_limit(&server, junk.as_bytes(), &mut out, 64).expect("serve");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("ERR protocol line-too-long"), "{text}");
        assert_eq!(text.lines().count(), 1, "one error for the whole blob");
    }

    #[test]
    fn exact_cap_line_is_accepted() {
        let server = quiet_server();
        // "EVAL 1 1 + 2;" padded with trailing spaces to exactly the
        // cap (newline included) still parses.
        let cap = 64;
        let body = "EVAL 1 1 + 2;";
        let line = format!("{body}{}", " ".repeat(cap - 1 - body.len()));
        assert_eq!(line.len() + 1, cap, "line plus newline fills the cap");
        let script = format!("OPEN\n{line}\nQUIT\n");
        let mut out = Vec::new();
        serve_connection_with_limit(&server, script.as_bytes(), &mut out, cap).expect("serve");
        let lines: Vec<String> = String::from_utf8(out)
            .expect("utf8")
            .lines()
            .map(str::to_string)
            .collect();
        assert_eq!(lines[1], "VAL val it = 3 : int");
    }

    #[test]
    fn non_utf8_request_gets_typed_error() {
        let server = quiet_server();
        let mut script: Vec<u8> = b"OPEN\n".to_vec();
        script.extend_from_slice(&[0xff, 0xfe, b'\n']);
        script.extend_from_slice(b"QUIT\n");
        let mut out = Vec::new();
        serve_connection(&server, &script[..], &mut out).expect("serve");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "OK 1");
        assert!(lines[1].starts_with("ERR protocol"), "{}", lines[1]);
        assert_eq!(lines[2], "OK bye");
    }

    #[test]
    fn health_and_sids_respond_in_memory() {
        let server = quiet_server();
        let lines = drive(&server, "OPEN\nHEALTH\nSIDS\nQUIT\n");
        assert_eq!(lines[0], "OK 1");
        assert!(
            lines[1].starts_with("OK role primary slots 1 1:ok:"),
            "{}",
            lines[1]
        );
        assert_eq!(lines[2], "OK sids 1 1");
    }
}
