//! A3 bench — index store ablation: repeated-plan workloads through
//! three execution modes:
//!
//! * `store` — planner pipeline with the index store (PR 3): the first
//!   evaluation builds each cacheable hash index, every later one
//!   probes it;
//! * `store_par4` — the composed PR 5 lane: the same warm store, with
//!   the cached plain index probed by four workers (probe cutoff
//!   lowered so the paper-scale relations engage);
//! * `rebuild` — planner pipeline with the store disabled (the PR 2
//!   always-rebuild path): every evaluation re-hashes its build sides;
//! * `interp` — the nested-loop `select_loop` reference.
//!
//! Workloads:
//!
//! * `fig5_cost` — `expensive_parts(parts, 0)`, the paper's recursive
//!   `cost` sweep: *one single evaluation* re-joins `parts` inside
//!   every recursive call, so even the cold run amortizes the build
//!   n-fold — the store's headline case (interp kept to the smaller
//!   sizes; it is O(n²) per cost call);
//! * `fig9_repeat` — the two-generator equi-join re-evaluated across
//!   bench iterations: the session cache turns every build after the
//!   first into a probe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machiavelli::eval::set_planner_enabled;
use machiavelli::store::set_store_enabled;
use machiavelli::Session;
use machiavelli_bench::{scaled_parts_session, FIG5_SOURCE};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

/// Bench one (planner, store) mode; the store is reset before the
/// mode's first iteration only, so `store` mode measures warm reuse.
fn run_mode(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    n: usize,
    session: &mut Session,
    query: &str,
    planner: bool,
    store: bool,
) {
    session.store_reset();
    group.bench_with_input(BenchmarkId::new(name.to_string(), n), &n, |b, _| {
        b.iter(|| {
            let prev_p = set_planner_enabled(planner);
            let prev_s = set_store_enabled(store);
            let out = session.eval_one(query).unwrap().value;
            set_store_enabled(prev_s);
            set_planner_enabled(prev_p);
            out
        })
    });
}

fn bench_index_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_reuse");
    group.sample_size(10);

    let fig9 = "select (p.Pname, sb.P#) where p <- parts, sb <- supplied_by \
                with p.P# = sb.P#;";
    for n in [50usize, 200, 800] {
        let (mut s, _db) = scaled_parts_session(n, n / 10 + 2, 11);
        s.run(FIG5_SOURCE).unwrap();
        run_mode(&mut group, "store/fig9_repeat", n, &mut s, fig9, true, true);
        // The combined cached-parallel-probe case: same warm store,
        // four probe workers over the shared plain index.
        {
            use machiavelli::value::tuning;
            s.store_reset();
            let prev_t = tuning::set_par_threads(Some(4));
            let prev_probe = tuning::set_par_probe_min_rows(Some(1));
            group.bench_with_input(BenchmarkId::new("store_par4/fig9_repeat", n), &n, |b, _| {
                b.iter(|| {
                    let prev_p = set_planner_enabled(true);
                    let prev_s = set_store_enabled(true);
                    let out = s.eval_one(fig9).unwrap().value;
                    set_store_enabled(prev_s);
                    set_planner_enabled(prev_p);
                    out
                })
            });
            tuning::set_par_probe_min_rows(prev_probe);
            tuning::set_par_threads(prev_t);
        }
        run_mode(
            &mut group,
            "rebuild/fig9_repeat",
            n,
            &mut s,
            fig9,
            true,
            false,
        );

        let fig5 = "expensive_parts(parts, 0);";
        run_mode(&mut group, "store/fig5_cost", n, &mut s, fig5, true, true);
        run_mode(
            &mut group,
            "rebuild/fig5_cost",
            n,
            &mut s,
            fig5,
            true,
            false,
        );
        if n <= 200 {
            run_mode(
                &mut group,
                "interp/fig5_cost",
                n,
                &mut s,
                fig5,
                false,
                false,
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_index_reuse
}
criterion_main!(benches);
