//! Canonical mathematical sets.
//!
//! The paper is explicit that *"Machiavelli's sets are sets in the
//! mathematical sense of the term"* — not bags or lists. [`MSet`] keeps
//! its elements sorted (by the total value order) and deduplicated, so
//! structural equality of the representation *is* set equality.
//!
//! # Complexity contract
//!
//! | operation | cost |
//! |---|---|
//! | [`MSet::from_iter`] (bulk construction) | O(n log n) |
//! | [`MSet::contains`] | O(log n) |
//! | [`MSet::insert`] (single element) | O(n) — shifts the tail |
//! | [`MSet::extend`] (bulk merge) | O(m log m + n + m) |
//! | [`MSet::union`] / [`intersect`](MSet::intersect) / [`difference`](MSet::difference) | O(n + m) merge |
//! | `clone` | O(1) — storage is shared via `Rc` |
//!
//! Prefer [`MSet::from_iter`] or [`MSet::extend`] over per-element
//! [`MSet::insert`] in loops: k inserts cost O(k·n) element moves, the
//! bulk paths cost one sort plus one merge. Storage sits behind an `Rc`
//! (copy-on-write on mutation), so cloning a set — environment lookup,
//! binding a relation — never copies elements.

use crate::value::{value_cmp, Value};
use std::cmp::Ordering;
use std::rc::Rc;

/// A canonical (sorted, duplicate-free) set of description values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MSet {
    items: Rc<Vec<Value>>,
}

impl MSet {
    /// The empty set.
    pub fn new() -> MSet {
        MSet::default()
    }

    /// Build from any iterator, normalizing. (Shadows the trait method
    /// deliberately: `MSet::from_iter` is the primary constructor.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(items: impl IntoIterator<Item = Value>) -> MSet {
        let mut items: Vec<Value> = items.into_iter().collect();
        items.sort_by(value_cmp);
        items.dedup_by(|a, b| value_cmp(a, b) == Ordering::Equal);
        crate::governor::charge_current_rows(items.len());
        MSet {
            items: Rc::new(items),
        }
    }

    /// Wrap an already-sorted, already-deduplicated vector (checked in
    /// debug builds).
    pub fn from_sorted_unchecked(items: Vec<Value>) -> MSet {
        debug_assert!(items
            .windows(2)
            .all(|w| value_cmp(&w[0], &w[1]) == Ordering::Less));
        crate::governor::charge_current_rows(items.len());
        MSet {
            items: Rc::new(items),
        }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.items.iter()
    }

    /// The underlying sorted slice.
    pub fn as_slice(&self) -> &[Value] {
        &self.items
    }

    /// The identity of the shared backing storage: clones of a set share
    /// it, and copy-on-write mutation (or any rebuilding operation)
    /// replaces it — so equal ids mean *the same immutable elements*, as
    /// long as a clone of the set is being held (a live extra `Rc`
    /// forces every mutation down the copy-on-write path). The index
    /// store keys cached indexes on this id and keeps such a clone
    /// alive, which both pins the elements and prevents the allocator
    /// from recycling the address for a different set.
    pub fn storage_id(&self) -> usize {
        Rc::as_ptr(&self.items) as usize
    }

    /// Consume into the sorted vector (copies only when shared).
    pub fn into_vec(self) -> Vec<Value> {
        Rc::try_unwrap(self.items).unwrap_or_else(|rc| (*rc).clone())
    }

    /// O(log n) membership.
    pub fn contains(&self, v: &Value) -> bool {
        self.items.binary_search_by(|x| value_cmp(x, v)).is_ok()
    }

    /// Insert one element (O(n) shift; prefer [`MSet::extend`] or
    /// [`MSet::from_iter`] for bulk insertion).
    pub fn insert(&mut self, v: Value) -> bool {
        match self.items.binary_search_by(|x| value_cmp(x, &v)) {
            Ok(_) => false,
            Err(pos) => {
                Rc::make_mut(&mut self.items).insert(pos, v);
                true
            }
        }
    }

    /// Bulk merge: add every element of `items`, re-canonicalizing once.
    /// O(m log m) to sort the additions plus one O(n + m) merge —
    /// replaces k O(n)-shift `insert` calls in evaluator loops.
    pub fn extend(&mut self, items: impl IntoIterator<Item = Value>) {
        let mut incoming: Vec<Value> = items.into_iter().collect();
        if incoming.is_empty() {
            return;
        }
        incoming.sort_by(value_cmp);
        incoming.dedup_by(|a, b| value_cmp(a, b) == Ordering::Equal);
        if self.is_empty() {
            crate::governor::charge_current_rows(incoming.len());
            self.items = Rc::new(incoming);
            return;
        }
        *self = self.union(&MSet {
            items: Rc::new(incoming),
        });
    }

    /// Merge-based union, O(n + m).
    pub fn union(&self, other: &MSet) -> MSet {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match value_cmp(&self.items[i], &other.items[j]) {
                Ordering::Less => {
                    out.push(self.items[i].clone());
                    i += 1;
                }
                Ordering::Greater => {
                    out.push(other.items[j].clone());
                    j += 1;
                }
                Ordering::Equal => {
                    out.push(self.items[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.items[i..]);
        out.extend_from_slice(&other.items[j..]);
        MSet::from_sorted_unchecked(out)
    }

    /// Merge-based intersection, O(n + m).
    pub fn intersect(&self, other: &MSet) -> MSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match value_cmp(&self.items[i], &other.items[j]) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    out.push(self.items[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        MSet::from_sorted_unchecked(out)
    }

    /// Merge-based difference (`self \ other`), O(n + m).
    pub fn difference(&self, other: &MSet) -> MSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() {
            if j >= other.items.len() {
                out.extend_from_slice(&self.items[i..]);
                break;
            }
            match value_cmp(&self.items[i], &other.items[j]) {
                Ordering::Less => {
                    out.push(self.items[i].clone());
                    i += 1;
                }
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        MSet::from_sorted_unchecked(out)
    }

    /// True when `self ⊆ other`.
    pub fn is_subset(&self, other: &MSet) -> bool {
        self.iter().all(|v| other.contains(v))
    }
}

impl IntoIterator for MSet {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.into_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a MSet {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl FromIterator<Value> for MSet {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        MSet::from_iter(iter)
    }
}

impl Extend<Value> for MSet {
    fn extend<T: IntoIterator<Item = Value>>(&mut self, iter: T) {
        MSet::extend(self, iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(xs: &[i64]) -> MSet {
        MSet::from_iter(xs.iter().map(|&x| Value::Int(x)))
    }

    #[test]
    fn normalization_dedups_and_sorts() {
        let s = ints(&[3, 1, 2, 3, 1]);
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.iter().cloned().collect::<Vec<_>>(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn set_equality_is_structural() {
        assert_eq!(ints(&[2, 1]), ints(&[1, 2, 2]));
        assert_ne!(ints(&[1]), ints(&[1, 2]));
    }

    #[test]
    fn union_intersect_difference() {
        let a = ints(&[1, 2, 3]);
        let b = ints(&[3, 4]);
        assert_eq!(a.union(&b), ints(&[1, 2, 3, 4]));
        assert_eq!(a.intersect(&b), ints(&[3]));
        assert_eq!(a.difference(&b), ints(&[1, 2]));
        assert_eq!(b.difference(&a), ints(&[4]));
    }

    #[test]
    fn union_with_empty() {
        let a = ints(&[1, 2]);
        assert_eq!(a.union(&MSet::new()), a);
        assert_eq!(MSet::new().union(&a), a);
    }

    #[test]
    fn membership_and_insert() {
        let mut s = ints(&[1, 3]);
        assert!(s.contains(&Value::Int(1)));
        assert!(!s.contains(&Value::Int(2)));
        assert!(s.insert(Value::Int(2)));
        assert!(!s.insert(Value::Int(2)));
        assert_eq!(s, ints(&[1, 2, 3]));
    }

    #[test]
    fn extend_matches_repeated_insert() {
        let mut bulk = ints(&[5, 1]);
        bulk.extend([3, 1, 9, 3].map(Value::Int));
        let mut one_by_one = ints(&[5, 1]);
        for x in [3, 1, 9, 3] {
            one_by_one.insert(Value::Int(x));
        }
        assert_eq!(bulk, one_by_one);
        assert_eq!(bulk, ints(&[1, 3, 5, 9]));
    }

    #[test]
    fn extend_into_empty_and_with_empty() {
        let mut s = MSet::new();
        s.extend([Value::Int(2), Value::Int(1)]);
        assert_eq!(s, ints(&[1, 2]));
        s.extend(std::iter::empty());
        assert_eq!(s, ints(&[1, 2]));
    }

    #[test]
    fn clone_shares_until_mutation() {
        let a = ints(&[1, 2, 3]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
        let mut c = b.clone();
        c.insert(Value::Int(9));
        // Copy-on-write: the original is untouched.
        assert_eq!(a.len(), 3);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn storage_id_tracks_sharing_and_rebuilds() {
        let a = ints(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.storage_id(), b.storage_id(), "clones share storage");
        let mut c = b.clone();
        c.insert(Value::Int(9));
        // `a`/`b` still hold the old storage, so the insert had to
        // copy-on-write into a fresh allocation.
        assert_ne!(c.storage_id(), a.storage_id());
        assert_eq!(a.storage_id(), b.storage_id());
    }

    #[test]
    fn subset() {
        assert!(ints(&[1, 2]).is_subset(&ints(&[1, 2, 3])));
        assert!(!ints(&[1, 4]).is_subset(&ints(&[1, 2, 3])));
        assert!(MSet::new().is_subset(&ints(&[1])));
    }

    #[test]
    fn sets_of_records_dedup() {
        let r = |n: i64| Value::record([("A".into(), Value::Int(n))]);
        let s = MSet::from_iter([r(1), r(2), r(1)]);
        assert_eq!(s.len(), 2);
    }
}
