//! End-to-end replication over real TCP: a primary and a follower
//! `Server`, each behind `serve_connection`, with a [`Replicator`]
//! streaming the WAL between them — read-only enforcement, HEALTH,
//! the METRICS lag gauge under a partition, and PROMOTE.

use machiavelli_repl::proto::LineClient;
use machiavelli_repl::{Replicator, ReplicatorConfig};
use machiavelli_server::wire::unescape_line;
use machiavelli_server::{serve_connection, Server, ServerConfig, ServerError, ServerRole};
use machiavelli_value::faults::FaultConfig;
use std::io::BufReader;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mach-repl-wire-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn server(root: &Path, role: ServerRole) -> Arc<Server> {
    Arc::new(Server::start(ServerConfig {
        workers: 2,
        queue_cap: 32,
        default_deadline: None,
        row_budget: None,
        shared_store: false,
        faults: Some(FaultConfig::off()),
        durable_root: Some(root.to_path_buf()),
        role,
    }))
}

/// Serve a `Server` on an ephemeral TCP port until `stop` is set.
fn spawn_wire(server: Arc<Server>) -> (String, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    listener.set_nonblocking(true).expect("nonblocking");
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    std::thread::spawn(move || {
        while !stop_accept.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).expect("blocking stream");
                    let server = Arc::clone(&server);
                    std::thread::spawn(move || {
                        let reader = BufReader::new(stream.try_clone().expect("clone"));
                        let _ = serve_connection(&server, reader, stream);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    });
    (addr, stop)
}

fn wait_until<T>(what: &str, timeout: Duration, mut probe: impl FnMut() -> Option<T>) -> T {
    let start = Instant::now();
    loop {
        if let Some(v) = probe() {
            return v;
        }
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn follower_replicates_over_tcp_until_promoted() {
    let root_p = tempdir("p");
    let root_f = tempdir("f");
    let primary = server(&root_p, ServerRole::Primary);
    let follower = server(&root_f, ServerRole::Follower);
    let (primary_addr, stop_primary_wire) = spawn_wire(Arc::clone(&primary));
    let (follower_addr, stop_follower_wire) = spawn_wire(Arc::clone(&follower));

    // Commit on the primary over its wire port — a ref, a write
    // through it, and a string whose rendering carries backslashes.
    let mut pc = LineClient::connect(&primary_addr, Duration::from_secs(5)).expect("connect");
    assert_eq!(pc.request("OPEN").unwrap(), "OK 1");
    assert!(pc
        .request("EVAL 1 val x = ref(5);")
        .unwrap()
        .starts_with("VAL "));
    assert!(pc.request("EVAL 1 x := 6;").unwrap().starts_with("VAL "));
    let resp = pc.request(r#"EVAL 1 val s = "a\nb\\c";"#).unwrap();
    assert!(resp.starts_with("VAL "), "{resp}");

    // Start the replicator and wait for the follower to converge.
    let mut rc = ReplicatorConfig::new(primary_addr.clone());
    rc.poll = Duration::from_millis(5);
    let replicator = Replicator::start(Arc::clone(&follower), rc);
    wait_until(
        "follower catch-up",
        Duration::from_secs(10),
        || match follower.eval(1, "!x;") {
            Ok(lines) if lines == ["val it = 6 : int"] => Some(()),
            _ => None,
        },
    );

    // The replicated string survives the wire escaping byte-for-byte.
    let mut fc = LineClient::connect(&follower_addr, Duration::from_secs(5)).expect("connect");
    let resp = fc.request("EVAL 1 s;").unwrap();
    let payload = resp
        .strip_prefix("VAL ")
        .unwrap_or_else(|| panic!("{resp}"));
    assert_eq!(unescape_line(payload), r#"val it = "a\nb\\c" : string"#);

    // Writes decline on the follower — typed, over the wire.
    let resp = fc.request("EVAL 1 x := 9;").unwrap();
    assert!(resp.starts_with("ERR read-only "), "{resp}");
    let resp = fc.request("EVAL 1 val y = 1;").unwrap();
    assert!(resp.starts_with("ERR read-only "), "{resp}");
    assert!(matches!(
        follower.eval(1, "val y = 1;"),
        Err(ServerError::ReadOnly)
    ));

    // HEALTH reflects the roles.
    assert!(fc
        .request("HEALTH")
        .unwrap()
        .starts_with("OK role follower slots 1 1:ok:"));
    assert!(pc
        .request("HEALTH")
        .unwrap()
        .starts_with("OK role primary slots 1 1:ok:"));

    // Acks drain the primary's lag gauge to zero...
    wait_until("lag to drain", Duration::from_secs(10), || {
        let report = primary.health();
        (report.slots[0].lag == Some(0)).then_some(())
    });

    // ...and a partition (replicator stopped) makes it climb again,
    // visibly in METRICS.
    let status = replicator.stop();
    assert!(status.rounds > 0, "{status:?}");
    assert!(
        status.last_error.is_none() || status.chunks_applied > 0,
        "{status:?}"
    );
    assert!(pc.request("EVAL 1 x := 7;").unwrap().starts_with("VAL "));
    assert!(pc
        .request("EVAL 1 val z = ref(8);")
        .unwrap()
        .starts_with("VAL "));
    let metrics = unescape_line(
        pc.request("METRICS")
            .unwrap()
            .strip_prefix("OK ")
            .expect("OK metrics")
            .trim_start(),
    );
    let lag_line = metrics
        .lines()
        .find(|l| l.starts_with("machiavelli_repl_lag_groups{sid=\"1\"}"))
        .unwrap_or_else(|| panic!("no lag gauge in:\n{metrics}"));
    let lag: u64 = lag_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(
        lag >= 2,
        "partition must show as non-trivial lag, got {lag_line}"
    );
    assert!(
        metrics.lines().any(|l| l == "machiavelli_repl_role 0"),
        "primary exposes role gauge 0:\n{metrics}"
    );

    // Failover: promote the follower over its wire port; writes flow.
    let resp = fc.request("PROMOTE").unwrap();
    assert!(resp.starts_with("OK promoted primary fenced "), "{resp}");
    assert_eq!(follower.role(), ServerRole::Primary);
    assert!(fc.request("EVAL 1 x := 40;").unwrap().starts_with("VAL "));
    assert_eq!(fc.request("EVAL 1 !x;").unwrap(), "VAL val it = 40 : int");

    stop_primary_wire.store(true, Ordering::SeqCst);
    stop_follower_wire.store(true, Ordering::SeqCst);
    let _ = std::fs::remove_dir_all(&root_p);
    let _ = std::fs::remove_dir_all(&root_f);
}

#[test]
fn replicator_retries_with_backoff_until_the_primary_appears() {
    let root_p = tempdir("late-p");
    let root_f = tempdir("late-f");
    // Reserve an address, but don't serve it yet.
    let parked = TcpListener::bind("127.0.0.1:0").expect("bind");
    let primary_addr = parked.local_addr().expect("addr").to_string();
    drop(parked);

    let follower = server(&root_f, ServerRole::Follower);
    let mut rc = ReplicatorConfig::new(primary_addr.clone());
    rc.poll = Duration::from_millis(5);
    rc.backoff_cap = Duration::from_millis(50);
    let replicator = Replicator::start(Arc::clone(&follower), rc);

    // Let it fail for a while — reconnect attempts must accumulate.
    wait_until("reconnect attempts", Duration::from_secs(10), || {
        (replicator.status().reconnects >= 3).then_some(())
    });

    // The primary comes up on that address; replication starts.
    let primary = server(&root_p, ServerRole::Primary);
    let listener = TcpListener::bind(&primary_addr).expect("rebind");
    listener.set_nonblocking(true).expect("nonblocking");
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        let primary = Arc::clone(&primary);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let server = Arc::clone(&primary);
                        std::thread::spawn(move || {
                            let reader = BufReader::new(stream.try_clone().expect("clone"));
                            let _ = serve_connection(&server, reader, stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
    }
    primary.open_session().expect("open");
    primary.eval(1, "val survived = 21;").expect("eval");
    wait_until(
        "late catch-up",
        Duration::from_secs(10),
        || match follower.eval(1, "survived * 2;") {
            Ok(lines) if lines == ["val it = 42 : int"] => Some(()),
            _ => None,
        },
    );
    replicator.stop();
    stop.store(true, Ordering::SeqCst);
    let _ = std::fs::remove_dir_all(&root_p);
    let _ = std::fs::remove_dir_all(&root_f);
}
