//! Persistence (§6: "the most important \[way\] in which Machiavelli needs
//! to be augmented … is the implementation of persistence").
//!
//! Description values serialize to a compact, self-contained text format:
//!
//! * reference cells are hoisted into a table keyed by local ids, so
//!   **sharing and cycles survive** a save/load round trip (two records
//!   sharing a department object still share it after loading);
//! * identities are *fresh* on load — object identity is per session, as
//!   the paper defines it, so loaded objects equal each other exactly
//!   according to the saved sharing structure;
//! * function values do not persist (they are not description values).
//!
//! [`Session::save_bindings`](crate::Session::save_bindings) /
//! [`Session::load_bindings`](crate::Session::load_bindings) persist
//! whole top-level bindings together with their (printed) types.
//!
//! Grammar of the value encoding (`<n>` are decimal lengths/counts/ids):
//!
//! ```text
//! v ::= u | T | F | i<n>: | f<bits>: | s<n>:<bytes>
//!     | R<n>{ l v … }   record with n fields (labels length-prefixed)
//!     | V l v           variant
//!     | S<n>[ v … ]     set
//!     | r<id>           reference (table index)
//!     | d<id> v         dynamic (identity table index, payload inline)
//! ```

use machiavelli_value::{DynValue, Fields, MSet, RefValue, Symbol, Value};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Write as _};
use std::path::Path;

/// Errors from encoding/decoding persisted values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Function values (closures, operators, builtins) cannot persist.
    NotADescription,
    /// The input is malformed at the given byte offset.
    Malformed {
        offset: usize,
        expected: &'static str,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::NotADescription => {
                write!(
                    f,
                    "function values are not description values and cannot persist"
                )
            }
            PersistError::Malformed { offset, expected } => {
                write!(
                    f,
                    "malformed persisted value at byte {offset}: expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Encode a description value (with its reachable reference graph).
pub fn encode_value(v: &Value) -> Result<String, PersistError> {
    let mut enc = Encoder::default();
    let body = enc.encode(v)?;
    // Emit the ref table first: `refs<n>{ <id>=<value> … }`. Cells may
    // reference each other (and themselves), which is fine because ids
    // are assigned before contents are encoded.
    let mut out = String::new();
    let _ = write!(out, "refs{}{{", enc.table.len());
    // Table entries in id order for determinism.
    let mut entries: Vec<(u32, String)> = enc.table.into_values().collect();
    entries.sort_by_key(|(id, _)| *id);
    for (id, contents) in entries {
        let _ = write!(out, "{id}={contents};");
    }
    out.push('}');
    out.push_str(&body);
    Ok(out)
}

/// Decode a value previously produced by [`encode_value`]. All reference
/// and dynamic identities are freshly allocated (per-session identity).
pub fn decode_value(src: &str) -> Result<Value, PersistError> {
    let empty = HashMap::new();
    let mut refs: HashMap<u64, RefValue> = HashMap::new();
    // Pass 1: scan the table's extents and allocate all cells (so cyclic
    // references resolve). The scan itself needs no cells.
    let mut dec = Decoder {
        src: src.as_bytes(),
        pos: 0,
        refs: &empty,
    };
    dec.expect("refs")?;
    let n = dec.count()?;
    dec.expect("{")?;
    let mut bodies: Vec<(u64, usize)> = Vec::with_capacity(clamped(n));
    for _ in 0..n {
        let id = dec.unsigned()?;
        dec.expect("=")?;
        let start = dec.pos;
        dec.skip_value()?;
        dec.expect(";")?;
        if refs.insert(id, RefValue::new(Value::Unit)).is_some() {
            return Err(PersistError::Malformed {
                offset: start,
                expected: "a distinct ref id",
            });
        }
        bodies.push((id, start));
    }
    dec.expect("}")?;
    let root_start = dec.pos;
    // Pass 2: decode each cell's contents with the full table in scope.
    for (id, start) in &bodies {
        let mut cell_dec = Decoder {
            src: dec.src,
            pos: *start,
            refs: &refs,
        };
        let contents = cell_dec.value()?;
        let Some(cell) = refs.get(id) else {
            // Unreachable (every id was inserted in pass 1), but a
            // decoder bug must surface as an error, never a panic: a
            // malformed persist file may be fed to a server-hosted
            // session.
            return Err(PersistError::Malformed {
                offset: *start,
                expected: "a reserved ref id",
            });
        };
        cell.set(contents);
    }
    let mut root_dec = Decoder {
        src: dec.src,
        pos: root_start,
        refs: &refs,
    };
    let v = root_dec.value()?;
    if root_dec.pos != dec.src.len() {
        return Err(PersistError::Malformed {
            offset: root_dec.pos,
            expected: "end of input",
        });
    }
    Ok(v)
}

// --- registry-threaded (incremental) encoding -------------------------------

/// A persistent **reference registry**: the bidirectional mapping between
/// a session's (ephemeral, per-process) ref identities and the **durable
/// ids** a write-ahead log names them by across restarts.
///
/// [`encode_value`] assigns table ids local to one encoding, so two
/// encodings of overlapping graphs cannot name each other's cells.
/// Threading one registry through a *sequence* of
/// [`encode_with_registry`] / [`decode_with_registry`] calls makes the
/// id space shared: a ref encoded in record 1 is a bare `r<id>.`
/// back-reference in record 2, so cross-record sharing and cycles
/// survive exactly as intra-record ones do. This is the keystone of the
/// delta log — a ref-update record can name just the changed cell.
#[derive(Debug, Default)]
pub struct RefRegistry {
    /// Durable id → live cell.
    by_durable: HashMap<u64, RefValue>,
    /// Session ref identity → durable id.
    by_session: HashMap<u64, u64>,
    /// Next unassigned durable id.
    next: u64,
}

impl RefRegistry {
    pub fn new() -> RefRegistry {
        RefRegistry::default()
    }

    /// Number of registered cells.
    pub fn len(&self) -> usize {
        self.by_durable.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_durable.is_empty()
    }

    /// The durable id assigned to a session ref identity, if this
    /// registry has ever encoded or decoded that cell.
    pub fn durable_id(&self, session_ref_id: u64) -> Option<u64> {
        self.by_session.get(&session_ref_id).copied()
    }

    /// The live cell a durable id names, if known.
    pub fn cell(&self, durable_id: u64) -> Option<&RefValue> {
        self.by_durable.get(&durable_id)
    }

    fn register(&mut self, durable_id: u64, cell: RefValue) {
        self.by_session.insert(cell.id, durable_id);
        self.by_durable.insert(durable_id, cell);
        self.next = self.next.max(durable_id + 1);
    }

    fn unregister(&mut self, durable_id: u64) {
        if let Some(cell) = self.by_durable.remove(&durable_id) {
            self.by_session.remove(&cell.id);
        }
    }
}

/// Encode a description value against a [`RefRegistry`]: refs the
/// registry already knows encode as bare `r<durable-id>.` references
/// with **no table entry**; refs seen for the first time are assigned
/// fresh durable ids, registered, and emitted in this encoding's table.
/// On error the registry is rolled back to its pre-call state.
pub fn encode_with_registry(v: &Value, reg: &mut RefRegistry) -> Result<String, PersistError> {
    let mut enc = RegEncoder {
        reg,
        fresh: Vec::new(),
        table: BTreeMap::new(),
    };
    match enc.encode(v) {
        Ok(body) => {
            let mut out = String::new();
            let _ = write!(out, "refs{}{{", enc.table.len());
            for (id, contents) in &enc.table {
                let _ = write!(out, "{id}={contents};");
            }
            out.push('}');
            out.push_str(&body);
            Ok(out)
        }
        Err(e) => {
            for did in enc.fresh {
                enc.reg.unregister(did);
            }
            Err(e)
        }
    }
}

/// Decode a value produced by [`encode_with_registry`] against the same
/// (logical) registry. Table entries allocate fresh cells and register
/// them under their durable ids — which must be new to the registry —
/// while bare `r<id>.` references resolve through everything the
/// registry already holds. On error the registry is rolled back.
pub fn decode_with_registry(src: &str, reg: &mut RefRegistry) -> Result<Value, PersistError> {
    let mut fresh: Vec<u64> = Vec::new();
    match decode_with_registry_inner(src, reg, &mut fresh) {
        Ok(v) => Ok(v),
        Err(e) => {
            for did in fresh {
                reg.unregister(did);
            }
            Err(e)
        }
    }
}

fn decode_with_registry_inner(
    src: &str,
    reg: &mut RefRegistry,
    fresh: &mut Vec<u64>,
) -> Result<Value, PersistError> {
    let empty = HashMap::new();
    let mut dec = Decoder {
        src: src.as_bytes(),
        pos: 0,
        refs: &empty,
    };
    dec.expect("refs")?;
    let n = dec.count()?;
    dec.expect("{")?;
    let mut bodies: Vec<(u64, usize)> = Vec::with_capacity(clamped(n));
    for _ in 0..n {
        let id = dec.unsigned()?;
        dec.expect("=")?;
        let start = dec.pos;
        dec.skip_value()?;
        dec.expect(";")?;
        if reg.by_durable.contains_key(&id) {
            return Err(PersistError::Malformed {
                offset: start,
                expected: "a fresh durable ref id",
            });
        }
        reg.register(id, RefValue::new(Value::Unit));
        fresh.push(id);
        bodies.push((id, start));
    }
    dec.expect("}")?;
    let root_start = dec.pos;
    for (id, start) in &bodies {
        let contents = {
            let mut cell_dec = Decoder {
                src: dec.src,
                pos: *start,
                refs: &reg.by_durable,
            };
            cell_dec.value()?
        };
        let Some(cell) = reg.by_durable.get(id) else {
            return Err(PersistError::Malformed {
                offset: *start,
                expected: "a reserved ref id",
            });
        };
        cell.set(contents);
    }
    let mut root_dec = Decoder {
        src: dec.src,
        pos: root_start,
        refs: &reg.by_durable,
    };
    let v = root_dec.value()?;
    if root_dec.pos != dec.src.len() {
        return Err(PersistError::Malformed {
            offset: root_dec.pos,
            expected: "end of input",
        });
    }
    Ok(v)
}

struct RegEncoder<'a> {
    reg: &'a mut RefRegistry,
    /// Durable ids assigned by *this* encoding, for rollback on error.
    fresh: Vec<u64>,
    /// Durable id → encoded contents, for the table this encoding emits
    /// (fresh ids only — known ids already live in earlier tables).
    table: BTreeMap<u64, String>,
}

impl RegEncoder<'_> {
    fn encode(&mut self, v: &Value) -> Result<String, PersistError> {
        let mut out = String::new();
        self.write(v, &mut out)?;
        Ok(out)
    }

    fn write(&mut self, v: &Value, out: &mut String) -> Result<(), PersistError> {
        match v {
            Value::Ref(r) => {
                let did = match self.reg.durable_id(r.id) {
                    Some(did) => did,
                    None => {
                        let did = self.reg.next;
                        // Register before recursing (cycles!), then fill
                        // the table slot with the encoded contents.
                        self.reg.register(did, r.clone());
                        self.fresh.push(did);
                        self.table.insert(did, String::new());
                        let contents = self.encode(&r.get())?;
                        self.table.insert(did, contents);
                        did
                    }
                };
                let _ = write!(out, "r{did}.");
                Ok(())
            }
            Value::Unit
            | Value::Bool(_)
            | Value::Int(_)
            | Value::Real(_)
            | Value::Str(_)
            | Value::Record(_)
            | Value::Variant(..)
            | Value::Set(_)
            | Value::Dynamic(_)
            | Value::Closure(_)
            | Value::Op(_)
            | Value::Builtin(_) => self.write_structural(v, out),
        }
    }

    /// Non-ref cases share [`Encoder`]'s grammar exactly; recursion comes
    /// back through [`RegEncoder::write`] so nested refs hit the registry.
    fn write_structural(&mut self, v: &Value, out: &mut String) -> Result<(), PersistError> {
        match v {
            Value::Unit => out.push('u'),
            Value::Bool(true) => out.push('T'),
            Value::Bool(false) => out.push('F'),
            Value::Int(n) => {
                let _ = write!(out, "i{n}:");
            }
            Value::Real(r) => {
                let _ = write!(out, "f{}:", r.to_bits());
            }
            Value::Str(s) => {
                let _ = write!(out, "s{}:{s}", s.len());
            }
            Value::Record(fs) => {
                let _ = write!(out, "R{}{{", fs.len());
                for (l, fv) in fs {
                    let _ = write!(out, "l{}:{l}", l.len());
                    self.write(fv, out)?;
                }
                out.push('}');
            }
            Value::Variant(l, p) => {
                let _ = write!(out, "Vl{}:{l}", l.len());
                self.write(p, out)?;
            }
            Value::Set(items) => {
                let _ = write!(out, "S{}[", items.len());
                for item in items.iter() {
                    self.write(item, out)?;
                }
                out.push(']');
            }
            Value::Dynamic(d) => {
                let _ = write!(out, "d{}.", d.id);
                self.write(&d.value, out)?;
            }
            Value::Ref(_) => unreachable!("refs handled by write"),
            Value::Closure(_) | Value::Op(_) | Value::Builtin(_) => {
                return Err(PersistError::NotADescription)
            }
        }
        Ok(())
    }
}

/// Write `bytes` to `path` via a temp file in the same directory, fsync,
/// and atomic rename — a crash at any point leaves either the previous
/// contents or the new contents, never a torn mixture.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Durability of the rename itself needs the directory synced; best
    // effort — some platforms refuse to open directories for sync.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[derive(Default)]
struct Encoder {
    /// Original ref identity → (local id, encoded contents).
    table: BTreeMap<u64, (u32, String)>,
    next: u32,
}

impl Encoder {
    fn encode(&mut self, v: &Value) -> Result<String, PersistError> {
        let mut out = String::new();
        self.write(v, &mut out)?;
        Ok(out)
    }

    fn write(&mut self, v: &Value, out: &mut String) -> Result<(), PersistError> {
        match v {
            Value::Unit => out.push('u'),
            Value::Bool(true) => out.push('T'),
            Value::Bool(false) => out.push('F'),
            Value::Int(n) => {
                let _ = write!(out, "i{n}:");
            }
            Value::Real(r) => {
                let _ = write!(out, "f{}:", r.to_bits());
            }
            Value::Str(s) => {
                let _ = write!(out, "s{}:{s}", s.len());
            }
            Value::Record(fs) => {
                let _ = write!(out, "R{}{{", fs.len());
                for (l, fv) in fs {
                    let _ = write!(out, "l{}:{l}", l.len());
                    self.write(fv, out)?;
                }
                out.push('}');
            }
            Value::Variant(l, p) => {
                let _ = write!(out, "Vl{}:{l}", l.len());
                self.write(p, out)?;
            }
            Value::Set(items) => {
                let _ = write!(out, "S{}[", items.len());
                for item in items.iter() {
                    self.write(item, out)?;
                }
                out.push(']');
            }
            Value::Ref(r) => {
                let local = match self.table.get(&r.id) {
                    Some((local, _)) => *local,
                    None => {
                        let local = self.next;
                        self.next += 1;
                        // Reserve the slot before recursing (cycles!),
                        // then fill it; the slot cannot have vanished,
                        // but degrade to re-inserting rather than
                        // panicking if an encoder bug ever drops it.
                        self.table.insert(r.id, (local, String::new()));
                        let contents = self.encode(&r.get())?;
                        match self.table.get_mut(&r.id) {
                            Some(slot) => slot.1 = contents,
                            None => {
                                self.table.insert(r.id, (local, contents));
                            }
                        }
                        local
                    }
                };
                let _ = write!(out, "r{local}.");
            }
            Value::Dynamic(d) => {
                let _ = write!(out, "d{}.", d.id);
                self.write(&d.value, out)?;
            }
            Value::Closure(_) | Value::Op(_) | Value::Builtin(_) => {
                return Err(PersistError::NotADescription)
            }
        }
        Ok(())
    }
}

/// Cap speculative pre-allocation from decoded counts: a malformed (or
/// hostile) length prefix must cost a `Malformed` error downstream, not
/// an allocation abort here. Honest inputs still reserve exactly once
/// for anything up to this size.
fn clamped(n: usize) -> usize {
    n.min(1024)
}

struct Decoder<'a> {
    src: &'a [u8],
    pos: usize,
    refs: &'a HashMap<u64, RefValue>,
}

impl Decoder<'_> {
    fn err(&self, expected: &'static str) -> PersistError {
        PersistError::Malformed {
            offset: self.pos,
            expected,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, lit: &'static str) -> Result<(), PersistError> {
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(lit))
        }
    }

    fn number(&mut self) -> Result<i64, PersistError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("a number"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("a number"))
    }

    /// A decoded element/field count. Counts are never negative, so
    /// they parse as unsigned — a `-` here is malformed input, not a
    /// huge wrapped `usize`.
    fn count(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.unsigned()?).map_err(|_| self.err("a count"))
    }

    fn unsigned(&mut self) -> Result<u64, PersistError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("an unsigned number"))
    }

    fn sized_str(&mut self) -> Result<String, PersistError> {
        let n = self.count()?;
        self.expect(":")?;
        let end = self.pos.checked_add(n).filter(|&e| e <= self.src.len());
        let Some(end) = end else {
            return Err(self.err("string bytes"));
        };
        let s = std::str::from_utf8(&self.src[self.pos..end])
            .map_err(|_| self.err("utf-8 string"))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    fn label(&mut self) -> Result<String, PersistError> {
        self.expect("l")?;
        self.sized_str()
    }

    fn value(&mut self) -> Result<Value, PersistError> {
        match self.peek() {
            Some(b'u') => {
                self.pos += 1;
                Ok(Value::Unit)
            }
            Some(b'T') => {
                self.pos += 1;
                Ok(Value::Bool(true))
            }
            Some(b'F') => {
                self.pos += 1;
                Ok(Value::Bool(false))
            }
            Some(b'i') => {
                self.pos += 1;
                let n = self.number()?;
                self.expect(":")?;
                Ok(Value::Int(n))
            }
            Some(b'f') => {
                self.pos += 1;
                let bits = self.unsigned()?;
                self.expect(":")?;
                Ok(Value::Real(f64::from_bits(bits)))
            }
            Some(b's') => {
                self.pos += 1;
                Ok(Value::str(self.sized_str()?))
            }
            Some(b'R') => {
                self.pos += 1;
                let n = self.count()?;
                self.expect("{")?;
                let mut fs = Vec::with_capacity(clamped(n));
                for _ in 0..n {
                    let l = self.label()?;
                    let v = self.value()?;
                    fs.push((Symbol::intern(&l), v));
                }
                self.expect("}")?;
                Ok(Value::Record(Fields::from_vec(fs)))
            }
            Some(b'V') => {
                self.pos += 1;
                let l = self.label()?;
                let p = self.value()?;
                Ok(Value::Variant(Symbol::intern(&l), Box::new(p)))
            }
            Some(b'S') => {
                self.pos += 1;
                let n = self.count()?;
                self.expect("[")?;
                let mut items = Vec::with_capacity(clamped(n));
                for _ in 0..n {
                    items.push(self.value()?);
                }
                self.expect("]")?;
                Ok(Value::Set(MSet::from_iter(items)))
            }
            Some(b'r') => {
                self.pos += 1;
                let id = self.unsigned()?;
                self.expect(".")?;
                let cell = self
                    .refs
                    .get(&id)
                    .ok_or_else(|| self.err("a known ref id"))?;
                Ok(Value::Ref(cell.clone()))
            }
            Some(b'd') => {
                self.pos += 1;
                let _saved_id = self.unsigned()?;
                self.expect(".")?;
                let payload = self.value()?;
                // Fresh identity, as for refs.
                Ok(Value::Dynamic(DynValue::new(payload, None)))
            }
            _ => Err(self.err("a value tag")),
        }
    }

    /// Skip over one encoded value without building it (used to find the
    /// extents of ref-table entries before cells exist).
    fn skip_value(&mut self) -> Result<(), PersistError> {
        match self.peek() {
            Some(b'u' | b'T' | b'F') => {
                self.pos += 1;
                Ok(())
            }
            Some(b'i') => {
                self.pos += 1;
                self.number()?;
                self.expect(":")
            }
            Some(b'f') => {
                self.pos += 1;
                self.unsigned()?;
                self.expect(":")
            }
            Some(b's') => {
                self.pos += 1;
                self.sized_str()?;
                Ok(())
            }
            Some(b'R') => {
                self.pos += 1;
                let n = self.count()?;
                self.expect("{")?;
                for _ in 0..n {
                    self.label()?;
                    self.skip_value()?;
                }
                self.expect("}")
            }
            Some(b'V') => {
                self.pos += 1;
                self.label()?;
                self.skip_value()
            }
            Some(b'S') => {
                self.pos += 1;
                let n = self.count()?;
                self.expect("[")?;
                for _ in 0..n {
                    self.skip_value()?;
                }
                self.expect("]")
            }
            Some(b'r') => {
                self.pos += 1;
                self.unsigned()?;
                self.expect(".")
            }
            Some(b'd') => {
                self.pos += 1;
                self.unsigned()?;
                self.expect(".")?;
                self.skip_value()
            }
            _ => Err(self.err("a value tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let enc = encode_value(v).unwrap();
        decode_value(&enc).unwrap_or_else(|e| panic!("decode {enc:?}: {e}"))
    }

    #[test]
    fn base_values_roundtrip() {
        for v in [
            Value::Unit,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Real(2.5),
            Value::str("héllo: with, punctuation{}[]"),
            Value::str(""),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn real_bits_preserved() {
        let v = Value::Real(f64::NAN);
        let Value::Real(r) = roundtrip(&v) else {
            panic!()
        };
        assert!(r.is_nan());
        assert_eq!(roundtrip(&Value::Real(-0.0)), Value::Real(-0.0));
    }

    #[test]
    fn structures_roundtrip() {
        let v = Value::set([
            Value::record([
                ("Name".into(), Value::str("Joe")),
                ("Tags".into(), Value::set([Value::Int(1), Value::Int(2)])),
            ]),
            Value::record([
                ("Name".into(), Value::str("Sue")),
                ("Tags".into(), Value::set([])),
            ]),
        ]);
        assert_eq!(roundtrip(&v), v);
        let v = Value::variant("BasePart", Value::record([("Cost".into(), Value::Int(5))]));
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn sharing_is_preserved() {
        // Two employees share one department: after loading, updating
        // through one is visible through the other.
        let dept = RefValue::new(Value::record([("Building".into(), Value::Int(45))]));
        let v = Value::tuple([
            Value::record([("Dept".into(), Value::Ref(dept.clone()))]),
            Value::record([("Dept".into(), Value::Ref(dept))]),
        ]);
        let loaded = roundtrip(&v);
        let Value::Record(pair) = &loaded else {
            panic!()
        };
        let (Value::Record(e1), Value::Record(e2)) = (&pair["#1"], &pair["#2"]) else {
            panic!()
        };
        let (Value::Ref(d1), Value::Ref(d2)) = (&e1["Dept"], &e2["Dept"]) else {
            panic!()
        };
        assert_eq!(d1.id, d2.id, "sharing preserved");
        d1.set(Value::record([("Building".into(), Value::Int(67))]));
        assert_eq!(
            d2.get(),
            Value::record([("Building".into(), Value::Int(67))])
        );
    }

    #[test]
    fn unshared_refs_stay_unshared() {
        let v = Value::tuple([
            Value::Ref(RefValue::new(Value::Int(3))),
            Value::Ref(RefValue::new(Value::Int(3))),
        ]);
        let loaded = roundtrip(&v);
        let Value::Record(pair) = &loaded else {
            panic!()
        };
        assert_ne!(pair["#1"], pair["#2"], "distinct identities");
    }

    #[test]
    fn cyclic_refs_roundtrip() {
        let cell = RefValue::new(Value::Unit);
        cell.set(Value::record([("Self".into(), Value::Ref(cell.clone()))]));
        let loaded = roundtrip(&Value::Ref(cell));
        let Value::Ref(r) = &loaded else { panic!() };
        let Value::Record(fs) = r.get() else { panic!() };
        let Value::Ref(inner) = &fs["Self"] else {
            panic!()
        };
        assert_eq!(inner.id, r.id, "cycle closed");
    }

    #[test]
    fn dynamics_roundtrip_with_fresh_identity() {
        let v = Value::Dynamic(DynValue::new(Value::str("payload"), None));
        let loaded = roundtrip(&v);
        let Value::Dynamic(d) = &loaded else { panic!() };
        assert_eq!(*d.value, Value::str("payload"));
        assert_ne!(loaded, v, "fresh identity on load");
    }

    #[test]
    fn functions_refuse_to_persist() {
        let v = Value::Op(machiavelli_syntax::ast::BinOp::Add);
        assert_eq!(encode_value(&v), Err(PersistError::NotADescription));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "refs0{}x",
            "refs0{}i1",
            "refs1{0=i1:;}r9.",
            "refs0{}s5:ab",
        ] {
            assert!(decode_value(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn hostile_length_prefixes_error_instead_of_aborting() {
        // Each input claims an astronomically large element count or a
        // negative one. Decoding must fail with `Malformed` — without
        // pre-allocating by the claimed count (an allocation abort is a
        // panic a server-hosted session can never be allowed to hit).
        for bad in [
            "refs0{}S99999999999999999[u]",     // set count ≫ input
            "refs0{}R99999999999999999{l1:Au}", // record count ≫ input
            "refs99999999999999999{}u",         // ref-table count ≫ input
            "refs0{}S-3[u]",                    // negative set count
            "refs0{}R-1{}",                     // negative record count
            "refs0{}s-5:abc",                   // negative string length
            "refs0{}s99999999999999999:abc",    // string length ≫ input
            "refs1{-1=u;}u",                    // negative ref id
            "refs0{}r-1.",                      // negative ref id use
            "refs0{}S18446744073709551617[u]",  // count > u64::MAX
        ] {
            assert!(decode_value(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let enc = encode_value(&Value::Int(1)).unwrap();
        assert!(decode_value(&format!("{enc}u")).is_err());
    }

    #[test]
    fn decode_rejects_duplicate_table_ids() {
        assert!(decode_value("refs2{0=i1:;0=i2:;}r0.").is_err());
    }

    #[test]
    fn truncation_at_every_byte_offset_errors_cleanly() {
        // Rich golden encodings exercising every tag (ASCII payloads so
        // every byte offset is a char boundary). A strict prefix is
        // never a valid encoding — decode must return `Malformed` at
        // every single cut point, and must never panic or succeed.
        let cell = RefValue::new(Value::Unit);
        cell.set(Value::record([
            ("Next".into(), Value::Ref(cell.clone())),
            ("Tag".into(), Value::str("shared dept")),
        ]));
        let goldens = [
            encode_value(&Value::tuple([
                Value::Ref(cell.clone()),
                Value::Ref(cell),
                Value::Int(-17),
                Value::Real(2.5),
                Value::variant("Leaf", Value::set([Value::Bool(true), Value::Unit])),
                Value::Dynamic(DynValue::new(Value::str("dyn payload"), None)),
            ]))
            .unwrap(),
            encode_value(&Value::set([Value::str(""), Value::str("x:y{z}[w]")])).unwrap(),
        ];
        for golden in &goldens {
            assert!(golden.is_ascii(), "golden must slice at any byte");
            assert!(decode_value(golden).is_ok(), "golden decodes whole");
            for cut in 0..golden.len() {
                let truncated = &golden[..cut];
                assert!(
                    decode_value(truncated).is_err(),
                    "truncation to {cut} bytes of {golden:?} must be rejected"
                );
            }
        }
    }

    #[test]
    fn registry_preserves_sharing_across_records() {
        // Encode two *separate* records that share one cell; a fresh
        // registry on the decode side must re-link them.
        let dept = RefValue::new(Value::record([("Building".into(), Value::Int(45))]));
        let e1 = Value::record([("Dept".into(), Value::Ref(dept.clone()))]);
        let e2 = Value::record([("Dept".into(), Value::Ref(dept.clone()))]);

        let mut enc_reg = RefRegistry::new();
        let rec1 = encode_with_registry(&e1, &mut enc_reg).unwrap();
        let rec2 = encode_with_registry(&e2, &mut enc_reg).unwrap();
        assert!(
            rec2.starts_with("refs0{"),
            "second record back-references, no table: {rec2:?}"
        );

        let mut dec_reg = RefRegistry::new();
        let l1 = decode_with_registry(&rec1, &mut dec_reg).unwrap();
        let l2 = decode_with_registry(&rec2, &mut dec_reg).unwrap();
        let (Value::Record(f1), Value::Record(f2)) = (&l1, &l2) else {
            panic!()
        };
        let (Value::Ref(d1), Value::Ref(d2)) = (&f1["Dept"], &f2["Dept"]) else {
            panic!()
        };
        assert_eq!(d1.id, d2.id, "cross-record sharing preserved");
        d1.set(Value::Int(0));
        assert_eq!(d2.get(), Value::Int(0));
    }

    #[test]
    fn registry_delta_names_only_the_changed_cell() {
        let cell = RefValue::new(Value::Int(1));
        let mut reg = RefRegistry::new();
        let full = encode_with_registry(&Value::Ref(cell.clone()), &mut reg).unwrap();
        assert!(full.contains('='), "first encoding carries the table");
        // A later delta for the same cell is a constant-size payload.
        cell.set(Value::Int(2));
        let delta = encode_with_registry(&cell.get(), &mut reg).unwrap();
        assert_eq!(delta, "refs0{}i2:");
        let did = reg.durable_id(cell.id).unwrap();
        assert_eq!(reg.cell(did).map(|c| c.id), Some(cell.id));
    }

    #[test]
    fn registry_rolls_back_on_encode_error() {
        let mut reg = RefRegistry::new();
        let poisoned = Value::Ref(RefValue::new(Value::Op(
            machiavelli_syntax::ast::BinOp::Add,
        )));
        assert_eq!(
            encode_with_registry(&poisoned, &mut reg),
            Err(PersistError::NotADescription)
        );
        assert!(reg.is_empty(), "failed encode leaves no registrations");
    }

    #[test]
    fn registry_decode_rejects_redefined_durable_ids() {
        let mut reg = RefRegistry::new();
        let rec =
            encode_with_registry(&Value::Ref(RefValue::new(Value::Int(1))), &mut reg).unwrap();
        let before = reg.len();
        // Replaying the same record against the same registry would
        // redefine durable id 0 — corruption, not idempotence.
        assert!(decode_with_registry(&rec, &mut reg).is_err());
        assert_eq!(reg.len(), before, "failed decode rolls back");
    }

    #[test]
    fn registry_decode_resolves_cycles() {
        let cell = RefValue::new(Value::Unit);
        cell.set(Value::record([("Self".into(), Value::Ref(cell.clone()))]));
        let mut enc_reg = RefRegistry::new();
        let rec = encode_with_registry(&Value::Ref(cell), &mut enc_reg).unwrap();
        let mut dec_reg = RefRegistry::new();
        let Value::Ref(r) = decode_with_registry(&rec, &mut dec_reg).unwrap() else {
            panic!()
        };
        let Value::Record(fs) = r.get() else { panic!() };
        let Value::Ref(inner) = &fs["Self"] else {
            panic!()
        };
        assert_eq!(inner.id, r.id, "cycle closed through the registry");
    }

    #[test]
    fn write_atomic_replaces_and_never_leaves_tmp() {
        let dir = std::env::temp_dir().join(format!(
            "mach-write-atomic-{}-{}",
            std::process::id(),
            RefValue::new(Value::Unit).id
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.mach");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "no temp files survive");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
