//! A line-oriented wire protocol over any `BufRead`/`Write` pair.
//!
//! One request per line, one response line per request (newlines in
//! values are escaped as `\n`), so the protocol is testable on byte
//! buffers and usable over TCP (`machid`) or a pipe:
//!
//! ```text
//! OPEN                -> OK <sid>
//! EVAL <sid> <src>    -> VAL <outcomes; "; "-joined>  |  ERR <kind> <message>
//! CLOSE <sid>         -> OK closed <sid>              |  ERR <kind> <message>
//! SAVE <sid>          -> OK saved <sid> gen <g>       |  ERR <kind> <message>
//! RESTORE <sid>       -> OK restored <sid> <n>        |  ERR <kind> <message>
//! STATS               -> OK <stats line>
//! METRICS             -> OK <Prometheus text exposition, newline-escaped>
//! QUIT                -> OK bye   (ends the connection)
//! ```
//!
//! `SAVE` forces a checkpoint of a durable session; `RESTORE` discards
//! its in-memory state and recovers from disk (including a poisoned
//! session). Both require the server to run with a durable root.
//!
//! `ERR` responses carry the stable [`ServerError::kind`] tag first, so
//! clients can branch on `deadline` / `busy` / `session-panicked`
//! without parsing prose.

use crate::error::ServerError;
use crate::server::Server;
use std::io::{self, BufRead, Write};

/// Escape a response payload onto a single line.
fn one_line(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn err_line(e: &ServerError) -> String {
    format!("ERR {} {}", e.kind(), one_line(&e.to_string()))
}

/// Serve one client connection until `QUIT` or EOF. Every request gets
/// exactly one response line; protocol mistakes get `ERR protocol …`
/// and the connection stays usable.
pub fn serve_connection<R: BufRead, W: Write>(
    server: &Server,
    reader: R,
    mut out: W,
) -> io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let response = match cmd {
            "OPEN" => match server.open_session() {
                Ok(sid) => format!("OK {sid}"),
                Err(e) => err_line(&e),
            },
            "EVAL" => match rest.split_once(char::is_whitespace) {
                Some((sid, src)) => match sid.parse::<u64>() {
                    Ok(sid) => match server.eval(sid, src) {
                        Ok(outcomes) => format!("VAL {}", one_line(&outcomes.join("; "))),
                        Err(e) => err_line(&e),
                    },
                    Err(_) => format!("ERR protocol bad session id: {}", one_line(sid)),
                },
                None => "ERR protocol usage: EVAL <sid> <src>".to_string(),
            },
            "CLOSE" => match rest.parse::<u64>() {
                Ok(sid) => match server.close_session(sid) {
                    Ok(()) => format!("OK closed {sid}"),
                    Err(e) => err_line(&e),
                },
                Err(_) => format!("ERR protocol bad session id: {}", one_line(rest)),
            },
            "SAVE" => match rest.parse::<u64>() {
                Ok(sid) => match server.save_session(sid) {
                    Ok(gen) => format!("OK saved {sid} gen {gen}"),
                    Err(e) => err_line(&e),
                },
                Err(_) => format!("ERR protocol bad session id: {}", one_line(rest)),
            },
            "RESTORE" => match rest.parse::<u64>() {
                Ok(sid) => match server.restore_session(sid) {
                    Ok(n) => format!("OK restored {sid} {n}"),
                    Err(e) => err_line(&e),
                },
                Err(_) => format!("ERR protocol bad session id: {}", one_line(rest)),
            },
            "STATS" => format!("OK {}", server.stats()),
            "METRICS" => format!("OK {}", one_line(&server.metrics_text())),
            "QUIT" => {
                writeln!(out, "OK bye")?;
                out.flush()?;
                return Ok(());
            }
            other => format!("ERR protocol unknown command: {}", one_line(other)),
        };
        writeln!(out, "{response}")?;
        out.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use machiavelli_value::faults::FaultConfig;

    fn quiet_server() -> Server {
        Server::start(ServerConfig {
            workers: 1,
            queue_cap: 8,
            default_deadline: None,
            row_budget: None,
            shared_store: false,
            faults: Some(FaultConfig::off()),
            durable_root: None,
        })
    }

    fn drive(server: &Server, script: &str) -> Vec<String> {
        let mut out = Vec::new();
        serve_connection(server, script.as_bytes(), &mut out).expect("serve");
        String::from_utf8(out)
            .expect("utf8")
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn roundtrip_over_byte_buffers() {
        let server = quiet_server();
        let lines = drive(&server, "OPEN\nEVAL 1 1 + 2;\nCLOSE 1\nQUIT\n");
        assert_eq!(lines[0], "OK 1");
        assert_eq!(lines[1], "VAL val it = 3 : int");
        assert_eq!(lines[2], "OK closed 1");
        assert_eq!(lines[3], "OK bye");
    }

    #[test]
    fn errors_carry_machine_readable_kinds() {
        let server = quiet_server();
        let lines = drive(
            &server,
            "EVAL 99 1;\nOPEN\nEVAL 1 nonsense ;;;\nCLOSE 99\nNOPE\nEVAL x 1;\n",
        );
        assert!(lines[0].starts_with("ERR no-such-session "), "{}", lines[0]);
        assert_eq!(lines[1], "OK 1");
        assert!(lines[2].starts_with("ERR query "), "{}", lines[2]);
        assert!(lines[3].starts_with("ERR no-such-session "), "{}", lines[3]);
        assert!(
            lines[4].starts_with("ERR protocol unknown command"),
            "{}",
            lines[4]
        );
        assert!(
            lines[5].starts_with("ERR protocol bad session id"),
            "{}",
            lines[5]
        );
    }

    #[test]
    fn stats_and_blank_lines() {
        let server = quiet_server();
        let lines = drive(&server, "\n  \nSTATS\nQUIT\n");
        assert!(
            lines[0].starts_with("OK workers 1(-0) sessions "),
            "{}",
            lines[0]
        );
        assert_eq!(lines[1], "OK bye");
    }

    #[test]
    fn multiline_values_are_escaped() {
        assert_eq!(one_line("a\nb\\c"), "a\\nb\\\\c");
    }
}
