//! E2/E3 — Figures 2 and 3: the part–supplier database in the
//! generalized relational model, and the two queries.

use machiavelli_bench::{fig2_session, PARTS_TYPE};

#[test]
fn parts_relation_has_paper_type() {
    let mut s = fig2_session();
    let out = s.eval_one("parts;").unwrap();
    // Paper (Figure 2): {[Pname:string, P#:int,
    //   Pinfo:<BasePart:[Cost:int],
    //          CompositePart:[SubParts:{[P#:int,Qty:int]}, AssemCost:int]>]}
    assert_eq!(
        out.scheme.show(),
        "{[P#:int,Pinfo:<BasePart:[Cost:int],CompositePart:[AssemCost:int,SubParts:{[P#:int,Qty:int]}]>,Pname:string]}"
    );
}

#[test]
fn parts_literal_written_in_machiavelli_agrees_with_native() {
    // Write the Figure 2 rows directly in Machiavelli and project onto
    // the paper's (closed) type; the resulting value must equal the
    // native generator's relation.
    let mut s = machiavelli::Session::new();
    let out = s
        .eval_one(&format!(
            r#"project(
              {{[Pname="bolt", P#=1, Pinfo=(BasePart of [Cost=5])],
                [Pname="nut", P#=2, Pinfo=(BasePart of [Cost=3])],
                [Pname="wheel", P#=100,
                 Pinfo=(CompositePart of [SubParts={{[P#=1,Qty=8],[P#=2,Qty=8]}},
                                          AssemCost=20])],
                [Pname="engine", P#=2189,
                 Pinfo=(CompositePart of [SubParts={{[P#=1,Qty=189],[P#=2,Qty=120]}},
                                          AssemCost=1000])]}},
              {PARTS_TYPE});"#
        ))
        .unwrap();
    assert_eq!(out.value, machiavelli_relational::fig2_parts().into_value());
}

#[test]
fn fig3_select_all_base_parts() {
    // -> join(parts, {[Pinfo=(BasePart of [])]});
    let mut s = fig2_session();
    let out = s
        .eval_one("join(parts, {[Pinfo=(BasePart of [])]});")
        .unwrap();
    // Type resolves to the full parts type (paper prints exactly that).
    assert_eq!(
        out.scheme.show(),
        "{[P#:int,Pinfo:<BasePart:[Cost:int],CompositePart:[AssemCost:int,SubParts:{[P#:int,Qty:int]}]>,Pname:string]}"
    );
    // Value: exactly the base parts.
    let expected = s
        .eval_one(
            r#"{[Pname="bolt", P#=1, Pinfo=(BasePart of [Cost=5])],
                      [Pname="nut", P#=2, Pinfo=(BasePart of [Cost=3])]};"#,
        )
        .unwrap();
    assert_eq!(out.value, expected.value);
}

#[test]
fn fig3_part_names_supplied_by_baker() {
    // -> select x.Pname
    //    where x <- join(parts, supplied_by)
    //    with Join3(x.Suppliers, suppliers, {[Sname="Baker"]}) <> {};
    let mut s = fig2_session();
    s.run("fun Join3(x,y,z) = join(x, join(y,z));").unwrap();
    let out = s
        .eval_one(
            r#"select x.Pname
               where x <- join(parts, supplied_by)
               with Join3(x.Suppliers, suppliers, {[Sname="Baker"]}) <> {};"#,
        )
        .unwrap();
    // Baker is S#1; bolt (P#1) and engine (P#2189) are supplied by S#1.
    assert_eq!(out.show(), r#"val it = {"bolt", "engine"} : {string}"#);
}

#[test]
fn join_parts_supplied_by_is_natural_join_on_pno() {
    let mut s = fig2_session();
    let out = s.eval_one("card(join(parts, supplied_by));").unwrap();
    // supplied_by covers P# 1, 2, 2189 — all present in parts.
    assert_eq!(out.show(), "val it = 3 : int");
}

#[test]
fn higher_order_join_agrees_with_native_nested_loop() {
    let mut s = fig2_session();
    let interpreted = s.eval_one("join(parts, supplied_by);").unwrap().value;
    let native = machiavelli_relational::nested_loop_join(
        &machiavelli_relational::fig2_parts(),
        &machiavelli_relational::fig2_supplied_by(),
    );
    assert_eq!(interpreted, native.into_value());
}

#[test]
fn fig3_join_filter_respects_variant_branch() {
    // Composite parts are excluded by the BasePart filter at the value
    // level (variant branches must match for consistency).
    let mut s = fig2_session();
    let out = s
        .eval_one("card(join(parts, {[Pinfo=(CompositePart of [AssemCost=1000])]}));")
        .unwrap();
    // Only the engine has AssemCost exactly 1000.
    assert_eq!(out.show(), "val it = 1 : int");
}
