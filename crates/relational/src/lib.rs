//! Generalized relational substrate for the Machiavelli reproduction.
//!
//! Native (non-interpreted) counterparts of the paper's §4 machinery,
//! used as verification baselines and benchmark subjects:
//!
//! * [`relation`] — relations over Machiavelli values with select /
//!   project / rename / union;
//! * [`join`] — natural-join strategies (nested-loop vs hash vs
//!   sort-merge);
//! * [`closure`] — the Figure 4 transitive closure, naive vs semi-naive;
//! * [`generators`] — the Figure 2 part–supplier database (literal and
//!   scaled), employees for the intro's `Wealthy`, random digraphs;
//! * `par_hom` — parallel `hom`, demonstrating the paper's claim that
//!   proper applications are computable in parallel.

pub mod closure;
pub mod generators;
pub mod join;
pub mod par_hom;
pub mod relation;

pub use closure::{closure_relation, naive_closure, seminaive_closure};
pub use generators::{
    chain_edges, edges_to_relation, fig2_parts, fig2_supplied_by, fig2_suppliers, gen_edges,
    gen_employees, gen_part_supplier, native_cost, part_row, PartInfo, PartSupplierDb,
};
pub use join::{hash_join, nested_loop_join, sort_merge_join};
pub use par_hom::{par_hom, seq_hom};
pub use relation::{row, Relation};
