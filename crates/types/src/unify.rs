//! Kinded unification.
//!
//! Extends Robinson/Milner unification with:
//!
//! * **kinded variables** — unifying two record-kinded variables merges
//!   their field maps (unifying the overlap), which is the essence of the
//!   Ohori–Buneman inference algorithm;
//! * **description constraints** — binding a `Desc`-kinded variable
//!   propagates description-ness structurally ([`require_desc`]);
//! * **equi-recursive types** — `rec v. τ` binders are unfolded on demand
//!   under a coinductive assumption set, so explicitly annotated recursive
//!   types unify by bisimulation;
//! * **levels** — Rémy-style level adjustment for efficient `let`
//!   generalization.

use crate::display::{show_kind, show_type};
use crate::error::TypeError;
use crate::kind::Kind;
use crate::ty::{resolve, unfold_rec, TvRef, Ty, Type};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Unify two types in place (variables are linked by mutation).
pub fn unify(a: &Ty, b: &Ty) -> Result<(), TypeError> {
    let mut ctx = Ctx::default();
    ctx.unify(a, b)
}

/// Require `t` to be a description type: no `→` outside `ref`.
/// Variables inside `t` have their kinds promoted to description kinds.
pub fn require_desc(t: &Ty) -> Result<(), TypeError> {
    let mut seen = HashSet::new();
    require_desc_inner(t, &mut seen)
}

#[derive(Default)]
struct Ctx {
    /// Coinductive assumptions: pairs of node addresses already being
    /// unified (needed only when recursive binders are involved).
    assumptions: HashSet<(usize, usize)>,
    /// One-step unfoldings of `rec` nodes, cached so repeated unfolding
    /// yields pointer-identical results (termination of the memoization).
    unfold_cache: HashMap<usize, Ty>,
}

impl Ctx {
    fn unfold(&mut self, t: &Ty) -> Ty {
        let key = Rc::as_ptr(t) as usize;
        if let Some(u) = self.unfold_cache.get(&key) {
            return u.clone();
        }
        let u = unfold_rec(t);
        self.unfold_cache.insert(key, u.clone());
        u
    }

    fn unify(&mut self, a: &Ty, b: &Ty) -> Result<(), TypeError> {
        let a = resolve(a);
        let b = resolve(b);
        if Rc::ptr_eq(&a, &b) {
            return Ok(());
        }
        match (&*a, &*b) {
            (Type::Var(va), Type::Var(vb)) => self.unify_vars(va, vb, &a, &b),
            (Type::Var(v), _) => self.bind(v, &b),
            (_, Type::Var(v)) => self.bind(v, &a),
            (Type::Rec(..), _) | (_, Type::Rec(..)) => {
                let key = (Rc::as_ptr(&a) as usize, Rc::as_ptr(&b) as usize);
                if !self.assumptions.insert(key) {
                    return Ok(());
                }
                let ua = self.unfold(&a);
                let ub = self.unfold(&b);
                self.unify(&ua, &ub)
            }
            (Type::Unit, Type::Unit)
            | (Type::Int, Type::Int)
            | (Type::Bool, Type::Bool)
            | (Type::Str, Type::Str)
            | (Type::Real, Type::Real)
            | (Type::Dynamic, Type::Dynamic) => Ok(()),
            (Type::RecVar(x), Type::RecVar(y)) if x == y => Ok(()),
            (Type::Arrow(a1, a2), Type::Arrow(b1, b2)) => {
                self.unify(a1, b1)?;
                self.unify(a2, b2)
            }
            (Type::Set(ea), Type::Set(eb)) => self.unify(ea, eb),
            (Type::Ref(ea), Type::Ref(eb)) => self.unify(ea, eb),
            (Type::Record(fa), Type::Record(fb)) | (Type::Variant(fa), Type::Variant(fb)) => {
                // Concrete records/variants unify only with identical
                // label sets.
                if fa.len() != fb.len() {
                    return Err(self.mismatch(&a, &b));
                }
                for (l, ta) in fa {
                    let Some(tb) = fb.get(l) else {
                        return Err(TypeError::MissingField {
                            ty: show_type(&b),
                            label: l.to_string(),
                        });
                    };
                    self.unify(ta, tb)?;
                }
                Ok(())
            }
            _ => Err(self.mismatch(&a, &b)),
        }
    }

    fn mismatch(&self, a: &Ty, b: &Ty) -> TypeError {
        TypeError::Mismatch {
            left: show_type(a),
            right: show_type(b),
        }
    }

    /// Unify two unbound variables: merge kinds, keep `va` as the
    /// representative.
    fn unify_vars(
        &mut self,
        va: &TvRef,
        vb: &TvRef,
        a_ty: &Ty,
        b_ty: &Ty,
    ) -> Result<(), TypeError> {
        // Two different Type nodes can wrap the same cell.
        if va == vb {
            return Ok(());
        }
        let ka = va.kind();
        let kb = vb.kind();
        let level = va.level().min(vb.level());
        let merged = self.merge_kinds(ka, kb)?;
        // Merging kinds unifies overlapping field types, which can link
        // `va` or `vb` themselves (their cells may appear inside the
        // kinds). If that happened, restart on the new representatives.
        if va.is_link() || vb.is_link() {
            return self.unify(a_ty, b_ty);
        }
        vb.link(a_ty.clone());
        va.set_kind(merged.clone());
        va.min_level(level);
        // Adjust levels and run occurs over the merged kind's field types.
        for ft in merged.field_types() {
            self.occurs_adjust(va, &ft, level)?;
        }
        if merged.requires_desc() {
            for ft in merged.field_types() {
                require_desc(&ft)?;
            }
        }
        Ok(())
    }

    fn merge_kinds(&mut self, ka: Kind, kb: Kind) -> Result<Kind, TypeError> {
        use Kind::*;
        Ok(match (ka, kb) {
            (Any, k) | (k, Any) => k,
            (Desc, Desc) => Desc,
            (Desc, k) | (k, Desc) => k.with_desc(),
            (
                Record {
                    fields: fa,
                    desc: da,
                },
                Record {
                    fields: fb,
                    desc: db,
                },
            ) => {
                let mut fields = fa;
                for (l, tb) in fb {
                    if let Some(ta) = fields.get(&l) {
                        let ta = ta.clone();
                        self.unify(&ta, &tb)?;
                    } else {
                        fields.insert(l, tb);
                    }
                }
                Record {
                    fields,
                    desc: da || db,
                }
            }
            (
                Variant {
                    fields: fa,
                    desc: da,
                },
                Variant {
                    fields: fb,
                    desc: db,
                },
            ) => {
                let mut fields = fa;
                for (l, tb) in fb {
                    if let Some(ta) = fields.get(&l) {
                        let ta = ta.clone();
                        self.unify(&ta, &tb)?;
                    } else {
                        fields.insert(l, tb);
                    }
                }
                Variant {
                    fields,
                    desc: da || db,
                }
            }
            (ka @ Record { .. }, kb @ Variant { .. })
            | (ka @ Variant { .. }, kb @ Record { .. }) => {
                return Err(TypeError::KindMismatch {
                    kind: show_kind(&ka),
                    ty: show_kind(&kb),
                })
            }
        })
    }

    /// Bind variable `v` to the non-variable type `t`, enforcing `v`'s
    /// kind against `t`'s structure.
    fn bind(&mut self, v: &TvRef, t: &Ty) -> Result<(), TypeError> {
        self.occurs_adjust(v, t, v.level())?;
        let kind = v.kind();
        // Check the kind against the (possibly rec-unfolded) structure.
        match &kind {
            Kind::Any => {}
            Kind::Desc => require_desc(t)?,
            Kind::Record { fields, desc } => {
                let target = self.head_structure(t);
                let Type::Record(m) = &*target else {
                    return Err(TypeError::KindMismatch {
                        kind: show_kind(&kind),
                        ty: show_type(t),
                    });
                };
                for (l, ft) in fields {
                    let Some(mt) = m.get(l) else {
                        return Err(TypeError::MissingField {
                            ty: show_type(t),
                            label: l.to_string(),
                        });
                    };
                    self.unify(ft, mt)?;
                }
                if *desc {
                    require_desc(t)?;
                }
            }
            Kind::Variant { fields, desc } => {
                let target = self.head_structure(t);
                let Type::Variant(m) = &*target else {
                    return Err(TypeError::KindMismatch {
                        kind: show_kind(&kind),
                        ty: show_type(t),
                    });
                };
                for (l, ft) in fields {
                    let Some(mt) = m.get(l) else {
                        return Err(TypeError::MissingField {
                            ty: show_type(t),
                            label: l.to_string(),
                        });
                    };
                    self.unify(ft, mt)?;
                }
                if *desc {
                    require_desc(t)?;
                }
            }
        }
        // The kind checks above unify field types and can bind `v` itself;
        // in that case finish by unifying the representative with `t`.
        if v.is_link() {
            let resolved = resolve(&Rc::new(Type::Var(v.clone())));
            return self.unify(&resolved, t);
        }
        v.link(t.clone());
        Ok(())
    }

    /// Unfold `rec` binders until a structural head appears.
    fn head_structure(&mut self, t: &Ty) -> Ty {
        let mut cur = resolve(t);
        let mut fuel = 64;
        while matches!(&*cur, Type::Rec(..)) && fuel > 0 {
            cur = self.unfold(&cur);
            cur = resolve(&cur);
            fuel -= 1;
        }
        cur
    }

    /// Occurs check for `v` in `t`, adjusting levels of variables in `t`
    /// down to `level` along the way (standard Rémy generalization
    /// bookkeeping). Walks into the kinds of kinded variables.
    fn occurs_adjust(&mut self, v: &TvRef, t: &Ty, level: u32) -> Result<(), TypeError> {
        let mut visited: HashSet<usize> = HashSet::new();
        self.occurs_inner(v, t, level, &mut visited)
    }

    fn occurs_inner(
        &mut self,
        v: &TvRef,
        t: &Ty,
        level: u32,
        visited: &mut HashSet<usize>,
    ) -> Result<(), TypeError> {
        let t = resolve(t);
        if !visited.insert(Rc::as_ptr(&t) as usize) {
            return Ok(());
        }
        match &*t {
            Type::Unit
            | Type::Int
            | Type::Bool
            | Type::Str
            | Type::Real
            | Type::Dynamic
            | Type::RecVar(_) => Ok(()),
            Type::Arrow(a, b) => {
                self.occurs_inner(v, a, level, visited)?;
                self.occurs_inner(v, b, level, visited)
            }
            Type::Record(fs) | Type::Variant(fs) => {
                for ft in fs.values() {
                    self.occurs_inner(v, ft, level, visited)?;
                }
                Ok(())
            }
            Type::Set(e) | Type::Ref(e) => self.occurs_inner(v, e, level, visited),
            Type::Rec(_, body) => self.occurs_inner(v, body, level, visited),
            Type::Var(w) => {
                if w == v {
                    return Err(TypeError::Occurs {
                        var: show_type(&Rc::new(Type::Var(v.clone()))),
                        ty: show_type(&t),
                    });
                }
                w.min_level(level);
                for ft in w.kind().field_types() {
                    self.occurs_inner(v, &ft, level, visited)?;
                }
                Ok(())
            }
        }
    }
}

fn require_desc_inner(t: &Ty, seen: &mut HashSet<usize>) -> Result<(), TypeError> {
    let t = resolve(t);
    if !seen.insert(Rc::as_ptr(&t) as usize) {
        return Ok(());
    }
    match &*t {
        Type::Unit
        | Type::Int
        | Type::Bool
        | Type::Str
        | Type::Real
        | Type::Dynamic
        | Type::RecVar(_) => Ok(()),
        // Description-ness stops at `ref`: `ref(int → int)` is a
        // description type (compared by identity).
        Type::Ref(_) => Ok(()),
        Type::Arrow(..) => Err(TypeError::NotDescription(show_type(&t))),
        Type::Record(fs) | Type::Variant(fs) => {
            for ft in fs.values() {
                require_desc_inner(ft, seen)?;
            }
            Ok(())
        }
        Type::Set(e) => require_desc_inner(e, seen),
        Type::Rec(_, body) => require_desc_inner(body, seen),
        Type::Var(v) => {
            let kind = v.kind();
            if kind.requires_desc() {
                return Ok(());
            }
            v.set_kind(kind.with_desc());
            for ft in v.kind().field_types() {
                require_desc_inner(&ft, seen)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::*;

    fn var_gen() -> VarGen {
        VarGen::new()
    }

    #[test]
    fn unify_base() {
        assert!(unify(&t_int(), &t_int()).is_ok());
        assert!(unify(&t_int(), &t_bool()).is_err());
    }

    #[test]
    fn unify_var_binds() {
        let gen = var_gen();
        let v = gen.fresh_ty(Kind::Any, 0);
        unify(&v, &t_int()).unwrap();
        assert!(matches!(&*resolve(&v), Type::Int));
    }

    #[test]
    fn unify_record_kinds_merge() {
        let gen = var_gen();
        let a = gen.fresh_ty(Kind::record([("Name".into(), t_str())], false), 0);
        let b = gen.fresh_ty(Kind::record([("Age".into(), t_int())], false), 0);
        unify(&a, &b).unwrap();
        // The representative now requires both fields.
        let resolved = resolve(&a);
        let Type::Var(v) = &*resolved else { panic!() };
        let Kind::Record { fields, .. } = v.kind() else {
            panic!()
        };
        assert!(fields.contains_key("Name") && fields.contains_key("Age"));
    }

    #[test]
    fn record_kinded_var_accepts_wider_record() {
        let gen = var_gen();
        let a = gen.fresh_ty(Kind::record([("Name".into(), t_str())], false), 0);
        let r = t_record([("Name".into(), t_str()), ("Age".into(), t_int())]);
        unify(&a, &r).unwrap();
        assert!(matches!(&*resolve(&a), Type::Record(_)));
    }

    #[test]
    fn record_kinded_var_rejects_missing_field() {
        let gen = var_gen();
        let a = gen.fresh_ty(Kind::record([("Name".into(), t_str())], false), 0);
        let r = t_record([("Age".into(), t_int())]);
        let err = unify(&a, &r).unwrap_err();
        assert!(matches!(err, TypeError::MissingField { .. }));
    }

    #[test]
    fn record_kinded_var_field_types_must_agree() {
        let gen = var_gen();
        let a = gen.fresh_ty(Kind::record([("Name".into(), t_str())], false), 0);
        let r = t_record([("Name".into(), t_int())]);
        assert!(unify(&a, &r).is_err());
    }

    #[test]
    fn variant_kinded_var_unifies_with_closed_variant() {
        let gen = var_gen();
        let a = gen.fresh_ty(Kind::variant([("Consultant".into(), t_int())], false), 0);
        let v = t_variant([("Employee".into(), t_int()), ("Consultant".into(), t_int())]);
        unify(&a, &v).unwrap();
        assert!(matches!(&*resolve(&a), Type::Variant(_)));
    }

    #[test]
    fn concrete_records_need_same_labels() {
        let a = t_record([("A".into(), t_int())]);
        let b = t_record([("A".into(), t_int()), ("B".into(), t_int())]);
        assert!(unify(&a, &b).is_err());
    }

    #[test]
    fn occurs_check_fires() {
        let gen = var_gen();
        let v = gen.fresh_ty(Kind::Any, 0);
        let arrow = t_arrow(v.clone(), t_int());
        let err = unify(&v, &arrow).unwrap_err();
        assert!(matches!(err, TypeError::Occurs { .. }));
    }

    #[test]
    fn desc_kind_rejects_arrow() {
        let gen = var_gen();
        let v = gen.fresh_ty(Kind::Desc, 0);
        let err = unify(&v, &t_arrow(t_int(), t_int())).unwrap_err();
        assert!(matches!(err, TypeError::NotDescription(_)));
    }

    #[test]
    fn desc_kind_allows_ref_of_arrow() {
        let gen = var_gen();
        let v = gen.fresh_ty(Kind::Desc, 0);
        unify(&v, &t_ref(t_arrow(t_int(), t_int()))).unwrap();
    }

    #[test]
    fn desc_propagates_to_nested_vars() {
        let gen = var_gen();
        let inner = gen.fresh_ty(Kind::Any, 0);
        let d = gen.fresh_ty(Kind::Desc, 0);
        unify(&d, &t_set(inner.clone())).unwrap();
        let resolved = resolve(&inner);
        let Type::Var(v) = &*resolved else { panic!() };
        assert!(v.kind().requires_desc());
    }

    #[test]
    fn equirecursive_unification() {
        // rec a. <Nil:unit, Cons:int * a> unifies with its own unfolding.
        let mk = |id: u32| {
            Rc::new(Type::Rec(
                id,
                t_variant([
                    ("Nil".into(), t_unit()),
                    ("Cons".into(), t_tuple([t_int(), Rc::new(Type::RecVar(id))])),
                ]),
            ))
        };
        let r1 = mk(0);
        let r2 = mk(1);
        unify(&r1, &r2).unwrap();
        let unfolded = unfold_rec(&r1);
        unify(&unfolded, &r2).unwrap();
    }

    #[test]
    fn levels_adjust_on_bind() {
        let gen = var_gen();
        let shallow = gen.fresh(Kind::Any, 1);
        let deep = gen.fresh(Kind::Any, 5);
        let deep_ty: Ty = Rc::new(Type::Var(deep.clone()));
        let shallow_ty: Ty = Rc::new(Type::Var(shallow.clone()));
        unify(&shallow_ty, &t_set(deep_ty)).unwrap();
        assert_eq!(deep.level(), 1);
    }

    #[test]
    fn merge_desc_into_record_kind() {
        let gen = var_gen();
        let d = gen.fresh_ty(Kind::Desc, 0);
        let r = gen.fresh_ty(Kind::record([("A".into(), t_int())], false), 0);
        unify(&d, &r).unwrap();
        let resolved = resolve(&d);
        let Type::Var(v) = &*resolved else { panic!() };
        assert!(v.kind().requires_desc());
    }

    #[test]
    fn record_vs_variant_kind_conflict() {
        let gen = var_gen();
        let r = gen.fresh_ty(Kind::record([("A".into(), t_int())], false), 0);
        let v = gen.fresh_ty(Kind::variant([("A".into(), t_int())], false), 0);
        assert!(unify(&r, &v).is_err());
    }
}
