//! The thread-local **mutation epoch** and **dirty reference set**: the
//! write-side half of the index store's invalidation contract.
//!
//! Every reference-cell write (funnelled through
//! [`crate::RefValue::set`]) advances the epoch *and* records the
//! written ref's identity in a dirty set. Cache layers (the index store
//! in `machiavelli-store`) compare the epoch to detect that *some*
//! write happened, then drain the dirty set to decide *which* cached
//! entries could possibly be affected: an entry is evicted only when a
//! written ref is reachable from the relation it indexes. A write to a
//! ref no cached relation can reach evicts nothing — the fine-grained
//! replacement for the PR 4 behavior of dropping the whole store on any
//! write.
//!
//! Values are `Rc`-based and therefore thread-confined, so both pieces
//! of state are thread-local — no synchronization, no cross-thread
//! invalidation to reason about.
//!
//! The dirty set is bounded: past [`DIRTY_REFS_CAP`] distinct ids it
//! collapses to an *overflowed* marker, which consumers must treat as
//! "every ref may have been written" (evict everything reachable-from-
//! refs — the conservative PR 4 behavior). [`bump_mutation_epoch`], the
//! escape hatch for native code that mutates reference contents through
//! `borrow_mut` on the raw cell rather than `RefValue::set`, also
//! poisons the set: an unattributed write must be assumed to touch
//! anything.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;

/// Distinct written-ref ids tracked between cache validations; past
/// this the set collapses to the conservative "everything is dirty"
/// marker (a write burst this large is headed for a rebuild anyway).
pub const DIRTY_REFS_CAP: usize = 4096;

/// The identities written since the last [`take_dirty_refs`] drain.
/// `overflowed` means the precise set was lost (cap exceeded, or an
/// unattributed [`bump_mutation_epoch`] call): consumers must assume
/// every ref was written.
#[derive(Debug, Default)]
pub struct DirtyRefs {
    pub ids: HashSet<u64>,
    pub overflowed: bool,
}

impl DirtyRefs {
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty() && !self.overflowed
    }

    /// Does the dirty set intersect `sources` (a sorted id list)?
    /// Overflow intersects everything non-trivial — but an empty source
    /// list (a value that can reach no ref at all) intersects nothing,
    /// however much was written.
    pub fn intersects(&self, sources: &[u64]) -> bool {
        if sources.is_empty() {
            return false;
        }
        if self.overflowed {
            return true;
        }
        if sources.len() <= self.ids.len() {
            sources.iter().any(|id| self.ids.contains(id))
        } else {
            self.ids.iter().any(|id| sources.binary_search(id).is_ok())
        }
    }
}

thread_local! {
    static MUTATION_EPOCH: Cell<u64> = const { Cell::new(0) };
    static DIRTY_REFS: RefCell<DirtyRefs> = RefCell::new(DirtyRefs::default());
    static WAL_DIRTY: RefCell<DirtyRefs> = RefCell::new(DirtyRefs::default());
    static WAL_TRACKING: Cell<bool> = const { Cell::new(false) };
}

/// The current mutation epoch of this thread. Two reads returning the
/// same value bracket a window with no reference writes.
pub fn mutation_epoch() -> u64 {
    MUTATION_EPOCH.with(|c| c.get())
}

/// Record an **attributed** reference write: advance the epoch and add
/// the written ref's identity to the dirty set. Called by
/// [`crate::RefValue::set`] — the single choke point every ref write
/// goes through (the evaluator's `:=`, the OODB object store's updates,
/// persistence decoding). Public so tests and native ref-like layers
/// can report precise identities.
pub fn note_ref_write(id: u64) {
    MUTATION_EPOCH.with(|c| c.set(c.get().wrapping_add(1)));
    DIRTY_REFS.with(|d| record_dirty(d, id));
    if WAL_TRACKING.with(Cell::get) {
        WAL_DIRTY.with(|d| record_dirty(d, id));
    }
}

fn record_dirty(d: &RefCell<DirtyRefs>, id: u64) {
    let mut d = d.borrow_mut();
    if d.overflowed {
        return;
    }
    if d.ids.len() >= DIRTY_REFS_CAP {
        d.ids.clear();
        d.overflowed = true;
    } else {
        d.ids.insert(id);
    }
}

/// Advance the mutation epoch for an **unattributed** write — native
/// code that mutates reference contents through `borrow_mut` on the raw
/// cell rather than `RefValue::set`. The dirty set is poisoned
/// (overflowed): with no identity to record, every cached entry must be
/// assumed affected, exactly the PR 4 whole-store behavior.
pub fn bump_mutation_epoch() {
    MUTATION_EPOCH.with(|c| c.set(c.get().wrapping_add(1)));
    DIRTY_REFS.with(poison_dirty);
    if WAL_TRACKING.with(Cell::get) {
        WAL_DIRTY.with(poison_dirty);
    }
}

fn poison_dirty(d: &RefCell<DirtyRefs>) {
    let mut d = d.borrow_mut();
    d.ids.clear();
    d.overflowed = true;
}

/// Drain the dirty set, leaving it empty. The single consumer is the
/// thread's index store (one store per thread), which drains on every
/// epoch advance it observes; draining with no intervening writes
/// returns an empty set.
pub fn take_dirty_refs() -> DirtyRefs {
    DIRTY_REFS.with(|d| std::mem::take(&mut *d.borrow_mut()))
}

/// Enable (or disable) the **write-ahead-log dirty channel** on this
/// thread, returning the previous setting. The index store's dirty set
/// above has exactly one consumer (the store drains it on every query),
/// so the durability layer (`machiavelli-wal`) cannot share it: with
/// tracking on, [`note_ref_write`] records every written identity in a
/// *second*, independently drained set ([`take_wal_dirty_refs`]) with
/// the same cap/overflow discipline. Off by default — sessions that
/// never attach a log pay a single thread-local load per write.
pub fn set_wal_tracking(on: bool) -> bool {
    WAL_TRACKING.with(|c| c.replace(on))
}

/// Is the WAL dirty channel live on this thread?
pub fn wal_tracking() -> bool {
    WAL_TRACKING.with(Cell::get)
}

/// Drain the WAL dirty set, leaving it empty. The consumer is the
/// session's attached log (`machiavelli-wal`), which drains at each
/// commit point; an `overflowed` result means precise attribution was
/// lost (cap exceeded or an unattributed write) and the consumer must
/// fall back to a full checkpoint.
pub fn take_wal_dirty_refs() -> DirtyRefs {
    WAL_DIRTY.with(|d| std::mem::take(&mut *d.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{RefValue, Value};

    #[test]
    fn ref_writes_advance_the_epoch_and_record_identity() {
        let _ = take_dirty_refs();
        let before = mutation_epoch();
        let r = RefValue::new(Value::Int(1));
        assert_eq!(
            mutation_epoch(),
            before,
            "allocation is not a write — fresh refs cannot be cached yet"
        );
        r.set(Value::Int(2));
        assert!(mutation_epoch() > before);
        let dirty = take_dirty_refs();
        assert!(dirty.ids.contains(&r.id), "{dirty:?}");
        assert!(!dirty.overflowed);
        assert!(take_dirty_refs().is_empty(), "drain leaves it empty");
    }

    #[test]
    fn unattributed_bump_poisons_the_set() {
        let _ = take_dirty_refs();
        bump_mutation_epoch();
        let dirty = take_dirty_refs();
        assert!(dirty.overflowed);
        assert!(dirty.intersects(&[1, 2, 3]), "overflow intersects all");
    }

    #[test]
    fn intersects_checks_sorted_sources() {
        let mut dirty = DirtyRefs::default();
        dirty.ids.insert(7);
        assert!(dirty.intersects(&[3, 7, 9]));
        assert!(!dirty.intersects(&[3, 8, 9]));
        assert!(!dirty.intersects(&[]));
    }

    #[test]
    fn wal_channel_fills_only_while_tracking() {
        let _ = take_dirty_refs();
        let _ = take_wal_dirty_refs();
        let r = RefValue::new(Value::Int(0));
        r.set(Value::Int(1));
        assert!(
            take_wal_dirty_refs().is_empty(),
            "tracking off: the WAL channel stays empty"
        );
        let prev = set_wal_tracking(true);
        assert!(!prev, "tracking defaults to off");
        r.set(Value::Int(2));
        let wal = take_wal_dirty_refs();
        assert!(wal.ids.contains(&r.id), "{wal:?}");
        assert!(!wal.overflowed);
        bump_mutation_epoch();
        assert!(
            take_wal_dirty_refs().overflowed,
            "unattributed writes poison the WAL channel too"
        );
        set_wal_tracking(false);
        // The store's channel saw every write regardless of WAL tracking.
        let store = take_dirty_refs();
        assert!(store.overflowed || store.ids.contains(&r.id));
    }

    #[test]
    fn cap_overflow_collapses() {
        let _ = take_dirty_refs();
        for id in 0..(DIRTY_REFS_CAP as u64 + 2) {
            note_ref_write(id);
        }
        let dirty = take_dirty_refs();
        assert!(dirty.overflowed);
    }
}
