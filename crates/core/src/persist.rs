//! Persistence (§6: "the most important \[way\] in which Machiavelli needs
//! to be augmented … is the implementation of persistence").
//!
//! Description values serialize to a compact, self-contained text format:
//!
//! * reference cells are hoisted into a table keyed by local ids, so
//!   **sharing and cycles survive** a save/load round trip (two records
//!   sharing a department object still share it after loading);
//! * identities are *fresh* on load — object identity is per session, as
//!   the paper defines it, so loaded objects equal each other exactly
//!   according to the saved sharing structure;
//! * function values do not persist (they are not description values).
//!
//! [`Session::save_bindings`](crate::Session::save_bindings) /
//! [`Session::load_bindings`](crate::Session::load_bindings) persist
//! whole top-level bindings together with their (printed) types.
//!
//! Grammar of the value encoding (`<n>` are decimal lengths/counts/ids):
//!
//! ```text
//! v ::= u | T | F | i<n>: | f<bits>: | s<n>:<bytes>
//!     | R<n>{ l v … }   record with n fields (labels length-prefixed)
//!     | V l v           variant
//!     | S<n>[ v … ]     set
//!     | r<id>           reference (table index)
//!     | d<id> v         dynamic (identity table index, payload inline)
//! ```

use machiavelli_value::{DynValue, Fields, MSet, RefValue, Symbol, Value};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors from encoding/decoding persisted values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Function values (closures, operators, builtins) cannot persist.
    NotADescription,
    /// The input is malformed at the given byte offset.
    Malformed {
        offset: usize,
        expected: &'static str,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::NotADescription => {
                write!(
                    f,
                    "function values are not description values and cannot persist"
                )
            }
            PersistError::Malformed { offset, expected } => {
                write!(
                    f,
                    "malformed persisted value at byte {offset}: expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Encode a description value (with its reachable reference graph).
pub fn encode_value(v: &Value) -> Result<String, PersistError> {
    let mut enc = Encoder::default();
    let body = enc.encode(v)?;
    // Emit the ref table first: `refs<n>{ <id>=<value> … }`. Cells may
    // reference each other (and themselves), which is fine because ids
    // are assigned before contents are encoded.
    let mut out = String::new();
    let _ = write!(out, "refs{}{{", enc.table.len());
    // Table entries in id order for determinism.
    let mut entries: Vec<(u32, String)> = enc.table.into_values().collect();
    entries.sort_by_key(|(id, _)| *id);
    for (id, contents) in entries {
        let _ = write!(out, "{id}={contents};");
    }
    out.push('}');
    out.push_str(&body);
    Ok(out)
}

/// Decode a value previously produced by [`encode_value`]. All reference
/// and dynamic identities are freshly allocated (per-session identity).
pub fn decode_value(src: &str) -> Result<Value, PersistError> {
    let mut dec = Decoder {
        src: src.as_bytes(),
        pos: 0,
        refs: HashMap::new(),
    };
    dec.expect("refs")?;
    let n = dec.count()?;
    dec.expect("{")?;
    // Pass 1: allocate all cells (so cyclic references resolve).
    let mut bodies: Vec<(u32, usize)> = Vec::with_capacity(clamped(n));
    for _ in 0..n {
        let id = dec.unsigned()? as u32;
        dec.expect("=")?;
        let start = dec.pos;
        dec.skip_value()?;
        let end = dec.pos;
        dec.expect(";")?;
        dec.refs.insert(id, RefValue::new(Value::Unit));
        bodies.push((id, start));
        let _ = end;
    }
    dec.expect("}")?;
    let root_start = dec.pos;
    // Pass 2: decode each cell's contents with the full table in scope.
    for (id, start) in &bodies {
        let mut cell_dec = Decoder {
            src: dec.src,
            pos: *start,
            refs: dec.refs.clone(),
        };
        let contents = cell_dec.value()?;
        let Some(cell) = dec.refs.get(id) else {
            // Unreachable (every id was inserted in pass 1), but a
            // decoder bug must surface as an error, never a panic: a
            // malformed persist file may be fed to a server-hosted
            // session.
            return Err(PersistError::Malformed {
                offset: *start,
                expected: "a reserved ref id",
            });
        };
        cell.set(contents);
    }
    let mut root_dec = Decoder {
        src: dec.src,
        pos: root_start,
        refs: dec.refs.clone(),
    };
    let v = root_dec.value()?;
    if root_dec.pos != dec.src.len() {
        return Err(PersistError::Malformed {
            offset: root_dec.pos,
            expected: "end of input",
        });
    }
    Ok(v)
}

#[derive(Default)]
struct Encoder {
    /// Original ref identity → (local id, encoded contents).
    table: BTreeMap<u64, (u32, String)>,
    next: u32,
}

impl Encoder {
    fn encode(&mut self, v: &Value) -> Result<String, PersistError> {
        let mut out = String::new();
        self.write(v, &mut out)?;
        Ok(out)
    }

    fn write(&mut self, v: &Value, out: &mut String) -> Result<(), PersistError> {
        match v {
            Value::Unit => out.push('u'),
            Value::Bool(true) => out.push('T'),
            Value::Bool(false) => out.push('F'),
            Value::Int(n) => {
                let _ = write!(out, "i{n}:");
            }
            Value::Real(r) => {
                let _ = write!(out, "f{}:", r.to_bits());
            }
            Value::Str(s) => {
                let _ = write!(out, "s{}:{s}", s.len());
            }
            Value::Record(fs) => {
                let _ = write!(out, "R{}{{", fs.len());
                for (l, fv) in fs {
                    let _ = write!(out, "l{}:{l}", l.len());
                    self.write(fv, out)?;
                }
                out.push('}');
            }
            Value::Variant(l, p) => {
                let _ = write!(out, "Vl{}:{l}", l.len());
                self.write(p, out)?;
            }
            Value::Set(items) => {
                let _ = write!(out, "S{}[", items.len());
                for item in items.iter() {
                    self.write(item, out)?;
                }
                out.push(']');
            }
            Value::Ref(r) => {
                let local = match self.table.get(&r.id) {
                    Some((local, _)) => *local,
                    None => {
                        let local = self.next;
                        self.next += 1;
                        // Reserve the slot before recursing (cycles!),
                        // then fill it; the slot cannot have vanished,
                        // but degrade to re-inserting rather than
                        // panicking if an encoder bug ever drops it.
                        self.table.insert(r.id, (local, String::new()));
                        let contents = self.encode(&r.get())?;
                        match self.table.get_mut(&r.id) {
                            Some(slot) => slot.1 = contents,
                            None => {
                                self.table.insert(r.id, (local, contents));
                            }
                        }
                        local
                    }
                };
                let _ = write!(out, "r{local}.");
            }
            Value::Dynamic(d) => {
                let _ = write!(out, "d{}.", d.id);
                self.write(&d.value, out)?;
            }
            Value::Closure(_) | Value::Op(_) | Value::Builtin(_) => {
                return Err(PersistError::NotADescription)
            }
        }
        Ok(())
    }
}

/// Cap speculative pre-allocation from decoded counts: a malformed (or
/// hostile) length prefix must cost a `Malformed` error downstream, not
/// an allocation abort here. Honest inputs still reserve exactly once
/// for anything up to this size.
fn clamped(n: usize) -> usize {
    n.min(1024)
}

struct Decoder<'a> {
    src: &'a [u8],
    pos: usize,
    refs: HashMap<u32, RefValue>,
}

impl Decoder<'_> {
    fn err(&self, expected: &'static str) -> PersistError {
        PersistError::Malformed {
            offset: self.pos,
            expected,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, lit: &'static str) -> Result<(), PersistError> {
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(lit))
        }
    }

    fn number(&mut self) -> Result<i64, PersistError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("a number"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("a number"))
    }

    /// A decoded element/field count. Counts are never negative, so
    /// they parse as unsigned — a `-` here is malformed input, not a
    /// huge wrapped `usize`.
    fn count(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.unsigned()?).map_err(|_| self.err("a count"))
    }

    fn unsigned(&mut self) -> Result<u64, PersistError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("an unsigned number"))
    }

    fn sized_str(&mut self) -> Result<String, PersistError> {
        let n = self.count()?;
        self.expect(":")?;
        let end = self.pos.checked_add(n).filter(|&e| e <= self.src.len());
        let Some(end) = end else {
            return Err(self.err("string bytes"));
        };
        let s = std::str::from_utf8(&self.src[self.pos..end])
            .map_err(|_| self.err("utf-8 string"))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    fn label(&mut self) -> Result<String, PersistError> {
        self.expect("l")?;
        self.sized_str()
    }

    fn value(&mut self) -> Result<Value, PersistError> {
        match self.peek() {
            Some(b'u') => {
                self.pos += 1;
                Ok(Value::Unit)
            }
            Some(b'T') => {
                self.pos += 1;
                Ok(Value::Bool(true))
            }
            Some(b'F') => {
                self.pos += 1;
                Ok(Value::Bool(false))
            }
            Some(b'i') => {
                self.pos += 1;
                let n = self.number()?;
                self.expect(":")?;
                Ok(Value::Int(n))
            }
            Some(b'f') => {
                self.pos += 1;
                let bits = self.unsigned()?;
                self.expect(":")?;
                Ok(Value::Real(f64::from_bits(bits)))
            }
            Some(b's') => {
                self.pos += 1;
                Ok(Value::str(self.sized_str()?))
            }
            Some(b'R') => {
                self.pos += 1;
                let n = self.count()?;
                self.expect("{")?;
                let mut fs = Vec::with_capacity(clamped(n));
                for _ in 0..n {
                    let l = self.label()?;
                    let v = self.value()?;
                    fs.push((Symbol::intern(&l), v));
                }
                self.expect("}")?;
                Ok(Value::Record(Fields::from_vec(fs)))
            }
            Some(b'V') => {
                self.pos += 1;
                let l = self.label()?;
                let p = self.value()?;
                Ok(Value::Variant(Symbol::intern(&l), Box::new(p)))
            }
            Some(b'S') => {
                self.pos += 1;
                let n = self.count()?;
                self.expect("[")?;
                let mut items = Vec::with_capacity(clamped(n));
                for _ in 0..n {
                    items.push(self.value()?);
                }
                self.expect("]")?;
                Ok(Value::Set(MSet::from_iter(items)))
            }
            Some(b'r') => {
                self.pos += 1;
                let id = self.unsigned()? as u32;
                self.expect(".")?;
                let cell = self
                    .refs
                    .get(&id)
                    .ok_or_else(|| self.err("a known ref id"))?;
                Ok(Value::Ref(cell.clone()))
            }
            Some(b'd') => {
                self.pos += 1;
                let _saved_id = self.unsigned()?;
                self.expect(".")?;
                let payload = self.value()?;
                // Fresh identity, as for refs.
                Ok(Value::Dynamic(DynValue::new(payload, None)))
            }
            _ => Err(self.err("a value tag")),
        }
    }

    /// Skip over one encoded value without building it (used to find the
    /// extents of ref-table entries before cells exist).
    fn skip_value(&mut self) -> Result<(), PersistError> {
        match self.peek() {
            Some(b'u' | b'T' | b'F') => {
                self.pos += 1;
                Ok(())
            }
            Some(b'i') => {
                self.pos += 1;
                self.number()?;
                self.expect(":")
            }
            Some(b'f') => {
                self.pos += 1;
                self.unsigned()?;
                self.expect(":")
            }
            Some(b's') => {
                self.pos += 1;
                self.sized_str()?;
                Ok(())
            }
            Some(b'R') => {
                self.pos += 1;
                let n = self.count()?;
                self.expect("{")?;
                for _ in 0..n {
                    self.label()?;
                    self.skip_value()?;
                }
                self.expect("}")
            }
            Some(b'V') => {
                self.pos += 1;
                self.label()?;
                self.skip_value()
            }
            Some(b'S') => {
                self.pos += 1;
                let n = self.count()?;
                self.expect("[")?;
                for _ in 0..n {
                    self.skip_value()?;
                }
                self.expect("]")
            }
            Some(b'r') => {
                self.pos += 1;
                self.unsigned()?;
                self.expect(".")
            }
            Some(b'd') => {
                self.pos += 1;
                self.unsigned()?;
                self.expect(".")?;
                self.skip_value()
            }
            _ => Err(self.err("a value tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let enc = encode_value(v).unwrap();
        decode_value(&enc).unwrap_or_else(|e| panic!("decode {enc:?}: {e}"))
    }

    #[test]
    fn base_values_roundtrip() {
        for v in [
            Value::Unit,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Real(2.5),
            Value::str("héllo: with, punctuation{}[]"),
            Value::str(""),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn real_bits_preserved() {
        let v = Value::Real(f64::NAN);
        let Value::Real(r) = roundtrip(&v) else {
            panic!()
        };
        assert!(r.is_nan());
        assert_eq!(roundtrip(&Value::Real(-0.0)), Value::Real(-0.0));
    }

    #[test]
    fn structures_roundtrip() {
        let v = Value::set([
            Value::record([
                ("Name".into(), Value::str("Joe")),
                ("Tags".into(), Value::set([Value::Int(1), Value::Int(2)])),
            ]),
            Value::record([
                ("Name".into(), Value::str("Sue")),
                ("Tags".into(), Value::set([])),
            ]),
        ]);
        assert_eq!(roundtrip(&v), v);
        let v = Value::variant("BasePart", Value::record([("Cost".into(), Value::Int(5))]));
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn sharing_is_preserved() {
        // Two employees share one department: after loading, updating
        // through one is visible through the other.
        let dept = RefValue::new(Value::record([("Building".into(), Value::Int(45))]));
        let v = Value::tuple([
            Value::record([("Dept".into(), Value::Ref(dept.clone()))]),
            Value::record([("Dept".into(), Value::Ref(dept))]),
        ]);
        let loaded = roundtrip(&v);
        let Value::Record(pair) = &loaded else {
            panic!()
        };
        let (Value::Record(e1), Value::Record(e2)) = (&pair["#1"], &pair["#2"]) else {
            panic!()
        };
        let (Value::Ref(d1), Value::Ref(d2)) = (&e1["Dept"], &e2["Dept"]) else {
            panic!()
        };
        assert_eq!(d1.id, d2.id, "sharing preserved");
        d1.set(Value::record([("Building".into(), Value::Int(67))]));
        assert_eq!(
            d2.get(),
            Value::record([("Building".into(), Value::Int(67))])
        );
    }

    #[test]
    fn unshared_refs_stay_unshared() {
        let v = Value::tuple([
            Value::Ref(RefValue::new(Value::Int(3))),
            Value::Ref(RefValue::new(Value::Int(3))),
        ]);
        let loaded = roundtrip(&v);
        let Value::Record(pair) = &loaded else {
            panic!()
        };
        assert_ne!(pair["#1"], pair["#2"], "distinct identities");
    }

    #[test]
    fn cyclic_refs_roundtrip() {
        let cell = RefValue::new(Value::Unit);
        cell.set(Value::record([("Self".into(), Value::Ref(cell.clone()))]));
        let loaded = roundtrip(&Value::Ref(cell));
        let Value::Ref(r) = &loaded else { panic!() };
        let Value::Record(fs) = r.get() else { panic!() };
        let Value::Ref(inner) = &fs["Self"] else {
            panic!()
        };
        assert_eq!(inner.id, r.id, "cycle closed");
    }

    #[test]
    fn dynamics_roundtrip_with_fresh_identity() {
        let v = Value::Dynamic(DynValue::new(Value::str("payload"), None));
        let loaded = roundtrip(&v);
        let Value::Dynamic(d) = &loaded else { panic!() };
        assert_eq!(*d.value, Value::str("payload"));
        assert_ne!(loaded, v, "fresh identity on load");
    }

    #[test]
    fn functions_refuse_to_persist() {
        let v = Value::Op(machiavelli_syntax::ast::BinOp::Add);
        assert_eq!(encode_value(&v), Err(PersistError::NotADescription));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "refs0{}x",
            "refs0{}i1",
            "refs1{0=i1:;}r9.",
            "refs0{}s5:ab",
        ] {
            assert!(decode_value(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn hostile_length_prefixes_error_instead_of_aborting() {
        // Each input claims an astronomically large element count or a
        // negative one. Decoding must fail with `Malformed` — without
        // pre-allocating by the claimed count (an allocation abort is a
        // panic a server-hosted session can never be allowed to hit).
        for bad in [
            "refs0{}S99999999999999999[u]",     // set count ≫ input
            "refs0{}R99999999999999999{l1:Au}", // record count ≫ input
            "refs99999999999999999{}u",         // ref-table count ≫ input
            "refs0{}S-3[u]",                    // negative set count
            "refs0{}R-1{}",                     // negative record count
            "refs0{}s-5:abc",                   // negative string length
            "refs0{}s99999999999999999:abc",    // string length ≫ input
            "refs1{-1=u;}u",                    // negative ref id
            "refs0{}r-1.",                      // negative ref id use
            "refs0{}S18446744073709551617[u]",  // count > u64::MAX
        ] {
            assert!(decode_value(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let enc = encode_value(&Value::Int(1)).unwrap();
        assert!(decode_value(&format!("{enc}u")).is_err());
    }
}
