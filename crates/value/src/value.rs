//! The runtime value representation.
//!
//! Description values (§2 of the paper) carry a *total order* so sets can
//! be kept canonical (sorted, deduplicated): equality of sets is then
//! plain structural equality, matching the paper's mathematical sets.
//!
//! * records — ordered field maps;
//! * variants — a label plus payload;
//! * sets — [`crate::set::MSet`], always canonical;
//! * references — a mutable cell plus a session-unique id; equality and
//!   order are *identity* (`ref(3) = ref(3)` is `false`, per §5);
//! * dynamics — a value packaged with its runtime type; compared by the
//!   identity of the `dynamic` invocation that created them (§5).

use crate::set::MSet;
use machiavelli_syntax::ast::{BinOp, Expr};
use machiavelli_types::Ty;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Record/variant labels.
pub type Label = String;

/// Session-unique identity supply for references and dynamics.
static NEXT_IDENTITY: AtomicU64 = AtomicU64::new(1);

fn fresh_identity() -> u64 {
    NEXT_IDENTITY.fetch_add(1, AtomicOrdering::Relaxed)
}

/// A mutable reference cell with object identity.
#[derive(Debug, Clone)]
pub struct RefValue {
    pub id: u64,
    pub cell: Rc<RefCell<Value>>,
}

impl RefValue {
    /// Allocate a fresh reference (fresh identity).
    pub fn new(v: Value) -> Self {
        RefValue { id: fresh_identity(), cell: Rc::new(RefCell::new(v)) }
    }

    /// Read the current contents (cloned).
    pub fn get(&self) -> Value {
        self.cell.borrow().clone()
    }

    /// Overwrite the contents.
    pub fn set(&self, v: Value) {
        *self.cell.borrow_mut() = v;
    }
}

/// A dynamic value: payload + its description type, with creation
/// identity (two dynamics are equal only if created by the same
/// `dynamic(…)` invocation).
#[derive(Debug, Clone)]
pub struct DynValue {
    pub id: u64,
    pub value: Rc<Value>,
    /// The runtime type recorded at creation, when known.
    pub ty: Option<Ty>,
}

impl DynValue {
    pub fn new(v: Value, ty: Option<Ty>) -> Self {
        DynValue { id: fresh_identity(), value: Rc::new(v), ty }
    }
}

/// A function closure: parameters, body, captured environment.
#[derive(Debug)]
pub struct Closure {
    pub params: Vec<String>,
    pub body: Expr,
    pub env: Env,
    /// For recursive closures (`fun` / `rec`): the closure's own name,
    /// rebound to itself at application time.
    pub rec_name: Option<String>,
}

/// Builtin function values (identifiers in the initial environment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `union : ({"a} * {"a}) -> {"a}` as a first-class value.
    Union,
    /// `not : bool -> bool`.
    Not,
    /// `applyc(f, x)` — §6's coercion application: statically the
    /// argument may be any description ≥ the domain; dynamically the
    /// application is ordinary (field access is structural).
    ApplyC,
}

/// A Machiavelli runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    Unit,
    Int(i64),
    Real(f64),
    Str(String),
    Bool(bool),
    Record(BTreeMap<Label, Value>),
    Variant(Label, Box<Value>),
    Set(MSet),
    Ref(RefValue),
    Dynamic(DynValue),
    Closure(Rc<Closure>),
    /// A first-class infix operator (`hom(f, +, 0, S)`).
    Op(BinOp),
    Builtin(Builtin),
}

impl Value {
    pub fn record(fields: impl IntoIterator<Item = (Label, Value)>) -> Value {
        Value::Record(fields.into_iter().collect())
    }

    pub fn variant(label: impl Into<Label>, payload: Value) -> Value {
        Value::Variant(label.into(), Box::new(payload))
    }

    pub fn set(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Set(MSet::from_iter(items))
    }

    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// An n-ary tuple (record with `#1`, … labels).
    pub fn tuple(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Record(
            items
                .into_iter()
                .enumerate()
                .map(|(i, v)| (format!("#{}", i + 1), v))
                .collect(),
        )
    }

    /// True for values on which equality (and set membership) is defined.
    pub fn is_description(&self) -> bool {
        match self {
            Value::Unit
            | Value::Int(_)
            | Value::Real(_)
            | Value::Str(_)
            | Value::Bool(_)
            | Value::Ref(_)
            | Value::Dynamic(_) => true,
            Value::Record(fs) => fs.values().all(Value::is_description),
            Value::Variant(_, p) => p.is_description(),
            Value::Set(s) => s.iter().all(Value::is_description),
            Value::Closure(_) | Value::Op(_) | Value::Builtin(_) => false,
        }
    }

    /// Constructor rank for the total order.
    fn rank(&self) -> u8 {
        match self {
            Value::Unit => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Real(_) => 3,
            Value::Str(_) => 4,
            Value::Record(_) => 5,
            Value::Variant(..) => 6,
            Value::Set(_) => 7,
            Value::Ref(_) => 8,
            Value::Dynamic(_) => 9,
            Value::Closure(_) => 10,
            Value::Op(_) => 11,
            Value::Builtin(_) => 12,
        }
    }
}

/// Total order over all values. Description values order structurally
/// (reals via IEEE `total_cmp`; refs and dynamics by identity); function
/// values order by address/opcode so the order stays total — the type
/// system keeps them out of sets.
pub fn value_cmp(a: &Value, b: &Value) -> Ordering {
    use Value::*;
    let rank_cmp = a.rank().cmp(&b.rank());
    if rank_cmp != Ordering::Equal {
        return rank_cmp;
    }
    match (a, b) {
        (Unit, Unit) => Ordering::Equal,
        (Bool(x), Bool(y)) => x.cmp(y),
        (Int(x), Int(y)) => x.cmp(y),
        (Real(x), Real(y)) => x.total_cmp(y),
        (Str(x), Str(y)) => x.cmp(y),
        (Record(xs), Record(ys)) => {
            // Compare label-wise; shorter/lexicographically-earlier label
            // sets first.
            let mut xi = xs.iter();
            let mut yi = ys.iter();
            loop {
                match (xi.next(), yi.next()) {
                    (None, None) => return Ordering::Equal,
                    (None, Some(_)) => return Ordering::Less,
                    (Some(_), None) => return Ordering::Greater,
                    (Some((lx, vx)), Some((ly, vy))) => {
                        let lc = lx.cmp(ly);
                        if lc != Ordering::Equal {
                            return lc;
                        }
                        let vc = value_cmp(vx, vy);
                        if vc != Ordering::Equal {
                            return vc;
                        }
                    }
                }
            }
        }
        (Variant(lx, px), Variant(ly, py)) => {
            let lc = lx.cmp(ly);
            if lc != Ordering::Equal {
                return lc;
            }
            value_cmp(px, py)
        }
        (Set(xs), Set(ys)) => {
            let mut xi = xs.iter();
            let mut yi = ys.iter();
            loop {
                match (xi.next(), yi.next()) {
                    (None, None) => return Ordering::Equal,
                    (None, Some(_)) => return Ordering::Less,
                    (Some(_), None) => return Ordering::Greater,
                    (Some(x), Some(y)) => {
                        let c = value_cmp(x, y);
                        if c != Ordering::Equal {
                            return c;
                        }
                    }
                }
            }
        }
        (Ref(x), Ref(y)) => x.id.cmp(&y.id),
        (Dynamic(x), Dynamic(y)) => x.id.cmp(&y.id),
        (Closure(x), Closure(y)) => (Rc::as_ptr(x) as usize).cmp(&(Rc::as_ptr(y) as usize)),
        (Op(x), Op(y)) => (*x as u8).cmp(&(*y as u8)),
        (Builtin(x), Builtin(y)) => (*x as u8).cmp(&(*y as u8)),
        _ => unreachable!("rank() already discriminated"),
    }
}

/// Structural equality (identity for refs, dynamics, closures).
pub fn value_eq(a: &Value, b: &Value) -> bool {
    value_cmp(a, b) == Ordering::Equal
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        value_eq(self, other)
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        value_cmp(self, other)
    }
}

// --- environments --------------------------------------------------------

/// A persistent (shared-tail) evaluation environment.
#[derive(Debug, Clone, Default)]
pub struct Env {
    head: Option<Rc<EnvNode>>,
}

#[derive(Debug)]
struct EnvNode {
    name: String,
    value: RefCell<Value>,
    next: Option<Rc<EnvNode>>,
}

impl Env {
    pub fn new() -> Env {
        Env::default()
    }

    /// Extend with a binding, returning the new environment (the original
    /// is untouched — closures capture cheaply).
    pub fn bind(&self, name: impl Into<String>, value: Value) -> Env {
        Env {
            head: Some(Rc::new(EnvNode {
                name: name.into(),
                value: RefCell::new(value),
                next: self.head.clone(),
            })),
        }
    }

    /// Look up a name (innermost binding wins).
    pub fn lookup(&self, name: &str) -> Option<Value> {
        let mut cur = self.head.as_ref();
        while let Some(node) = cur {
            if node.name == name {
                return Some(node.value.borrow().clone());
            }
            cur = node.next.as_ref();
        }
        None
    }

    /// Overwrite the innermost binding of `name` (used to tie recursive
    /// knots for `fun`).
    pub fn set(&self, name: &str, value: Value) -> bool {
        let mut cur = self.head.as_ref();
        while let Some(node) = cur {
            if node.name == name {
                *node.value.borrow_mut() = value;
                return true;
            }
            cur = node.next.as_ref();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_identity_equality() {
        let a = Value::Ref(RefValue::new(Value::Int(3)));
        let b = Value::Ref(RefValue::new(Value::Int(3)));
        assert_ne!(a, b, "ref(3) = ref(3) must be false (object identity)");
        assert_eq!(a, a.clone());
    }

    #[test]
    fn ref_mutation_shared() {
        let r = RefValue::new(Value::Int(1));
        let alias = Value::Ref(r.clone());
        r.set(Value::Int(2));
        let Value::Ref(r2) = &alias else { panic!() };
        assert_eq!(r2.get(), Value::Int(2));
    }

    #[test]
    fn dynamic_identity() {
        let a = Value::Dynamic(DynValue::new(Value::Int(3), None));
        let b = Value::Dynamic(DynValue::new(Value::Int(3), None));
        assert_ne!(a, b);
    }

    #[test]
    fn record_equality_ignores_insertion_order() {
        let a = Value::record([("B".into(), Value::Int(2)), ("A".into(), Value::Int(1))]);
        let b = Value::record([("A".into(), Value::Int(1)), ("B".into(), Value::Int(2))]);
        assert_eq!(a, b);
    }

    #[test]
    fn total_order_across_constructors() {
        let mut vals = [Value::Str("z".into()),
            Value::Int(0),
            Value::Unit,
            Value::Bool(true)];
        vals.sort();
        assert_eq!(vals[0], Value::Unit);
        assert!(matches!(vals[3], Value::Str(_)));
    }

    #[test]
    fn real_total_cmp_handles_nan() {
        let a = Value::Real(f64::NAN);
        let b = Value::Real(1.0);
        // No panic, deterministic order.
        let _ = value_cmp(&a, &b);
        assert_eq!(value_cmp(&a, &a.clone()), Ordering::Equal);
    }

    #[test]
    fn env_shadowing_and_sharing() {
        let base = Env::new().bind("x", Value::Int(1));
        let inner = base.bind("x", Value::Int(2));
        assert_eq!(base.lookup("x"), Some(Value::Int(1)));
        assert_eq!(inner.lookup("x"), Some(Value::Int(2)));
        assert_eq!(inner.lookup("y"), None);
    }

    #[test]
    fn env_set_ties_knots() {
        let env = Env::new().bind("f", Value::Unit);
        assert!(env.set("f", Value::Int(42)));
        assert_eq!(env.lookup("f"), Some(Value::Int(42)));
        assert!(!env.set("g", Value::Unit));
    }

    #[test]
    fn is_description() {
        assert!(Value::record([("A".into(), Value::Int(1))]).is_description());
        assert!(Value::Ref(RefValue::new(Value::Unit)).is_description());
        assert!(!Value::Op(BinOp::Add).is_description());
    }
}
