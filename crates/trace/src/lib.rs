//! **Query tracing for the Machiavelli engine** — a zero-cost-when-off,
//! thread-local trace of what the physical pipeline actually did, plus
//! the engine-wide **decline taxonomy** and the process-wide query
//! latency histogram the server's `METRICS` verb exposes.
//!
//! The engine has five execution lanes (interpreted `select_loop`,
//! sequential planner pipeline, cached-index probes, partition-parallel
//! joins, columnar morsels) that choose among themselves at run time.
//! Before this crate the only record of those choices was a handful of
//! aggregate hit/fallback counters: when a pipeline silently fell back,
//! nothing said *which operator* declined or *why*. This crate supplies
//! the missing structure:
//!
//! - **Spans** ([`OpSpan`]): one per physical operator open, recording
//!   wall time (open + cumulative `next`), rows yielded, the lane the
//!   operator actually ran on ([`Lane`]), and the index-store outcome
//!   ([`CacheOutcome`]). Spans nest by operator tree position and are
//!   collected into a [`QueryTrace`] per traced query, drained via
//!   [`take_events`] (surfaced as `Session::trace_events` and rendered
//!   by `Session::analyze` / the REPL's `:analyze`).
//! - **Declines** ([`DeclineReason`]): every runtime fallback anywhere
//!   in the engine — planner fallback, parallel-lane decline, columnar
//!   decline, store non-cacheability — reports a *typed code* through
//!   [`note_decline`], not just a bare counter bump. Decline counts are
//!   kept **twice**: per-session (thread-local, reset with the other
//!   session stats — `Session::stats` / `reset_stats`) and
//!   process-wide (atomics, feeding `METRICS` across server workers).
//!   Decline accounting is *always on*; only span attachment is gated
//!   on tracing. Declines fire at most once per runtime fallback that
//!   the existing lane counters already count as a fallback — static
//!   ineligibility (lane disabled, sub-threshold input, shape not
//!   eligible) stays uncounted, matching the counter discipline.
//! - **Latency histogram**: fixed-bucket process-wide histogram of
//!   per-query wall time ([`observe_query_ns`] / [`latency_snapshot`]),
//!   rendered Prometheus-style by the server.
//!
//! **Zero cost when off.** Tracing resolves thread-local override →
//! `MACHIAVELLI_TRACE` env (read once) → off. Every span entry point
//! checks [`active`] first and returns immediately when tracing is off
//! or no query is open; span labels are built through closures so the
//! formatting cost is never paid off-trace. The clock is only read
//! while tracing. `pipeline_bench` carries a smoke asserting the
//! off-path stays within noise of a build without any trace calls.
//!
//! **Clock hook.** Wall time comes from a caller-replaceable monotonic
//! clock ([`set_clock`]); the default reads a process-epoch
//! `Instant`. Golden tests install `|| 0` so rendered times are
//! deterministic.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

// --- enable / disable ------------------------------------------------------

thread_local! {
    static TRACING: Cell<Option<bool>> = const { Cell::new(None) };
    static CLOCK: Cell<Option<fn() -> u64>> = const { Cell::new(None) };
    static TRACER: RefCell<Tracer> = const { RefCell::new(Tracer::new()) };
    static DECLINES: RefCell<[u64; DeclineReason::COUNT]> =
        const { RefCell::new([0; DeclineReason::COUNT]) };
}

/// Is tracing enabled on this thread (= session)? Thread-local override
/// → `MACHIAVELLI_TRACE` env (`1`/`true`, read once per process) → off.
pub fn tracing_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    TRACING.with(Cell::get).unwrap_or_else(|| {
        *ENV.get_or_init(|| {
            std::env::var("MACHIAVELLI_TRACE")
                .map(|s| {
                    let s = s.trim();
                    s == "1" || s.eq_ignore_ascii_case("true")
                })
                .unwrap_or(false)
        })
    })
}

/// Override tracing on this thread (`None` restores the env/default
/// resolution), returning the previous override.
pub fn set_tracing(on: Option<bool>) -> Option<bool> {
    TRACING.with(|c| c.replace(on))
}

// --- clock -----------------------------------------------------------------

/// Install a replacement monotonic clock (nanoseconds; `None` restores
/// the default process-epoch `Instant`), returning the previous hook.
/// Golden tests install `|| 0` to redact times.
pub fn set_clock(f: Option<fn() -> u64>) -> Option<fn() -> u64> {
    CLOCK.with(|c| c.replace(f))
}

/// Current trace clock reading in nanoseconds. Only called while
/// tracing is active — the off-path never reads a clock.
pub fn now_ns() -> u64 {
    if let Some(f) = CLOCK.with(Cell::get) {
        return f();
    }
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// --- spans -----------------------------------------------------------------

/// The lane a physical operator actually ran on. Spans default to
/// [`Lane::Seq`]; the executor annotates the parallel/columnar lanes as
/// it commits to them, so a trace shows the *outcome* of lane
/// selection, not the eligibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Sequential planner pipeline (the default).
    Seq,
    /// Inline partition-parallel hash join across `n` workers.
    Par(u32),
    /// Parallel probe of a **cached** plain index across `n` workers.
    CachedPar(u32),
    /// Columnar morsel offload across `n` workers.
    Columnar(u32),
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lane::Seq => write!(f, "seq"),
            Lane::Par(n) => write!(f, "par n={n}"),
            Lane::CachedPar(n) => write!(f, "cached-par n={n}"),
            Lane::Columnar(n) => write!(f, "columnar n={n}"),
        }
    }
}

/// The index-store outcome for an operator that consulted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// A live cached index served the operator (no build).
    Hit,
    /// The operator built the index (and the store admitted it).
    Build,
    /// The store was disabled or bypassed; the index was built inline
    /// and dropped after the query.
    Bypass,
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheOutcome::Hit => write!(f, "hit"),
            CacheOutcome::Build => write!(f, "build"),
            CacheOutcome::Bypass => write!(f, "bypass"),
        }
    }
}

/// One physical-operator span. Times are **inclusive** of children
/// (`next_ns` accumulates the full pull including everything the
/// operator itself pulled); `rows` counts bindings the operator
/// yielded to its parent.
#[derive(Debug, Clone)]
pub struct OpSpan {
    /// Slab id, also the child→parent link target.
    pub id: u32,
    /// The enclosing span at open time (`None` for the root operator).
    pub parent: Option<u32>,
    /// Static operator label, e.g. `HashJoin probe(x.K) build(y.K)`.
    pub label: String,
    /// The lane the operator actually committed to.
    pub lane: Lane,
    /// Index-store outcome, for operators that consulted it.
    pub cache: Option<CacheOutcome>,
    /// Store fingerprint, when the operator has one.
    pub fingerprint: Option<String>,
    /// Rows the operator yielded (or, for consumed inputs and build
    /// sides, rows it contributed).
    pub rows: u64,
    /// Wall time spent inside `open` (builds, snapshots, fan-out).
    pub open_ns: u64,
    /// Cumulative wall time across `next` calls, inclusive of children.
    pub next_ns: u64,
    /// Typed declines that fired while this operator was opening.
    pub declines: Vec<DeclineReason>,
}

/// A completed traced query: the span forest plus query-level declines
/// (those that fired outside any operator span — e.g. the planner
/// falling back before any operator opened).
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// Caller-supplied label (the evaluator passes the phrase kind).
    pub label: String,
    /// End-to-end wall time for the traced query.
    pub elapsed_ns: u64,
    /// Spans in open order; `parent` links encode the operator tree.
    pub spans: Vec<OpSpan>,
    /// Declines with no enclosing operator span.
    pub declines: Vec<DeclineReason>,
}

struct Tracer {
    depth: u32,
    start_ns: u64,
    label: String,
    spans: Vec<OpSpan>,
    stack: Vec<u32>,
    declines: Vec<DeclineReason>,
    events: Vec<QueryTrace>,
}

impl Tracer {
    const fn new() -> Tracer {
        Tracer {
            depth: 0,
            start_ns: 0,
            label: String::new(),
            spans: Vec::new(),
            stack: Vec::new(),
            declines: Vec::new(),
            events: Vec::new(),
        }
    }
}

/// Is a traced query currently open on this thread? The span entry
/// points are no-ops unless this holds, so instrumentation sites can
/// call them unconditionally (after gating label construction).
pub fn active() -> bool {
    tracing_enabled() && TRACER.with(|t| t.borrow().depth > 0)
}

/// Open a traced query. Nested calls (a select inside a projected
/// expression) fold into the enclosing trace — only the outermost
/// `begin`/`end` pair produces a [`QueryTrace`]. No-op when tracing is
/// off.
pub fn begin_query(label: &str) {
    if !tracing_enabled() {
        return;
    }
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        t.depth += 1;
        if t.depth == 1 {
            t.start_ns = now_ns();
            t.label = label.to_string();
            t.spans.clear();
            t.stack.clear();
            t.declines.clear();
        }
    });
}

/// Close the current traced query; the outermost close finalizes the
/// [`QueryTrace`] into the event buffer. No-op when tracing is off or
/// no query is open.
pub fn end_query() {
    if !tracing_enabled() {
        return;
    }
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        if t.depth == 0 {
            return;
        }
        t.depth -= 1;
        if t.depth == 0 {
            let elapsed_ns = now_ns().saturating_sub(t.start_ns);
            let label = std::mem::take(&mut t.label);
            let spans = std::mem::take(&mut t.spans);
            let declines = std::mem::take(&mut t.declines);
            t.stack.clear();
            // Bound the buffer: a thread that traces but never drains
            // (a long-lived server worker) keeps only the most recent
            // [`MAX_EVENTS`] queries.
            if t.events.len() >= MAX_EVENTS {
                t.events.remove(0);
            }
            t.events.push(QueryTrace {
                label,
                elapsed_ns,
                spans,
                declines,
            });
        }
    });
}

/// Per-thread cap on buffered [`QueryTrace`] events (oldest evicted).
pub const MAX_EVENTS: usize = 64;

/// Discard any in-flight traced query on this thread: depth, spans,
/// stack, and pending declines all reset; completed events are kept.
/// For panic recovery on reused worker threads — a query that unwound
/// mid-execution never reaches its [`end_query`], and without this the
/// leaked depth would fold the thread's *next* query into a phantom
/// outer one.
pub fn abort_query() {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        t.depth = 0;
        t.label.clear();
        t.spans.clear();
        t.stack.clear();
        t.declines.clear();
    });
}

/// Drain this thread's completed query traces (oldest first).
pub fn take_events() -> Vec<QueryTrace> {
    TRACER.with(|t| std::mem::take(&mut t.borrow_mut().events))
}

/// Open an operator span nested under the current one. The label
/// closure only runs when a traced query is active, so off-trace call
/// sites pay one branch and no formatting. Returns `None` off-trace.
pub fn open_op_with(label: impl FnOnce() -> String) -> Option<u32> {
    if !active() {
        return None;
    }
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        let id = t.spans.len() as u32;
        let parent = t.stack.last().copied();
        t.spans.push(OpSpan {
            id,
            parent,
            label: label(),
            lane: Lane::Seq,
            cache: None,
            fingerprint: None,
            rows: 0,
            open_ns: 0,
            next_ns: 0,
            declines: Vec::new(),
        });
        t.stack.push(id);
        Some(id)
    })
}

/// Close an operator span opened by [`open_op_with`], recording its
/// open-time wall cost. Tolerates an error-unwound stack (removes the
/// span wherever it sits).
pub fn close_op(sid: Option<u32>, open_ns: u64) {
    let Some(sid) = sid else { return };
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        if let Some(pos) = t.stack.iter().rposition(|&s| s == sid) {
            t.stack.truncate(pos);
        }
        if let Some(span) = t.spans.get_mut(sid as usize) {
            span.open_ns = open_ns;
        }
    });
}

/// The innermost open span, if a traced query is active (declines that
/// fire during an operator open attach here).
pub fn current_span() -> Option<u32> {
    if !active() {
        return None;
    }
    TRACER.with(|t| t.borrow().stack.last().copied())
}

/// Accumulate one `next` call's wall time and yielded-row count into a
/// span.
pub fn add_next(sid: u32, ns: u64, rows: u64) {
    TRACER.with(|t| {
        if let Some(span) = t.borrow_mut().spans.get_mut(sid as usize) {
            span.next_ns += ns;
            span.rows += rows;
        }
    });
}

fn with_span(sid: Option<u32>, f: impl FnOnce(&mut OpSpan)) {
    let Some(sid) = sid else { return };
    TRACER.with(|t| {
        if let Some(span) = t.borrow_mut().spans.get_mut(sid as usize) {
            f(span);
        }
    });
}

/// Record the lane an operator committed to.
pub fn annotate_lane(sid: Option<u32>, lane: Lane) {
    with_span(sid, |s| s.lane = lane);
}

/// Record an operator's index-store outcome.
pub fn annotate_cache(sid: Option<u32>, outcome: CacheOutcome) {
    with_span(sid, |s| s.cache = Some(outcome));
}

/// Record an operator's store fingerprint. The closure only runs when
/// the span exists, so off-trace sites pay no formatting.
pub fn annotate_fingerprint(sid: Option<u32>, fp: impl FnOnce() -> String) {
    with_span(sid, |s| s.fingerprint = Some(fp()));
}

/// Set a span's row count outright — for inputs the executor consumes
/// whole (a drained scan, a build side) rather than pulls through.
pub fn annotate_rows(sid: Option<u32>, rows: u64) {
    with_span(sid, |s| s.rows = rows);
}

// --- decline taxonomy ------------------------------------------------------

/// Why an execution left its preferred lane: the engine-wide typed
/// fallback taxonomy. Every variant corresponds to a runtime fallback
/// the aggregate lane counters count — static ineligibility (lane
/// disabled, sub-threshold input, shape not eligible) never emits one.
/// `docs/OBSERVABILITY.md` catalogues each variant with its emission
/// site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeclineReason {
    /// Planner: the comprehension has no generators to plan.
    PlannerNoGenerators,
    /// Planner: two generators bind the same variable.
    PlannerDuplicateBinder,
    /// Planner: a dependent generator's source could observe
    /// reordering (not provably safe to hoist).
    PlannerUnsafeDependentSource,
    /// Planner: a predicate conjunct could observe evaluation order.
    PlannerUnsafeConjunct,
    /// Parallel join: a build-side row or key declined plain
    /// extraction.
    ParJoinBuildExtract,
    /// Parallel join: the probe drain hit its memory cap before the
    /// input was exhausted.
    ParJoinProbeCap,
    /// Parallel join: a probe-side row or key declined plain
    /// extraction.
    ParJoinProbeExtract,
    /// Cached parallel probe: a probe row or key declined plain
    /// extraction.
    ParProbeExtract,
    /// Cached parallel probe: the probe drain hit its memory cap.
    ParProbeDrainCap,
    /// Parallel `hom`: capture or element extraction declined (or a
    /// worker fold was poisoned).
    ParHomExtract,
    /// Columnar lane: the relation declined columnar snapshot
    /// extraction (identity- or code-bearing rows).
    ColumnarSnapshotExtract,
    /// Columnar lane: the morsel run declined at runtime (a filter
    /// declined plain evaluation on live data).
    ColumnarRuntimeDecline,
    /// Index store: the index exceeded the row budget and was returned
    /// un-cached.
    StoreOverBudget,
    /// Index store: the index held identity-bearing values and could
    /// only be kept in session-local `Rc` form (not shareable, no
    /// parallel probes).
    StoreRcOnly,
}

impl DeclineReason {
    /// Number of variants (sizes the count arrays).
    pub const COUNT: usize = 14;

    /// Every variant, in stable rendering order.
    pub const ALL: [DeclineReason; DeclineReason::COUNT] = [
        DeclineReason::PlannerNoGenerators,
        DeclineReason::PlannerDuplicateBinder,
        DeclineReason::PlannerUnsafeDependentSource,
        DeclineReason::PlannerUnsafeConjunct,
        DeclineReason::ParJoinBuildExtract,
        DeclineReason::ParJoinProbeCap,
        DeclineReason::ParJoinProbeExtract,
        DeclineReason::ParProbeExtract,
        DeclineReason::ParProbeDrainCap,
        DeclineReason::ParHomExtract,
        DeclineReason::ColumnarSnapshotExtract,
        DeclineReason::ColumnarRuntimeDecline,
        DeclineReason::StoreOverBudget,
        DeclineReason::StoreRcOnly,
    ];

    /// Stable machine-readable code (the `reason` label in `METRICS`
    /// and the name `:analyze` prints).
    pub fn code(self) -> &'static str {
        match self {
            DeclineReason::PlannerNoGenerators => "planner-no-generators",
            DeclineReason::PlannerDuplicateBinder => "planner-duplicate-binder",
            DeclineReason::PlannerUnsafeDependentSource => "planner-unsafe-dependent-source",
            DeclineReason::PlannerUnsafeConjunct => "planner-unsafe-conjunct",
            DeclineReason::ParJoinBuildExtract => "par-join-build-extract",
            DeclineReason::ParJoinProbeCap => "par-join-probe-cap",
            DeclineReason::ParJoinProbeExtract => "par-join-probe-extract",
            DeclineReason::ParProbeExtract => "par-probe-extract",
            DeclineReason::ParProbeDrainCap => "par-probe-drain-cap",
            DeclineReason::ParHomExtract => "par-hom-extract",
            DeclineReason::ColumnarSnapshotExtract => "columnar-snapshot-extract",
            DeclineReason::ColumnarRuntimeDecline => "columnar-runtime-decline",
            DeclineReason::StoreOverBudget => "store-over-budget",
            DeclineReason::StoreRcOnly => "store-rc-only",
        }
    }

    fn index(self) -> usize {
        DeclineReason::ALL
            .iter()
            .position(|&r| r == self)
            .expect("variant listed in ALL")
    }
}

impl std::fmt::Display for DeclineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

static GLOBAL_DECLINES: [AtomicU64; DeclineReason::COUNT] =
    [const { AtomicU64::new(0) }; DeclineReason::COUNT];

/// Report a typed runtime fallback. Always counts (session-local and
/// process-wide) regardless of tracing; additionally attaches the code
/// to the innermost open span (or the query) when a trace is active.
pub fn note_decline(reason: DeclineReason) {
    let i = reason.index();
    GLOBAL_DECLINES[i].fetch_add(1, Ordering::Relaxed);
    DECLINES.with(|d| d.borrow_mut()[i] += 1);
    if active() {
        TRACER.with(|t| {
            let mut t = t.borrow_mut();
            match t.stack.last().copied() {
                Some(sid) => t.spans[sid as usize].declines.push(reason),
                None => t.declines.push(reason),
            }
        });
    }
}

/// This thread's (= session's) decline counts, one entry per variant in
/// [`DeclineReason::ALL`] order.
pub fn session_declines() -> Vec<(DeclineReason, u64)> {
    DECLINES.with(|d| {
        let d = d.borrow();
        DeclineReason::ALL
            .iter()
            .map(|&r| (r, d[r.index()]))
            .collect()
    })
}

/// Zero this thread's decline counts (part of the session-wide stats
/// reset; the process-wide totals are untouched).
pub fn reset_session_declines() {
    DECLINES.with(|d| *d.borrow_mut() = [0; DeclineReason::COUNT]);
}

/// Process-wide decline totals across every thread (the `METRICS`
/// feed), one entry per variant in [`DeclineReason::ALL`] order.
pub fn global_declines() -> Vec<(DeclineReason, u64)> {
    DeclineReason::ALL
        .iter()
        .map(|&r| (r, GLOBAL_DECLINES[r.index()].load(Ordering::Relaxed)))
        .collect()
}

// --- query latency histogram -----------------------------------------------

/// Upper bucket bounds (nanoseconds) for the process-wide query latency
/// histogram: 50µs / 200µs / 1ms / 5ms / 20ms / 100ms / 500ms / 2s,
/// plus the implicit `+Inf` bucket. Fixed so dashboards can diff runs.
pub const LATENCY_BUCKET_NS: [u64; 8] = [
    50_000,
    200_000,
    1_000_000,
    5_000_000,
    20_000_000,
    100_000_000,
    500_000_000,
    2_000_000_000,
];

static LATENCY_COUNTS: [AtomicU64; LATENCY_BUCKET_NS.len() + 1] =
    [const { AtomicU64::new(0) }; LATENCY_BUCKET_NS.len() + 1];
static LATENCY_SUM_NS: AtomicU64 = AtomicU64::new(0);

/// Record one query's end-to-end wall time in the process-wide latency
/// histogram. The server calls this for every `EVAL`, traced or not.
pub fn observe_query_ns(ns: u64) {
    let i = LATENCY_BUCKET_NS
        .iter()
        .position(|&le| ns <= le)
        .unwrap_or(LATENCY_BUCKET_NS.len());
    LATENCY_COUNTS[i].fetch_add(1, Ordering::Relaxed);
    LATENCY_SUM_NS.fetch_add(ns, Ordering::Relaxed);
}

/// A point-in-time copy of the latency histogram. `buckets` holds
/// **cumulative** counts per upper bound (Prometheus `le` semantics);
/// the final entry is the `+Inf` bucket and equals `count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// `(upper_bound_ns, cumulative_count)`, ending with `(u64::MAX, count)`.
    pub buckets: Vec<(u64, u64)>,
    /// Sum of observed latencies, nanoseconds.
    pub sum_ns: u64,
    /// Total observations.
    pub count: u64,
}

/// Snapshot the process-wide query latency histogram.
pub fn latency_snapshot() -> LatencySnapshot {
    let mut cumulative = 0;
    let mut buckets = Vec::with_capacity(LATENCY_COUNTS.len());
    for (i, c) in LATENCY_COUNTS.iter().enumerate() {
        cumulative += c.load(Ordering::Relaxed);
        let le = LATENCY_BUCKET_NS.get(i).copied().unwrap_or(u64::MAX);
        buckets.push((le, cumulative));
    }
    LatencySnapshot {
        buckets,
        sum_ns: LATENCY_SUM_NS.load(Ordering::Relaxed),
        count: cumulative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every trace test serializes on this lock *and* pins tracing
    /// explicitly: the thread-local tracer is per-test-thread, but the
    /// decline atomics are process-global.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        let prev = set_tracing(Some(true));
        let prev_clock = set_clock(Some(|| 0));
        let r = f();
        set_clock(prev_clock);
        set_tracing(prev);
        r
    }

    #[test]
    fn off_path_records_nothing() {
        let prev = set_tracing(Some(false));
        begin_query("q");
        let sid = open_op_with(|| panic!("label must not be built off-trace"));
        assert_eq!(sid, None);
        close_op(sid, 7);
        end_query();
        assert!(take_events().is_empty());
        set_tracing(prev);
    }

    #[test]
    fn spans_nest_and_finalize() {
        with_tracing(|| {
            take_events();
            begin_query("fig9");
            let root = open_op_with(|| "HashJoin".to_string());
            let child = open_op_with(|| "Scan".to_string());
            close_op(child, 11);
            add_next(child.unwrap(), 3, 2);
            annotate_lane(root, Lane::Par(4));
            annotate_cache(root, CacheOutcome::Build);
            close_op(root, 23);
            end_query();
            let events = take_events();
            assert_eq!(events.len(), 1);
            let t = &events[0];
            assert_eq!(t.label, "fig9");
            assert_eq!(t.spans.len(), 2);
            assert_eq!(t.spans[0].parent, None);
            assert_eq!(t.spans[1].parent, Some(0));
            assert_eq!(t.spans[1].rows, 2);
            assert_eq!(t.spans[1].next_ns, 3);
            assert_eq!(t.spans[0].lane, Lane::Par(4));
            assert_eq!(t.spans[0].cache, Some(CacheOutcome::Build));
        });
    }

    #[test]
    fn nested_queries_fold_into_outermost() {
        with_tracing(|| {
            take_events();
            begin_query("outer");
            begin_query("inner");
            let s = open_op_with(|| "Scan".to_string());
            close_op(s, 0);
            end_query();
            assert!(take_events().is_empty(), "inner end must not emit");
            end_query();
            let events = take_events();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].label, "outer");
            assert_eq!(events[0].spans.len(), 1);
        });
    }

    #[test]
    fn declines_count_with_and_without_tracing() {
        reset_session_declines();
        note_decline(DeclineReason::StoreRcOnly);
        with_tracing(|| {
            begin_query("q");
            let sid = open_op_with(|| "HashJoin".to_string());
            note_decline(DeclineReason::ParJoinBuildExtract);
            close_op(sid, 0);
            note_decline(DeclineReason::PlannerUnsafeConjunct);
            end_query();
            let events = take_events();
            let t = &events[0];
            assert_eq!(
                t.spans[0].declines,
                vec![DeclineReason::ParJoinBuildExtract]
            );
            assert_eq!(t.declines, vec![DeclineReason::PlannerUnsafeConjunct]);
        });
        let counts = session_declines();
        let get = |r: DeclineReason| counts.iter().find(|(c, _)| *c == r).unwrap().1;
        assert_eq!(get(DeclineReason::StoreRcOnly), 1);
        assert_eq!(get(DeclineReason::ParJoinBuildExtract), 1);
        assert_eq!(get(DeclineReason::PlannerUnsafeConjunct), 1);
        assert!(global_declines()
            .iter()
            .find(|(c, _)| *c == DeclineReason::StoreRcOnly)
            .is_some_and(|(_, n)| *n >= 1));
        reset_session_declines();
        assert!(session_declines().iter().all(|(_, n)| *n == 0));
    }

    #[test]
    fn decline_codes_are_stable_and_distinct() {
        let mut codes: Vec<&str> = DeclineReason::ALL.iter().map(|r| r.code()).collect();
        assert_eq!(codes.len(), DeclineReason::COUNT);
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), DeclineReason::COUNT, "codes must be distinct");
    }

    #[test]
    fn latency_histogram_is_cumulative() {
        observe_query_ns(10_000); // ≤ 50µs
        observe_query_ns(3_000_000_000); // +Inf
        let snap = latency_snapshot();
        assert_eq!(snap.buckets.len(), LATENCY_BUCKET_NS.len() + 1);
        assert_eq!(snap.buckets.last().unwrap().0, u64::MAX);
        assert_eq!(snap.buckets.last().unwrap().1, snap.count);
        let mut prev = 0;
        for &(_, c) in &snap.buckets {
            assert!(c >= prev, "cumulative counts must be monotone");
            prev = c;
        }
        assert!(snap.count >= 2);
        assert!(snap.sum_ns >= 3_000_010_000);
    }

    #[test]
    fn clock_override_round_trips() {
        let prev = set_clock(Some(|| 42));
        assert_eq!(now_ns(), 42);
        set_clock(prev);
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a, "default clock is monotone");
    }
}
