//! Server bench — hundreds of read-heavy concurrent sessions over the
//! shared index tier, and graceful degradation under injected faults.
//!
//! Three groups:
//!
//! * `server/shared_read/workers{1,4}` — 100 primed sessions per
//!   server, round-robin hot-index reads. The structural claim is
//!   asserted, not just timed: across all 200 sessions the process
//!   builds each hot index **once** (`publishes` stays fixed while
//!   every later session adopts).
//! * `server/faulted_read` — the same read loop under seeded fault
//!   injection (evaluator panics, delays, store poisoning): the server
//!   degrades gracefully — every faulted query returns a structured
//!   error, throughput is reduced, the process never aborts.
//!
//! Wall-clock speedup from `workers4` over `workers1` tracks the
//! machine's core count (a single-core container serializes the
//! workers); the one-build-per-hot-index invariant holds regardless.

use criterion::{criterion_group, criterion_main, Criterion};
use machiavelli::value::governor;
use machiavelli_server::faults::FaultConfig;
use machiavelli_server::{Server, ServerConfig, ServerError, ServerRole};
use std::time::Duration;

const SESSIONS: usize = 100;

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn indexed_setup() -> String {
    let rows: Vec<String> = (0..128)
        .map(|i| format!("[K = {i}, A = {}]", i * 10))
        .collect();
    format!(
        "val r = {{{}}}; val probe = {{[K = 3], [K = 7], [K = 96]}};",
        rows.join(", ")
    )
}

const HOT_QUERY: &str = "select x.A where y <- probe, x <- r with x.K = y.K;";

/// Start a server and prime `SESSIONS` sessions with identical
/// relations plus one warm run of the hot query each.
fn primed_server(workers: usize, faults: Option<FaultConfig>) -> (Server, Vec<u64>) {
    let server = Server::start(ServerConfig {
        workers,
        queue_cap: 64,
        default_deadline: Some(Duration::from_secs(5)),
        row_budget: None,
        shared_store: true,
        faults: Some(faults.unwrap_or_else(FaultConfig::off)),
        durable_root: None,
        role: ServerRole::Primary,
    });
    let setup = indexed_setup();
    let sids: Vec<u64> = (0..SESSIONS)
        .map(|_| server.open_session().expect("open"))
        .collect();
    for &sid in &sids {
        // Under faults the priming evals may legitimately fail with
        // structured errors; anything else is a bench bug.
        for src in [setup.as_str(), HOT_QUERY] {
            if let Err(e) = server.eval(sid, src) {
                assert!(structured(&e), "unstructured priming failure: {e:?}");
            }
        }
    }
    (server, sids)
}

fn structured(e: &ServerError) -> bool {
    matches!(
        e,
        ServerError::Busy
            | ServerError::SessionPanicked(_)
            | ServerError::SessionPoisoned(_)
            | ServerError::DeadlineExceeded
            | ServerError::Cancelled
            | ServerError::RowBudgetExceeded
            | ServerError::Query(_)
    )
}

/// Silence the panic hook for *injected* payloads (the faulted group
/// would otherwise spray hundreds of expected backtraces into the
/// bench output); real panics still print.
fn quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains(machiavelli_server::faults::INJECTED_PANIC_PREFIX));
        if !injected {
            previous(info);
        }
    }));
}

fn bench_server(c: &mut Criterion) {
    quiet_injected_panics();
    let mut group = c.benchmark_group("server");
    group.sample_size(10);

    machiavelli_store::shared::reset_shared();
    governor::reset_server_counters();

    // --- the shared-index hot path, 1 vs 4 workers -------------------
    let mut published_after_first_server = 0;
    for (nth, workers) in [1usize, 4].into_iter().enumerate() {
        let (server, sids) = primed_server(workers, None);
        let shared = machiavelli_store::shared::shared_stats();
        if nth == 0 {
            published_after_first_server = shared.publishes;
            assert!(shared.publishes >= 1, "the hot index was built: {shared:?}");
        } else {
            // The 100 sessions of the second server adopted the first
            // server's indexes: same content, zero further builds.
            assert_eq!(
                shared.publishes,
                published_after_first_server,
                "one build per hot index across all {} sessions: {shared:?}",
                2 * SESSIONS
            );
        }
        // Every primed session except the original builder adopted
        // (cumulative across the servers started so far).
        let cumulative_sessions = ((nth + 1) * SESSIONS) as u64;
        assert!(
            shared.adoptions >= cumulative_sessions - shared.publishes,
            "later sessions adopt: {shared:?}"
        );
        let mut next = 0usize;
        group.bench_function(format!("shared_read/workers{workers}"), |b| {
            b.iter(|| {
                let sid = sids[next % sids.len()];
                next += 1;
                server.eval(sid, HOT_QUERY).expect("hot read")
            })
        });
        server.shutdown();
    }

    // --- graceful degradation under seeded faults --------------------
    let faults = FaultConfig {
        eval_panic_ppm: 30_000,
        delay_ppm: 20_000,
        delay_ms: 1,
        store_poison_ppm: 2_000,
        seed: 1989,
        ..FaultConfig::off()
    };
    let (server, sids) = primed_server(4, Some(faults));
    let mut next = 0usize;
    let mut faulted = 0u64;
    group.bench_function("faulted_read", |b| {
        b.iter(|| {
            let sid = sids[next % sids.len()];
            next += 1;
            match server.eval(sid, HOT_QUERY) {
                Ok(out) => out,
                Err(e) => {
                    assert!(structured(&e), "unstructured failure: {e:?}");
                    faulted += 1;
                    Vec::new()
                }
            }
        })
    });
    let stats = server.stats();
    eprintln!(
        "server_bench: faulted_read saw {faulted} structured errors during timing; \
         counters: {stats}"
    );
    server.shutdown();
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_server
}
criterion_main!(benches);
