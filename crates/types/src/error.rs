//! Type errors.

use std::fmt;

/// Errors raised by unification, constraint solving and inference. Types
/// are pre-rendered to strings so the error type stays `Send`-friendly and
/// independent of live unification state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Two types cannot be unified.
    Mismatch { left: String, right: String },
    /// A record/variant is missing a required field.
    MissingField { ty: String, label: String },
    /// A variable's kind is incompatible with the type it must equal.
    KindMismatch { kind: String, ty: String },
    /// A type that must be a description type contains a function type.
    NotDescription(String),
    /// Occurs check: a variable appears inside the type it must equal.
    Occurs { var: String, ty: String },
    /// `join`/`con`: the least upper bound of two types does not exist.
    LubUndefined { left: String, right: String },
    /// `unionc`: the greatest lower bound of two types does not exist.
    GlbUndefined { left: String, right: String },
    /// `project`: the annotation is not ≤ the source type.
    NotSubstructure { sub: String, sup: String },
    /// An unbound program variable.
    UnboundVariable(String),
    /// An unbound `rec` type variable in a type annotation.
    UnboundRecVar(String),
    /// `case` without `other` applied to a variant with extra branches, or
    /// an arm label missing from the scrutinee type.
    CaseMismatch {
        scrutinee: String,
        labels: Vec<String>,
    },
    /// `rec(x, e)` whose body is not a function.
    RecNotFunction,
    /// A type annotation used a row variable where a closed type is needed.
    OpenAnnotation(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TypeError::*;
        match self {
            Mismatch { left, right } => {
                write!(f, "type mismatch: cannot unify `{left}` with `{right}`")
            }
            MissingField { ty, label } => {
                write!(f, "type `{ty}` has no field `{label}`")
            }
            KindMismatch { kind, ty } => {
                write!(f, "type `{ty}` does not satisfy kind `{kind}`")
            }
            NotDescription(ty) => {
                write!(
                    f,
                    "type `{ty}` is not a description type (contains a function type); \
                     equality and database operations are unavailable"
                )
            }
            Occurs { var, ty } => {
                write!(
                    f,
                    "occurs check: `{var}` would make the infinite type `{ty}`"
                )
            }
            LubUndefined { left, right } => {
                write!(
                    f,
                    "`{left}` and `{right}` are inconsistent: no least upper bound"
                )
            }
            GlbUndefined { left, right } => {
                write!(f, "`{left}` and `{right}` have no greatest lower bound")
            }
            NotSubstructure { sub, sup } => {
                write!(
                    f,
                    "`{sub}` is not a substructure of `{sup}` (projection impossible)"
                )
            }
            UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            UnboundRecVar(v) => write!(f, "unbound recursive type variable `{v}`"),
            CaseMismatch { scrutinee, labels } => {
                write!(
                    f,
                    "case over `{scrutinee}` does not cover exactly the variants {}",
                    labels.join(", ")
                )
            }
            RecNotFunction => write!(f, "`rec(x, e)` requires `e` to be a function"),
            OpenAnnotation(ty) => {
                write!(f, "type annotation `{ty}` must not contain row variables")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TypeError::Mismatch {
            left: "int".into(),
            right: "bool".into(),
        };
        assert_eq!(
            e.to_string(),
            "type mismatch: cannot unify `int` with `bool`"
        );
        let e = TypeError::UnboundVariable("x".into());
        assert!(e.to_string().contains("unbound variable"));
    }
}
