//! Pretty-printing of the AST back to Machiavelli concrete syntax.
//!
//! The printer emits fully parenthesized-enough output that re-parsing
//! yields the same AST (verified by the round-trip tests). It is used by
//! error messages, the REPL's echo of definitions, and test diagnostics.

use crate::ast::*;
use std::fmt::Write as _;

/// Render an expression as concrete syntax.
pub fn expr_to_string(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, 0);
    s
}

/// Render a type expression as concrete syntax.
pub fn type_to_string(t: &TypeExpr) -> String {
    let mut s = String::new();
    write_type(&mut s, t, false);
    s
}

/// Render a top-level phrase (with trailing `;`).
pub fn phrase_to_string(p: &Phrase) -> String {
    match &p.kind {
        PhraseKind::Val { name, expr } => format!("val {name} = {};", expr_to_string(expr)),
        PhraseKind::Fun { name, params, body } => {
            format!(
                "fun {name}({}) = {};",
                params.join(", "),
                expr_to_string(body)
            )
        }
        PhraseKind::Expr(e) => format!("{};", expr_to_string(e)),
    }
}

/// Precedence levels; higher binds tighter. Mirrors the parser.
fn prec(e: &ExprKind) -> u8 {
    use ExprKind::*;
    match e {
        Assign { .. } => 1,
        Binop {
            op: BinOp::Orelse, ..
        } => 2,
        Binop {
            op: BinOp::Andalso, ..
        } => 3,
        Binop {
            op: BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge,
            ..
        } => 4,
        Binop {
            op: BinOp::Add | BinOp::Sub | BinOp::Concat,
            ..
        } => 5,
        Binop {
            op: BinOp::Mul | BinOp::RealDiv | BinOp::Div | BinOp::Mod,
            ..
        } => 6,
        Unop { .. } | Deref(_) => 7,
        Field { .. } | As { .. } | App { .. } => 8,
        // Sprawling forms print parenthesized except at statement level.
        Lambda { .. } | If { .. } | Case { .. } | Select { .. } | Let { .. } | Inject { .. } => 0,
        _ => 9,
    }
}

fn write_child(out: &mut String, e: &Expr, parent_prec: u8) {
    let p = prec(&e.kind);
    if p < parent_prec {
        out.push('(');
        write_expr(out, e, 0);
        out.push(')');
    } else {
        write_expr(out, e, parent_prec);
    }
}

fn write_expr(out: &mut String, e: &Expr, _min_prec: u8) {
    use ExprKind::*;
    match &e.kind {
        Unit => out.push_str("()"),
        Int(n) => {
            let _ = write!(out, "{n}");
        }
        Real(r) => {
            if r.fract() == 0.0 && r.is_finite() {
                let _ = write!(out, "{r:.1}");
            } else {
                let _ = write!(out, "{r}");
            }
        }
        Str(s) => {
            let _ = write!(out, "{s:?}");
        }
        Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Var(x) => out.push_str(x),
        Lambda { params, body } => {
            let _ = write!(out, "(fn({}) => ", params.join(", "));
            write_expr(out, body, 0);
            out.push(')');
        }
        App { func, args } => {
            write_child(out, func, 8);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
        If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str("(if ");
            write_expr(out, cond, 0);
            out.push_str(" then ");
            write_expr(out, then_branch, 0);
            out.push_str(" else ");
            write_expr(out, else_branch, 0);
            out.push(')');
        }
        Record(fields) => {
            // Tuples print back as tuples.
            let is_tuple = !fields.is_empty()
                && fields
                    .iter()
                    .enumerate()
                    .all(|(i, (l, _))| *l == format!("#{}", i + 1));
            if is_tuple {
                out.push('(');
                for (i, (_, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, v, 0);
                }
                out.push(')');
            } else {
                out.push('[');
                for (i, (l, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{l}=");
                    write_expr(out, v, 0);
                }
                out.push(']');
            }
        }
        Field { expr, label } => {
            write_child(out, expr, 8);
            let _ = write!(out, ".{label}");
        }
        Modify { expr, label, value } => {
            out.push_str("modify(");
            write_expr(out, expr, 0);
            let _ = write!(out, ", {label}, ");
            write_expr(out, value, 0);
            out.push(')');
        }
        Inject { label, expr } => {
            let _ = write!(out, "({label} of ");
            write_expr(out, expr, 0);
            out.push(')');
        }
        Case {
            expr,
            arms,
            default,
        } => {
            out.push_str("(case ");
            write_expr(out, expr, 0);
            out.push_str(" of ");
            for (i, arm) in arms.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{} of {} => ", arm.label, arm.var);
                write_expr(out, &arm.body, 0);
            }
            if let Some(d) = default {
                if !arms.is_empty() {
                    out.push_str(", ");
                }
                out.push_str("other => ");
                write_expr(out, d, 0);
            }
            out.push(')');
        }
        As { expr, label } => {
            write_child(out, expr, 8);
            let _ = write!(out, " as {label}");
        }
        Set(items) => {
            out.push('{');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, 0);
            }
            out.push('}');
        }
        Union { left, right } => binary_named(out, "union", left, right),
        Unionc { left, right } => binary_named(out, "unionc", left, right),
        Hom { f, op, z, set } => {
            out.push_str("hom(");
            write_expr(out, f, 0);
            out.push_str(", ");
            write_expr(out, op, 0);
            out.push_str(", ");
            write_expr(out, z, 0);
            out.push_str(", ");
            write_expr(out, set, 0);
            out.push(')');
        }
        HomStar { f, op, set } => {
            out.push_str("hom*(");
            write_expr(out, f, 0);
            out.push_str(", ");
            write_expr(out, op, 0);
            out.push_str(", ");
            write_expr(out, set, 0);
            out.push(')');
        }
        Ref(e) => {
            out.push_str("ref(");
            write_expr(out, e, 0);
            out.push(')');
        }
        Deref(e) => {
            out.push('!');
            write_child(out, e, 7);
        }
        Assign { target, value } => {
            write_child(out, target, 2);
            out.push_str(" := ");
            write_child(out, value, 1);
        }
        Con { left, right } => binary_named(out, "con", left, right),
        Join { left, right } => binary_named(out, "join", left, right),
        Project { expr, ty } => {
            out.push_str("project(");
            write_expr(out, expr, 0);
            out.push_str(", ");
            write_type(out, ty, false);
            out.push(')');
        }
        Let { name, bound, body } => {
            let _ = write!(out, "(let val {name} = ");
            write_expr(out, bound, 0);
            out.push_str(" in ");
            write_expr(out, body, 0);
            out.push_str(" end)");
        }
        Select {
            result,
            generators,
            pred,
        } => {
            out.push_str("(select ");
            write_expr(out, result, 0);
            out.push_str(" where ");
            for (i, g) in generators.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{} <- ", g.var);
                write_expr(out, &g.source, 0);
            }
            out.push_str(" with ");
            write_expr(out, pred, 0);
            out.push(')');
        }
        Binop { op, left, right } => {
            let p = prec(&e.kind);
            write_child(out, left, p);
            let _ = write!(out, " {} ", op.symbol());
            // Left-associative: the right child needs strictly higher.
            let rp = prec(&right.kind);
            let needs_parens = if matches!(op, BinOp::Orelse | BinOp::Andalso) {
                rp < p
            } else {
                rp <= p
            };
            if needs_parens {
                out.push('(');
                write_expr(out, right, 0);
                out.push(')');
            } else {
                write_expr(out, right, 0);
            }
        }
        Unop { op, expr } => {
            match op {
                UnOp::Neg => out.push('-'),
                UnOp::Not => out.push_str("not "),
            }
            write_child(out, expr, 7);
        }
        OpVal(op) => out.push_str(op.symbol()),
        Rec { name, body } => {
            let _ = write!(out, "rec({name}, ");
            write_expr(out, body, 0);
            out.push(')');
        }
        Raise(msg) => {
            let _ = write!(out, "raise {msg:?}");
        }
        MakeDynamic(e) => {
            out.push_str("dynamic(");
            write_expr(out, e, 0);
            out.push(')');
        }
        Coerce { expr, ty } => {
            out.push_str("dynamic(");
            write_expr(out, expr, 0);
            out.push_str(", ");
            write_type(out, ty, false);
            out.push(')');
        }
    }
}

fn binary_named(out: &mut String, name: &str, l: &Expr, r: &Expr) {
    out.push_str(name);
    out.push('(');
    write_expr(out, l, 0);
    out.push_str(", ");
    write_expr(out, r, 0);
    out.push(')');
}

fn write_type(out: &mut String, t: &TypeExpr, arrow_lhs: bool) {
    use TypeExprKind::*;
    match &t.kind {
        Unit => out.push_str("unit"),
        Int => out.push_str("int"),
        Bool => out.push_str("bool"),
        String_ => out.push_str("string"),
        Real => out.push_str("real"),
        Dynamic => out.push_str("dynamic"),
        Var(v) => {
            let _ = write!(out, "'{v}");
        }
        DescVar(v) => {
            let _ = write!(out, "\"{v}");
        }
        Arrow(a, b) => {
            if arrow_lhs {
                out.push('(');
            }
            write_type(out, a, true);
            out.push_str(" -> ");
            write_type(out, b, false);
            if arrow_lhs {
                out.push(')');
            }
        }
        Record { row, fields } => {
            out.push('[');
            if let Some(r) = row {
                let sig = if r.desc { '"' } else { '\'' };
                let _ = write!(out, "({sig}{}) ", r.name);
            }
            write_fields(out, fields);
            out.push(']');
        }
        Variant { row, fields } => {
            out.push('<');
            if let Some(r) = row {
                let sig = if r.desc { '"' } else { '\'' };
                let _ = write!(out, "({sig}{}) ", r.name);
            }
            write_fields(out, fields);
            out.push('>');
        }
        Set(inner) => {
            out.push('{');
            write_type(out, inner, false);
            out.push('}');
        }
        Ref(inner) => {
            out.push_str("ref(");
            write_type(out, inner, false);
            out.push(')');
        }
        Rec { var, body } => {
            let _ = write!(out, "rec {var} . ");
            write_type(out, body, false);
        }
        Named(n) => out.push_str(n),
    }
}

fn write_fields(out: &mut String, fields: &[(Label, TypeExpr)]) {
    for (i, (l, t)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{l}:");
        // Field types at product precedence need parens around arrows and
        // products — write_type handles arrows via arrow_lhs; products are
        // records already bracketed.
        write_type(out, t, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_type};

    #[test]
    fn pretty_simple() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(expr_to_string(&e), "1 + 2 * 3");
    }

    #[test]
    fn pretty_record() {
        let e = parse_expr(r#"[Name="Joe", Salary=22340]"#).unwrap();
        assert_eq!(expr_to_string(&e), r#"[Name="Joe", Salary=22340]"#);
    }

    #[test]
    fn pretty_select() {
        let e = parse_expr("select x.Name where x <- S with x.Salary > 100000").unwrap();
        assert_eq!(
            expr_to_string(&e),
            "(select x.Name where x <- S with x.Salary > 100000)"
        );
    }

    #[test]
    fn pretty_type() {
        let t = parse_type("{[('a) Name:\"b, Salary:int]}").unwrap();
        assert_eq!(type_to_string(&t), "{[('a) Name:\"b, Salary:int]}");
    }

    #[test]
    fn pretty_tuple_type() {
        let t = parse_type("int * bool -> int").unwrap();
        assert_eq!(type_to_string(&t), "[#1:int, #2:bool] -> int");
    }
}
