//! E9/E10 — §3.3's `Join3` conditional scheme and projection session;
//! §5's `unionc`, class `member`, and dynamics.

use machiavelli::value::Value;
use machiavelli::Session;
use machiavelli_bench::university_session;
use machiavelli_oodb::UniversityParams;

#[test]
fn join3_session_from_section_3_3() {
    let mut s = Session::new();
    // -> val fun Join3(x,y,z) = join(x,join(y,z));
    // >> val Join3 = fn : ("a * "b * "c) -> "d
    //    where { "d = "a lub "e, "e = "b lub "c }
    let out = s
        .eval_one("fun Join3(x,y,z) = join(x, join(y,z));")
        .unwrap();
    assert_eq!(
        out.show(),
        "val Join3 = fn : (\"a * \"b * \"c) -> \"d where { \"d = \"a lub \"e, \"e = \"b lub \"c }"
    );

    // -> Join3([Name="Joe"],[Age=21],[Office=27]);
    // >> val it = [Name="Joe",Age=21,Office=27]
    //           : [Name:string,Age:int,Office:int]
    let out = s
        .eval_one(r#"Join3([Name="Joe"],[Age=21],[Office=27]);"#)
        .unwrap();
    assert_eq!(
        out.show(),
        r#"val it = [Age=21, Name="Joe", Office=27] : [Age:int,Name:string,Office:int]"#
    );

    // -> project(it,[Name:string]);
    // >> val it = [Name="Joe"] : [Name:string]
    let out = s.eval_one("project(it, [Name: string]);").unwrap();
    assert_eq!(out.show(), r#"val it = [Name="Joe"] : [Name:string]"#);
}

#[test]
fn join_and_con_static_error_from_section_2() {
    // join([Name=[First="Joe"], Age=21], [Name="Joe"]) "will cause a
    // (static) type error".
    let mut s = Session::new();
    let err = s
        .run(r#"join([Name=[First="Joe"], Age=21], [Name="Joe"]);"#)
        .unwrap_err();
    assert!(err.to_string().contains("no least upper bound"), "{err}");
    // con of the same operands is equally ill-typed.
    let err = s
        .run(r#"con([Name=[First="Joe"], Age=21], [Name="Joe"]);"#)
        .unwrap_err();
    assert!(err.to_string().contains("no least upper bound"), "{err}");
}

#[test]
fn con_examples_from_section_2() {
    let mut s = Session::new();
    let out = s
        .eval_one(r#"con([Name=[First="Joe"], Age=21], [Name=[Last="Doe"]]);"#)
        .unwrap();
    assert_eq!(out.show(), "val it = true : bool");
    let out = s
        .eval_one(r#"con([Name="Joe", Age=21], [Name="Sue"]);"#)
        .unwrap();
    assert_eq!(out.show(), "val it = false : bool");
}

#[test]
fn join_coincides_with_intersection_on_base_sets() {
    // "join ... coincides with intersection when applied to two sets of
    // the same base type, such as {int}".
    let mut s = Session::new();
    let out = s.eval_one("join({1,2,3}, {2,3,4});").unwrap();
    assert_eq!(out.show(), "val it = {2, 3} : {int}");
    let out = s.eval_one("intersect({1,2,3}, {2,3,4});").unwrap();
    assert_eq!(out.value, s.eval_one("{2,3};").unwrap().value);
}

#[test]
fn unionc_satisfies_the_papers_equation() {
    // union(s1,s2) = project(s1, δ1⊓δ2) ∪ project(s2, δ1⊓δ2).
    let mut s = Session::new();
    let lhs = s
        .eval_one(
            r#"unionc({[Name="a", Advisor=1], [Name="b", Advisor=2]},
                      {[Name="b", Salary=9], [Name="c", Salary=8]});"#,
        )
        .unwrap();
    // glb of the element types is [Name:string]; the equation's RHS:
    let rhs = s
        .eval_one(
            r#"union(project({[Name="a", Advisor=1], [Name="b", Advisor=2]}, {[Name: string]}),
                     project({[Name="b", Salary=9], [Name="c", Salary=8]}, {[Name: string]}));"#,
        )
        .unwrap();
    assert_eq!(lhs.value, rhs.value);
    assert_eq!(lhs.scheme.show(), "{[Name:string]}");
    // And it degenerates to plain union at equal types.
    let out = s.eval_one("unionc({1,2},{2,3});").unwrap();
    assert_eq!(out.show(), "val it = {1, 2, 3} : {int}");
}

#[test]
fn unionc_of_views_is_class_union() {
    let (mut s, uni) = university_session(UniversityParams {
        n_people: 50,
        seed: 21,
        ..Default::default()
    });
    let out = s
        .eval_one("card(unionc(StudentView(persons), EmployeeView(persons)));")
        .unwrap();
    let either = uni.roles.iter().filter(|r| r.0 || r.1).count();
    assert_eq!(out.show(), format!("val it = {either} : int"));
    // Only Person methods apply to the union: its type is {Person}-like.
    let ty = s
        .type_of("unionc(StudentView(persons), EmployeeView(persons));")
        .unwrap();
    // The class record has exactly Id and Name (the PersonObj *inside*
    // the ref still lists the optional Salary attribute, of course).
    assert!(ty.starts_with("{[Id:ref("), "{ty}");
    assert!(ty.ends_with(",Name:string]}"), "{ty}");
    assert!(
        !ty.contains("Salary:int,") && !ty.contains("Salary:int]"),
        "{ty}"
    );
}

#[test]
fn class_member_from_section_5() {
    // fun member(x,S) = join({x},S) <> {};
    let (mut s, _) = university_session(UniversityParams {
        n_people: 30,
        seed: 4,
        ..Default::default()
    });
    s.run("fun cmember(x,S) = join({x}, S) <> {};").unwrap();
    // Every employee-view row is a member of the person view (shared Id).
    let out = s
        .eval_one(
            "hom((fn(x) => cmember(x, PersonView(persons))), andalso, true,
                 EmployeeView(persons));",
        )
        .unwrap();
    assert_eq!(out.show(), "val it = true : bool");
}

#[test]
fn dynamics_have_creation_identity() {
    // "two dynamic values are equal only if they were created by the same
    // invocation of the function Dynamic".
    let mut s = Session::new();
    let out = s.eval_one("dynamic([A=1]) = dynamic([A=1]);").unwrap();
    assert_eq!(out.show(), "val it = false : bool");
    let out = s.eval_one("let d = dynamic([A=1]) in d = d end;").unwrap();
    assert_eq!(out.show(), "val it = true : bool");
}

#[test]
fn external_database_views_are_type_safe() {
    // The §5 ending: an external untyped database as {dynamic}, viewed as
    // typed classes. Coercion back out is checked at runtime.
    let mut s = Session::new();
    let out = s
        .eval_one(
            r#"val external = {dynamic([Name="e1", Salary=10]), dynamic([Dname="d1", Building="B2"])};"#,
        )
        .unwrap();
    assert_eq!(out.scheme.show(), "{dynamic}");
    // Coerce one element back (runtime-checked).
    let ok = s
        .eval_one(r#"dynamic(dynamic([Name="e1", Salary=10]), [Name: string, Salary: int]);"#)
        .unwrap();
    assert_eq!(
        ok.show(),
        r#"val it = [Name="e1", Salary=10] : [Name:string,Salary:int]"#
    );
    let err = s
        .run(r#"dynamic(dynamic([Dname="d"]), [Name: string, Salary: int]);"#)
        .unwrap_err();
    assert!(err.to_string().contains("does not conform"), "{err}");
}

#[test]
fn native_dynamic_views_compose_with_class_algebra() {
    use machiavelli_oodb::{class_join, dynamic_view, employee_shape, gen_external_db};
    let db = gen_external_db(200, 17);
    let employees = dynamic_view(&db, &employee_shape());
    // Self-join is identity; join with a projected sub-view recovers it.
    let wealthy = employees.select(|v| {
        matches!(v, Value::Record(fs) if matches!(fs.get("Salary"), Some(Value::Int(s)) if *s > 100_000))
    });
    let j = class_join(&wealthy, &employees);
    assert_eq!(j, wealthy);
}
