//! The on-disk grammar of the durability layer: version-stamped file
//! headers, CRC-framed records, and the record payload formats.
//!
//! # Log file (`wal.log`)
//!
//! ```text
//! MACHWAL v1 gen <G>\n            ASCII header, generation-stamped
//! [u32 len][u32 crc][payload]     repeated; little-endian, crc of payload
//! ```
//!
//! # Record payloads
//!
//! ```text
//! B<nlen>:<name><tlen>:<type><elen>:<enc>   bind/rebind of a top-level name
//! R<durable-id>.<elen>:<enc>                ref-cell delta (registry id)
//! C                                         commit marker (group boundary)
//! ```
//!
//! `<enc>` payloads are the `persist.rs` value grammar threaded through
//! one [`RefRegistry`](machiavelli::persist::RefRegistry) per
//! generation, so sharing and cycles survive *across* records.
//!
//! # Snapshot file (`snapshot.mach`)
//!
//! ```text
//! MACHSNAP v1 gen <G> len <N> crc <C>\n
//! <N bytes: concatenated B payloads>
//! ```
//!
//! Records are only trusted between a valid frame *and* a commit
//! marker: recovery applies complete groups and truncates everything
//! after the last one — a torn tail is a normal crash artifact, not
//! corruption. The snapshot, by contrast, is written atomically
//! (temp + rename), so a snapshot failing its length or CRC check *is*
//! corruption and recovery refuses it loudly.

use crate::crc::crc32;
use crate::WalError;

/// Bytes of framing per record: u32 length + u32 CRC.
pub const FRAME_OVERHEAD: usize = 8;

/// The commit-marker payload closing each record group.
pub const COMMIT: &[u8] = b"C";

/// Format version stamped into both headers. Readers reject anything
/// else — versioning is how a future format change avoids silently
/// misparsing an old file.
pub const FORMAT_VERSION: u32 = 1;

pub fn log_header(gen: u64) -> String {
    format!("MACHWAL v{FORMAT_VERSION} gen {gen}\n")
}

pub fn snap_header(gen: u64, len: usize, crc: u32) -> String {
    format!("MACHSNAP v{FORMAT_VERSION} gen {gen} len {len} crc {crc}\n")
}

fn header_error(what: &'static str) -> WalError {
    WalError::BadHeader(what.to_string())
}

/// Split the first line off `bytes` and parse `magic v<V> <fields…>`,
/// returning the fields and the header's byte length (incl. newline).
fn parse_header_line<'a>(
    bytes: &'a [u8],
    magic: &'static str,
) -> Result<(Vec<&'a str>, usize), WalError> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| header_error("missing header line"))?;
    let line = std::str::from_utf8(&bytes[..nl]).map_err(|_| header_error("non-utf8 header"))?;
    let mut parts = line.split(' ');
    if parts.next() != Some(magic) {
        return Err(header_error("wrong magic"));
    }
    let version = parts
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| header_error("missing version"))?;
    if version != FORMAT_VERSION {
        return Err(header_error("unsupported format version"));
    }
    Ok((parts.collect(), nl + 1))
}

fn keyed_u64(fields: &[&str], key: &str) -> Result<u64, WalError> {
    fields
        .windows(2)
        .find(|w| w[0] == key)
        .and_then(|w| w[1].parse::<u64>().ok())
        .ok_or_else(|| WalError::BadHeader(format!("missing `{key}` field")))
}

/// Parse a log header, returning `(generation, header_len)`.
pub fn parse_log_header(bytes: &[u8]) -> Result<(u64, usize), WalError> {
    let (fields, len) = parse_header_line(bytes, "MACHWAL")?;
    Ok((keyed_u64(&fields, "gen")?, len))
}

/// Parse a snapshot header, returning
/// `(generation, payload_len, payload_crc, header_len)`.
pub fn parse_snap_header(bytes: &[u8]) -> Result<(u64, usize, u32, usize), WalError> {
    let (fields, hlen) = parse_header_line(bytes, "MACHSNAP")?;
    let gen = keyed_u64(&fields, "gen")?;
    let len = usize::try_from(keyed_u64(&fields, "len")?)
        .map_err(|_| header_error("payload length overflows"))?;
    let crc =
        u32::try_from(keyed_u64(&fields, "crc")?).map_err(|_| header_error("crc overflows u32"))?;
    Ok((gen, len, crc, hlen))
}

/// Append one framed record (`[len][crc][payload]`) to `out`.
pub fn frame_record(payload: &[u8], out: &mut Vec<u8>) -> Result<(), WalError> {
    let len = u32::try_from(payload.len()).map_err(|_| WalError::RecordTooLarge(payload.len()))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// The result of scanning a log body for committed record groups.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Payloads of every complete (commit-marker-terminated) group, in
    /// log order, commit markers excluded.
    pub groups: Vec<Vec<Vec<u8>>>,
    /// File offset just past the last complete group — the watermark a
    /// recovering log truncates to.
    pub keep_len: u64,
    /// Whether anything past `keep_len` was dropped: a torn frame, a
    /// CRC mismatch, or complete records missing their commit marker.
    pub torn: bool,
}

/// Scan `bytes[start..]` for framed records grouped by commit markers.
/// Never errors: the first byte that fails to frame or checksum ends
/// the trusted region (torn tail), as does a trailing group with no
/// commit marker.
pub fn scan_records(bytes: &[u8], start: usize) -> ScanResult {
    let mut pos = start;
    let mut group: Vec<Vec<u8>> = Vec::new();
    let mut out = ScanResult {
        keep_len: start as u64,
        ..ScanResult::default()
    };
    while pos < bytes.len() {
        let Some(frame) = bytes.get(pos..pos + FRAME_OVERHEAD) else {
            break; // torn frame header
        };
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        let body_start = pos + FRAME_OVERHEAD;
        let Some(payload) = body_start
            .checked_add(len)
            .and_then(|end| bytes.get(body_start..end))
        else {
            break; // torn payload
        };
        if crc32(payload) != crc {
            break; // corrupt record: everything from here is untrusted
        }
        pos = body_start + len;
        if payload == COMMIT {
            out.groups.push(std::mem::take(&mut group));
            out.keep_len = pos as u64;
        } else {
            group.push(payload.to_vec());
        }
    }
    out.torn = out.keep_len < bytes.len() as u64;
    out
}

/// A decoded record payload.
#[derive(Debug, PartialEq, Eq)]
pub enum Payload {
    Bind {
        name: String,
        ty: String,
        enc: String,
    },
    Delta {
        durable_id: u64,
        enc: String,
    },
    Commit,
}

/// Build a bind payload: `B<nlen>:<name><tlen>:<ty><elen>:<enc>`.
pub fn build_bind(name: &str, ty: &str, enc: &str) -> Vec<u8> {
    format!("B{}:{name}{}:{ty}{}:{enc}", name.len(), ty.len(), enc.len()).into_bytes()
}

/// Build a ref-delta payload: `R<durable-id>.<elen>:<enc>`.
pub fn build_delta(durable_id: u64, enc: &str) -> Vec<u8> {
    format!("R{durable_id}.{}:{enc}", enc.len()).into_bytes()
}

fn corrupt(offset: usize, what: &'static str) -> WalError {
    WalError::Corrupt {
        offset: offset as u64,
        what,
    }
}

fn read_number(bytes: &[u8], pos: &mut usize) -> Result<u64, WalError> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| corrupt(start, "a decimal number"))
}

fn read_sized(bytes: &[u8], pos: &mut usize) -> Result<String, WalError> {
    let n = usize::try_from(read_number(bytes, pos)?).map_err(|_| corrupt(*pos, "a length"))?;
    if bytes.get(*pos) != Some(&b':') {
        return Err(corrupt(*pos, "`:` after length"));
    }
    *pos += 1;
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| corrupt(*pos, "length-prefixed bytes"))?;
    let s = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| corrupt(*pos, "utf-8 bytes"))?
        .to_string();
    *pos = end;
    Ok(s)
}

/// Parse one bind payload starting at `*pos`, advancing past it. Used
/// both for log records (where the payload is exactly one entry) and
/// snapshot payloads (a concatenated sequence).
pub fn parse_bind_at(bytes: &[u8], pos: &mut usize) -> Result<(String, String, String), WalError> {
    if bytes.get(*pos) != Some(&b'B') {
        return Err(corrupt(*pos, "a `B` bind tag"));
    }
    *pos += 1;
    let name = read_sized(bytes, pos)?;
    let ty = read_sized(bytes, pos)?;
    let enc = read_sized(bytes, pos)?;
    Ok((name, ty, enc))
}

/// Parse a full record payload.
pub fn parse_payload(bytes: &[u8]) -> Result<Payload, WalError> {
    match bytes.first() {
        Some(b'C') if bytes.len() == 1 => Ok(Payload::Commit),
        Some(b'B') => {
            let mut pos = 0;
            let (name, ty, enc) = parse_bind_at(bytes, &mut pos)?;
            if pos != bytes.len() {
                return Err(corrupt(pos, "end of bind payload"));
            }
            Ok(Payload::Bind { name, ty, enc })
        }
        Some(b'R') => {
            let mut pos = 1;
            let durable_id = read_number(bytes, &mut pos)?;
            if bytes.get(pos) != Some(&b'.') {
                return Err(corrupt(pos, "`.` after durable id"));
            }
            pos += 1;
            let enc = read_sized(bytes, &mut pos)?;
            if pos != bytes.len() {
                return Err(corrupt(pos, "end of delta payload"));
            }
            Ok(Payload::Delta { durable_id, enc })
        }
        _ => Err(corrupt(0, "a record tag (B, R, or C)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_roundtrip() {
        let h = log_header(7);
        let (gen, len) = parse_log_header(h.as_bytes()).unwrap();
        assert_eq!((gen, len), (7, h.len()));
        let h = snap_header(3, 120, 0xDEAD_BEEF);
        let (gen, plen, crc, hlen) = parse_snap_header(h.as_bytes()).unwrap();
        assert_eq!((gen, plen, crc, hlen), (3, 120, 0xDEAD_BEEF, h.len()));
    }

    #[test]
    fn headers_reject_wrong_magic_and_version() {
        assert!(parse_log_header(b"MACHSNAP v1 gen 0\n").is_err());
        assert!(parse_log_header(b"MACHWAL v2 gen 0\n").is_err());
        assert!(parse_log_header(b"MACHWAL v1\n").is_err());
        assert!(parse_log_header(b"MACHWAL v1 gen 0").is_err(), "no newline");
        assert!(parse_snap_header(b"MACHSNAP v1 gen 0 len 1\n").is_err());
    }

    #[test]
    fn payloads_roundtrip() {
        let b = build_bind("db", "{[A: int]}", "refs0{}u");
        assert_eq!(
            parse_payload(&b).unwrap(),
            Payload::Bind {
                name: "db".into(),
                ty: "{[A: int]}".into(),
                enc: "refs0{}u".into()
            }
        );
        let d = build_delta(9, "refs0{}i1:");
        assert_eq!(
            parse_payload(&d).unwrap(),
            Payload::Delta {
                durable_id: 9,
                enc: "refs0{}i1:".into()
            }
        );
        assert_eq!(parse_payload(COMMIT).unwrap(), Payload::Commit);
        assert!(parse_payload(b"X").is_err());
        assert!(parse_payload(b"").is_err());
        assert!(parse_payload(b"B2:db").is_err(), "truncated bind");
    }

    #[test]
    fn scan_applies_only_complete_groups() {
        let mut body = Vec::new();
        frame_record(&build_bind("a", "int", "refs0{}i1:"), &mut body).unwrap();
        frame_record(COMMIT, &mut body).unwrap();
        let after_first = body.len();
        frame_record(&build_bind("b", "int", "refs0{}i2:"), &mut body).unwrap();
        // No commit marker for the second group: it must be dropped.
        let scan = scan_records(&body, 0);
        assert_eq!(scan.groups.len(), 1);
        assert_eq!(scan.keep_len, after_first as u64);
        assert!(scan.torn);
    }

    #[test]
    fn scan_truncates_torn_and_corrupt_tails() {
        let mut body = Vec::new();
        frame_record(&build_bind("a", "int", "refs0{}i1:"), &mut body).unwrap();
        frame_record(COMMIT, &mut body).unwrap();
        let good = body.len();
        frame_record(&build_bind("b", "int", "refs0{}i2:"), &mut body).unwrap();
        frame_record(COMMIT, &mut body).unwrap();
        // Tear at every byte of the second group: exactly the first
        // group survives, never a panic, never a partial application.
        for cut in good + 1..body.len() {
            let scan = scan_records(&body[..cut], 0);
            assert_eq!(scan.groups.len(), 1, "cut {cut}");
            assert_eq!(scan.keep_len, good as u64, "cut {cut}");
            assert!(scan.torn, "cut {cut}");
        }
        // Flip one payload byte of the second group: same outcome.
        let mut corrupt = body.clone();
        corrupt[good + FRAME_OVERHEAD] ^= 0x40;
        let scan = scan_records(&corrupt, 0);
        assert_eq!(scan.groups.len(), 1);
        assert!(scan.torn);
        // Untouched log: both groups, nothing torn.
        let scan = scan_records(&body, 0);
        assert_eq!(scan.groups.len(), 2);
        assert!(!scan.torn);
        assert_eq!(scan.keep_len, body.len() as u64);
    }

    #[test]
    fn scan_rejects_hostile_frame_lengths() {
        // A frame claiming u32::MAX payload bytes on a short file must
        // land in "torn tail", not an allocation or a panic.
        let mut body = vec![0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0];
        body.extend_from_slice(b"short");
        let scan = scan_records(&body, 0);
        assert!(scan.groups.is_empty());
        assert_eq!(scan.keep_len, 0);
        assert!(scan.torn);
    }
}
