//! Value-level database operations: generalized projection, consistency,
//! join, and class union (§2 and §5 of the paper).
//!
//! * [`project_value`] — `project(d, δ)`, lifted structurally: on records
//!   it keeps the annotation's labels, on sets it maps (re-canonicalizing,
//!   since projection can merge elements), on base types it is the
//!   identity (`project(3, int) = 3`).
//! * [`con_value`] / [`join_value`] — consistency and join of two
//!   descriptions; on sets join is the *natural join* of \[BJO89\]:
//!   `{ x ⊔ y | x ∈ s₁, y ∈ s₂, x ↑ y }`, which degenerates to
//!   intersection on sets of equal base type.
//! * [`unionc_value`] — the generalized union: both sides projected onto
//!   the glb skeleton and unioned.

use crate::display::show_value;
use crate::error::ValueError;
use crate::set::MSet;
use crate::shape::{element_shape, glb_shape, project_by_shape, Shape};
use crate::value::{Fields, Value};
use machiavelli_types::ty::unfold_rec;
use machiavelli_types::{Ty, Type};
use std::cmp::Ordering;

/// `project(v, δ)` — generalized projection of a description value onto a
/// (closed) description type.
pub fn project_value(v: &Value, ty: &Ty) -> Result<Value, ValueError> {
    let mismatch = || ValueError::ProjectionMismatch {
        value: show_value(v),
        ty: machiavelli_types::show_type(ty),
    };
    match (&**ty, v) {
        (Type::Rec(..), _) => project_value(v, &unfold_rec(ty)),
        (Type::Unit, Value::Unit)
        | (Type::Int, Value::Int(_))
        | (Type::Bool, Value::Bool(_))
        | (Type::Real, Value::Real(_))
        | (Type::Str, Value::Str(_))
        | (Type::Dynamic, Value::Dynamic(_))
        | (Type::Ref(_), Value::Ref(_)) => Ok(v.clone()),
        (Type::Record(tfs), Value::Record(vfs)) => {
            let mut out = Vec::with_capacity(tfs.len());
            for (l, fty) in tfs {
                let Some(fv) = vfs.get(l) else {
                    return Err(ValueError::NoSuchField {
                        value: show_value(v),
                        label: l.to_string(),
                    });
                };
                out.push((*l, project_value(fv, fty)?));
            }
            // Type-level label maps share the canonical label order.
            Ok(Value::Record(Fields::from_sorted_vec(out)))
        }
        (Type::Variant(tfs), Value::Variant(l, p)) => match tfs.get(l) {
            Some(pty) => Ok(Value::Variant(*l, Box::new(project_value(p, pty)?))),
            None => Err(mismatch()),
        },
        (Type::Set(ety), Value::Set(items)) => {
            // Projection can merge elements; MSet re-canonicalizes.
            let projected: Result<MSet, ValueError> =
                items.iter().map(|item| project_value(item, ety)).collect();
            Ok(Value::Set(projected?))
        }
        // Type variables can appear when a projection annotation was
        // resolved against an open scheme; projection there is identity.
        (Type::Var(_), _) => Ok(v.clone()),
        _ => Err(mismatch()),
    }
}

/// `con(v₁, v₂)` — are the two descriptions consistent (projections of a
/// common description)?
pub fn con_value(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Record(xs), Value::Record(ys)) => {
            // Both entry lists are label-sorted: one merge-walk, with
            // label equality a pointer-identity compare.
            let (xs, ys) = (xs.entries(), ys.entries());
            let (mut i, mut j) = (0, 0);
            while i < xs.len() && j < ys.len() {
                match xs[i].0.cmp(&ys[j].0) {
                    Ordering::Less => i += 1,
                    Ordering::Greater => j += 1,
                    Ordering::Equal => {
                        if !con_value(&xs[i].1, &ys[j].1) {
                            return false;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
            true
        }
        (Value::Variant(lx, px), Value::Variant(ly, py)) => lx == ly && con_value(px, py),
        // Two sets of joinable type are always consistent: their join is
        // the (possibly empty) natural join.
        (Value::Set(_), Value::Set(_)) => true,
        // Identity-bearing and base values: consistent iff equal.
        _ => a == b,
    }
}

/// `join(v₁, v₂)` — combine two consistent descriptions; errors when they
/// are inconsistent (except inside sets, where inconsistent pairs are
/// simply absent from the natural join).
pub fn join_value(a: &Value, b: &Value) -> Result<Value, ValueError> {
    let inconsistent = || ValueError::Inconsistent {
        left: show_value(a),
        right: show_value(b),
    };
    match (a, b) {
        (Value::Record(xs), Value::Record(ys)) => {
            // O(n + m) sorted merge; shared labels join recursively.
            let (xs, ys) = (xs.entries(), ys.entries());
            let mut out = Vec::with_capacity(xs.len() + ys.len());
            let (mut i, mut j) = (0, 0);
            while i < xs.len() && j < ys.len() {
                match xs[i].0.cmp(&ys[j].0) {
                    Ordering::Less => {
                        out.push(xs[i].clone());
                        i += 1;
                    }
                    Ordering::Greater => {
                        out.push(ys[j].clone());
                        j += 1;
                    }
                    Ordering::Equal => {
                        out.push((xs[i].0, join_value(&xs[i].1, &ys[j].1)?));
                        i += 1;
                        j += 1;
                    }
                }
            }
            out.extend_from_slice(&xs[i..]);
            out.extend_from_slice(&ys[j..]);
            Ok(Value::Record(Fields::from_sorted_vec(out)))
        }
        (Value::Variant(lx, px), Value::Variant(ly, py)) => {
            if lx != ly {
                return Err(inconsistent());
            }
            Ok(Value::Variant(*lx, Box::new(join_value(px, py)?)))
        }
        (Value::Set(xs), Value::Set(ys)) => {
            // Natural join of higher-order relations [BJO89]; results
            // accumulate in a vector and canonicalize once.
            let mut out = Vec::new();
            for x in xs.iter() {
                for y in ys.iter() {
                    if con_value(x, y) {
                        out.push(join_value(x, y)?);
                    }
                }
            }
            Ok(Value::Set(MSet::from_iter(out)))
        }
        _ => {
            if a == b {
                Ok(a.clone())
            } else {
                Err(inconsistent())
            }
        }
    }
}

/// `unionc(s₁, s₂)` — the generalized union of §5:
/// `project(s₁, δ₁ ⊓ δ₂) ∪ project(s₂, δ₁ ⊓ δ₂)`, computed on runtime
/// shapes. Degenerates to ordinary union when the element shapes agree.
pub fn unionc_value(a: &Value, b: &Value) -> Result<Value, ValueError> {
    let (Value::Set(xs), Value::Set(ys)) = (a, b) else {
        return Err(ValueError::NotASet(show_value(
            if matches!(a, Value::Set(_)) { b } else { a },
        )));
    };
    let sa = element_shape(xs.iter())?;
    let sb = element_shape(ys.iter())?;
    let skel = glb_shape(&sa, &sb).ok_or_else(|| ValueError::Inconsistent {
        left: show_value(a),
        right: show_value(b),
    })?;
    let mut out = Vec::with_capacity(xs.len() + ys.len());
    for x in xs.iter() {
        out.push(project_by_shape(x, &skel)?);
    }
    for y in ys.iter() {
        out.push(project_by_shape(y, &skel)?);
    }
    Ok(Value::Set(MSet::from_iter(out)))
}

/// The shape-level projection used by `unionc`, re-exported for the
/// OODB layer.
pub fn project_value_by_shape(v: &Value, s: &Shape) -> Result<Value, ValueError> {
    project_by_shape(v, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::RefValue;
    use machiavelli_types::ty::{t_int, t_record, t_set, t_str};

    fn joe() -> Value {
        Value::record([
            ("Name".into(), Value::str("Joe")),
            ("Age".into(), Value::Int(21)),
            ("Salary".into(), Value::Int(22340)),
        ])
    }

    #[test]
    fn project_record_paper_example() {
        let ty = t_record([("Name".into(), t_str()), ("Salary".into(), t_int())]);
        let p = project_value(&joe(), &ty).unwrap();
        assert_eq!(
            p,
            Value::record([
                ("Name".into(), Value::str("Joe")),
                ("Salary".into(), Value::Int(22340)),
            ])
        );
    }

    #[test]
    fn project_base_identity() {
        assert_eq!(
            project_value(&Value::Int(3), &t_int()).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn project_nested_record() {
        let v = Value::record([
            (
                "Name".into(),
                Value::record([
                    ("First".into(), Value::str("Joe")),
                    ("Last".into(), Value::str("Doe")),
                ]),
            ),
            ("Salary".into(), Value::Int(12345)),
        ]);
        let ty = t_record([("Name".into(), t_record([("Last".into(), t_str())]))]);
        let p = project_value(&v, &ty).unwrap();
        assert_eq!(
            p,
            Value::record([(
                "Name".into(),
                Value::record([("Last".into(), Value::str("Doe"))])
            )])
        );
    }

    #[test]
    fn project_set_merges_duplicates() {
        // Projecting away the distinguishing field merges elements.
        let s = Value::set([
            Value::record([("A".into(), Value::Int(1)), ("B".into(), Value::Int(1))]),
            Value::record([("A".into(), Value::Int(1)), ("B".into(), Value::Int(2))]),
        ]);
        let ty = t_set(t_record([("A".into(), t_int())]));
        let p = project_value(&s, &ty).unwrap();
        let Value::Set(items) = p else { panic!() };
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn con_paper_examples() {
        // [Name=[First="Joe"], Age=21] and [Name=[Last="Doe"]] consistent.
        let a = Value::record([
            (
                "Name".into(),
                Value::record([("First".into(), Value::str("Joe"))]),
            ),
            ("Age".into(), Value::Int(21)),
        ]);
        let b = Value::record([(
            "Name".into(),
            Value::record([("Last".into(), Value::str("Doe"))]),
        )]);
        assert!(con_value(&a, &b));
        // [Name="Joe", Age=21] and [Name="Sue"] inconsistent.
        let c = Value::record([
            ("Name".into(), Value::str("Joe")),
            ("Age".into(), Value::Int(21)),
        ]);
        let d = Value::record([("Name".into(), Value::str("Sue"))]);
        assert!(!con_value(&c, &d));
    }

    #[test]
    fn join_paper_example() {
        let a = Value::record([
            (
                "Name".into(),
                Value::record([("First".into(), Value::str("Joe"))]),
            ),
            ("Age".into(), Value::Int(21)),
        ]);
        let b = Value::record([(
            "Name".into(),
            Value::record([("Last".into(), Value::str("Doe"))]),
        )]);
        let joined = join_value(&a, &b).unwrap();
        assert_eq!(
            joined,
            Value::record([
                (
                    "Name".into(),
                    Value::record([
                        ("First".into(), Value::str("Joe")),
                        ("Last".into(), Value::str("Doe")),
                    ])
                ),
                ("Age".into(), Value::Int(21)),
            ])
        );
    }

    #[test]
    fn join_inconsistent_errors() {
        let a = Value::record([("Name".into(), Value::str("Joe"))]);
        let b = Value::record([("Name".into(), Value::str("Sue"))]);
        assert!(matches!(
            join_value(&a, &b),
            Err(ValueError::Inconsistent { .. })
        ));
    }

    #[test]
    fn set_join_is_natural_join() {
        let r = Value::set([
            Value::record([("A".into(), Value::Int(1)), ("B".into(), Value::Int(10))]),
            Value::record([("A".into(), Value::Int(2)), ("B".into(), Value::Int(20))]),
        ]);
        let s = Value::set([
            Value::record([("B".into(), Value::Int(10)), ("C".into(), Value::Int(100))]),
            Value::record([("B".into(), Value::Int(30)), ("C".into(), Value::Int(300))]),
        ]);
        let j = join_value(&r, &s).unwrap();
        assert_eq!(
            j,
            Value::set([Value::record([
                ("A".into(), Value::Int(1)),
                ("B".into(), Value::Int(10)),
                ("C".into(), Value::Int(100)),
            ])])
        );
    }

    #[test]
    fn set_join_same_type_is_intersection() {
        let a = Value::set([Value::Int(1), Value::Int(2), Value::Int(3)]);
        let b = Value::set([Value::Int(2), Value::Int(3), Value::Int(4)]);
        let j = join_value(&a, &b).unwrap();
        assert_eq!(j, Value::set([Value::Int(2), Value::Int(3)]));
    }

    #[test]
    fn join_with_ref_identity() {
        let r = RefValue::new(Value::Int(1));
        let a = Value::record([
            ("Id".into(), Value::Ref(r.clone())),
            ("Name".into(), Value::str("x")),
        ]);
        let b = Value::record([
            ("Id".into(), Value::Ref(r)),
            ("Salary".into(), Value::Int(5)),
        ]);
        let j = join_value(&a, &b).unwrap();
        let Value::Record(fs) = &j else { panic!() };
        assert_eq!(fs.len(), 3);
        // Different identities are inconsistent.
        let c = Value::record([("Id".into(), Value::Ref(RefValue::new(Value::Int(1))))]);
        let d = Value::record([("Id".into(), Value::Ref(RefValue::new(Value::Int(1))))]);
        assert!(!con_value(&c, &d));
    }

    #[test]
    fn unionc_projects_to_common_structure() {
        let students = Value::set([Value::record([
            ("Name".into(), Value::str("s1")),
            ("Advisor".into(), Value::Int(9)),
        ])]);
        let employees = Value::set([Value::record([
            ("Name".into(), Value::str("e1")),
            ("Salary".into(), Value::Int(100)),
        ])]);
        let u = unionc_value(&students, &employees).unwrap();
        assert_eq!(
            u,
            Value::set([
                Value::record([("Name".into(), Value::str("e1"))]),
                Value::record([("Name".into(), Value::str("s1"))]),
            ])
        );
    }

    #[test]
    fn unionc_same_type_is_union() {
        let a = Value::set([Value::Int(1), Value::Int(2)]);
        let b = Value::set([Value::Int(2), Value::Int(3)]);
        let u = unionc_value(&a, &b).unwrap();
        assert_eq!(u, Value::set([Value::Int(1), Value::Int(2), Value::Int(3)]));
    }

    #[test]
    fn unionc_with_empty_side() {
        let a = Value::set([Value::record([("A".into(), Value::Int(1))])]);
        let empty = Value::set([]);
        assert_eq!(unionc_value(&a, &empty).unwrap(), a);
        assert_eq!(unionc_value(&empty, &a).unwrap(), a);
    }
}
