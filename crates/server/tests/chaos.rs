//! The chaos suite: prove the server's resilience contract under
//! injected faults.
//!
//! Invariants asserted throughout:
//!
//! * the **process never aborts** — every failure, injected or real,
//!   reaches the client as a structured [`ServerError`];
//! * a panic poisons **only its own session**;
//! * deadlines, cancellation, row budgets, and admission control all
//!   produce their own typed errors and counters;
//! * the shared index tier builds each hot index **once** across
//!   sessions, and recovers from a lock poisoned mid-publish.
//!
//! The tests share process-global counters (governor, shared tier,
//! injected faults), so every test serializes on [`SERIAL`] and resets
//! the counters it asserts on.

use machiavelli_server::faults::{FaultConfig, INJECTED_PANIC_PREFIX};
use machiavelli_server::{QueryGuard, Server, ServerConfig, ServerError, ServerRole};
use machiavelli_value::governor;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

/// Serialize a test and quiet the panic hook for injected payloads
/// (hundreds of *expected* worker panics would otherwise spam stderr).
fn serial() -> MutexGuard<'static, ()> {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains(INJECTED_PANIC_PREFIX));
            if !injected {
                previous(info);
            }
        }));
    });
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn reset_counters() {
    governor::reset_server_counters();
    machiavelli_server::faults::reset_injected_faults();
    machiavelli_store::shared::reset_shared();
}

fn base_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_cap: 16,
        default_deadline: None,
        row_budget: None,
        shared_store: false,
        faults: Some(FaultConfig::off()),
        durable_root: None,
        role: ServerRole::Primary,
    }
}

/// A query with well over 256 evaluator steps, so the governance tick
/// (and with it every tick-hosted fail point) is guaranteed to fire.
fn ticking_query() -> String {
    let elems: Vec<String> = (0..200).map(|i| format!("{i} + 0")).collect();
    format!("{{{}}};", elems.join(", "))
}

/// A query that grinds for a long time (nested loop over a cross
/// product): the workload for deadline / cancellation / admission
/// tests. ~250ms+ interpreted, with ticks throughout.
fn heavy_query() -> &'static str {
    "card(select [A = x.K + y.K] where x <- big, y <- big with x.K + y.K >= 0);"
}

fn heavy_setup() -> String {
    let elems: Vec<String> = (0..220).map(|i| format!("[K = {i}]")).collect();
    format!("val big = {{{}}};", elems.join(", "))
}

/// Setup + join for the shared-index tests: identical sources in every
/// session, so the built index is content-identical across sessions.
fn indexed_setup() -> String {
    let rows: Vec<String> = (0..64)
        .map(|i| format!("[K = {i}, A = {}]", i * 10))
        .collect();
    format!(
        "val r = {{{}}}; val probe = {{[K = 3], [K = 7]}};",
        rows.join(", ")
    )
}

const INDEXED_QUERY: &str = "select x.A where y <- probe, x <- r with x.K = y.K;";

// ---------------------------------------------------------------- isolation

#[test]
fn injected_panic_poisons_only_its_session() {
    let _g = serial();
    reset_counters();
    let server = Server::start(ServerConfig {
        workers: 1, // both sessions share a worker: strongest isolation claim
        faults: Some(FaultConfig {
            eval_panic_ppm: 1_000_000,
            seed: 1,
            ..FaultConfig::off()
        }),
        ..base_config()
    });
    let a = server.open_session().expect("open a");
    let b = server.open_session().expect("open b");

    // The big query ticks, and every tick panics: session a dies with a
    // structured error naming the injected fault.
    match server.eval(a, &ticking_query()) {
        Err(ServerError::SessionPanicked(msg)) => {
            assert!(msg.contains(INJECTED_PANIC_PREFIX), "{msg}")
        }
        other => panic!("expected SessionPanicked, got {other:?}"),
    }
    // a is poisoned; only close works.
    assert_eq!(server.eval(a, "1;"), Err(ServerError::SessionPoisoned(a)));
    // b — on the *same worker thread* — is untouched. (A small query
    // never reaches a governance tick, so it runs clean even with the
    // fault at p=1.)
    assert_eq!(
        server.eval(b, "20 + 22;").expect("b survives"),
        vec!["val it = 42 : int".to_string()]
    );
    server
        .close_session(a)
        .expect("poisoned sessions can close");

    let stats = server.stats();
    assert_eq!(stats.counters.sessions_panicked, 1, "{stats}");
    assert!(stats.injected.eval_panics >= 1, "{:?}", stats.injected);
    server.shutdown();
}

// ------------------------------------------------------------- governance

#[test]
fn deadlines_trip_before_and_during_evaluation() {
    let _g = serial();
    reset_counters();
    let server = Server::start(ServerConfig {
        default_deadline: Some(Duration::ZERO),
        ..base_config()
    });
    let sid = server.open_session().expect("open");
    // Expired before the worker even starts: the queue-wait pre-check.
    assert_eq!(
        server.eval(sid, "1;"),
        Err(ServerError::DeadlineExceeded),
        "zero deadline trips at admission"
    );
    // And mid-evaluation: a generous-enough deadline to start, far too
    // short for the heavy query.
    server
        .submit_with(sid, &heavy_setup(), Arc::new(QueryGuard::unlimited()))
        .expect("admit setup")
        .wait()
        .expect("setup");
    let guard = Arc::new(QueryGuard::with_timeout(Duration::from_millis(10), None));
    let out = server
        .submit_with(sid, heavy_query(), guard)
        .expect("admit")
        .wait();
    assert_eq!(out, Err(ServerError::DeadlineExceeded));
    // The session survives a deadline trip (no poisoning) — probed
    // under an explicit unlimited guard, since this server's *default*
    // deadline is zero.
    let probe = server
        .submit_with(sid, "1 + 1;", Arc::new(QueryGuard::unlimited()))
        .expect("admit")
        .wait();
    assert!(probe.is_ok(), "{probe:?}");
    assert!(server.stats().counters.deadlines_hit >= 2);
    server.shutdown();
}

#[test]
fn cancellation_stops_an_in_flight_query() {
    let _g = serial();
    reset_counters();
    let server = Server::start(base_config());
    let sid = server.open_session().expect("open");
    server.eval(sid, &heavy_setup()).expect("setup");
    let pending = server.submit(sid, heavy_query()).expect("admit");
    std::thread::sleep(Duration::from_millis(20)); // let it start grinding
    pending.cancel();
    assert_eq!(pending.wait(), Err(ServerError::Cancelled));
    assert!(server.eval(sid, "2;").is_ok(), "session survives");
    assert!(server.stats().counters.queries_cancelled >= 1);
    server.shutdown();
}

#[test]
fn row_budget_is_a_ceiling_even_on_the_final_set() {
    let _g = serial();
    reset_counters();
    let server = Server::start(base_config());
    let sid = server.open_session().expect("open");
    let guard = Arc::new(QueryGuard::new(None, Some(50)));
    let out = server
        .submit_with(sid, &ticking_query(), guard)
        .expect("admit")
        .wait();
    assert_eq!(out, Err(ServerError::RowBudgetExceeded));
    assert!(server.eval(sid, "3;").is_ok(), "session survives");
    assert!(server.stats().counters.row_budgets_hit >= 1);
    server.shutdown();
}

#[test]
fn admission_control_sheds_with_busy() {
    let _g = serial();
    reset_counters();
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_cap: 1,
        ..base_config()
    });
    let sid = server.open_session().expect("open");
    server.eval(sid, &heavy_setup()).expect("setup");
    // p1 occupies the worker...
    let p1 = server.submit(sid, heavy_query()).expect("admit p1");
    std::thread::sleep(Duration::from_millis(30));
    // ...p2 fills the queue (capacity 1)...
    let p2 = server.submit(sid, "1;").expect("admit p2");
    // ...and p3 is shed at the door.
    assert_eq!(server.submit(sid, "2;").err(), Some(ServerError::Busy));
    assert!(server.stats().counters.queries_shed >= 1);
    // Shedding lost nothing that was admitted: cancel the grinder and
    // the queued query still completes.
    p1.cancel();
    assert_eq!(p1.wait(), Err(ServerError::Cancelled));
    assert_eq!(
        p2.wait().expect("queued query runs"),
        vec!["val it = 1 : int"]
    );
    server.shutdown();
}

// ------------------------------------------------------------ shared tier

#[test]
fn shared_tier_builds_each_hot_index_once_across_sessions() {
    let _g = serial();
    reset_counters();
    let server = Server::start(ServerConfig {
        workers: 2,
        shared_store: true,
        ..base_config()
    });
    let sessions: Vec<u64> = (0..6)
        .map(|_| server.open_session().expect("open"))
        .collect();
    let first = sessions[0];
    server.eval(first, &indexed_setup()).expect("setup");
    let out = server.eval(first, INDEXED_QUERY).expect("query");
    assert_eq!(out, vec![r#"val it = {30, 70} : {int}"#.to_string()]);
    let after_first = server.stats().shared;
    assert!(after_first.publishes >= 1, "{after_first:?}");

    for &sid in &sessions[1..] {
        server.eval(sid, &indexed_setup()).expect("setup");
        let out = server.eval(sid, INDEXED_QUERY).expect("query");
        assert_eq!(out, vec![r#"val it = {30, 70} : {int}"#.to_string()]);
    }
    let stats = server.stats().shared;
    assert_eq!(
        stats.publishes, after_first.publishes,
        "later sessions adopt, they never rebuild: {stats:?}"
    );
    assert!(
        stats.adoptions >= (sessions.len() - 1) as u64,
        "every later session adopts the shared index: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn poisoned_shared_lock_recovers_for_later_sessions() {
    let _g = serial();
    reset_counters();
    // Server A panics while *holding the shared-tier lock* mid-publish:
    // torn entry, poisoned mutex, poisoned session.
    let chaos = Server::start(ServerConfig {
        workers: 1,
        shared_store: true,
        faults: Some(FaultConfig {
            store_poison_ppm: 1_000_000,
            seed: 7,
            ..FaultConfig::off()
        }),
        ..base_config()
    });
    let sid = chaos.open_session().expect("open");
    chaos.eval(sid, &indexed_setup()).expect("setup");
    match chaos.eval(sid, INDEXED_QUERY) {
        Err(ServerError::SessionPanicked(msg)) => {
            assert!(msg.contains("shared-store poison"), "{msg}")
        }
        other => panic!("expected a mid-publish panic, got {other:?}"),
    }
    chaos.shutdown();

    // Server B (same process, same shared tier): the first lock
    // acquisition clears the poison and drops the torn entries, then
    // everything works — counted, not silent.
    let server = Server::start(ServerConfig {
        workers: 1,
        shared_store: true,
        ..base_config()
    });
    let sid = server.open_session().expect("open");
    server.eval(sid, &indexed_setup()).expect("setup");
    let out = server.eval(sid, INDEXED_QUERY).expect("recovered");
    assert_eq!(out, vec![r#"val it = {30, 70} : {int}"#.to_string()]);
    let stats = server.stats();
    assert!(
        stats.shared.lock_recoveries >= 1,
        "recovery is counted: {:?}",
        stats.shared
    );
    assert!(stats.injected.store_poisons >= 1, "{:?}", stats.injected);
    server.shutdown();
}

// ------------------------------------------------------------ spawn faults

#[test]
fn injected_spawn_failures_degrade_the_pool_not_the_server() {
    let _g = serial();
    reset_counters();
    let server = Server::start(ServerConfig {
        workers: 4,
        faults: Some(FaultConfig {
            spawn_fail_ppm: 1_000_000, // every optional worker is denied
            seed: 3,
            ..FaultConfig::off()
        }),
        ..base_config()
    });
    assert_eq!(server.live_workers(), 1, "worker 0 always starts");
    assert_eq!(server.stats().worker_spawn_failures, 3);
    // The degraded pool still serves every session.
    let a = server.open_session().expect("open");
    let b = server.open_session().expect("open");
    assert!(server.eval(a, "1 + 1;").is_ok());
    assert!(server.eval(b, "2 + 2;").is_ok());
    server.shutdown();
}

// ------------------------------------------------------------- the storm

#[test]
fn chaos_storm_100_sessions_stays_live() {
    let _g = serial();
    reset_counters();
    let server = Server::start(ServerConfig {
        workers: 3,
        queue_cap: 16,
        default_deadline: Some(Duration::from_millis(500)),
        row_budget: Some(100_000),
        shared_store: true,
        faults: Some(FaultConfig {
            eval_panic_ppm: 60_000,
            worker_panic_ppm: 20_000,
            spawn_fail_ppm: 200_000,
            delay_ppm: 40_000,
            delay_ms: 1,
            store_poison_ppm: 3_000,
            seed: 42,
            ..FaultConfig::off()
        }),
        durable_root: None,
        role: ServerRole::Primary,
    });

    let mut oks = 0u64;
    let mut panicked = 0u64;
    let mut poisoned_follow_ups = 0u64;
    let mut other_structured = 0u64;
    let mut open_sids = Vec::new();
    for i in 0..100u32 {
        let sid = server.open_session().expect("opens are shielded");
        open_sids.push(sid);
        let queries = [
            format!("val seed = {i};"),
            indexed_setup(),
            INDEXED_QUERY.to_string(),
            ticking_query(),
        ];
        for q in &queries {
            match server.eval(sid, q) {
                Ok(_) => oks += 1,
                Err(ServerError::SessionPanicked(msg)) => {
                    assert!(
                        msg.contains(INJECTED_PANIC_PREFIX),
                        "only injected faults: {msg}"
                    );
                    panicked += 1;
                }
                Err(ServerError::SessionPoisoned(_)) => poisoned_follow_ups += 1,
                Err(
                    ServerError::Busy
                    | ServerError::DeadlineExceeded
                    | ServerError::Cancelled
                    | ServerError::RowBudgetExceeded
                    | ServerError::Query(_),
                ) => other_structured += 1,
                Err(other) => panic!("unstructured failure reached a client: {other:?}"),
            }
        }
    }

    let stats = server.stats();
    assert_eq!(stats.counters.sessions_started, 100, "{stats}");
    assert_eq!(
        stats.counters.sessions_panicked, panicked,
        "every panic was reported to exactly one client: {stats}"
    );
    assert!(oks > 0, "the storm still made progress");
    assert!(
        panicked > 0,
        "at p=6% per tick over 100 ticking sessions, panics must occur \
         (oks={oks} panicked={panicked} poisoned={poisoned_follow_ups} other={other_structured})"
    );

    // After the storm: every session can still close, and the server
    // still serves clean queries.
    for sid in open_sids {
        server.close_session(sid).expect("close");
    }
    let fresh = server.open_session().expect("open after storm");
    assert_eq!(
        server.eval(fresh, "6 * 7;").expect("server is live"),
        vec!["val it = 42 : int".to_string()]
    );
    assert_eq!(server.stats().counters.sessions_closed, 100);
    server.shutdown();
}
