//! Durable-server acceptance: a killed server comes back serving the
//! same bindings, `SAVE`/`RESTORE` work over the wire, and a poisoned
//! durable session can be restored from disk instead of closed.
//!
//! "Kill" here is dropping the whole `Server` (worker threads joined,
//! in-memory sessions destroyed) and starting a fresh one over the same
//! durable root — the same state transition a `kill -9` of `machid`
//! forces, exercised in-process so the suite needs no subprocess
//! plumbing. The torn-tail/mid-checkpoint corners of that transition
//! are covered byte-for-byte in `machiavelli-wal`'s crash harness.

use machiavelli_server::faults::FaultConfig;
use machiavelli_server::{serve_connection, Server, ServerConfig, ServerError, ServerRole};
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mach-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_config(root: &std::path::Path) -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_cap: 16,
        default_deadline: None,
        row_budget: None,
        shared_store: false,
        faults: Some(FaultConfig::off()),
        durable_root: Some(root.to_path_buf()),
        role: ServerRole::Primary,
    }
}

fn drive(server: &Server, script: &str) -> Vec<String> {
    let mut out = Vec::new();
    serve_connection(server, script.as_bytes(), &mut out).expect("serve");
    String::from_utf8(out)
        .expect("utf8")
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn killed_server_comes_back_serving_the_same_bindings() {
    let root = tempdir("restart");
    let queries = [
        "val inventory = {[K = 1, QTY = 10], [K = 2, QTY = 20], [K = 3, QTY = 5]};",
        "val low = 8;",
        "val cursor = ref(0);",
        "cursor := 2;",
    ];
    let probe = "select x.K where x <- inventory with x.QTY = 20;";
    let expected = {
        let server = Server::start(durable_config(&root));
        let sid = server.open_session().expect("open");
        for q in &queries {
            server.eval(sid, q).expect("setup");
        }
        let expected = (
            server.eval(sid, probe).expect("probe"),
            server.eval(sid, "!cursor;").expect("deref"),
        );
        // Kill: no CLOSE, no SAVE — the WAL alone carries the state.
        drop(server);
        expected
    };

    let server = Server::start(durable_config(&root));
    // Session ids restart from 1, so the first OPEN lands on the same
    // durable directory and recovers it.
    let sid = server.open_session().expect("reopen");
    assert_eq!(
        server.eval(sid, probe).expect("probe after restart"),
        expected.0
    );
    assert_eq!(
        server.eval(sid, "!cursor;").expect("deref after restart"),
        expected.1
    );
    // And the revived session keeps evolving durably: write, kill again,
    // check again.
    server
        .eval(sid, "cursor := 7;")
        .expect("write after restart");
    drop(server);

    let server = Server::start(durable_config(&root));
    let sid = server.open_session().expect("second reopen");
    assert_eq!(
        server
            .eval(sid, "!cursor;")
            .expect("deref after second restart"),
        vec!["val it = 7 : int".to_string()]
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn save_and_restore_over_the_wire() {
    let root = tempdir("wire");
    let server = Server::start(durable_config(&root));
    let lines = drive(
        &server,
        "OPEN\n\
         EVAL 1 val x = 41;\n\
         SAVE 1\n\
         EVAL 1 val x = 99;\n\
         RESTORE 1\n\
         EVAL 1 x;\n\
         QUIT\n",
    );
    assert_eq!(lines[0], "OK 1");
    assert_eq!(lines[1], "VAL val x = 41 : int");
    assert_eq!(
        lines[2], "OK saved 1 gen 1",
        "checkpoint bumps the generation"
    );
    assert_eq!(lines[3], "VAL val x = 99 : int");
    // The rebind committed to the WAL before its reply, so RESTORE
    // returns the *durable* present (99), not the SAVE point — RESTORE
    // discards un-logged memory, it is not a rollback verb.
    assert!(lines[4].starts_with("OK restored 1 "), "{}", lines[4]);
    assert_eq!(lines[5], "VAL val it = 99 : int");
    assert_eq!(lines[6], "OK bye");
    drop(server);

    // SAVE/RESTORE on an in-memory server are typed durability errors.
    let mut cfg = durable_config(&root);
    cfg.durable_root = None;
    let server = Server::start(cfg);
    let lines = drive(&server, "OPEN\nSAVE 1\nRESTORE 1\nQUIT\n");
    assert!(lines[1].starts_with("ERR durability "), "{}", lines[1]);
    assert!(lines[2].starts_with("ERR durability "), "{}", lines[2]);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn restore_unpoisons_a_durable_session_without_losing_data() {
    let root = tempdir("unpoison");
    let server = Server::start(ServerConfig {
        workers: 1,
        faults: Some(FaultConfig {
            eval_panic_ppm: 1_000_000,
            seed: 11,
            ..FaultConfig::off()
        }),
        ..durable_config(&root)
    });
    let sid = server.open_session().expect("open");
    server
        .eval(sid, "val keep = 123;")
        .expect("small evals don't tick");

    // A ticking query panics under the injected fault and poisons the
    // session.
    let rows: Vec<String> = (0..64).map(|i| format!("[K = {i}]")).collect();
    let storm = format!(
        "val r = {{{}}}; select x.K where x <- r, y <- r with x.K = y.K;",
        rows.join(", ")
    );
    match server.eval(sid, &storm) {
        Err(ServerError::SessionPanicked(_)) => {}
        other => panic!("expected an injected panic, got {other:?}"),
    }
    assert!(matches!(
        server.eval(sid, "keep;"),
        Err(ServerError::SessionPoisoned(_))
    ));

    // RESTORE rebuilds the session from its durable state: un-poisoned,
    // data intact.
    let restored = server.restore_session(sid).expect("restore");
    assert!(restored >= 1, "at least `keep` came back: {restored}");
    assert_eq!(
        server.eval(sid, "keep;").expect("session is live again"),
        vec!["val it = 123 : int".to_string()]
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn durable_sessions_on_one_worker_do_not_cross_attribute() {
    let root = tempdir("attribution");
    // One worker hosts both sessions, so both share the thread's dirty
    // channel; per-eval absorption must keep their deltas apart.
    let server = Server::start(ServerConfig {
        workers: 1,
        ..durable_config(&root)
    });
    let a = server.open_session().expect("open a");
    let b = server.open_session().expect("open b");
    server.eval(a, "val r = ref(1);").expect("bind in a");
    server.eval(b, "val r = ref(100);").expect("bind in b");
    // Interleave writes on the shared worker thread.
    for i in 0..5 {
        server
            .eval(a, &format!("r := {};", i + 2))
            .expect("write a");
        server
            .eval(b, &format!("r := {};", 100 + i + 2))
            .expect("write b");
    }
    drop(server);

    let server = Server::start(ServerConfig {
        workers: 1,
        ..durable_config(&root)
    });
    let a = server.open_session().expect("reopen a");
    let b = server.open_session().expect("reopen b");
    assert_eq!(
        server.eval(a, "!r;").expect("read a"),
        vec!["val it = 6 : int".to_string()]
    );
    assert_eq!(
        server.eval(b, "!r;").expect("read b"),
        vec!["val it = 106 : int".to_string()]
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}
