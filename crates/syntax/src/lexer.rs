//! A hand-written lexer for Machiavelli source text.
//!
//! Comments are ML-style `(* ... *)` and nest. `hom*` lexes as a single
//! token when the `*` is adjacent to `hom`, matching the paper's spelling
//! of the non-empty-set homomorphism.

use crate::error::{ParseError, ParseErrorKind};
use crate::span::Span;
use crate::token::{keyword, Token, TokenKind};

/// Lex an entire source string into tokens (ending with [`TokenKind::Eof`]).
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src, false).run()
}

/// Lex in *type mode*: `"` followed by a letter is always a description
/// type variable (type syntax has no string literals, so the ambiguity
/// vanishes). Used by [`crate::parser::parse_type`].
pub fn lex_type(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src, true).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// Type mode (see [`lex_type`]).
    ty_mode: bool,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str, ty_mode: bool) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            ty_mode,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn err(&self, kind: ParseErrorKind, start: usize) -> ParseError {
        ParseError::new(kind, Span::new(start, self.pos.max(start + 1)))
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(b) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::point(self.pos),
                });
                return Ok(out);
            };
            let kind = match b {
                b'0'..=b'9' => self.number(start)?,
                b'"' => {
                    // `"` begins a string literal, unless it is a description
                    // type variable sigil `"a` (a letter immediately follows
                    // and the "string" would not be terminated sensibly). We
                    // follow the paper: inside type syntax `"a` is a
                    // description variable. Disambiguate by scanning for a
                    // closing quote before the next whitespace-run heuristics
                    // would be fragile, so the rule is simpler: `"` followed
                    // by a letter then a non-letter that is NOT a closing
                    // quote context is still a string. Instead we use the
                    // unambiguous rule used by the parser: a description
                    // variable is `"` + letters + (no closing `"`). We scan
                    // ahead: if letters followed by `"` it is a string like
                    // "abc"; otherwise a description variable.
                    self.string_or_descvar(start)?
                }
                b'\'' => self.tyvar(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'#' => self.ident(start),
                b'(' => {
                    self.bump();
                    TokenKind::LParen
                }
                b')' => {
                    self.bump();
                    TokenKind::RParen
                }
                b'[' => {
                    self.bump();
                    TokenKind::LBracket
                }
                b']' => {
                    self.bump();
                    TokenKind::RBracket
                }
                b'{' => {
                    self.bump();
                    TokenKind::LBrace
                }
                b'}' => {
                    self.bump();
                    TokenKind::RBrace
                }
                b',' => {
                    self.bump();
                    TokenKind::Comma
                }
                b';' => {
                    self.bump();
                    TokenKind::Semi
                }
                b'.' => {
                    self.bump();
                    TokenKind::Dot
                }
                b'+' => {
                    self.bump();
                    TokenKind::Plus
                }
                b'^' => {
                    self.bump();
                    TokenKind::Caret
                }
                b'!' => {
                    self.bump();
                    TokenKind::Bang
                }
                b'/' => {
                    self.bump();
                    TokenKind::Slash
                }
                b'*' => {
                    self.bump();
                    TokenKind::Star
                }
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        TokenKind::Arrow
                    } else {
                        TokenKind::Minus
                    }
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Assign
                    } else {
                        TokenKind::Colon
                    }
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        TokenKind::DArrow
                    } else {
                        TokenKind::Eq
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            TokenKind::Le
                        }
                        Some(b'>') => {
                            self.bump();
                            TokenKind::NotEq
                        }
                        Some(b'-') => {
                            self.bump();
                            TokenKind::LArrow
                        }
                        _ => TokenKind::Lt,
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                other => {
                    let ch = self.src[self.pos..].chars().next().unwrap_or(other as char);
                    return Err(self.err(ParseErrorKind::UnexpectedChar(ch), start));
                }
            };
            out.push(Token {
                kind,
                span: Span::new(start, self.pos),
            });
        }
    }

    /// Skip whitespace and nested `(* ... *)` comments.
    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.bump();
            }
            if self.peek() == Some(b'(') && self.peek2() == Some(b'*') {
                let start = self.pos;
                self.bump();
                self.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(), self.peek2()) {
                        (Some(b'('), Some(b'*')) => {
                            self.bump();
                            self.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b')')) => {
                            self.bump();
                            self.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            self.bump();
                        }
                        (None, _) => {
                            return Err(self.err(
                                ParseErrorKind::Expected {
                                    expected: "`*)` closing comment".into(),
                                    got: "end of input".into(),
                                },
                                start,
                            ))
                        }
                    }
                }
                continue;
            }
            return Ok(());
        }
    }

    fn number(&mut self, start: usize) -> Result<TokenKind, ParseError> {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        // A real literal requires a digit after the dot; `1.x` is the int 1
        // followed by `.x` (field selection never applies to ints, but the
        // lexer should not commit to a parse-level judgement).
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
            // optional exponent
            if matches!(self.peek(), Some(b'e' | b'E')) {
                let save = self.pos;
                self.bump();
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.bump();
                }
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.bump();
                    }
                } else {
                    self.pos = save;
                }
            }
            let text = &self.src[start..self.pos];
            let val: f64 = text
                .parse()
                .map_err(|_| self.err(ParseErrorKind::MalformedReal, start))?;
            return Ok(TokenKind::Real(val));
        }
        let text = &self.src[start..self.pos];
        let val: i64 = text
            .parse()
            .map_err(|_| self.err(ParseErrorKind::IntOverflow, start))?;
        Ok(TokenKind::Int(val))
    }

    fn ident(&mut self, start: usize) -> TokenKind {
        // `#` admits the tuple labels #1, #2, ...
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'#')
        ) {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        if text == "hom" && self.peek() == Some(b'*') {
            self.bump();
            return TokenKind::HomStar;
        }
        keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }

    fn tyvar(&mut self, start: usize) -> Result<TokenKind, ParseError> {
        self.bump(); // consume '
        if !matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z')) {
            return Err(self.err(ParseErrorKind::MalformedTypeVar, start));
        }
        let name_start = self.pos;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        Ok(TokenKind::TyVar(self.src[name_start..self.pos].to_string()))
    }

    /// Disambiguate `"..."` string literals from `"a` description variables.
    ///
    /// Rule: after the opening quote, scan with escapes looking for a closing
    /// quote on the same line; if found, it is a string literal. Otherwise,
    /// if the quote is immediately followed by a letter, it is a description
    /// type variable. This matches how the paper's notation is used: `"a`
    /// only ever appears in type positions and never contains a closing
    /// quote before whitespace.
    fn string_or_descvar(&mut self, start: usize) -> Result<TokenKind, ParseError> {
        if self.ty_mode {
            return self.descvar(start);
        }
        // Lookahead for a closing quote before an (unescaped) newline.
        let mut i = self.pos + 1;
        let mut is_string = false;
        while let Some(&b) = self.bytes.get(i) {
            match b {
                b'"' => {
                    is_string = true;
                    break;
                }
                b'\n' => break,
                b'\\' => i += 2,
                _ => i += 1,
            }
        }
        if is_string {
            self.bump(); // opening quote
            let mut out = String::new();
            loop {
                match self.bump() {
                    Some(b'"') => return Ok(TokenKind::Str(out)),
                    Some(b'\\') => match self.bump() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'"') => out.push('"'),
                        Some(other) => {
                            return Err(self.err(ParseErrorKind::BadEscape(other as char), start))
                        }
                        None => return Err(self.err(ParseErrorKind::UnterminatedString, start)),
                    },
                    Some(other) => {
                        // Collect full UTF-8 characters.
                        if other < 0x80 {
                            out.push(other as char);
                        } else {
                            // Re-decode multi-byte character.
                            let rest = &self.src[self.pos - 1..];
                            let ch = rest.chars().next().unwrap();
                            out.push(ch);
                            self.pos += ch.len_utf8() - 1;
                        }
                    }
                    None => return Err(self.err(ParseErrorKind::UnterminatedString, start)),
                }
            }
        }
        self.descvar(start)
    }

    fn descvar(&mut self, start: usize) -> Result<TokenKind, ParseError> {
        self.bump(); // consume "
        if !matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z')) {
            return Err(self.err(ParseErrorKind::MalformedTypeVar, start));
        }
        let name_start = self.pos;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        Ok(TokenKind::DescVar(
            self.src[name_start..self.pos].to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_simple_function() {
        let toks = kinds("fun id(x) = x;");
        assert_eq!(
            toks,
            vec![
                Fun,
                Ident("id".into()),
                LParen,
                Ident("x".into()),
                RParen,
                Eq,
                Ident("x".into()),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(kinds("42"), vec![Int(42), Eof]);
        assert_eq!(kinds("3.5"), vec![Real(3.5), Eof]);
        assert_eq!(kinds("1e3"), vec![Int(1), Ident("e3".into()), Eof]);
        assert_eq!(kinds("2.5e2"), vec![Real(250.0), Eof]);
    }

    #[test]
    fn lex_int_overflow() {
        let err = lex("99999999999999999999").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::IntOverflow);
    }

    #[test]
    fn lex_strings_and_escapes() {
        assert_eq!(kinds(r#""Joe""#), vec![Str("Joe".into()), Eof]);
        assert_eq!(kinds(r#""a\nb""#), vec![Str("a\nb".into()), Eof]);
        assert_eq!(kinds(r#""quote\"x""#), vec![Str("quote\"x".into()), Eof]);
    }

    #[test]
    fn lex_unterminated_string() {
        // No closing quote and not a valid description variable context
        // (`"1` is not a letter).
        let err = lex("\"1abc").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::MalformedTypeVar);
    }

    #[test]
    fn lex_desc_var_vs_string() {
        assert_eq!(kinds("\"a"), vec![DescVar("a".into()), Eof]);
        assert_eq!(
            kinds("{\"b}"),
            vec![LBrace, DescVar("b".into()), RBrace, Eof]
        );
        assert_eq!(kinds("\"abc\""), vec![Str("abc".into()), Eof]);
    }

    #[test]
    fn lex_tyvars() {
        assert_eq!(kinds("'a"), vec![TyVar("a".into()), Eof]);
        assert_eq!(kinds("'abc12"), vec![TyVar("abc12".into()), Eof]);
        assert!(lex("'1").is_err());
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("<- <= >= <> -> => := = < >"),
            vec![LArrow, Le, Ge, NotEq, Arrow, DArrow, Assign, Eq, Lt, Gt, Eof]
        );
    }

    #[test]
    fn lex_hom_star() {
        assert_eq!(kinds("hom*"), vec![HomStar, Eof]);
        assert_eq!(kinds("hom *"), vec![Hom, Star, Eof]);
        assert_eq!(kinds("hom*(f,+,S)").first(), Some(&HomStar));
    }

    #[test]
    fn lex_comments_nest() {
        assert_eq!(
            kinds("1 (* outer (* inner *) still *) 2"),
            vec![Int(1), Int(2), Eof]
        );
        assert!(lex("(* unclosed").is_err());
    }

    #[test]
    fn lex_tuple_labels() {
        assert_eq!(kinds("#1"), vec![Ident("#1".into()), Eof]);
    }

    #[test]
    fn lex_keywords() {
        assert_eq!(
            kinds("select x where y with z"),
            vec![
                Select,
                Ident("x".into()),
                Where,
                Ident("y".into()),
                With,
                Ident("z".into()),
                Eof
            ]
        );
    }

    #[test]
    fn spans_cover_source() {
        let toks = lex("val x = 1;").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(4, 5));
        assert_eq!(toks[3].span, Span::new(8, 9));
    }

    #[test]
    fn unexpected_char() {
        let err = lex("val @").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedChar('@'));
    }
}
