//! PR 7 bench — the columnar morsel lane vs the sequential planner on
//! whole-pipeline shapes, across relation sizes and worker threads.
//!
//! Two groups, mirroring the paper's query figures:
//!
//! * `fig3_columnar_scan` — the single-generator filtered scan (the
//!   introduction's Wealthy shape at fig3 scale): `seq` runs the
//!   sequential planner filter, `colK` offloads the pushed filter onto
//!   K work-stealing workers over the columnar snapshot.
//! * `fig9_columnar_pipeline` — the two-generator equi-join with a
//!   pushed filter on each side (the advisor/salary shape): with the
//!   store disabled and the lane live this is the
//!   **independent-generator schedule** — both relations filter as one
//!   morsel batch, then build/probe run on the partition lane.
//!
//! The store is disabled throughout so every iteration performs the
//! full pipeline (no cached builds, no cached snapshots): the measured
//! difference is purely sequential vs columnar execution of the same
//! work. Engagement is asserted before anything is timed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machiavelli::value::{tuning, Value};
use machiavelli::Session;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn rows(n: usize, key_offset: usize) -> Value {
    Value::set((0..n).map(|i| {
        Value::record([
            ("K".into(), Value::Int((i + key_offset) as i64)),
            ("A".into(), Value::Int(i as i64)),
            ("C".into(), Value::Int((i % 97) as i64)),
        ])
    }))
}

fn session(n: usize) -> Session {
    let mut s = Session::new();
    s.bind_external("r", rows(n, 0), "{[K: int, A: int, C: int]}")
        .unwrap();
    s.bind_external("s", rows(n, n - n / 8), "{[K: int, A: int, C: int]}")
        .unwrap();
    s
}

/// Fig3-scale filtered scan: two pushed comparisons, ~1/97th of the
/// rows survive, wrapped in an emptiness check so the per-iteration
/// binding is one bool.
const SCAN_QUERY: &str = "(select x.A where x <- r with x.C = 3 andalso x.A > 100) = {};";

/// Fig9-shape pipeline: filters on both independent generators plus
/// the key equality — Scan→Filter→Join end to end.
const PIPELINE_QUERY: &str = "(select (x.A, y.A) where x <- r, y <- s \
                              with x.C < 90 andalso x.K = y.K andalso y.C > 5) = {};";

fn run_seq(s: &mut Session, query: &str) -> Value {
    let prev = tuning::set_parallel_enabled(false);
    let out = s.eval_one(query).unwrap().value;
    tuning::set_parallel_enabled(prev);
    out
}

fn run_columnar(s: &mut Session, query: &str, threads: usize) -> Value {
    let prev_t = tuning::set_par_threads(Some(threads));
    let prev_cut = tuning::set_columnar_min_rows(Some(1));
    let prev_join = tuning::set_par_join_min_build_rows(Some(1));
    let out = s.eval_one(query).unwrap().value;
    tuning::set_par_join_min_build_rows(prev_join);
    tuning::set_columnar_min_rows(prev_cut);
    tuning::set_par_threads(prev_t);
    out
}

fn bench_group(
    c: &mut Criterion,
    name: &str,
    query: &'static str,
    sizes: &[usize],
    min_offloads: u64,
) {
    machiavelli::store::set_store_enabled(false);
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    for &n in sizes {
        let mut s = session(n);
        // Sanity before timing: lanes agree and the columnar lane
        // actually engaged (offloads counted, no fallbacks).
        let seq = run_seq(&mut s, query);
        assert_eq!(seq, Value::Bool(false), "empty result at n={n}");
        tuning::reset_exec_stats();
        assert_eq!(run_columnar(&mut s, query, 4), seq, "diverge at n={n}");
        let es = tuning::exec_stats();
        assert!(
            es.offloads >= min_offloads && es.offload_fallbacks == 0,
            "lane not engaged at n={n}: {es:?}"
        );

        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| run_seq(&mut s, query))
        });
        for threads in [2usize, 4] {
            group.bench_with_input(BenchmarkId::new(format!("col{threads}"), n), &n, |b, _| {
                b.iter(|| run_columnar(&mut s, query, threads))
            });
        }
    }
    group.finish();
    machiavelli::store::set_store_enabled(true);
}

fn bench_fig3_scan(c: &mut Criterion) {
    bench_group(c, "fig3_columnar_scan", SCAN_QUERY, &[10_000, 100_000], 1);
}

fn bench_fig9_pipeline(c: &mut Criterion) {
    // Both generators must offload (the independent-generator batch).
    bench_group(
        c,
        "fig9_columnar_pipeline",
        PIPELINE_QUERY,
        &[10_000, 100_000],
        2,
    );
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig3_scan, bench_fig9_pipeline
}
criterion_main!(benches);
