//! The **process-wide shared index tier**: `Send + Sync`
//! [`PlainIndex`] snapshots promoted from the thread-local store to a
//! content-addressed, mutex-guarded map every session can draw from —
//! so N concurrent server sessions querying the same hot relation pay
//! **one** build between them instead of one each. The tier carries a
//! second payload kind alongside indexes: whole-relation
//! [`ColumnarRelation`] snapshots for the columnar execution lane
//! ([`publish_snapshot`]/[`adopt_snapshot`]), keyed by content address
//! alone (a snapshot is a function of the relation, not of any key
//! expression) and verified on adoption exactly like indexes.
//!
//! # Content addressing makes cross-session sharing sound
//!
//! The thread-local store keys on [`MSet::storage_id`] — an `Rc`
//! address, meaningless outside its thread. The shared tier keys on the
//! **structural hash of the relation's canonical rows** plus the
//! key-expression fingerprint. `MSet` is canonical (sorted,
//! deduplicated), so two sessions binding equal relations hold
//! element-for-element identical slices — which makes the *row indices*
//! inside a [`PlainIndex`] transferable: index `i` names the same value
//! in both. Hash collisions cannot produce wrong answers because
//! [`adopt`] verifies the snapshot against the adopting session's
//! relation row by row ([`plain_matches_value`]) before handing it out;
//! a mismatch is treated as a miss.
//!
//! # Concurrency discipline
//!
//! Exactly the coarse-grained split the Malta–Martinez commutativity
//! framing motivates: **writes** (publish, evict, clear) serialize
//! behind one mutex, while **reads** of an adopted snapshot are
//! lock-free — adoption clones an `Arc`, and probing never touches the
//! tier again. Each session keeps its `Rc`-lane overlays (identity-
//! bearing relations, ref-reachable entries) strictly thread-local;
//! only ref-free plain snapshots are ever shared.
//!
//! # Invalidation
//!
//! Plain snapshots hold no refs (`to_plain` declines them) and content
//! addressing means any structural change produces a different key, so
//! a shared entry can never serve stale rows. The thread-local store's
//! dirty-ref discipline still maps onto the tier conservatively: the
//! paths that lose write attribution (dirty-set overflow, the paranoid
//! whole-clear mode) call [`note_unattributed_write`], which drops the
//! whole tier — a performance concession, never a correctness need,
//! mirroring how those paths degrade locally.
//!
//! # Poison recovery
//!
//! A session that panics *while holding the tier lock* (possible under
//! fault injection, and in principle under real bugs) poisons the
//! mutex. Every acquisition goes through [`lock_tier`], which clears
//! the poison, drops all entries (the interrupted write may have left a
//! half-updated map), and counts a `lock_recoveries` — so the tier
//! self-heals and subsequent sessions rebuild instead of erroring
//! forever. The [`faults::store_poison_due`] fail point injects exactly
//! this panic mid-write.
//!
//! The tier is **off by default** (thread-local toggle, like
//! `store_enabled`): a standalone REPL behaves exactly as before, and
//! the server enables it on its worker threads.

use machiavelli_value::plain::{plain_matches_value, ColumnarRelation, PlainIndex};
use machiavelli_value::{faults, hash_value, MSet};
use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Cumulative statistics of the shared tier, surfaced through
/// `Session::server_stats` and the wire `:stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedStats {
    /// Snapshots published by some session's build.
    pub publishes: u64,
    /// Lookups served to a *different* storage by content address
    /// (verification passed; the adopting session skipped its build).
    pub adoptions: u64,
    /// Adoption attempts that found no (or an unverifiable) entry.
    pub misses: u64,
    /// Entries dropped by the LRU row budget.
    pub evicted: u64,
    /// Entries dropped by an unattributed-write clear.
    pub cleared: u64,
    /// Times the tier lock was found poisoned and recovered.
    pub lock_recoveries: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Total relation rows held by live entries.
    pub cached_rows: usize,
    /// Columnar snapshots published by some session's extraction.
    pub snapshot_publishes: u64,
    /// Columnar snapshots served to a different storage by content
    /// address (verification passed; the adopter skipped extraction).
    pub snapshot_adoptions: u64,
    /// Snapshot adoption attempts that found no (or an unverifiable)
    /// entry.
    pub snapshot_misses: u64,
    /// Live columnar snapshots right now.
    pub snapshot_entries: usize,
    /// Total relation rows held by live columnar snapshots.
    pub snapshot_rows: usize,
}

struct SharedEntry {
    index: Arc<PlainIndex>,
    charge: usize,
    last_used: u64,
    hits: u64,
}

struct SharedSnapshot {
    snap: Arc<ColumnarRelation>,
    charge: usize,
    last_used: u64,
    hits: u64,
}

struct SharedTier {
    entries: HashMap<(u64, String), SharedEntry>,
    /// Columnar snapshots, keyed by content address alone. A separate
    /// sub-tier (not a variant in `entries`) because snapshots have no
    /// fingerprint dimension; each sub-tier is bounded by the same row
    /// budget independently.
    snapshots: HashMap<u64, SharedSnapshot>,
    budget_rows: usize,
    cached_rows: usize,
    snapshot_rows: usize,
    tick: u64,
    stats: SharedStats,
}

impl SharedTier {
    fn new() -> SharedTier {
        SharedTier {
            entries: HashMap::new(),
            snapshots: HashMap::new(),
            budget_rows: shared_budget_rows(),
            cached_rows: 0,
            snapshot_rows: 0,
            tick: 0,
            stats: SharedStats::default(),
        }
    }

    fn live_len(&self) -> usize {
        self.entries.len() + self.snapshots.len()
    }

    fn clear_entries(&mut self) {
        self.entries.clear();
        self.cached_rows = 0;
        self.snapshots.clear();
        self.snapshot_rows = 0;
    }

    fn evict_to(&mut self, target: usize) {
        if self.cached_rows <= target {
            return;
        }
        let mut victims: Vec<(u64, (u64, String))> = self
            .entries
            .iter()
            .map(|(k, e)| (e.last_used, k.clone()))
            .collect();
        victims.sort_unstable_by_key(|(used, _)| *used);
        for (_, key) in victims {
            if self.cached_rows <= target {
                break;
            }
            if let Some(e) = self.entries.remove(&key) {
                self.cached_rows -= e.charge;
                self.stats.evicted += 1;
            }
        }
    }

    fn evict_snapshots_to(&mut self, target: usize) {
        if self.snapshot_rows <= target {
            return;
        }
        let mut victims: Vec<(u64, u64)> = self
            .snapshots
            .iter()
            .map(|(k, e)| (e.last_used, *k))
            .collect();
        victims.sort_unstable_by_key(|(used, _)| *used);
        for (_, key) in victims {
            if self.snapshot_rows <= target {
                break;
            }
            if let Some(e) = self.snapshots.remove(&key) {
                self.snapshot_rows -= e.charge;
                self.stats.evicted += 1;
            }
        }
    }
}

/// Default shared-tier row budget: the same order as the per-session
/// store budget (`MACHIAVELLI_SHARED_BUDGET_ROWS` overrides).
fn shared_budget_rows() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    ENV.get_or_init(|| {
        std::env::var("MACHIAVELLI_SHARED_BUDGET_ROWS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
    })
    .unwrap_or(machiavelli_value::tuning::DEFAULT_STORE_BUDGET_ROWS)
}

static TIER: OnceLock<Mutex<SharedTier>> = OnceLock::new();
/// Fast cross-thread signal that [`note_unattributed_write`] fired and
/// the next tier access must clear (avoids taking the lock on the
/// write path, which runs inside `RefValue::set` accounting).
static PENDING_CLEAR: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Whether this thread consults the shared tier at all. Off by
    /// default; the server enables it on worker threads.
    static SHARED_ENABLED: Cell<bool> = const { Cell::new(false) };
}

/// Is shared-tier consultation enabled on this thread?
pub fn shared_enabled() -> bool {
    SHARED_ENABLED.with(Cell::get)
}

/// Enable/disable shared-tier consultation on this thread, returning
/// the previous setting.
pub fn set_shared_enabled(on: bool) -> bool {
    SHARED_ENABLED.with(|c| c.replace(on))
}

/// Acquire the tier lock, recovering from poison: a panic while holding
/// the lock (injected or real) may have left a half-applied write, so
/// recovery drops every entry — sessions rebuild, nothing serves a
/// torn map. Also applies any pending unattributed-write clear.
fn lock_tier() -> MutexGuard<'static, SharedTier> {
    let mutex = TIER.get_or_init(|| Mutex::new(SharedTier::new()));
    let mut tier = match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            mutex.clear_poison();
            let mut guard = poisoned.into_inner();
            let dropped = guard.live_len() as u64;
            guard.clear_entries();
            guard.stats.cleared += dropped;
            guard.stats.lock_recoveries += 1;
            guard
        }
    };
    if PENDING_CLEAR.swap(false, Ordering::AcqRel) {
        let dropped = tier.live_len() as u64;
        tier.clear_entries();
        tier.stats.cleared += dropped;
    }
    tier
}

/// The content address of a relation: a structural hash over its
/// canonical rows (length-prefixed). Equal relations hash equal on
/// every thread; collisions are harmless ([`adopt`] verifies).
pub fn content_hash(set: &MSet) -> u64 {
    let mut h = DefaultHasher::new();
    h.write_usize(set.len());
    for row in set.iter() {
        hash_value(row, &mut h);
    }
    h.finish()
}

/// Publish a freshly built plain snapshot under its content address.
/// Called by the thread-local store on the build path; serialized
/// behind the tier lock. Hosts the injected mid-write poison fault:
/// when it fires, the panic happens *while the lock is held*, exactly
/// the failure the recovery path exists for.
pub fn publish(content: u64, fingerprint: &str, index: &Arc<PlainIndex>, charge: usize) {
    if !shared_enabled() {
        return;
    }
    let mut tier = lock_tier();
    if charge > tier.budget_rows {
        return;
    }
    tier.tick += 1;
    let tick = tier.tick;
    let budget = tier.budget_rows;
    tier.evict_to(budget.saturating_sub(charge));
    let key = (content, fingerprint.to_string());
    // The fail point sits mid-write: the entry is in the map but the
    // row accounting has not happened yet — a genuinely torn state the
    // poison recovery must be able to discard.
    let poison_due = faults::store_poison_due();
    if let Some(old) = tier.entries.insert(
        key,
        SharedEntry {
            index: index.clone(),
            charge,
            last_used: tick,
            hits: 0,
        },
    ) {
        tier.cached_rows -= old.charge;
    }
    if poison_due {
        panic!(
            "{} shared-store poison mid-write",
            faults::INJECTED_PANIC_PREFIX
        );
    }
    tier.cached_rows += charge;
    tier.stats.publishes += 1;
}

/// Look up a snapshot for `set` by content address and **verify** it
/// row by row against the adopting session's relation before returning
/// it. `None` = miss (including failed verification). The returned
/// `Arc` is probed lock-free; the tier is not touched again.
pub fn adopt(content: u64, fingerprint: &str, set: &MSet) -> Option<Arc<PlainIndex>> {
    if !shared_enabled() {
        return None;
    }
    let index = {
        let mut tier = lock_tier();
        tier.tick += 1;
        let tick = tier.tick;
        match tier.entries.get_mut(&(content, fingerprint.to_string())) {
            Some(entry) => {
                entry.last_used = tick;
                entry.hits += 1;
                Some(entry.index.clone())
            }
            None => {
                tier.stats.misses += 1;
                None
            }
        }
    }?;
    // Verification runs *outside* the lock (O(n) over the relation):
    // the snapshot must be element-for-element the adopter's relation,
    // or its row indices would name the wrong values.
    let verified = index.rows.len() == set.len()
        && set
            .iter()
            .zip(index.rows.iter())
            .all(|(v, p)| plain_matches_value(p, v));
    if !verified {
        let mut tier = lock_tier();
        tier.stats.misses += 1;
        return None;
    }
    let mut tier = lock_tier();
    tier.stats.adoptions += 1;
    Some(index)
}

/// Publish a freshly extracted columnar snapshot under its content
/// address — the snapshot analogue of [`publish`]. No fingerprint
/// dimension: a [`ColumnarRelation`] is a function of the relation
/// alone, so one entry serves every query over equal content.
pub fn publish_snapshot(content: u64, snap: &Arc<ColumnarRelation>, charge: usize) {
    if !shared_enabled() {
        return;
    }
    let mut tier = lock_tier();
    if charge > tier.budget_rows {
        return;
    }
    tier.tick += 1;
    let tick = tier.tick;
    let budget = tier.budget_rows;
    tier.evict_snapshots_to(budget.saturating_sub(charge));
    let poison_due = faults::store_poison_due();
    if let Some(old) = tier.snapshots.insert(
        content,
        SharedSnapshot {
            snap: snap.clone(),
            charge,
            last_used: tick,
            hits: 0,
        },
    ) {
        tier.snapshot_rows -= old.charge;
    }
    if poison_due {
        panic!(
            "{} shared-store poison mid-write",
            faults::INJECTED_PANIC_PREFIX
        );
    }
    tier.snapshot_rows += charge;
    tier.stats.snapshot_publishes += 1;
}

/// Look up a columnar snapshot for `set` by content address and
/// **verify** it row by row against the adopting session's relation
/// before returning it — the snapshot analogue of [`adopt`]. `None` =
/// miss (including failed verification).
pub fn adopt_snapshot(content: u64, set: &MSet) -> Option<Arc<ColumnarRelation>> {
    if !shared_enabled() {
        return None;
    }
    let snap = {
        let mut tier = lock_tier();
        tier.tick += 1;
        let tick = tier.tick;
        match tier.snapshots.get_mut(&content) {
            Some(entry) => {
                entry.last_used = tick;
                entry.hits += 1;
                Some(entry.snap.clone())
            }
            None => {
                tier.stats.snapshot_misses += 1;
                None
            }
        }
    }?;
    // Row-for-row verification outside the lock, exactly like index
    // adoption: a collision must read as a miss, never as wrong rows.
    if !snap.matches_set(set) {
        let mut tier = lock_tier();
        tier.stats.snapshot_misses += 1;
        return None;
    }
    let mut tier = lock_tier();
    tier.stats.snapshot_adoptions += 1;
    Some(snap)
}

/// Conservative cross-session mapping of the dirty-ref discipline:
/// called when a session loses write attribution (dirty-set overflow,
/// the paranoid whole-clear mode). Plain snapshots cannot actually go
/// stale — this is the documented performance concession that keeps the
/// shared tier's invalidation story aligned with the local store's.
pub fn note_unattributed_write() {
    PENDING_CLEAR.store(true, Ordering::Release);
}

/// Snapshot the shared tier's statistics.
pub fn shared_stats() -> SharedStats {
    let tier = lock_tier();
    SharedStats {
        entries: tier.entries.len(),
        cached_rows: tier.cached_rows,
        snapshot_entries: tier.snapshots.len(),
        snapshot_rows: tier.snapshot_rows,
        ..tier.stats
    }
}

/// Drop all entries and zero the statistics (tests and bench setup).
pub fn reset_shared() {
    let mut tier = lock_tier();
    tier.clear_entries();
    tier.stats = SharedStats::default();
    PENDING_CLEAR.store(false, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use machiavelli_value::plain::{to_plain, PlainKey, PlainValue};
    use machiavelli_value::Value;
    use std::sync::Mutex as StdMutex;

    /// The tier is process-global; serialize the tests that assert on
    /// its counters.
    static TIER_TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn ints(xs: &[i64]) -> MSet {
        MSet::from_iter(xs.iter().map(|&x| Value::Int(x)))
    }

    fn plain_index_for(set: &MSet) -> Arc<PlainIndex> {
        let rows: Vec<PlainValue> = set.iter().map(|v| to_plain(v).unwrap()).collect();
        let groups: Vec<(PlainKey, Vec<u32>)> = rows
            .iter()
            .enumerate()
            .map(|(i, p)| (PlainKey::One(p.clone()), vec![i as u32]))
            .collect();
        Arc::new(PlainIndex::from_groups(rows.into(), groups))
    }

    fn with_tier_enabled<R>(f: impl FnOnce() -> R) -> R {
        let prev = set_shared_enabled(true);
        let out = f();
        set_shared_enabled(prev);
        out
    }

    #[test]
    fn disabled_thread_never_touches_the_tier() {
        assert!(!shared_enabled(), "off by default");
        let set = ints(&[1, 2, 3]);
        assert!(adopt(content_hash(&set), "fp", &set).is_none());
    }

    #[test]
    fn publish_then_adopt_from_equal_content() {
        let _l = TIER_TEST_LOCK.lock().unwrap();
        with_tier_enabled(|| {
            reset_shared();
            let a = ints(&[10, 20, 30]);
            let idx = plain_index_for(&a);
            publish(content_hash(&a), "fp:k", &idx, a.len());
            // A *different* storage with equal content adopts.
            let b = ints(&[30, 10, 20]);
            assert_ne!(a.storage_id(), b.storage_id());
            let adopted = adopt(content_hash(&b), "fp:k", &b).expect("content matches");
            assert!(Arc::ptr_eq(&adopted, &idx), "the very same snapshot");
            let s = shared_stats();
            assert_eq!((s.publishes, s.adoptions, s.entries), (1, 1, 1));
        });
    }

    #[test]
    fn different_content_or_fingerprint_misses() {
        let _l = TIER_TEST_LOCK.lock().unwrap();
        with_tier_enabled(|| {
            reset_shared();
            let a = ints(&[1, 2]);
            publish(content_hash(&a), "fp:k", &plain_index_for(&a), a.len());
            let other = ints(&[1, 2, 3]);
            assert!(adopt(content_hash(&other), "fp:k", &other).is_none());
            assert!(adopt(content_hash(&a), "fp:other", &a).is_none());
            assert_eq!(shared_stats().misses, 2);
        });
    }

    #[test]
    fn verification_rejects_wrong_snapshot() {
        let _l = TIER_TEST_LOCK.lock().unwrap();
        with_tier_enabled(|| {
            reset_shared();
            let a = ints(&[1, 2, 3]);
            let b = ints(&[4, 5, 6]);
            // Simulate a (vanishingly unlikely) content-hash collision
            // by publishing b's snapshot under a's address.
            publish(content_hash(&a), "fp", &plain_index_for(&b), b.len());
            assert!(
                adopt(content_hash(&a), "fp", &a).is_none(),
                "row verification must catch the mismatch"
            );
        });
    }

    #[test]
    fn budget_evicts_lru() {
        let _l = TIER_TEST_LOCK.lock().unwrap();
        with_tier_enabled(|| {
            reset_shared();
            {
                let mut tier = lock_tier();
                tier.budget_rows = 5;
            }
            let a = ints(&[1, 2, 3]);
            let b = ints(&[4, 5, 6]);
            publish(content_hash(&a), "fp", &plain_index_for(&a), 3);
            publish(content_hash(&b), "fp", &plain_index_for(&b), 3);
            let s = shared_stats();
            assert_eq!(s.entries, 1, "budget 5 holds one 3-row entry");
            assert_eq!(s.evicted, 1);
            assert!(
                adopt(content_hash(&b), "fp", &b).is_some(),
                "newest survives"
            );
            // Restore the env-derived budget for other tests.
            let mut tier = lock_tier();
            tier.budget_rows = shared_budget_rows();
        });
    }

    #[test]
    fn unattributed_write_clears_on_next_access() {
        let _l = TIER_TEST_LOCK.lock().unwrap();
        with_tier_enabled(|| {
            reset_shared();
            let a = ints(&[7, 8]);
            publish(content_hash(&a), "fp", &plain_index_for(&a), 2);
            assert_eq!(shared_stats().entries, 1);
            note_unattributed_write();
            assert!(adopt(content_hash(&a), "fp", &a).is_none(), "tier cleared");
            let s = shared_stats();
            assert_eq!(s.entries, 0);
            assert!(s.cleared >= 1);
        });
    }

    #[test]
    fn snapshot_publish_then_adopt_from_equal_content() {
        let _l = TIER_TEST_LOCK.lock().unwrap();
        with_tier_enabled(|| {
            reset_shared();
            let a = ints(&[10, 20, 30]);
            let snap = Arc::new(ColumnarRelation::from_set(&a).expect("ints are plain"));
            publish_snapshot(content_hash(&a), &snap, a.len());
            let b = ints(&[30, 10, 20]);
            assert_ne!(a.storage_id(), b.storage_id());
            let adopted = adopt_snapshot(content_hash(&b), &b).expect("content matches");
            assert!(Arc::ptr_eq(&adopted, &snap), "the very same snapshot");
            let s = shared_stats();
            assert_eq!(
                (
                    s.snapshot_publishes,
                    s.snapshot_adoptions,
                    s.snapshot_entries
                ),
                (1, 1, 1)
            );
            assert_eq!(s.snapshot_rows, 3);
            assert_eq!(s.entries, 0, "index sub-tier untouched");
        });
    }

    #[test]
    fn snapshot_verification_rejects_wrong_content() {
        let _l = TIER_TEST_LOCK.lock().unwrap();
        with_tier_enabled(|| {
            reset_shared();
            let a = ints(&[1, 2, 3]);
            let b = ints(&[4, 5, 6]);
            let wrong = Arc::new(ColumnarRelation::from_set(&b).unwrap());
            // Simulated content-hash collision: b's snapshot under a's
            // address must read as a miss, not as wrong rows.
            publish_snapshot(content_hash(&a), &wrong, b.len());
            assert!(adopt_snapshot(content_hash(&a), &a).is_none());
            assert!(shared_stats().snapshot_misses >= 1);
        });
    }

    #[test]
    fn unattributed_write_clears_snapshots_too() {
        let _l = TIER_TEST_LOCK.lock().unwrap();
        with_tier_enabled(|| {
            reset_shared();
            let a = ints(&[7, 8]);
            let snap = Arc::new(ColumnarRelation::from_set(&a).unwrap());
            publish_snapshot(content_hash(&a), &snap, a.len());
            assert_eq!(shared_stats().snapshot_entries, 1);
            note_unattributed_write();
            assert!(adopt_snapshot(content_hash(&a), &a).is_none());
            assert_eq!(shared_stats().snapshot_entries, 0);
        });
    }

    #[test]
    fn poison_mid_write_recovers_with_counters() {
        let _l = TIER_TEST_LOCK.lock().unwrap();
        with_tier_enabled(|| {
            reset_shared();
            let a = ints(&[1, 2, 3]);
            let idx = plain_index_for(&a);
            let prev = faults::set_fault_config(Some(machiavelli_value::FaultConfig {
                store_poison_ppm: 1_000_000,
                seed: 5,
                ..machiavelli_value::FaultConfig::off()
            }));
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                publish(content_hash(&a), "fp", &idx, a.len());
            }));
            faults::set_fault_config(prev);
            assert!(caught.is_err(), "poison fault must panic mid-write");
            // The next session recovers: poison cleared, entries
            // dropped, counter tells the story — and the tier works.
            let s = shared_stats();
            assert_eq!(s.lock_recoveries, 1);
            assert_eq!(s.entries, 0);
            publish(content_hash(&a), "fp", &idx, a.len());
            assert!(adopt(content_hash(&a), "fp", &a).is_some());
            assert_eq!(
                shared_stats().lock_recoveries,
                1,
                "recovered once, stayed live"
            );
        });
    }
}
