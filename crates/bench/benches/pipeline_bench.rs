//! PR 7 bench — the columnar morsel lane vs the sequential planner on
//! whole-pipeline shapes, across relation sizes and worker threads.
//!
//! Two groups, mirroring the paper's query figures:
//!
//! * `fig3_columnar_scan` — the single-generator filtered scan (the
//!   introduction's Wealthy shape at fig3 scale): `seq` runs the
//!   sequential planner filter, `colK` offloads the pushed filter onto
//!   K work-stealing workers over the columnar snapshot.
//! * `fig9_columnar_pipeline` — the two-generator equi-join with a
//!   pushed filter on each side (the advisor/salary shape): with the
//!   store disabled and the lane live this is the
//!   **independent-generator schedule** — both relations filter as one
//!   morsel batch, then build/probe run on the partition lane.
//!
//! The store is disabled throughout so every iteration performs the
//! full pipeline (no cached builds, no cached snapshots): the measured
//! difference is purely sequential vs columnar execution of the same
//! work. Engagement is asserted before anything is timed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machiavelli::value::{tuning, Value};
use machiavelli::Session;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn rows(n: usize, key_offset: usize) -> Value {
    Value::set((0..n).map(|i| {
        Value::record([
            ("K".into(), Value::Int((i + key_offset) as i64)),
            ("A".into(), Value::Int(i as i64)),
            ("C".into(), Value::Int((i % 97) as i64)),
        ])
    }))
}

fn session(n: usize) -> Session {
    let mut s = Session::new();
    s.bind_external("r", rows(n, 0), "{[K: int, A: int, C: int]}")
        .unwrap();
    s.bind_external("s", rows(n, n - n / 8), "{[K: int, A: int, C: int]}")
        .unwrap();
    s
}

/// Fig3-scale filtered scan: two pushed comparisons, ~1/97th of the
/// rows survive, wrapped in an emptiness check so the per-iteration
/// binding is one bool.
const SCAN_QUERY: &str = "(select x.A where x <- r with x.C = 3 andalso x.A > 100) = {};";

/// Fig9-shape pipeline: filters on both independent generators plus
/// the key equality — Scan→Filter→Join end to end.
const PIPELINE_QUERY: &str = "(select (x.A, y.A) where x <- r, y <- s \
                              with x.C < 90 andalso x.K = y.K andalso y.C > 5) = {};";

fn run_seq(s: &mut Session, query: &str) -> Value {
    let prev = tuning::set_parallel_enabled(false);
    let out = s.eval_one(query).unwrap().value;
    tuning::set_parallel_enabled(prev);
    out
}

fn run_columnar(s: &mut Session, query: &str, threads: usize) -> Value {
    let prev_t = tuning::set_par_threads(Some(threads));
    let prev_cut = tuning::set_columnar_min_rows(Some(1));
    let prev_join = tuning::set_par_join_min_build_rows(Some(1));
    let out = s.eval_one(query).unwrap().value;
    tuning::set_par_join_min_build_rows(prev_join);
    tuning::set_columnar_min_rows(prev_cut);
    tuning::set_par_threads(prev_t);
    out
}

fn bench_group(
    c: &mut Criterion,
    name: &str,
    query: &'static str,
    sizes: &[usize],
    min_offloads: u64,
) {
    machiavelli::store::set_store_enabled(false);
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    for &n in sizes {
        let mut s = session(n);
        // Sanity before timing: lanes agree and the columnar lane
        // actually engaged (offloads counted, no fallbacks).
        let seq = run_seq(&mut s, query);
        assert_eq!(seq, Value::Bool(false), "empty result at n={n}");
        tuning::reset_exec_stats();
        assert_eq!(run_columnar(&mut s, query, 4), seq, "diverge at n={n}");
        let es = tuning::exec_stats();
        assert!(
            es.offloads >= min_offloads && es.offload_fallbacks == 0,
            "lane not engaged at n={n}: {es:?}"
        );

        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| run_seq(&mut s, query))
        });
        for threads in [2usize, 4] {
            group.bench_with_input(BenchmarkId::new(format!("col{threads}"), n), &n, |b, _| {
                b.iter(|| run_columnar(&mut s, query, threads))
            });
        }
    }
    group.finish();
    machiavelli::store::set_store_enabled(true);
}

fn bench_fig3_scan(c: &mut Criterion) {
    bench_group(c, "fig3_columnar_scan", SCAN_QUERY, &[10_000, 100_000], 1);
}

fn bench_fig9_pipeline(c: &mut Criterion) {
    // Both generators must offload (the independent-generator batch).
    bench_group(
        c,
        "fig9_columnar_pipeline",
        PIPELINE_QUERY,
        &[10_000, 100_000],
        2,
    );
}

/// Trace-overhead smoke: the query trace must be **zero-cost when
/// off** on the fig9 pipeline. Structurally: with tracing off, no
/// span or event is ever recorded (the per-operator sites all gate on
/// `trace::active()` and the pipeline is built without traced
/// wrappers). On wall clock: the pre-instrumentation binary is not
/// runnable here, so the <2% bar is enforced as an A/A comparison —
/// two interleaved samples of the *same* trace-off path must agree
/// within 2%, which bounds the measurement noise below the bar and
/// pins the methodology; the traced/untraced ratio is reported
/// alongside so a regression that makes the off path do real work
/// (label building, span allocation) shows up as a structural failure
/// above, not a silent slowdown.
fn bench_fig9_trace_overhead(_c: &mut Criterion) {
    use machiavelli::trace;
    use std::time::Instant;

    machiavelli::store::set_store_enabled(false);
    let mut s = session(10_000);
    let prev_trace = trace::set_tracing(Some(false));

    // Structural zero-cost: a trace-off run records nothing.
    let _ = trace::take_events();
    assert_eq!(run_seq(&mut s, PIPELINE_QUERY), Value::Bool(false));
    assert!(!trace::active(), "tracing must be inert when off");
    assert!(
        trace::take_events().is_empty(),
        "trace-off run must record no events"
    );

    let median = |s: &mut Session, on: bool, iters: usize| -> Duration {
        let prev = trace::set_tracing(Some(on));
        let mut samples: Vec<Duration> = (0..iters)
            .map(|_| {
                let t0 = Instant::now();
                criterion::black_box(run_seq(s, PIPELINE_QUERY));
                let dt = t0.elapsed();
                let _ = trace::take_events();
                dt
            })
            .collect();
        trace::set_tracing(prev);
        samples.sort();
        samples[samples.len() / 2]
    };

    // Warm-up, then best-of-5 A/A attempts: CI runners are noisy, so
    // the 2% gate passes if any interleaved pair lands inside it.
    let _ = median(&mut s, false, 3);
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let a = median(&mut s, false, 9).as_secs_f64();
        let b = median(&mut s, false, 9).as_secs_f64();
        let delta = (a - b).abs() / a.max(b);
        best = best.min(delta);
        if best < 0.02 {
            break;
        }
    }
    assert!(
        best < 0.02,
        "trace-off A/A medians diverge by {:.2}% (> 2% bar)",
        best * 100.0
    );

    let off = median(&mut s, false, 9).as_secs_f64();
    let on = median(&mut s, true, 9).as_secs_f64();
    println!(
        "fig9 trace overhead: off {:.3}ms, on {:.3}ms ({:+.1}% traced), A/A delta {:.2}%",
        off * 1e3,
        on * 1e3,
        (on / off - 1.0) * 100.0,
        best * 100.0
    );

    trace::set_tracing(prev_trace);
    machiavelli::store::set_store_enabled(true);
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig3_scan, bench_fig9_pipeline, bench_fig9_trace_overhead
}
criterion_main!(benches);
