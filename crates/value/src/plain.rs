//! The **plain-value lane**: a `Send + Sync` mirror of the *data* subset
//! of [`Value`], so proper `hom` applications and partition-parallel
//! joins can cross thread boundaries.
//!
//! [`Value`] is deliberately `Rc`-based and thread-confined; the paper's
//! claim that proper `hom` applications are "computable in parallel"
//! therefore needs an extraction step. [`PlainValue`] covers exactly the
//! constructors whose meaning is *structural* — Unit/Int/Real/Str/Bool,
//! records, variants, sets — with `Arc`/owned storage (interned
//! [`Symbol`] labels carry over unchanged: they wrap `&'static str`).
//! The identity-bearing and code-bearing constructors (`Ref`, `Dynamic`,
//! `Closure`, `Op`, `Builtin`) have **no** plain form: [`to_plain`]
//! returns `None` for them and every caller falls back to the
//! sequential `Rc` path — the same classify-then-parallelize strategy
//! the planner uses for predicates.
//!
//! # Consistency contract
//!
//! On the extractable subset the plain operations agree *exactly* with
//! their `Value` counterparts (property-tested in `tests/properties.rs`):
//!
//! * [`from_plain`]`(`[`to_plain`]`(v)) == v` (structural round trip);
//! * [`plain_cmp`] agrees with [`value_cmp`] (so plain sets stay in the
//!   canonical order and [`from_plain`] can rebuild them unchecked);
//! * [`plain_hash`] produces the same digest as
//!   [`hash_value`](crate::hash_value) (same discriminant bytes, same
//!   payload encoding), so keys computed in either lane group rows
//!   identically.

use crate::set::MSet;
use crate::value::{Fields, Symbol, Value};
use std::cmp::Ordering;
use std::hash::Hasher;
use std::sync::Arc;

/// A thread-shareable description value: the data subset of [`Value`]
/// with `Arc`/owned storage. Clones are O(1) for containers.
#[derive(Debug, Clone)]
pub enum PlainValue {
    Unit,
    Int(i64),
    Real(f64),
    Str(Arc<str>),
    Bool(bool),
    /// Label-sorted entries, exactly like [`Fields`].
    Record(Arc<[(Symbol, PlainValue)]>),
    Variant(Symbol, Arc<PlainValue>),
    /// Canonical (sorted, deduplicated) elements, exactly like
    /// [`MSet`].
    Set(Arc<[PlainValue]>),
}

// The compiler derives these, but the claim is load-bearing enough to
// state: a PlainValue can cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PlainValue>();
};

/// Extract the plain mirror of `v`, or `None` when `v` (or anything
/// inside it) is identity- or code-bearing (`Ref`, `Dynamic`,
/// `Closure`, `Op`, `Builtin`) — the caller's cue to take its
/// sequential path.
pub fn to_plain(v: &Value) -> Option<PlainValue> {
    Some(match v {
        Value::Unit => PlainValue::Unit,
        Value::Int(n) => PlainValue::Int(*n),
        Value::Real(r) => PlainValue::Real(*r),
        Value::Str(s) => PlainValue::Str(Arc::from(&**s)),
        Value::Bool(b) => PlainValue::Bool(*b),
        Value::Record(fs) => {
            // `Fields` entries are label-sorted; the order carries over.
            let entries: Option<Vec<(Symbol, PlainValue)>> = fs
                .entries()
                .iter()
                .map(|(l, fv)| Some((*l, to_plain(fv)?)))
                .collect();
            PlainValue::Record(entries?.into())
        }
        Value::Variant(l, p) => PlainValue::Variant(*l, Arc::new(to_plain(p)?)),
        Value::Set(items) => {
            // Canonical order carries over (plain_cmp agrees with
            // value_cmp on the extractable subset).
            let items: Option<Vec<PlainValue>> = items.iter().map(to_plain).collect();
            PlainValue::Set(items?.into())
        }
        Value::Ref(_)
        | Value::Dynamic(_)
        | Value::Closure(_)
        | Value::Op(_)
        | Value::Builtin(_) => return None,
    })
}

/// Rebuild the `Rc`-lane value. Total: every plain value has a `Value`
/// form, and `from_plain(to_plain(v)) == v` structurally.
pub fn from_plain(p: &PlainValue) -> Value {
    match p {
        PlainValue::Unit => Value::Unit,
        PlainValue::Int(n) => Value::Int(*n),
        PlainValue::Real(r) => Value::Real(*r),
        PlainValue::Str(s) => Value::str(&**s),
        PlainValue::Bool(b) => Value::Bool(*b),
        PlainValue::Record(entries) => Value::Record(Fields::from_sorted_vec(
            entries.iter().map(|(l, fv)| (*l, from_plain(fv))).collect(),
        )),
        PlainValue::Variant(l, p) => Value::variant(*l, from_plain(p)),
        PlainValue::Set(items) => Value::Set(MSet::from_sorted_unchecked(
            items.iter().map(from_plain).collect(),
        )),
    }
}

fn rank(p: &PlainValue) -> u8 {
    // The same constructor ranks as `Value::rank` (the missing
    // constructors — refs, dynamics, functions — have no plain form).
    match p {
        PlainValue::Unit => 0,
        PlainValue::Bool(_) => 1,
        PlainValue::Int(_) => 2,
        PlainValue::Real(_) => 3,
        PlainValue::Str(_) => 4,
        PlainValue::Record(_) => 5,
        PlainValue::Variant(..) => 6,
        PlainValue::Set(_) => 7,
    }
}

/// Total order on plain values, agreeing with [`value_cmp`] on the
/// extractable subset (reals via IEEE `total_cmp`).
pub fn plain_cmp(a: &PlainValue, b: &PlainValue) -> Ordering {
    use PlainValue::*;
    let rank_cmp = rank(a).cmp(&rank(b));
    if rank_cmp != Ordering::Equal {
        return rank_cmp;
    }
    match (a, b) {
        (Unit, Unit) => Ordering::Equal,
        (Bool(x), Bool(y)) => x.cmp(y),
        (Int(x), Int(y)) => x.cmp(y),
        (Real(x), Real(y)) => x.total_cmp(y),
        (Str(x), Str(y)) => x.cmp(y),
        (Record(xs), Record(ys)) => {
            for ((lx, vx), (ly, vy)) in xs.iter().zip(ys.iter()) {
                let lc = lx.cmp(ly);
                if lc != Ordering::Equal {
                    return lc;
                }
                let vc = plain_cmp(vx, vy);
                if vc != Ordering::Equal {
                    return vc;
                }
            }
            xs.len().cmp(&ys.len())
        }
        (Variant(lx, px), Variant(ly, py)) => {
            let lc = lx.cmp(ly);
            if lc != Ordering::Equal {
                return lc;
            }
            plain_cmp(px, py)
        }
        (Set(xs), Set(ys)) => {
            for (x, y) in xs.iter().zip(ys.iter()) {
                let c = plain_cmp(x, y);
                if c != Ordering::Equal {
                    return c;
                }
            }
            xs.len().cmp(&ys.len())
        }
        _ => unreachable!("rank() already discriminated"),
    }
}

/// Structural equality, agreeing with `value_eq` on the extractable
/// subset.
pub fn plain_eq(a: &PlainValue, b: &PlainValue) -> bool {
    plain_cmp(a, b) == Ordering::Equal
}

impl PartialEq for PlainValue {
    fn eq(&self, other: &Self) -> bool {
        plain_eq(self, other)
    }
}
impl Eq for PlainValue {}

impl PartialOrd for PlainValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PlainValue {
    fn cmp(&self, other: &Self) -> Ordering {
        plain_cmp(self, other)
    }
}

/// Feed the structural hash of `p` into `state` — byte-for-byte the
/// encoding of [`hash_value`](crate::hash_value) on the extractable
/// subset, so keys computed in either lane land in the same hash
/// partition/group.
pub fn plain_hash<H: Hasher>(p: &PlainValue, state: &mut H) {
    match p {
        PlainValue::Unit => state.write_u8(0),
        PlainValue::Bool(b) => {
            state.write_u8(1);
            state.write_u8(u8::from(*b));
        }
        PlainValue::Int(n) => {
            state.write_u8(2);
            state.write_i64(*n);
        }
        PlainValue::Real(r) => {
            state.write_u8(3);
            state.write_u64(r.to_bits());
        }
        PlainValue::Str(s) => {
            state.write_u8(4);
            state.write(s.as_bytes());
            state.write_u8(0xff);
        }
        PlainValue::Record(entries) => {
            state.write_u8(5);
            state.write_usize(entries.len());
            for (l, fv) in entries.iter() {
                state.write_usize(l.id());
                plain_hash(fv, state);
            }
        }
        PlainValue::Variant(l, p) => {
            state.write_u8(6);
            state.write_usize(l.id());
            plain_hash(p, state);
        }
        PlainValue::Set(items) => {
            state.write_u8(7);
            state.write_usize(items.len());
            for item in items.iter() {
                plain_hash(item, state);
            }
        }
    }
}

/// `plain_cmp` against a `Value` without extracting it — used by tests;
/// the production lanes always extract first.
pub fn plain_matches_value(p: &PlainValue, v: &Value) -> bool {
    match to_plain(v) {
        Some(pv) => plain_eq(p, &pv),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{value_cmp, value_eq, RefValue};
    use std::collections::hash_map::DefaultHasher;

    fn digest_value(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        crate::hash::hash_value(v, &mut h);
        h.finish()
    }

    fn digest_plain(p: &PlainValue) -> u64 {
        let mut h = DefaultHasher::new();
        plain_hash(p, &mut h);
        h.finish()
    }

    fn sample() -> Value {
        Value::record([
            ("Name".into(), Value::str("Joe")),
            ("Tags".into(), Value::set([Value::Int(2), Value::Int(1)])),
            (
                "Role".into(),
                Value::variant("Employee", Value::record([("Ext".into(), Value::Int(42))])),
            ),
            ("Rate".into(), Value::Real(1.5)),
            ("Active".into(), Value::Bool(true)),
            ("U".into(), Value::Unit),
        ])
    }

    #[test]
    fn round_trip_preserves_structure() {
        let v = sample();
        let p = to_plain(&v).expect("pure data extracts");
        assert!(value_eq(&from_plain(&p), &v));
    }

    #[test]
    fn hash_agrees_across_lanes() {
        let v = sample();
        let p = to_plain(&v).unwrap();
        assert_eq!(digest_value(&v), digest_plain(&p));
    }

    #[test]
    fn cmp_agrees_across_lanes() {
        let vals = [
            Value::Int(1),
            Value::Int(2),
            Value::str("a"),
            Value::Bool(false),
            Value::set([Value::Int(3)]),
            sample(),
        ];
        for a in &vals {
            for b in &vals {
                let (pa, pb) = (to_plain(a).unwrap(), to_plain(b).unwrap());
                assert_eq!(plain_cmp(&pa, &pb), value_cmp(a, b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn identity_and_code_values_do_not_extract() {
        assert!(to_plain(&Value::Ref(RefValue::new(Value::Int(1)))).is_none());
        assert!(to_plain(&Value::Builtin(crate::value::Builtin::Not)).is_none());
        // A ref buried inside a record poisons the whole extraction.
        let buried = Value::record([("R".into(), Value::Ref(RefValue::new(Value::Unit)))]);
        assert!(to_plain(&buried).is_none());
        assert!(!plain_matches_value(&PlainValue::Unit, &buried));
    }

    #[test]
    fn real_edge_cases_round_trip() {
        for r in [f64::NAN, -0.0, f64::INFINITY] {
            let v = Value::Real(r);
            let p = to_plain(&v).unwrap();
            assert!(value_eq(&from_plain(&p), &v));
            assert_eq!(digest_value(&v), digest_plain(&p));
        }
    }
}
