//! Acceptance test for the `METRICS` wire verb: after a 100-query run
//! with zero panics, the server emits a parseable Prometheus-style
//! text exposition including a query-latency histogram.
//!
//! This file is its own test binary, so its process-global counters
//! (governor, latency histogram, decline counts) are isolated from the
//! chaos suite; the single test below owns them outright.

use machiavelli_server::faults::FaultConfig;
use machiavelli_server::{serve_connection, Server, ServerConfig, ServerRole};

fn quiet_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_cap: 16,
        default_deadline: None,
        row_budget: None,
        shared_store: false,
        faults: Some(FaultConfig::off()),
        durable_root: None,
        role: ServerRole::Primary,
    }
}

/// Reverse of the wire layer's `one_line` escaping.
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Every non-comment line must be `name[{labels}] value` with a
/// float-parseable value; returns (metric line, value) pairs.
fn parse_exposition(text: &str) -> Vec<(String, f64)> {
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable metrics line: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric value in line: {line:?}"));
        assert!(
            name.chars().next().is_some_and(|c| c.is_ascii_alphabetic()),
            "metric name must start alphabetic: {line:?}"
        );
        samples.push((name.to_string(), value));
    }
    samples
}

fn sample(samples: &[(String, f64)], name: &str) -> f64 {
    samples
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("missing metric {name}"))
        .1
}

#[test]
fn metrics_exposition_after_hundred_query_run() {
    let server = Server::start(quiet_config());

    // Four sessions, 25 queries each: a mix of scalar evaluation,
    // planner-pipeline selects (with cache hits after the first), and
    // a couple of deliberate query errors (observed in the latency
    // histogram too — errors have latency).
    let mut sids = Vec::new();
    for _ in 0..4 {
        let sid = server.open_session().expect("open");
        server
            .eval(sid, "val r = {[K=1, A=10], [K=2, A=20], [K=3, A=30]};")
            .expect("setup");
        sids.push(sid);
    }
    for i in 0..25u64 {
        for &sid in &sids {
            let src = match i % 5 {
                0 => format!("{i} + 1;"),
                4 => "1 + true;".to_string(), // type error, still a query
                _ => format!("select x.A where x <- r with x.K = {};", i % 3 + 1),
            };
            let _ = server.eval(sid, &src);
        }
    }

    // Fetch the exposition over the wire protocol.
    let mut out = Vec::new();
    serve_connection(&server, "METRICS\nQUIT\n".as_bytes(), &mut out).expect("serve");
    let reply = String::from_utf8(out).expect("utf8");
    let mut lines = reply.lines();
    let metrics_line = lines.next().expect("one response line");
    assert!(metrics_line.starts_with("OK "), "{metrics_line}");
    assert_eq!(lines.next(), Some("OK bye"));

    let text = unescape(&metrics_line[3..]);
    let samples = parse_exposition(&text);

    // Histogram: cumulative buckets are monotonically non-decreasing,
    // terminate at +Inf, and +Inf agrees with _count.
    let buckets: Vec<&(String, f64)> = samples
        .iter()
        .filter(|(n, _)| n.starts_with("machiavelli_query_latency_seconds_bucket"))
        .collect();
    assert!(buckets.len() >= 2, "expected several buckets:\n{text}");
    for pair in buckets.windows(2) {
        assert!(
            pair[0].1 <= pair[1].1,
            "buckets must be cumulative: {} then {}",
            pair[0].0,
            pair[1].0
        );
    }
    let (last_name, last_value) = buckets.last().unwrap();
    assert!(last_name.contains("le=\"+Inf\""), "{last_name}");
    let count = sample(&samples, "machiavelli_query_latency_seconds_count");
    assert_eq!(*last_value, count, "+Inf bucket must equal _count");
    assert!(
        count >= 100.0,
        "expected >= 100 observed queries, got {count}"
    );
    assert!(
        sample(&samples, "machiavelli_query_latency_seconds_sum") >= 0.0,
        "sum present"
    );

    // Zero panics across the run.
    assert_eq!(sample(&samples, "machiavelli_sessions_panicked_total"), 0.0);
    assert_eq!(sample(&samples, "machiavelli_sessions_started_total"), 4.0);
    assert!(sample(&samples, "machiavelli_queries_completed_total") >= 100.0);

    // Gauges are present; nothing is in flight once eval() returned.
    assert_eq!(sample(&samples, "machiavelli_queue_depth"), 0.0);
    let ratio = sample(&samples, "machiavelli_shared_hit_ratio");
    assert!((0.0..=1.0).contains(&ratio), "hit ratio in [0,1]: {ratio}");

    // The WAL counter family is always exported (zeros here: this
    // server runs without a durable root; the durability suite covers
    // the non-zero side).
    for name in [
        "machiavelli_wal_records_appended_total",
        "machiavelli_wal_bytes_logged_total",
        "machiavelli_wal_commits_total",
        "machiavelli_wal_checkpoints_total",
        "machiavelli_wal_recoveries_total",
        "machiavelli_wal_torn_tails_truncated_total",
    ] {
        assert!(sample(&samples, name) >= 0.0, "{name} present");
    }

    // The decline taxonomy is exported with one labelled line per
    // reason code, every one of them non-negative.
    let declines: Vec<&(String, f64)> = samples
        .iter()
        .filter(|(n, _)| n.starts_with("machiavelli_declines_total{reason="))
        .collect();
    assert_eq!(
        declines.len(),
        machiavelli_trace::DeclineReason::COUNT,
        "one line per decline reason:\n{text}"
    );
}
