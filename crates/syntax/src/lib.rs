//! Surface syntax for the Machiavelli database programming language.
//!
//! Machiavelli (Ohori, Buneman & Breazu-Tannen, SIGMOD 1989) is an ML-style
//! language extended with records, variants, mathematical sets, references,
//! and the database primitives `join`, `con`, `project`, `hom` and the
//! `select ... where ... with ...` comprehension.
//!
//! This crate provides:
//!
//! * [`token`] — the token alphabet,
//! * [`lexer`] — a hand-written lexer with source positions,
//! * [`ast`] — the abstract syntax (expressions, top-level phrases, and
//!   the type syntax used by `project` annotations),
//! * [`parser`] — a recursive-descent parser for the full surface grammar,
//! * [`pretty`] — a pretty-printer that round-trips the AST back to
//!   readable Machiavelli source.
//!
//! # Quick example
//!
//! ```
//! use machiavelli_syntax::parse_program;
//! let prog = parse_program(
//!     "fun Wealthy(S) = select x.Name where x <- S with x.Salary > 100000;",
//! ).unwrap();
//! assert_eq!(prog.len(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod symbol;
pub mod token;

pub use ast::{
    Expr, ExprKind, Ident, Label, Phrase, PhraseKind, Program, RowVar, TypeExpr, TypeExprKind,
};
pub use error::{ParseError, ParseErrorKind};
pub use parser::{parse_expr, parse_program, parse_type};
pub use span::Span;
pub use symbol::{tuple_label, Symbol};

#[cfg(test)]
mod roundtrip_tests;
