//! **Tuning knobs for the parallel lane and the index store**, in one
//! place: every magic size threshold in the workspace lives here as a
//! named, documented constant with an environment override (for
//! benching) and — where sessions need to steer it — a thread-local
//! override (for tests and `Session` configuration).
//!
//! Resolution order for every knob: thread-local override (set by a
//! `Session` method or a test) → environment variable (read once per
//! process) → the documented default constant.
//!
//! | knob | default | env |
//! |---|---|---|
//! | worker threads | `available_parallelism` | `MACHIAVELLI_PAR_THREADS` |
//! | parallel-join build-row cutoff | [`DEFAULT_PAR_JOIN_MIN_BUILD_ROWS`] | `MACHIAVELLI_PAR_JOIN_MIN_ROWS` |
//! | parallel-join probe-drain cap (× build rows) | [`DEFAULT_PAR_JOIN_MAX_PROBE_FACTOR`] | `MACHIAVELLI_PAR_JOIN_MAX_PROBE_FACTOR` |
//! | cached-index parallel-probe row cutoff | [`DEFAULT_PAR_PROBE_MIN_ROWS`] | `MACHIAVELLI_PAR_PROBE_MIN_ROWS` |
//! | parallel-`hom` element cutoff | [`DEFAULT_PAR_HOM_MIN_ITEMS`] | `MACHIAVELLI_PAR_HOM_MIN_ITEMS` |
//! | index-store row budget | [`DEFAULT_STORE_BUDGET_ROWS`] | `MACHIAVELLI_STORE_BUDGET_ROWS` |
//!
//! (`docs/PERFORMANCE.md` documents every knob alongside the execution
//! contracts they gate.)
//!
//! The module also hosts the session-scoped (thread-local) **parallel
//! ablation toggle** ([`set_parallel_enabled`], mirroring the store's
//! `set_store_enabled`) and the **parallel hit/fallback counters**
//! ([`ParStats`]) surfaced by `Session::par_stats` and the REPL's
//! `:stats`.

use std::cell::Cell;
use std::sync::OnceLock;

// --- documented defaults ---------------------------------------------------

/// Below this many *build-side* rows a hash join never takes the
/// parallel lane: extraction plus thread-coordination overhead would
/// swamp the per-row savings. (The probe side is unknown until the
/// input is drained, so the gate reads the build relation only.)
pub const DEFAULT_PAR_JOIN_MIN_BUILD_ROWS: usize = 4096;

/// The parallel join materializes the probe side before fanning out
/// (the sequential probe streams it); to bound that memory, draining
/// stops after `build_rows × this factor` rows and the join falls back
/// to the streaming sequential probe over the drained prefix plus the
/// live remainder. 64 keeps the common shapes (probe within an order
/// of magnitude of the build) on the lane while capping pathological
/// pipelines.
pub const DEFAULT_PAR_JOIN_MAX_PROBE_FACTOR: usize = 64;

/// Below this many *probe-side* rows a hash join over a **cached**
/// plain index stays on the sequential probe. Distinct from the
/// build-row cutoff: a cached probe pays no build at all, so the only
/// overhead to amortize is probe materialization plus thread
/// coordination — but the per-row win (skipping the interpreter's key
/// dispatch) is also smaller than a full build's, so the break-even
/// lands in the same region.
pub const DEFAULT_PAR_PROBE_MIN_ROWS: usize = 4096;

/// Below this many elements a proper `hom` application stays on the
/// sequential interpreter fold.
pub const DEFAULT_PAR_HOM_MIN_ITEMS: usize = 1024;

/// `par_hom` itself declines to spawn unless every thread would get at
/// least this many elements (the former inline `2 * n_threads` cutoff).
pub const PAR_HOM_MIN_ITEMS_PER_THREAD: usize = 2;

/// Default index-store row budget: generous for the paper-scale
/// workloads while still bounding a long session that touches many
/// relations (the store's LRU evicts past it).
pub const DEFAULT_STORE_BUDGET_ROWS: usize = 1 << 20;

// --- env-backed resolution -------------------------------------------------

fn env_usize(var: &'static str, cache: &'static OnceLock<Option<usize>>) -> Option<usize> {
    *cache.get_or_init(|| {
        std::env::var(var)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

thread_local! {
    static PAR_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    static PAR_JOIN_MIN_BUILD_ROWS: Cell<Option<usize>> = const { Cell::new(None) };
    static PAR_PROBE_MIN_ROWS: Cell<Option<usize>> = const { Cell::new(None) };
    static PAR_HOM_MIN_ITEMS: Cell<Option<usize>> = const { Cell::new(None) };
    static PARALLEL_ENABLED: Cell<bool> = const { Cell::new(true) };
    static STORE_EPOCH_CLEAR: Cell<bool> = const { Cell::new(false) };
    static PAR_STATS: Cell<ParStats> = const { Cell::new(ParStats::new()) };
}

/// Worker-thread count for the parallel lane on this thread (= session):
/// explicit override → `MACHIAVELLI_PAR_THREADS` → the machine's
/// `available_parallelism`. Always ≥ 1; a value of 1 disables the
/// parallel lane entirely (everything stays sequential).
pub fn par_threads() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    // `available_parallelism` is a surprisingly expensive probe
    // (affinity + cgroup parsing, ~tens of µs) and this accessor sits
    // on every join open — resolve the machine default once.
    static MACHINE: OnceLock<usize> = OnceLock::new();
    PAR_THREADS
        .with(Cell::get)
        .or_else(|| env_usize("MACHIAVELLI_PAR_THREADS", &ENV))
        .unwrap_or_else(|| {
            *MACHINE.get_or_init(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
        })
        .max(1)
}

/// Override the worker-thread count on this thread (`None` restores the
/// env/default resolution), returning the previous override.
pub fn set_par_threads(n: Option<usize>) -> Option<usize> {
    PAR_THREADS.with(|c| c.replace(n.map(|n| n.max(1))))
}

/// The parallel-join build-row cutoff currently in force.
pub fn par_join_min_build_rows() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    PAR_JOIN_MIN_BUILD_ROWS
        .with(Cell::get)
        .or_else(|| env_usize("MACHIAVELLI_PAR_JOIN_MIN_ROWS", &ENV))
        .unwrap_or(DEFAULT_PAR_JOIN_MIN_BUILD_ROWS)
}

/// Override the parallel-join cutoff on this thread (tests lower it to
/// exercise the lane on small relations), returning the previous
/// override.
pub fn set_par_join_min_build_rows(n: Option<usize>) -> Option<usize> {
    PAR_JOIN_MIN_BUILD_ROWS.with(|c| c.replace(n))
}

/// How many probe rows the parallel join may materialize for a build
/// side of `build_rows` before it bails to the streaming sequential
/// probe ([`DEFAULT_PAR_JOIN_MAX_PROBE_FACTOR`], env
/// `MACHIAVELLI_PAR_JOIN_MAX_PROBE_FACTOR`).
pub fn par_join_max_probe_rows(build_rows: usize) -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    let factor = env_usize("MACHIAVELLI_PAR_JOIN_MAX_PROBE_FACTOR", &ENV)
        .unwrap_or(DEFAULT_PAR_JOIN_MAX_PROBE_FACTOR);
    build_rows.saturating_mul(factor)
}

/// The cached-index parallel-probe row cutoff currently in force
/// (thread-local override → `MACHIAVELLI_PAR_PROBE_MIN_ROWS` →
/// [`DEFAULT_PAR_PROBE_MIN_ROWS`]).
pub fn par_probe_min_rows() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    PAR_PROBE_MIN_ROWS
        .with(Cell::get)
        .or_else(|| env_usize("MACHIAVELLI_PAR_PROBE_MIN_ROWS", &ENV))
        .unwrap_or(DEFAULT_PAR_PROBE_MIN_ROWS)
}

/// Override the cached-probe cutoff on this thread (tests lower it to
/// exercise the lane on small relations), returning the previous
/// override.
pub fn set_par_probe_min_rows(n: Option<usize>) -> Option<usize> {
    PAR_PROBE_MIN_ROWS.with(|c| c.replace(n))
}

/// The parallel-`hom` element cutoff currently in force.
pub fn par_hom_min_items() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    PAR_HOM_MIN_ITEMS
        .with(Cell::get)
        .or_else(|| env_usize("MACHIAVELLI_PAR_HOM_MIN_ITEMS", &ENV))
        .unwrap_or(DEFAULT_PAR_HOM_MIN_ITEMS)
}

/// Override the parallel-`hom` cutoff on this thread, returning the
/// previous override.
pub fn set_par_hom_min_items(n: Option<usize>) -> Option<usize> {
    PAR_HOM_MIN_ITEMS.with(|c| c.replace(n))
}

/// The index-store row budget to use for a fresh store (no thread-local
/// override: live stores take `IndexStore::set_budget`).
pub fn store_budget_rows() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    env_usize("MACHIAVELLI_STORE_BUDGET_ROWS", &ENV).unwrap_or(DEFAULT_STORE_BUDGET_ROWS)
}

// --- ablation toggle -------------------------------------------------------

/// Is the parallel lane enabled on this thread? (Mirrors the store's
/// `store_enabled`: benches and the equivalence tests flip it off to
/// measure/compare the sequential path.)
pub fn parallel_enabled() -> bool {
    PARALLEL_ENABLED.with(Cell::get)
}

/// Enable/disable the parallel lane on this thread, returning the
/// previous setting (so callers can restore it).
pub fn set_parallel_enabled(on: bool) -> bool {
    PARALLEL_ENABLED.with(|c| c.replace(on))
}

/// Is the index store's **paranoid whole-clear** mode on? When `true`
/// the store reverts to the PR 4 invalidation discipline — drop *every*
/// entry on any reference write — instead of the dirty-set eviction
/// that keeps unaffected entries warm. Kept as an A/B cross-check: the
/// equivalence property tests run both modes and require identical
/// visible results (the precise mode just evicts less).
pub fn store_epoch_clear() -> bool {
    STORE_EPOCH_CLEAR.with(Cell::get)
}

/// Switch the store's paranoid whole-clear mode on/off for this thread,
/// returning the previous setting.
pub fn set_store_epoch_clear(on: bool) -> bool {
    STORE_EPOCH_CLEAR.with(|c| c.replace(on))
}

// --- hit/fallback counters -------------------------------------------------

/// Cumulative parallel-lane counters for this thread (= session),
/// surfaced by `Session::par_stats` and the REPL's `:stats`.
///
/// A **hit** is an execution that actually ran on the parallel lane. A
/// **fallback** is an execution that passed the static and size gates
/// but fell back to the sequential path at runtime — a value failed
/// `to_plain` extraction (identity- or code-bearing data in a row or
/// key) or the plain mini-evaluator declined an expression. Executions
/// that never reach the gates (lane disabled, one thread, sub-threshold
/// input, shape not eligible) are not counted at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Hash joins executed on the parallel lane (inline partition
    /// build + probe — the uncached shape).
    pub par_joins: u64,
    /// Eligible hash joins that fell back to the sequential build/probe.
    pub par_join_fallbacks: u64,
    /// Hash joins whose probe ran parallel against a **cached** plain
    /// index (the store-served shape: no build at all, workers probe
    /// the shared index).
    pub par_probes: u64,
    /// Cached-probe attempts that fell back to the sequential probe
    /// (a probe key declined extraction, or the probe drain hit its
    /// memory cap).
    pub par_probe_fallbacks: u64,
    /// Proper `hom` applications folded through `par_hom`.
    pub par_homs: u64,
    /// Proper `hom` applications that fell back to the sequential fold.
    pub par_hom_fallbacks: u64,
}

impl ParStats {
    const fn new() -> ParStats {
        ParStats {
            par_joins: 0,
            par_join_fallbacks: 0,
            par_probes: 0,
            par_probe_fallbacks: 0,
            par_homs: 0,
            par_hom_fallbacks: 0,
        }
    }
}

/// This thread's parallel-lane counters.
pub fn par_stats() -> ParStats {
    PAR_STATS.with(Cell::get)
}

/// Zero this thread's parallel-lane counters.
pub fn reset_par_stats() {
    PAR_STATS.with(|c| c.set(ParStats::new()));
}

/// Record a parallel-join outcome (`hit` = ran on the parallel lane).
pub fn note_par_join(hit: bool) {
    PAR_STATS.with(|c| {
        let mut s = c.get();
        if hit {
            s.par_joins += 1;
        } else {
            s.par_join_fallbacks += 1;
        }
        c.set(s);
    });
}

/// Record a cached-index parallel-probe outcome (`hit` = the probe ran
/// on worker threads against the shared plain index).
pub fn note_par_probe(hit: bool) {
    PAR_STATS.with(|c| {
        let mut s = c.get();
        if hit {
            s.par_probes += 1;
        } else {
            s.par_probe_fallbacks += 1;
        }
        c.set(s);
    });
}

/// Record a parallel-`hom` outcome (`hit` = folded through `par_hom`).
pub fn note_par_hom(hit: bool) {
    PAR_STATS.with(|c| {
        let mut s = c.get();
        if hit {
            s.par_homs += 1;
        } else {
            s.par_hom_fallbacks += 1;
        }
        c.set(s);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_local_overrides_win_and_restore() {
        let prev = set_par_threads(Some(3));
        assert_eq!(par_threads(), 3);
        set_par_threads(prev);

        let prev = set_par_join_min_build_rows(Some(7));
        assert_eq!(par_join_min_build_rows(), 7);
        set_par_join_min_build_rows(prev);

        let prev = set_par_probe_min_rows(Some(5));
        assert_eq!(par_probe_min_rows(), 5);
        set_par_probe_min_rows(prev);

        let prev = set_par_hom_min_items(Some(9));
        assert_eq!(par_hom_min_items(), 9);
        set_par_hom_min_items(prev);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let prev = set_par_threads(Some(0));
        assert_eq!(par_threads(), 1);
        set_par_threads(prev);
    }

    #[test]
    fn enable_toggle_round_trips() {
        let prev = set_parallel_enabled(false);
        assert!(!parallel_enabled());
        set_parallel_enabled(prev);
    }

    #[test]
    fn store_epoch_clear_toggle_round_trips() {
        assert!(!store_epoch_clear(), "precise invalidation is the default");
        let prev = set_store_epoch_clear(true);
        assert!(!prev);
        assert!(store_epoch_clear());
        set_store_epoch_clear(prev);
        assert!(!store_epoch_clear());
    }

    #[test]
    fn counters_accumulate_and_reset() {
        reset_par_stats();
        note_par_join(true);
        note_par_join(false);
        note_par_probe(true);
        note_par_probe(false);
        note_par_hom(true);
        let s = par_stats();
        assert_eq!(
            (
                s.par_joins,
                s.par_join_fallbacks,
                s.par_probes,
                s.par_probe_fallbacks,
                s.par_homs,
                s.par_hom_fallbacks
            ),
            (1, 1, 1, 1, 1, 0)
        );
        reset_par_stats();
        assert_eq!(par_stats(), ParStats::default());
    }
}
