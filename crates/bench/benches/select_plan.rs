//! A2 bench — comprehension planner ablation: the same `select`
//! comprehensions evaluated through the planner pipeline (hash
//! build/probe for equi-joins, filter pushdown) vs. the interpreter's
//! nested `select_loop`, on the paper's query shapes:
//!
//! * `fig9_equijoin` — two independent generators joined on a key
//!   (the Figure 9 advisor/salary shape): O(n+m) build/probe vs O(n·m);
//! * `fig3_dependent` — a dependent generator over a nested set field
//!   (Figure 3 `supplied_by` shape): same O(Σ|inner|) loop both ways,
//!   measuring pipeline overhead;
//! * `fig0_filter` — single-generator selection (the introduction's
//!   `Wealthy`): pushdown vs the plain loop, again overhead-bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machiavelli::eval::set_planner_enabled;
use machiavelli::store::set_store_enabled;
use machiavelli::value::Value;
use machiavelli::Session;
use machiavelli_relational::{row, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn gen_rel(n: usize, key_space: i64, labels: (&str, &str), seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::from_rows((0..n).map(|i| {
        row(&[
            (labels.0, Value::Int(rng.gen_range(0..key_space))),
            (labels.1, Value::Int(i as i64)),
        ])
    }))
}

/// A session with two flat relations bound for the equi-join shape and a
/// nested relation for the dependent shape.
fn session_for(n: usize) -> Session {
    let mut s = Session::new();
    s.bind_external(
        "r",
        gen_rel(n, 4 * n as i64, ("K", "A"), 1).into_value(),
        "{[K: int, A: int]}",
    )
    .unwrap();
    s.bind_external(
        "s",
        gen_rel(n, 4 * n as i64, ("K", "B"), 2).into_value(),
        "{[K: int, B: int]}",
    )
    .unwrap();
    // Nested rows: each with a small inner set, as in `supplied_by`.
    let mut rng = StdRng::seed_from_u64(3);
    let nested = Relation::from_rows((0..n).map(|i| {
        row(&[
            ("P", Value::Int(i as i64)),
            (
                "Inner",
                Value::set((0..4).map(|_| row(&[("S", Value::Int(rng.gen_range(0..n as i64)))]))),
            ),
        ])
    }));
    s.bind_external(
        "nested",
        nested.into_value(),
        "{[P: int, Inner: {[S: int]}]}",
    )
    .unwrap();
    s
}

fn run_both(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    n: usize,
    session: &mut Session,
    query: &str,
) {
    group.bench_with_input(
        BenchmarkId::new(format!("planner/{name}"), n),
        &n,
        |b, _| {
            b.iter(|| {
                let prev = set_planner_enabled(true);
                // Store off: this bench isolates the *planner* win
                // (hash build/probe vs nested loop). Warm index reuse
                // is the index_reuse bench's `store` mode.
                let prev_store = set_store_enabled(false);
                let out = session.eval_one(query).unwrap().value;
                set_store_enabled(prev_store);
                set_planner_enabled(prev);
                out
            })
        },
    );
    group.bench_with_input(BenchmarkId::new(format!("interp/{name}"), n), &n, |b, _| {
        b.iter(|| {
            let prev = set_planner_enabled(false);
            let out = session.eval_one(query).unwrap().value;
            set_planner_enabled(prev);
            out
        })
    });
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_plan");
    group.sample_size(10);
    for n in [50usize, 200, 800] {
        let mut s = session_for(n);
        run_both(
            &mut group,
            "fig9_equijoin",
            n,
            &mut s,
            "select (x.A, y.B) where x <- r, y <- s with x.K = y.K;",
        );
        run_both(
            &mut group,
            "fig3_dependent",
            n,
            &mut s,
            "select (p.P, i.S) where p <- nested, i <- p.Inner with i.S > 2;",
        );
        run_both(
            &mut group,
            "fig0_filter",
            n,
            &mut s,
            "select x.A where x <- r with x.K > 10;",
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_planner
}
criterion_main!(benches);
