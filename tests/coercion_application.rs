//! §6's alternative application rule, implemented as the `applyc`
//! combinator: `e : σ → τ`, `e' : ρ`, `ρ ≤ σ` gives `applyc(e, e') : τ`.
//! Functions written over a *smaller* (even closed) description type
//! accept any information-richer argument, coerced implicitly — the
//! paper's "de-mysticized" subtyping.

use machiavelli::Session;

#[test]
fn applyc_scheme_carries_the_ordering_condition() {
    let s = Session::new();
    assert_eq!(
        s.scheme_of("applyc").unwrap().show(),
        "((\"a -> 'b) * \"c) -> 'b where { \"a <= \"c }"
    );
}

#[test]
fn closed_domain_function_accepts_wider_records() {
    let mut s = Session::new();
    // A function over the *closed* record type [Name:string] — ordinary
    // application to a wider record is a type error…
    s.run("fun greet(p) = \"hello \" ^ project(p, [Name: string]).Name;")
        .unwrap();
    s.run("val namedOnly = (fn(p) => project(p, [Name: string]));")
        .unwrap();
    s.run("fun nameLen(p) = project(p, [Name: string]);")
        .unwrap();
    // Build a closed-domain function via annotation-driven typing:
    s.run("fun exact(p) = (project(p, [Name: string]) = p, p.Name);")
        .unwrap();
    // `exact` demands p : [Name:string] exactly (equality forces it).
    let err = s.run(r#"exact([Name="joe", Age=3]);"#).unwrap_err();
    assert!(err.to_string().contains("type error"), "{err}");
    // …but applyc coerces:
    let out = s
        .eval_one(r#"applyc(exact, [Name="joe", Age=3]);"#)
        .unwrap();
    // Dynamically the projection inside compares against the *whole*
    // record, so the first component is false; the method still ran.
    assert_eq!(out.scheme.show(), "bool * string");
}

#[test]
fn applyc_rejects_arguments_below_the_domain() {
    let mut s = Session::new();
    s.run("fun exact(p) = (project(p, [Name: string]) = p, p.Name);")
        .unwrap();
    // [Age:int] is not ≥ [Name:string]: the ordering condition fails.
    let err = s.run("applyc(exact, [Age=3]);").unwrap_err();
    assert!(
        err.to_string().contains("no field `Name`")
            || err.to_string().contains("not a substructure"),
        "{err}"
    );
}

#[test]
fn applyc_on_equal_types_is_ordinary_application() {
    let mut s = Session::new();
    s.run("fun inc(n) = n + 1;").unwrap();
    let out = s.eval_one("applyc(inc, 41);").unwrap();
    assert_eq!(out.show(), "val it = 42 : int");
}

#[test]
fn applyc_condition_stays_symbolic_in_schemes() {
    let mut s = Session::new();
    // Wrapping applyc keeps the ≤ condition in the wrapper's scheme.
    let out = s.eval_one("fun capply(f, x) = applyc(f, x);").unwrap();
    assert_eq!(
        out.scheme.show(),
        "((\"a -> 'b) * \"c) -> 'b where { \"a <= \"c }"
    );
}

#[test]
fn applyc_with_nested_structure() {
    let mut s = Session::new();
    s.run("fun lastName(p) = project(p, [Name: [Last: string]]);")
        .unwrap();
    let out = s
        .eval_one(r#"applyc(lastName, [Name=[First="Joe", Last="Doe"], Salary=12345]);"#)
        .unwrap();
    assert_eq!(
        out.show(),
        r#"val it = [Name=[Last="Doe"]] : [Name:[Last:string]]"#
    );
}
