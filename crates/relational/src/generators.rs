//! Workload generators: the paper's Figure 2 part–supplier database (both
//! the literal values and a scalable synthetic version), employee
//! relations for the introduction's `Wealthy` query, and random digraphs
//! for the Figure 4 transitive closure.
//!
//! All generators are deterministic given a seed.

use crate::relation::{row, Relation};
use machiavelli_value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The literal `parts` relation of Figure 2 (representative rows).
pub fn fig2_parts() -> Relation {
    Relation::from_rows([
        part_row("bolt", 1, PartInfo::Base { cost: 5 }),
        part_row("nut", 2, PartInfo::Base { cost: 3 }),
        part_row(
            "wheel",
            100,
            PartInfo::Composite {
                subparts: vec![(1, 8), (2, 8)],
                assem_cost: 20,
            },
        ),
        part_row(
            "engine",
            2189,
            PartInfo::Composite {
                subparts: vec![(1, 189), (2, 120)],
                assem_cost: 1000,
            },
        ),
    ])
}

/// The literal `suppliers` relation of Figure 2.
pub fn fig2_suppliers() -> Relation {
    Relation::from_rows([
        row(&[
            ("Sname", Value::str("Baker")),
            ("S#", Value::Int(1)),
            ("City", Value::str("Paris")),
        ]),
        row(&[
            ("Sname", Value::str("Smith")),
            ("S#", Value::Int(12)),
            ("City", Value::str("London")),
        ]),
        row(&[
            ("Sname", Value::str("Jones")),
            ("S#", Value::Int(3)),
            ("City", Value::str("Oslo")),
        ]),
    ])
}

/// The literal `supplied_by` relation of Figure 2 (nested supplier sets).
pub fn fig2_supplied_by() -> Relation {
    Relation::from_rows([
        row(&[
            ("P#", Value::Int(1)),
            (
                "Suppliers",
                Value::set([
                    row(&[("S#", Value::Int(1))]),
                    row(&[("S#", Value::Int(12))]),
                ]),
            ),
        ]),
        row(&[
            ("P#", Value::Int(2)),
            ("Suppliers", Value::set([row(&[("S#", Value::Int(3))])])),
        ]),
        row(&[
            ("P#", Value::Int(2189)),
            ("Suppliers", Value::set([row(&[("S#", Value::Int(1))])])),
        ]),
    ])
}

/// Part payload for the generator.
pub enum PartInfo {
    Base {
        cost: i64,
    },
    Composite {
        subparts: Vec<(i64, i64)>,
        assem_cost: i64,
    },
}

/// One row of the `parts` relation.
pub fn part_row(name: &str, pno: i64, info: PartInfo) -> Value {
    let pinfo = match info {
        PartInfo::Base { cost } => Value::variant(
            "BasePart",
            Value::record([("Cost".into(), Value::Int(cost))]),
        ),
        PartInfo::Composite {
            subparts,
            assem_cost,
        } => Value::variant(
            "CompositePart",
            Value::record([
                (
                    "SubParts".into(),
                    Value::set(
                        subparts
                            .into_iter()
                            .map(|(p, q)| row(&[("P#", Value::Int(p)), ("Qty", Value::Int(q))])),
                    ),
                ),
                ("AssemCost".into(), Value::Int(assem_cost)),
            ]),
        ),
    };
    row(&[
        ("Pname", Value::str(name)),
        ("P#", Value::Int(pno)),
        ("Pinfo", pinfo),
    ])
}

/// A scalable part–supplier database.
pub struct PartSupplierDb {
    pub parts: Relation,
    pub suppliers: Relation,
    pub supplied_by: Relation,
}

/// Generate `n_parts` parts (a fraction `base_frac` of them base parts;
/// composites reference only lower-numbered parts, so part costs are
/// well-founded), `n_suppliers` suppliers, and a `supplied_by` relation
/// mapping every part to 1–3 suppliers.
pub fn gen_part_supplier(
    n_parts: usize,
    n_suppliers: usize,
    base_frac: f64,
    seed: u64,
) -> PartSupplierDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut parts = Vec::with_capacity(n_parts);
    for i in 0..n_parts {
        let pno = i as i64 + 1;
        let name = format!("part{pno}");
        // The first part must be base so composites have targets.
        let is_base = i == 0 || rng.gen_bool(base_frac);
        let info = if is_base {
            PartInfo::Base {
                cost: rng.gen_range(1..100),
            }
        } else {
            let n_subs = rng.gen_range(1..=4.min(i));
            let subparts = (0..n_subs)
                .map(|_| (rng.gen_range(1..=i as i64), rng.gen_range(1..20)))
                .collect();
            PartInfo::Composite {
                subparts,
                assem_cost: rng.gen_range(10..1000),
            }
        };
        parts.push(part_row(&name, pno, info));
    }
    let suppliers = (0..n_suppliers).map(|i| {
        row(&[
            ("Sname", Value::str(format!("supplier{i}"))),
            ("S#", Value::Int(i as i64 + 1)),
            (
                "City",
                Value::str(["Paris", "London", "Oslo", "Philadelphia"][i % 4]),
            ),
        ])
    });
    let supplied_by = (0..n_parts).map(|i| {
        let k = rng.gen_range(1..=3.min(n_suppliers.max(1)));
        let mut ids: Vec<i64> = (0..k)
            .map(|_| rng.gen_range(1..=n_suppliers.max(1) as i64))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        row(&[
            ("P#", Value::Int(i as i64 + 1)),
            (
                "Suppliers",
                Value::set(ids.into_iter().map(|s| row(&[("S#", Value::Int(s))]))),
            ),
        ])
    });
    PartSupplierDb {
        parts: Relation::from_rows(parts),
        suppliers: suppliers.collect(),
        supplied_by: supplied_by.collect(),
    }
}

/// Native total-cost of a part (the Figure 5 `cost` function as the
/// verification baseline): base parts cost their `Cost`; composite parts
/// cost `AssemCost + Σ subcost · qty`.
pub fn native_cost(parts: &Relation, pno: i64) -> Option<i64> {
    let part = parts
        .iter()
        .find(|v| matches!(v, Value::Record(fs) if fs.get("P#") == Some(&Value::Int(pno))))?;
    let Value::Record(fs) = part else { return None };
    match fs.get("Pinfo")? {
        Value::Variant(tag, payload) if tag == "BasePart" => match &**payload {
            Value::Record(p) => match p.get("Cost")? {
                Value::Int(c) => Some(*c),
                _ => None,
            },
            _ => None,
        },
        Value::Variant(tag, payload) if tag == "CompositePart" => match &**payload {
            Value::Record(p) => {
                let Value::Int(assem) = p.get("AssemCost")? else {
                    return None;
                };
                let Value::Set(subs) = p.get("SubParts")? else {
                    return None;
                };
                let mut total = *assem;
                for sub in subs.iter() {
                    let Value::Record(sf) = sub else { return None };
                    let Value::Int(spno) = sf.get("P#")? else {
                        return None;
                    };
                    let Value::Int(qty) = sf.get("Qty")? else {
                        return None;
                    };
                    total += native_cost(parts, *spno)? * qty;
                }
                Some(total)
            }
            _ => None,
        },
        _ => None,
    }
}

/// The introduction's employee relation, scaled: `n` rows with uniform
/// salaries in `[0, 200_000)`.
pub fn gen_employees(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::from_rows((0..n).map(|i| {
        row(&[
            ("Name", Value::str(format!("emp{i}"))),
            ("Salary", Value::Int(rng.gen_range(0..200_000))),
        ])
    }))
}

/// A random digraph as `(a, b)` edge pairs over `n_nodes` nodes.
pub fn gen_edges(n_nodes: usize, n_edges: usize, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let a = rng.gen_range(0..n_nodes as i64);
        let b = rng.gen_range(0..n_nodes as i64);
        out.push((a, b));
    }
    out
}

/// A simple chain graph 0→1→…→n (worst-case diameter).
pub fn chain_edges(n: usize) -> Vec<(i64, i64)> {
    (0..n as i64).map(|i| (i, i + 1)).collect()
}

/// Edge pairs as a binary `Relation` with `A`/`B` columns.
pub fn edges_to_relation(edges: &[(i64, i64)]) -> Relation {
    Relation::from_rows(
        edges
            .iter()
            .map(|&(a, b)| row(&[("A", Value::Int(a)), ("B", Value::Int(b))])),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shapes() {
        assert_eq!(fig2_parts().len(), 4);
        assert_eq!(fig2_suppliers().len(), 3);
        assert_eq!(fig2_supplied_by().len(), 3);
    }

    #[test]
    fn generated_db_is_deterministic() {
        let a = gen_part_supplier(50, 10, 0.5, 42);
        let b = gen_part_supplier(50, 10, 0.5, 42);
        assert_eq!(a.parts, b.parts);
        assert_eq!(a.supplied_by, b.supplied_by);
        let c = gen_part_supplier(50, 10, 0.5, 43);
        assert_ne!(a.parts, c.parts);
    }

    #[test]
    fn costs_are_well_founded() {
        let db = gen_part_supplier(100, 10, 0.4, 7);
        for pno in 1..=100 {
            let c = native_cost(&db.parts, pno).expect("every part has a cost");
            assert!(c > 0);
        }
    }

    #[test]
    fn fig2_engine_cost() {
        // engine: assem 1000 + bolt(5)·189 + nut(3)·120 = 1000+945+360.
        assert_eq!(native_cost(&fig2_parts(), 2189), Some(2305));
        assert_eq!(native_cost(&fig2_parts(), 1), Some(5));
        assert_eq!(native_cost(&fig2_parts(), 9999), None);
    }

    #[test]
    fn employees_salary_range() {
        let r = gen_employees(500, 1);
        assert_eq!(r.len(), 500);
        for v in r.iter() {
            let Value::Record(fs) = v else { panic!() };
            let Value::Int(s) = fs["Salary"] else {
                panic!()
            };
            assert!((0..200_000).contains(&s));
        }
    }

    #[test]
    fn edge_generators() {
        assert_eq!(chain_edges(3), vec![(0, 1), (1, 2), (2, 3)]);
        let e = gen_edges(10, 30, 5);
        assert_eq!(e.len(), 30);
        assert_eq!(edges_to_relation(&chain_edges(3)).len(), 3);
    }
}
