//! A resilient multi-session server for Machiavelli.
//!
//! Hosts N concurrent interpreter sessions over the process-wide
//! shared index tier, with the resilience properties a long-running
//! database service needs:
//!
//! * **Panic isolation** — an evaluator panic poisons only its own
//!   session; the server and every other session keep running.
//! * **Deadlines & cancellation** — each query carries a
//!   [`QueryGuard`] polled cooperatively by the evaluator and the
//!   parallel chunk loops.
//! * **Admission control** — bounded per-worker queues shed load with
//!   a typed [`ServerError::Busy`] instead of queueing unbounded work.
//! * **Fault injection** — [`faults`] provides seeded fail points
//!   (evaluator panics, worker panics, spawn failures, delays,
//!   store-lock poisoning) so the chaos suite can prove the above.
//!
//! See `docs/RESILIENCE.md` for the full contract, and [`wire`] /
//! the `machid` binary for the line protocol.

pub mod error;
pub mod faults;
pub mod server;
pub mod wire;

pub use error::ServerError;
pub use server::{
    AckState, HealthReport, Pending, Server, ServerConfig, ServerRole, ServerStats, SlotHealth,
};
pub use wire::{serve_connection, serve_connection_with_limit};

pub use machiavelli_value::governor::{QueryGuard, ServerCounters, Trip};
