//! Conditional type schemes: generalization and instantiation.
//!
//! A [`Scheme`] is the paper's *principal conditional type-scheme*: a body
//! type, the set of quantified (kinded) variables, and the unresolved
//! conditions (`lub`/`glb`/`≤`) that any instance must satisfy.

use crate::constraint::Constraint;
use crate::display::{show_type_with, TypeNamer};
use crate::kind::Kind;
use crate::ty::{free_vars, resolve, TvRef, Ty, Type, VarGen};
use std::collections::HashMap;
use std::rc::Rc;

/// A (possibly conditional) polymorphic type scheme.
#[derive(Debug, Clone)]
pub struct Scheme {
    /// Quantified variables (unbound cells owned by this scheme).
    pub vars: Vec<TvRef>,
    /// Conditions carried by the scheme; re-activated at each instantiation.
    pub constraints: Vec<Constraint>,
    /// The body type.
    pub body: Ty,
}

impl Scheme {
    /// A monomorphic scheme (no quantification, no conditions).
    pub fn mono(body: Ty) -> Scheme {
        Scheme {
            vars: Vec::new(),
            constraints: Vec::new(),
            body,
        }
    }

    /// Render as the paper prints it: the body, then a
    /// `where { … }` clause when conditions remain.
    pub fn show(&self) -> String {
        let mut namer = TypeNamer::new();
        let mut out = show_type_with(&self.body, &mut namer);
        if !self.constraints.is_empty() {
            // Print outermost condition first (the paper's order): the
            // constraints were pushed innermost-first during inference.
            let parts: Vec<String> = self
                .constraints
                .iter()
                .rev()
                .map(|c| c.show(&mut namer))
                .collect();
            out.push_str(&format!(" where {{ {} }}", parts.join(", ")));
        }
        out
    }
}

/// Generalize `body` at `level`: quantify every free variable bound deeper
/// than `level`, and move the pending constraints that mention any
/// quantified variable out of `pending` into the scheme.
///
/// Moving a constraint can drag further deep variables into the quantified
/// set (e.g. the fresh result variable of a `con`), so the computation
/// iterates to a fixpoint.
pub fn generalize(body: &Ty, pending: &mut Vec<Constraint>, level: u32) -> Scheme {
    let mut quantified: Vec<TvRef> = Vec::new();
    collect_deep(body, level, &mut quantified);

    let mut moved: Vec<Constraint> = Vec::new();
    loop {
        let mut progressed = false;
        let mut keep = Vec::with_capacity(pending.len());
        for c in pending.drain(..) {
            let mut cvars = Vec::new();
            for t in c.types() {
                free_vars(&t, &mut cvars);
            }
            if cvars.iter().any(|v| quantified.contains(v)) {
                // The constraint joins the scheme; its other deep
                // variables become quantified too.
                for v in cvars {
                    if v.level() > level && !quantified.contains(&v) {
                        quantified.push(v);
                    }
                }
                moved.push(c);
                progressed = true;
            } else {
                keep.push(c);
            }
        }
        *pending = keep;
        if !progressed {
            break;
        }
    }

    Scheme {
        vars: quantified,
        constraints: moved,
        body: body.clone(),
    }
}

fn collect_deep(t: &Ty, level: u32, out: &mut Vec<TvRef>) {
    let mut all = Vec::new();
    free_vars(t, &mut all);
    for v in all {
        if v.level() > level && !out.contains(&v) {
            out.push(v);
        }
    }
}

/// Instantiate `scheme`: replace each quantified variable with a fresh one
/// at `level` (kinds copied, with their field types instantiated too), and
/// push copies of the scheme's constraints onto `out_constraints`.
pub fn instantiate(
    scheme: &Scheme,
    gen: &VarGen,
    level: u32,
    out_constraints: &mut Vec<Constraint>,
) -> Ty {
    if scheme.vars.is_empty() && scheme.constraints.is_empty() {
        return scheme.body.clone();
    }
    let mut map: HashMap<usize, TvRef> = HashMap::new();
    // Phase 1: allocate fresh cells (kinds filled in phase 2, so kinds may
    // reference other quantified variables).
    for v in &scheme.vars {
        let fresh = gen.fresh(Kind::Any, level);
        map.insert(Rc::as_ptr(&v.0) as usize, fresh);
    }
    // Phase 2: copy kinds across the substitution.
    for v in &scheme.vars {
        let fresh = map[&(Rc::as_ptr(&v.0) as usize)].clone();
        let kind = match v.kind() {
            Kind::Any => Kind::Any,
            Kind::Desc => Kind::Desc,
            Kind::Record { fields, desc } => Kind::Record {
                fields: fields.iter().map(|(l, t)| (*l, copy_ty(t, &map))).collect(),
                desc,
            },
            Kind::Variant { fields, desc } => Kind::Variant {
                fields: fields.iter().map(|(l, t)| (*l, copy_ty(t, &map))).collect(),
                desc,
            },
        };
        fresh.set_kind(kind);
    }
    for c in &scheme.constraints {
        out_constraints.push(copy_constraint(c, &map));
    }
    copy_ty(&scheme.body, &map)
}

fn copy_constraint(c: &Constraint, map: &HashMap<usize, TvRef>) -> Constraint {
    match c {
        Constraint::Lub {
            result,
            left,
            right,
        } => Constraint::Lub {
            result: copy_ty(result, map),
            left: copy_ty(left, map),
            right: copy_ty(right, map),
        },
        Constraint::Glb {
            result,
            left,
            right,
        } => Constraint::Glb {
            result: copy_ty(result, map),
            left: copy_ty(left, map),
            right: copy_ty(right, map),
        },
        Constraint::Sub { sub, sup } => Constraint::Sub {
            sub: copy_ty(sub, map),
            sup: copy_ty(sup, map),
        },
    }
}

/// Structure-sharing copy of `t` under the variable substitution `map`
/// (non-quantified variables and variable-free subtrees are shared).
fn copy_ty(t: &Ty, map: &HashMap<usize, TvRef>) -> Ty {
    let t = resolve(t);
    match &*t {
        Type::Unit
        | Type::Int
        | Type::Bool
        | Type::Str
        | Type::Real
        | Type::Dynamic
        | Type::RecVar(_) => t,
        Type::Var(v) => match map.get(&(Rc::as_ptr(&v.0) as usize)) {
            Some(fresh) => Rc::new(Type::Var(fresh.clone())),
            None => t.clone(),
        },
        Type::Arrow(a, b) => {
            let ca = copy_ty(a, map);
            let cb = copy_ty(b, map);
            if Rc::ptr_eq(&ca, a) && Rc::ptr_eq(&cb, b) {
                t.clone()
            } else {
                Rc::new(Type::Arrow(ca, cb))
            }
        }
        Type::Record(fs) => Rc::new(Type::Record(
            fs.iter().map(|(l, ft)| (*l, copy_ty(ft, map))).collect(),
        )),
        Type::Variant(fs) => Rc::new(Type::Variant(
            fs.iter().map(|(l, ft)| (*l, copy_ty(ft, map))).collect(),
        )),
        Type::Set(e) => {
            let ce = copy_ty(e, map);
            if Rc::ptr_eq(&ce, e) {
                t.clone()
            } else {
                Rc::new(Type::Set(ce))
            }
        }
        Type::Ref(e) => {
            let ce = copy_ty(e, map);
            if Rc::ptr_eq(&ce, e) {
                t.clone()
            } else {
                Rc::new(Type::Ref(ce))
            }
        }
        Type::Rec(v, body) => {
            let cb = copy_ty(body, map);
            if Rc::ptr_eq(&cb, body) {
                t.clone()
            } else {
                Rc::new(Type::Rec(*v, cb))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::*;
    use crate::unify::unify;

    #[test]
    fn generalize_then_instantiate_fresh() {
        let gen = VarGen::new();
        // λx. x inferred at level 1: 'a -> 'a with 'a at level 1.
        let a = gen.fresh_ty(Kind::Any, 1);
        let body = t_arrow(a.clone(), a);
        let mut pending = Vec::new();
        let scheme = generalize(&body, &mut pending, 0);
        assert_eq!(scheme.vars.len(), 1);

        let mut cs = Vec::new();
        let inst1 = instantiate(&scheme, &gen, 1, &mut cs);
        let inst2 = instantiate(&scheme, &gen, 1, &mut cs);
        // The two instances unify with different types independently.
        unify(&inst1, &t_arrow(t_int(), t_int())).unwrap();
        unify(&inst2, &t_arrow(t_bool(), t_bool())).unwrap();
    }

    #[test]
    fn shallow_vars_not_quantified() {
        let gen = VarGen::new();
        let shallow = gen.fresh_ty(Kind::Any, 0);
        let deep = gen.fresh_ty(Kind::Any, 3);
        let body = t_arrow(shallow.clone(), deep);
        let mut pending = Vec::new();
        let scheme = generalize(&body, &mut pending, 0);
        assert_eq!(scheme.vars.len(), 1);
        let mut cs = Vec::new();
        let inst = instantiate(&scheme, &gen, 1, &mut cs);
        // The shallow var is shared between instance and original.
        let Type::Arrow(lhs, _) = &*inst else {
            panic!()
        };
        assert!(std::rc::Rc::ptr_eq(&resolve(lhs), &resolve(&shallow)));
    }

    #[test]
    fn constraints_move_into_scheme() {
        let gen = VarGen::new();
        let a = gen.fresh_ty(Kind::Desc, 1);
        let b = gen.fresh_ty(Kind::Desc, 1);
        let r = gen.fresh_ty(Kind::Desc, 1);
        let body = t_arrow(t_tuple([a.clone(), b.clone()]), r.clone());
        let mut pending = vec![Constraint::Lub {
            result: r,
            left: a,
            right: b,
        }];
        let scheme = generalize(&body, &mut pending, 0);
        assert!(pending.is_empty());
        assert_eq!(scheme.constraints.len(), 1);
        assert_eq!(scheme.vars.len(), 3);
    }

    #[test]
    fn unrelated_constraints_stay_pending() {
        let gen = VarGen::new();
        let a = gen.fresh_ty(Kind::Any, 1);
        let body = t_arrow(a.clone(), a);
        let outer1 = gen.fresh_ty(Kind::Desc, 0);
        let outer2 = gen.fresh_ty(Kind::Desc, 0);
        let outer3 = gen.fresh_ty(Kind::Desc, 0);
        let mut pending = vec![Constraint::Lub {
            result: outer3,
            left: outer1,
            right: outer2,
        }];
        let scheme = generalize(&body, &mut pending, 0);
        assert_eq!(pending.len(), 1);
        assert!(scheme.constraints.is_empty());
    }

    #[test]
    fn kinded_vars_instantiate_with_copied_kinds() {
        let gen = VarGen::new();
        let field = gen.fresh_ty(Kind::Desc, 1);
        let row = gen.fresh(Kind::record([("Name".into(), field.clone())], true), 1);
        let row_ty: Ty = Rc::new(Type::Var(row));
        let body = t_arrow(t_set(row_ty), t_set(field));
        let mut pending = Vec::new();
        let scheme = generalize(&body, &mut pending, 0);
        assert_eq!(scheme.vars.len(), 2);

        let mut cs = Vec::new();
        let inst = instantiate(&scheme, &gen, 1, &mut cs);
        // Instantiating and unifying the domain with a concrete relation
        // pins the instance's range, not the scheme.
        let rel = t_set(t_record([
            ("Name".into(), t_str()),
            ("Salary".into(), t_int()),
        ]));
        let out = gen.fresh_ty(Kind::Any, 1);
        unify(&inst, &t_arrow(rel, out.clone())).unwrap();
        assert_eq!(crate::display::show_type(&resolve(&out)), "{string}");
        // Original scheme unchanged: a second instance is still generic.
        let inst2 = instantiate(&scheme, &gen, 1, &mut cs);
        let rel2 = t_set(t_record([("Name".into(), t_int())]));
        let out2 = gen.fresh_ty(Kind::Any, 1);
        unify(&inst2, &t_arrow(rel2, out2.clone())).unwrap();
        assert_eq!(crate::display::show_type(&resolve(&out2)), "{int}");
    }

    #[test]
    fn scheme_show_where_clause() {
        let gen = VarGen::new();
        let a = gen.fresh_ty(Kind::Desc, 1);
        let b = gen.fresh_ty(Kind::Desc, 1);
        let r = gen.fresh_ty(Kind::Desc, 1);
        let body = t_arrow(t_tuple([a.clone(), b.clone()]), r.clone());
        let mut pending = vec![Constraint::Lub {
            result: r,
            left: a,
            right: b,
        }];
        let scheme = generalize(&body, &mut pending, 0);
        let shown = scheme.show();
        assert!(shown.contains("where {"), "{shown}");
        assert!(shown.contains("lub"), "{shown}");
    }
}
