//! Natural-join algorithms (ablation A1 in DESIGN.md).
//!
//! The paper's generalized join on sets is the natural join of \[BJO89\]:
//! `{ x ⊔ y | x ∈ r, y ∈ s, x ↑ y }`. Three implementations:
//!
//! * [`nested_loop_join`] — the fully general O(n·m) semantics, using
//!   value-level `con`/`join` (supports *partial* overlap of nested
//!   records, where consistency is weaker than equality);
//! * [`hash_join`] — classic build/probe on the common attributes; exact
//!   for the relational case (common attributes compared by equality);
//! * [`sort_merge_join`] — sort both sides by the common-attribute key
//!   and merge; same applicability as hash join.
//!
//! Hash keys are *structural* ([`machiavelli_value::hash_value`]): a
//! [`RowKey`] borrows the row and hashes/compares the common-attribute
//! values in place — no per-row string rendering, no per-row key
//! allocation, and no reliance on the display form being injective
//! (distinct values can render identically; see the regression test).
//!
//! For flat relations all three agree (property-tested); the benches
//! measure where the hash/merge strategies win.

use crate::relation::Relation;
use machiavelli_value::{
    con_value, hash_value, join_value, value_cmp, value_eq, Fields, Symbol, Value,
};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// General nested-loop natural join via `con`/`join` (the evaluator's
/// semantics).
pub fn nested_loop_join(r: &Relation, s: &Relation) -> Relation {
    let mut out = Vec::new();
    for x in r.iter() {
        for y in s.iter() {
            if con_value(x, y) {
                // Consistency guarantees the join exists.
                out.push(join_value(x, y).expect("consistent values join"));
            }
        }
    }
    Relation::from_rows(out)
}

/// The fields of a record row, provided it has *all* the key labels.
fn keyed_fields<'a>(v: &'a Value, labels: &[Symbol]) -> Option<&'a Fields> {
    let Value::Record(fs) = v else { return None };
    labels.iter().all(|l| fs.contains_key(l)).then_some(fs)
}

/// A borrowed join key: the common-attribute values of one row, hashed
/// and compared structurally in place. Both sides of a join share one
/// `labels` slice, so equality can walk the labels pairwise.
struct RowKey<'a> {
    fields: &'a Fields,
    labels: &'a [Symbol],
}

impl Hash for RowKey<'_> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for l in self.labels {
            hash_value(self.fields.get(l).expect("keyed row has label"), state);
        }
    }
}

impl PartialEq for RowKey<'_> {
    fn eq(&self, other: &Self) -> bool {
        debug_assert_eq!(self.labels.len(), other.labels.len());
        self.labels.iter().all(|l| {
            value_eq(
                self.fields.get(l).expect("keyed row has label"),
                other.fields.get(l).expect("keyed row has label"),
            )
        })
    }
}

impl Eq for RowKey<'_> {}

/// Build/probe hash join on the common attributes. Falls back to the
/// nested-loop join when either side has no record rows (no key).
pub fn hash_join(r: &Relation, s: &Relation) -> Relation {
    let labels = r.common_labels(s);
    if labels.is_empty() {
        // No common attributes: natural join degenerates to cartesian
        // product — nested loop is already optimal.
        return nested_loop_join(r, s);
    }
    // Build on the smaller side.
    let (build, probe, build_is_left) = if r.len() <= s.len() {
        (r, s, true)
    } else {
        (s, r, false)
    };
    // `Value` contains `RefCell` (refs), but keys are hashed by ref
    // *identity*, which mutation never changes — the lint's hazard does
    // not apply.
    #[allow(clippy::mutable_key_type)]
    let mut table: HashMap<RowKey<'_>, Vec<&Value>> = HashMap::with_capacity(build.len());
    for x in build.iter() {
        if let Some(fields) = keyed_fields(x, &labels) {
            table
                .entry(RowKey {
                    fields,
                    labels: &labels,
                })
                .or_default()
                .push(x);
        }
    }
    let mut out = Vec::new();
    for y in probe.iter() {
        let Some(fields) = keyed_fields(y, &labels) else {
            continue;
        };
        if let Some(matches) = table.get(&RowKey {
            fields,
            labels: &labels,
        }) {
            for x in matches {
                let (l, rgt) = if build_is_left { (*x, y) } else { (y, *x) };
                if con_value(l, rgt) {
                    out.push(join_value(l, rgt).expect("consistent values join"));
                }
            }
        }
    }
    Relation::from_rows(out)
}

/// Sort-merge join on the common attributes.
pub fn sort_merge_join(r: &Relation, s: &Relation) -> Relation {
    let labels = r.common_labels(s);
    if labels.is_empty() {
        return nested_loop_join(r, s);
    }
    // Keys borrow the rows; rows stay in the relations.
    fn keyed<'a>(rel: &'a Relation, labels: &[Symbol]) -> Vec<(Vec<&'a Value>, &'a Value)> {
        let mut v: Vec<(Vec<&Value>, &Value)> = rel
            .iter()
            .filter_map(|row| {
                let fields = keyed_fields(row, labels)?;
                let key = labels
                    .iter()
                    .map(|l| fields.get(l).expect("keyed row has label"))
                    .collect();
                Some((key, row))
            })
            .collect();
        v.sort_by(|(ka, _), (kb, _)| cmp_key(ka, kb));
        v
    }
    let left = keyed(r, &labels);
    let right = keyed(s, &labels);
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        match cmp_key(&left[i].0, &right[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Group boundaries.
                let ie = left[i..].partition_point(|(k, _)| cmp_key(k, &left[i].0).is_eq()) + i;
                let je = right[j..].partition_point(|(k, _)| cmp_key(k, &right[j].0).is_eq()) + j;
                for (_, x) in &left[i..ie] {
                    for (_, y) in &right[j..je] {
                        if con_value(x, y) {
                            out.push(join_value(x, y).expect("consistent values join"));
                        }
                    }
                }
                i = ie;
                j = je;
            }
        }
    }
    Relation::from_rows(out)
}

fn cmp_key(a: &[&Value], b: &[&Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let c = value_cmp(x, y);
        if c != std::cmp::Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::row;

    fn r_ab() -> Relation {
        Relation::from_rows([
            row(&[("A", Value::Int(1)), ("B", Value::Int(10))]),
            row(&[("A", Value::Int(2)), ("B", Value::Int(20))]),
            row(&[("A", Value::Int(3)), ("B", Value::Int(10))]),
        ])
    }

    fn s_bc() -> Relation {
        Relation::from_rows([
            row(&[("B", Value::Int(10)), ("C", Value::str("x"))]),
            row(&[("B", Value::Int(30)), ("C", Value::str("y"))]),
        ])
    }

    #[test]
    fn three_strategies_agree_on_flat_join() {
        let nl = nested_loop_join(&r_ab(), &s_bc());
        let hj = hash_join(&r_ab(), &s_bc());
        let mj = sort_merge_join(&r_ab(), &s_bc());
        assert_eq!(nl, hj);
        assert_eq!(nl, mj);
        assert_eq!(nl.len(), 2);
    }

    #[test]
    fn no_common_attributes_gives_product() {
        let r = Relation::from_rows([row(&[("A", Value::Int(1))]), row(&[("A", Value::Int(2))])]);
        let s = Relation::from_rows([row(&[("C", Value::Int(7))])]);
        assert_eq!(hash_join(&r, &s).len(), 2);
        assert_eq!(sort_merge_join(&r, &s).len(), 2);
    }

    #[test]
    fn same_schema_join_is_intersection() {
        let r = r_ab();
        let s = Relation::from_rows([
            row(&[("A", Value::Int(1)), ("B", Value::Int(10))]),
            row(&[("A", Value::Int(9)), ("B", Value::Int(90))]),
        ]);
        let j = hash_join(&r, &s);
        assert_eq!(j.len(), 1);
        assert_eq!(j, nested_loop_join(&r, &s));
    }

    #[test]
    fn nested_loop_handles_partial_nested_overlap() {
        // Nested records where consistency is weaker than equality on the
        // common attribute: [N=[First]] vs [N=[Last]].
        let r = Relation::from_rows([row(&[("N", row(&[("First", Value::str("Joe"))]))])]);
        let s = Relation::from_rows([row(&[
            ("N", row(&[("Last", Value::str("Doe"))])),
            ("Age", Value::Int(21)),
        ])]);
        let j = nested_loop_join(&r, &s);
        assert_eq!(j.len(), 1);
        // Hash join keys on equality of N, which differs here — this is
        // exactly the case where only the general algorithm applies.
        assert_eq!(hash_join(&r, &s).len(), 0);
    }

    #[test]
    fn empty_sides() {
        let e = Relation::new();
        assert!(nested_loop_join(&e, &s_bc()).is_empty());
        assert!(hash_join(&r_ab(), &e).is_empty());
        assert!(sort_merge_join(&e, &e).is_empty());
    }

    #[test]
    fn structural_keys_survive_renderer_collisions() {
        // Regression for the old string-rendered hash keys: these two
        // key values are distinct but print identically (a crafted label
        // containing "=2, " forges the 3-field record's display form).
        let honest_key = Value::record([
            ("A".into(), Value::Int(1)),
            ("B".into(), Value::Int(2)),
            ("C".into(), Value::Int(3)),
        ]);
        let forged_key = Value::record([
            ("A".into(), Value::Int(1)),
            ("B=2, C".into(), Value::Int(3)),
        ]);
        assert_eq!(
            machiavelli_value::show_value(&honest_key),
            machiavelli_value::show_value(&forged_key),
            "the renderer collision this test guards against must exist"
        );
        assert_ne!(honest_key, forged_key);
        let r = Relation::from_rows([row(&[("K", honest_key.clone()), ("X", Value::Int(7))])]);
        let s = Relation::from_rows([row(&[("K", forged_key.clone()), ("Y", Value::Int(8))])]);
        // Equality-keyed strategies must NOT pair the rows: the K values
        // are unequal. The old renderer-keyed table put both rows in one
        // bucket, and because the forged keys happen to be *consistent*
        // (disjoint-ish label sets), the con-check let the pair through —
        // output silently depended on display-form collisions.
        assert!(hash_join(&r, &s).is_empty());
        assert_eq!(hash_join(&r, &s), sort_merge_join(&r, &s));
        // Genuinely equal keys still join, agreeing with the general
        // algorithm.
        let s2 = Relation::from_rows([row(&[("K", honest_key), ("Y", Value::Int(8))])]);
        assert_eq!(hash_join(&r, &s2).len(), 1);
        assert_eq!(hash_join(&r, &s2), nested_loop_join(&r, &s2));
        assert_eq!(hash_join(&r, &s2), sort_merge_join(&r, &s2));
    }
}
