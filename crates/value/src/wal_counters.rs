//! **Process-wide WAL counters** — the durability layer's observability
//! feed, surfaced through `Session::stats()` / `:stats` and the server's
//! `METRICS` exposition.
//!
//! They live here (not in `machiavelli-wal`) for the same reason the
//! governor's `ServerCounters` live low in the stack: every layer that
//! wants to *render* them (core's stats, the server's metrics text)
//! already depends on `machiavelli-value`, while depending on the wal
//! crate from core would invert the workspace layering. The wal crate
//! calls the `note_*` hooks; everyone else reads [`wal_counters`].
//!
//! Counters are cumulative across every session log in the process and
//! monotone except through [`reset_wal_counters`] (test setup only).

use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of the process-wide durability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalCounters {
    /// Records appended to any session log (bind, ref-delta, and
    /// commit-marker records all count).
    pub records_appended: u64,
    /// Payload + framing bytes appended to any session log.
    pub bytes_logged: u64,
    /// Commit groups made durable (each `commit` that synced).
    pub commits: u64,
    /// Checkpoints completed (snapshot renamed *and* log reset).
    pub checkpoints: u64,
    /// Recoveries performed on open (snapshot and/or log replayed).
    pub recoveries: u64,
    /// Torn tails truncated during recovery — a partial final record
    /// or incomplete commit group dropped as a normal crash artifact.
    pub torn_tails_truncated: u64,
}

static RECORDS_APPENDED: AtomicU64 = AtomicU64::new(0);
static BYTES_LOGGED: AtomicU64 = AtomicU64::new(0);
static COMMITS: AtomicU64 = AtomicU64::new(0);
static CHECKPOINTS: AtomicU64 = AtomicU64::new(0);
static RECOVERIES: AtomicU64 = AtomicU64::new(0);
static TORN_TAILS: AtomicU64 = AtomicU64::new(0);

/// Tally `records` appended records totalling `bytes` on-disk bytes.
pub fn note_wal_append(records: u64, bytes: u64) {
    RECORDS_APPENDED.fetch_add(records, Ordering::Relaxed);
    BYTES_LOGGED.fetch_add(bytes, Ordering::Relaxed);
}

/// Tally a durable commit group.
pub fn note_wal_commit() {
    COMMITS.fetch_add(1, Ordering::Relaxed);
}

/// Tally a completed checkpoint.
pub fn note_wal_checkpoint() {
    CHECKPOINTS.fetch_add(1, Ordering::Relaxed);
}

/// Tally a recovery-on-open.
pub fn note_wal_recovery() {
    RECOVERIES.fetch_add(1, Ordering::Relaxed);
}

/// Tally a torn tail truncated during recovery.
pub fn note_wal_torn_tail() {
    TORN_TAILS.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot the durability counters.
pub fn wal_counters() -> WalCounters {
    WalCounters {
        records_appended: RECORDS_APPENDED.load(Ordering::Relaxed),
        bytes_logged: BYTES_LOGGED.load(Ordering::Relaxed),
        commits: COMMITS.load(Ordering::Relaxed),
        checkpoints: CHECKPOINTS.load(Ordering::Relaxed),
        recoveries: RECOVERIES.load(Ordering::Relaxed),
        torn_tails_truncated: TORN_TAILS.load(Ordering::Relaxed),
    }
}

/// Zero the durability counters (test setup; counters are process-wide,
/// so tests that assert deltas should snapshot-and-subtract instead).
pub fn reset_wal_counters() {
    for c in [
        &RECORDS_APPENDED,
        &BYTES_LOGGED,
        &COMMITS,
        &CHECKPOINTS,
        &RECOVERIES,
        &TORN_TAILS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_accumulate_into_the_snapshot() {
        let before = wal_counters();
        note_wal_append(3, 128);
        note_wal_commit();
        note_wal_checkpoint();
        note_wal_recovery();
        note_wal_torn_tail();
        let after = wal_counters();
        assert!(after.records_appended >= before.records_appended + 3);
        assert!(after.bytes_logged >= before.bytes_logged + 128);
        assert!(after.commits > before.commits);
        assert!(after.checkpoints > before.checkpoints);
        assert!(after.recoveries > before.recoveries);
        assert!(after.torn_tails_truncated > before.torn_tails_truncated);
    }
}
