//! The **plain-data parallel lane**: a mini-evaluator over
//! [`PlainValue`] for the planner-safe expression class, and the
//! partition-parallel hash-join driver built on it.
//!
//! # Why a second evaluator is sound here
//!
//! The real evaluator works on `Rc`-based values and cannot cross
//! threads. The expressions the parallel lane evaluates are exactly the
//! **planner-safe, binder-closed** class (see [`par_evaluable`]): pure,
//! total, terminating, binder-free expressions whose free variables are
//! all row binders. On that class, [`plain_eval`] mirrors the
//! interpreter's dynamic semantics constructor by constructor
//! (wrapping integer arithmetic, IEEE comparisons, `Fields::from_vec`
//! record normalization, canonical set construction, `andalso`/`orelse`
//! short-circuiting) — and **declines** (`None`) on anything else, at
//! which point the caller abandons the parallel attempt and re-runs the
//! sequential path, reproducing byte-for-byte whatever the interpreter
//! would have done (including its errors on ill-typed programs). The
//! lane can therefore be wrong about *nothing*: it either agrees or
//! steps aside.
//!
//! # The partition join
//!
//! The executor keys both sides **sequentially** on the `Rc` lane —
//! [`safe_eval`], a direct-dispatch evaluator with none of the
//! interpreter's environment allocation or depth accounting — and
//! extracts only the resulting **key tuples** to plain data
//! ([`PlainKey`]). [`par_partition_join`] then fans the pre-keyed
//! sides out over `n_threads` scoped workers:
//!
//! 1. **partition-build** — worker *t* owns hash partition *t* and
//!    builds its table from the keyed build rows in index order, so
//!    each group's indices ascend (= build-source canonical order,
//!    matching the sequential build);
//! 2. **probe** — contiguous probe chunks look up the owning partition
//!    per row and emit each group's index list.
//!
//! Rows themselves never cross a thread (and are never deep-copied):
//! the result is, per probe row, the **indices** of matching build
//! rows, which the caller re-binds on the session thread. Every
//! failure mode — a key the safe evaluator declines, a key value that
//! does not extract — surfaces *before* the fan-out, so the workers
//! run infallible data plumbing only. Each such dynamic fallback is
//! additionally reported as a typed
//! `machiavelli_trace::DeclineReason` by the callers in `physical.rs`
//! (`par-join-*`, `par-probe-*` codes), so `:analyze`, `:stats`, and
//! the server's `METRICS` exposition can say *why* a join stayed
//! sequential — see `docs/OBSERVABILITY.md`.

use machiavelli_syntax::ast::{BinOp, Expr, ExprKind, UnOp};
use machiavelli_syntax::symbol::Symbol;
use machiavelli_value::faults::{self, FaultConfig};
use machiavelli_value::governor::{self, QueryGuard};
use machiavelli_value::plain::{plain_cmp, plain_eq, to_plain, PlainIndex, PlainKey, PlainValue};
use machiavelli_value::set::MSet;
use machiavelli_value::value::{value_eq, Fields, Value};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::Arc;

// --- the plain expression class --------------------------------------------

/// Can the plain mini-evaluator run `e` given bindings for `allowed`?
/// A strict subset of the planner-safe class: additionally requires
/// every variable to be among `allowed` (binder-closure) and excludes
/// `con` (whose consistency check is not mirrored). Exact on the safe
/// class — anything outside returns `false` and stays sequential.
pub fn par_evaluable(e: &Expr, allowed: &[Symbol]) -> bool {
    use ExprKind::*;
    match &e.kind {
        Var(x) => allowed.contains(x),
        Unit | Int(_) | Real(_) | Str(_) | Bool(_) => true,
        Record(fields) => fields.iter().all(|(_, fe)| par_evaluable(fe, allowed)),
        Field { expr, .. } | Unop { expr, .. } => par_evaluable(expr, allowed),
        If {
            cond,
            then_branch,
            else_branch,
        } => {
            par_evaluable(cond, allowed)
                && par_evaluable(then_branch, allowed)
                && par_evaluable(else_branch, allowed)
        }
        Set(items) => items.iter().all(|i| par_evaluable(i, allowed)),
        Union { left, right } => par_evaluable(left, allowed) && par_evaluable(right, allowed),
        Binop { op, left, right } => {
            // div/mod raise on zero (also outside the safe class); they
            // can never be reordered, let alone parallelized.
            !matches!(op, BinOp::Div | BinOp::Mod)
                && par_evaluable(left, allowed)
                && par_evaluable(right, allowed)
        }
        // `con` (consistency) is planner-safe but not mirrored in the
        // plain lane; everything else is outside the safe class.
        _ => false,
    }
}

/// Collect every variable mentioned in `e` into `out` (with duplicates;
/// callers dedup). Exact on the safe class, which is binder-free — on
/// it, "mentioned" and "free" coincide.
pub fn expr_vars(e: &Expr, out: &mut Vec<Symbol>) {
    use ExprKind::*;
    match &e.kind {
        Var(x) => out.push(*x),
        Unit | Int(_) | Real(_) | Str(_) | Bool(_) | OpVal(_) | Raise(_) => {}
        Record(fields) => fields.iter().for_each(|(_, fe)| expr_vars(fe, out)),
        Field { expr, .. } | Unop { expr, .. } => expr_vars(expr, out),
        If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr_vars(cond, out);
            expr_vars(then_branch, out);
            expr_vars(else_branch, out);
        }
        Set(items) => items.iter().for_each(|i| expr_vars(i, out)),
        Union { left, right } | Con { left, right } | Binop { left, right, .. } => {
            expr_vars(left, out);
            expr_vars(right, out);
        }
        // Outside the safe class; callers have already declined via
        // `par_evaluable`/`is_safe_expr`. Kept total for robustness.
        _ => {}
    }
}

// --- plain bindings --------------------------------------------------------

/// The environment of a plain evaluation: an optional innermost binding
/// (the per-row/per-element one, so hot loops allocate nothing) over a
/// slice of outer bindings (captured values, probe binders). Innermost
/// wins, then the slice is searched back to front — the same shadowing
/// discipline as [`machiavelli_value::Env`] (irrelevant in practice:
/// the safe class is binder-free and generator variables are distinct).
#[derive(Clone, Copy)]
pub struct PlainBindings<'a> {
    pub head: Option<(Symbol, &'a PlainValue)>,
    pub rest: &'a [(Symbol, PlainValue)],
}

impl<'a> PlainBindings<'a> {
    pub fn lookup(&self, name: Symbol) -> Option<&'a PlainValue> {
        if let Some((n, v)) = self.head {
            if n.id() == name.id() {
                return Some(v);
            }
        }
        self.rest
            .iter()
            .rev()
            .find(|(n, _)| n.id() == name.id())
            .map(|(_, v)| v)
    }
}

// --- the mini-evaluator ----------------------------------------------------

/// Evaluate a planner-safe, binder-closed expression on plain values.
/// `None` means "outside my competence" (unsupported construct, unbound
/// variable, or an operand shape the interpreter would error on) — the
/// caller must abandon the parallel attempt and take the sequential
/// path, which reproduces the interpreter's exact behavior.
pub fn plain_eval(e: &Expr, env: &PlainBindings<'_>) -> Option<PlainValue> {
    use ExprKind::*;
    Some(match &e.kind {
        Unit => PlainValue::Unit,
        Int(n) => PlainValue::Int(*n),
        Real(r) => PlainValue::Real(*r),
        Str(s) => PlainValue::Str(s.as_str().into()),
        Bool(b) => PlainValue::Bool(*b),
        Var(x) => env.lookup(*x)?.clone(),
        Field { expr, label } => {
            let PlainValue::Record(fs) = plain_eval(expr, env)? else {
                return None;
            };
            fs.iter()
                .find(|(l, _)| l.id() == label.id())
                .map(|(_, v)| v.clone())?
        }
        Record(fields) => {
            // Mirror `Fields::from_vec`: label-sort, last duplicate wins.
            let mut entries: Vec<(Symbol, PlainValue)> = Vec::with_capacity(fields.len());
            for (l, fe) in fields {
                entries.push((*l, plain_eval(fe, env)?));
            }
            entries.sort_by_key(|(l, _)| *l);
            let mut out: Vec<(Symbol, PlainValue)> = Vec::with_capacity(entries.len());
            for (l, v) in entries {
                match out.last_mut() {
                    Some((pl, pv)) if pl.id() == l.id() => *pv = v,
                    _ => out.push((l, v)),
                }
            }
            PlainValue::Record(out.into())
        }
        Set(items) => {
            // Mirror `MSet::from_iter`: sort + dedup by the total order.
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(plain_eval(item, env)?);
            }
            out.sort_by(plain_cmp);
            out.dedup_by(|a, b| plain_eq(a, b));
            PlainValue::Set(out.into())
        }
        If {
            cond,
            then_branch,
            else_branch,
        } => match plain_eval(cond, env)? {
            PlainValue::Bool(true) => plain_eval(then_branch, env)?,
            PlainValue::Bool(false) => plain_eval(else_branch, env)?,
            _ => return None,
        },
        Union { left, right } => {
            let (PlainValue::Set(a), PlainValue::Set(b)) =
                (plain_eval(left, env)?, plain_eval(right, env)?)
            else {
                return None;
            };
            PlainValue::Set(merge_union(&a, &b))
        }
        // `andalso`/`orelse` in expression position short-circuit,
        // exactly like the interpreter (the right side is returned
        // unchecked when reached — its value is whatever it is).
        Binop {
            op: BinOp::Andalso,
            left,
            right,
        } => match plain_eval(left, env)? {
            PlainValue::Bool(false) => PlainValue::Bool(false),
            PlainValue::Bool(true) => plain_eval(right, env)?,
            _ => return None,
        },
        Binop {
            op: BinOp::Orelse,
            left,
            right,
        } => match plain_eval(left, env)? {
            PlainValue::Bool(true) => PlainValue::Bool(true),
            PlainValue::Bool(false) => plain_eval(right, env)?,
            _ => return None,
        },
        Binop { op, left, right } => {
            let l = plain_eval(left, env)?;
            let r = plain_eval(right, env)?;
            plain_binop(*op, &l, &r)?
        }
        Unop { op, expr } => match (op, plain_eval(expr, env)?) {
            // `-n` (not wrapping_neg) to mirror the interpreter exactly,
            // including its debug-build overflow behavior on i64::MIN.
            (UnOp::Neg, PlainValue::Int(n)) => PlainValue::Int(-n),
            (UnOp::Neg, PlainValue::Real(r)) => PlainValue::Real(-r),
            (UnOp::Not, PlainValue::Bool(b)) => PlainValue::Bool(!b),
            _ => return None,
        },
        // `con`, applications, folds, binders, references, …: not
        // mirrored (see `par_evaluable`).
        _ => return None,
    })
}

/// Merge union of two canonical slices — mirror of `MSet::union`.
fn merge_union(a: &[PlainValue], b: &[PlainValue]) -> std::sync::Arc<[PlainValue]> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match plain_cmp(&a[i], &b[j]) {
            Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            Ordering::Greater => {
                out.push(b[j].clone());
                j += 1;
            }
            Ordering::Equal => {
                out.push(a[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out.into()
}

/// The exact mirror of the interpreter's `apply_binop` on plain
/// operands (minus the short-circuit operators, which never reach here
/// from `plain_eval`, and div/mod, which `par_evaluable` excludes).
/// `None` wherever `apply_binop` would error. Also the columnar scan
/// lane's per-column comparator (`physical::ColPred`).
pub(crate) fn plain_binop(op: BinOp, l: &PlainValue, r: &PlainValue) -> Option<PlainValue> {
    use BinOp::*;
    use PlainValue::*;
    Some(match (op, l, r) {
        (Add, Int(a), Int(b)) => Int(a.wrapping_add(*b)),
        (Sub, Int(a), Int(b)) => Int(a.wrapping_sub(*b)),
        (Mul, Int(a), Int(b)) => Int(a.wrapping_mul(*b)),
        (Add, Real(a), Real(b)) => Real(a + b),
        (Sub, Real(a), Real(b)) => Real(a - b),
        (Mul, Real(a), Real(b)) => Real(a * b),
        (RealDiv, Real(a), Real(b)) => Real(a / b),
        (Concat, Str(a), Str(b)) => Str(format!("{a}{b}").into()),
        (Eq, a, b) => Bool(plain_eq(a, b)),
        (Ne, a, b) => Bool(!plain_eq(a, b)),
        (Lt, Int(a), Int(b)) => Bool(a < b),
        (Gt, Int(a), Int(b)) => Bool(a > b),
        (Le, Int(a), Int(b)) => Bool(a <= b),
        (Ge, Int(a), Int(b)) => Bool(a >= b),
        (Lt, Real(a), Real(b)) => Bool(a < b),
        (Gt, Real(a), Real(b)) => Bool(a > b),
        (Le, Real(a), Real(b)) => Bool(a <= b),
        (Ge, Real(a), Real(b)) => Bool(a >= b),
        (Lt, Str(a), Str(b)) => Bool(a < b),
        (Gt, Str(a), Str(b)) => Bool(a > b),
        (Andalso, Bool(a), Bool(b)) => Bool(*a && *b),
        (Orelse, Bool(a), Bool(b)) => Bool(*a || *b),
        _ => return None,
    })
}

// --- the Rc-lane safe evaluator --------------------------------------------

/// Bindings for [`safe_eval`]: same shape as [`PlainBindings`], over
/// `Rc`-lane values (which never leave the session thread).
#[derive(Clone, Copy)]
pub struct ValueBindings<'a> {
    pub head: Option<(Symbol, &'a Value)>,
    pub rest: &'a [(Symbol, Value)],
}

impl<'a> ValueBindings<'a> {
    fn lookup(&self, name: Symbol) -> Option<&'a Value> {
        if let Some((n, v)) = self.head {
            if n.id() == name.id() {
                return Some(v);
            }
        }
        self.rest
            .iter()
            .rev()
            .find(|(n, _)| n.id() == name.id())
            .map(|(_, v)| v)
    }
}

/// Evaluate a planner-safe, binder-closed expression on `Rc`-lane
/// values *without* the interpreter: no environment allocation, no
/// depth/stack accounting, direct dispatch. Same decline contract as
/// [`plain_eval`] (`None` → caller takes the interpreter path, which
/// reproduces the exact sequential behavior including errors), and the
/// same semantics mirror: `Fields::from_vec` records, canonical sets,
/// wrapping integer arithmetic, short-circuit `andalso`/`orelse`.
///
/// This is what makes extraction cheap enough to win: keying a build
/// row costs a field scan and an `Rc` bump instead of an `EnvNode`
/// allocation plus a full interpreter dispatch per key.
pub fn safe_eval(e: &Expr, env: &ValueBindings<'_>) -> Option<Value> {
    use ExprKind::*;
    Some(match &e.kind {
        Unit => Value::Unit,
        Int(n) => Value::Int(*n),
        Real(r) => Value::Real(*r),
        Str(s) => Value::str(s.as_str()),
        Bool(b) => Value::Bool(*b),
        Var(x) => env.lookup(*x)?.clone(),
        Field { expr, label } => {
            let Value::Record(fs) = safe_eval(expr, env)? else {
                return None;
            };
            fs.get(label).cloned()?
        }
        Record(fields) => {
            let mut entries = Vec::with_capacity(fields.len());
            for (l, fe) in fields {
                entries.push((*l, safe_eval(fe, env)?));
            }
            Value::Record(Fields::from_vec(entries))
        }
        Set(items) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(safe_eval(item, env)?);
            }
            Value::Set(MSet::from_iter(out))
        }
        If {
            cond,
            then_branch,
            else_branch,
        } => match safe_eval(cond, env)? {
            Value::Bool(true) => safe_eval(then_branch, env)?,
            Value::Bool(false) => safe_eval(else_branch, env)?,
            _ => return None,
        },
        Union { left, right } => {
            let (Value::Set(a), Value::Set(b)) = (safe_eval(left, env)?, safe_eval(right, env)?)
            else {
                return None;
            };
            Value::Set(a.union(&b))
        }
        Binop {
            op: BinOp::Andalso,
            left,
            right,
        } => match safe_eval(left, env)? {
            Value::Bool(false) => Value::Bool(false),
            Value::Bool(true) => safe_eval(right, env)?,
            _ => return None,
        },
        Binop {
            op: BinOp::Orelse,
            left,
            right,
        } => match safe_eval(left, env)? {
            Value::Bool(true) => Value::Bool(true),
            Value::Bool(false) => safe_eval(right, env)?,
            _ => return None,
        },
        Binop { op, left, right } => {
            let l = safe_eval(left, env)?;
            let r = safe_eval(right, env)?;
            safe_binop(*op, &l, &r)?
        }
        Unop { op, expr } => match (op, safe_eval(expr, env)?) {
            (UnOp::Neg, Value::Int(n)) => Value::Int(-n),
            (UnOp::Neg, Value::Real(r)) => Value::Real(-r),
            (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
            _ => return None,
        },
        _ => return None,
    })
}

/// Mirror of the interpreter's `apply_binop` on the class
/// [`par_evaluable`] admits; `None` wherever it would error.
fn safe_binop(op: BinOp, l: &Value, r: &Value) -> Option<Value> {
    use BinOp::*;
    Some(match (op, l, r) {
        (Add, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
        (Sub, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(*b)),
        (Mul, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(*b)),
        (Add, Value::Real(a), Value::Real(b)) => Value::Real(a + b),
        (Sub, Value::Real(a), Value::Real(b)) => Value::Real(a - b),
        (Mul, Value::Real(a), Value::Real(b)) => Value::Real(a * b),
        (RealDiv, Value::Real(a), Value::Real(b)) => Value::Real(a / b),
        (Concat, Value::Str(a), Value::Str(b)) => Value::str(format!("{a}{b}")),
        (Eq, a, b) => Value::Bool(value_eq(a, b)),
        (Ne, a, b) => Value::Bool(!value_eq(a, b)),
        (Lt, Value::Int(a), Value::Int(b)) => Value::Bool(a < b),
        (Gt, Value::Int(a), Value::Int(b)) => Value::Bool(a > b),
        (Le, Value::Int(a), Value::Int(b)) => Value::Bool(a <= b),
        (Ge, Value::Int(a), Value::Int(b)) => Value::Bool(a >= b),
        (Lt, Value::Real(a), Value::Real(b)) => Value::Bool(a < b),
        (Gt, Value::Real(a), Value::Real(b)) => Value::Bool(a > b),
        (Le, Value::Real(a), Value::Real(b)) => Value::Bool(a <= b),
        (Ge, Value::Real(a), Value::Real(b)) => Value::Bool(a >= b),
        (Lt, Value::Str(a), Value::Str(b)) => Value::Bool(a < b),
        (Gt, Value::Str(a), Value::Str(b)) => Value::Bool(a > b),
        (Andalso, Value::Bool(a), Value::Bool(b)) => Value::Bool(*a && *b),
        (Orelse, Value::Bool(a), Value::Bool(b)) => Value::Bool(*a || *b),
        _ => return None,
    })
}

// --- the partition join ----------------------------------------------------

fn key_hash(key: &PlainKey) -> u64 {
    let mut h = DefaultHasher::new();
    std::hash::Hash::hash(key, &mut h);
    h.finish()
}

/// Is `e` a bare binder/field chain (`x`, `x.K`, `x.A.B`)? Such keys —
/// the common equi-join shape — resolve by reference, skipping the
/// owned `safe_eval` clone per row.
fn is_path(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Var(_) => true,
        ExprKind::Field { expr, .. } => is_path(expr),
        _ => false,
    }
}

/// Resolve a binder/field chain to a borrowed value (`None` where the
/// interpreter would error: unbound, non-record, missing field).
fn resolve_path<'v>(e: &Expr, env: &ValueBindings<'v>) -> Option<&'v Value> {
    match &e.kind {
        ExprKind::Var(x) => env.lookup(*x),
        ExprKind::Field { expr, label } => match resolve_path(expr, env)? {
            Value::Record(fs) => fs.get(label),
            _ => None,
        },
        _ => None,
    }
}

fn extract_one(key: &Expr, env: &ValueBindings<'_>) -> Option<PlainValue> {
    if is_path(key) {
        to_plain(resolve_path(key, env)?)
    } else {
        to_plain(&safe_eval(key, env)?)
    }
}

/// Evaluate a key closure on the `Rc` lane and extract the tuple to
/// plain data ([`PlainKey`] — the index store's plain group key, so
/// extracted probe keys look up cached `PlainIndex` groups directly).
/// `None` when the safe evaluator declines or the key value is
/// identity-bearing (a `ref`/`dynamic` key cannot cross the lane — its
/// equality is identity, which plain data cannot represent).
pub fn extract_key(keys: &[&Expr], env: &ValueBindings<'_>) -> Option<PlainKey> {
    if let [single] = keys {
        return extract_one(single, env).map(PlainKey::One);
    }
    keys.iter()
        .map(|k| extract_one(k, env))
        .collect::<Option<Vec<_>>>()
        .map(PlainKey::Tuple)
}

/// One keyed row: precomputed hash, extracted key, original row index.
pub struct Keyed {
    hash: u64,
    key: PlainKey,
    idx: u32,
}

impl Keyed {
    pub fn new(key: PlainKey, idx: usize) -> Keyed {
        Keyed {
            hash: key_hash(&key),
            key,
            idx: idx as u32,
        }
    }
}

/// Hash-table key wrapper reusing the precomputed hash (the partition
/// tables never rehash key structure).
struct HashedKey<'a> {
    hash: u64,
    key: &'a PlainKey,
}

impl std::hash::Hash for HashedKey<'_> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}
impl PartialEq for HashedKey<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.key == other.key
    }
}
impl Eq for HashedKey<'_> {}

/// Pass-through hasher for the partition tables: the key already
/// carries a high-quality SipHash ([`key_hash`]), so re-hashing the
/// 8-byte digest per insert/probe would be pure overhead.
#[derive(Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("partition keys hash via write_u64 only");
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type IdBuild = std::hash::BuildHasherDefault<IdHasher>;
type PartitionTable<'a> = HashMap<HashedKey<'a>, Vec<u32>, IdBuild>;

/// Which partition owns a key. Uses the **high** hash bits so partition
/// selection and the table's bucket selection (hashbrown reads the low
/// bits of the pass-through [`IdHasher`] digest) draw on independent
/// bits — `hash % nt` would pin the low bits of every key in a
/// partition, leaving only 1/nt of each table's buckets addressable.
fn partition_of(hash: u64, nt: usize) -> usize {
    ((hash >> 32) as usize) % nt
}

/// Every this many rows a worker chunk loop polls the query guard, so
/// cancellation and deadlines reach into a running fan-out instead of
/// waiting for it to drain. A power of two so the gate is a mask.
pub(crate) const CHUNK_TICK_MASK: usize = 1023;

/// Context a parallel worker carries across the thread boundary: the
/// coordinator's query guard (shared, `Sync`) and its effective fault
/// config (thread locals do not inherit, so the coordinator captures
/// both before fanning out). [`WorkerCx::enter`] runs the worker-side
/// fail point; [`WorkerCx::tripped`] is the chunk loop's poll — a
/// tripped guard makes workers bail with a **truncated** result, which
/// is safe because the coordinator re-checks the (sticky) guard after
/// every fan-out and surfaces the trip as an error before any result is
/// used.
#[derive(Clone, Default)]
pub(crate) struct WorkerCx {
    guard: Option<Arc<QueryGuard>>,
    faults: Option<FaultConfig>,
}

impl WorkerCx {
    /// Capture the coordinator's context (call before the fan-out).
    pub(crate) fn capture() -> WorkerCx {
        WorkerCx {
            guard: governor::current(),
            faults: faults::faults_active().then(faults::fault_config),
        }
    }

    /// Worker-side entry: install the fault config on this thread and
    /// run the injected-panic fail point. (Panics cross the scope join
    /// and are trapped by the coordinator's `catch_unwind` in
    /// `physical.rs` — the `par_hom` catch-and-report discipline.)
    pub(crate) fn enter(&self) {
        if let Some(cfg) = self.faults {
            faults::set_fault_config(Some(cfg));
        }
        faults::maybe_worker_panic();
    }

    /// Chunk-loop poll: should this worker stop early?
    pub(crate) fn tripped(&self) -> bool {
        self.guard.as_ref().is_some_and(|g| g.check().is_some())
    }
}

/// Build one partition's table from its bucket (index order, so group
/// index lists ascend = build-source canonical order).
fn build_partition_table<'k>(bucket: &[&'k Keyed], cx: &WorkerCx) -> PartitionTable<'k> {
    let mut table = PartitionTable::with_capacity_and_hasher(bucket.len(), IdBuild::default());
    for (i, k) in bucket.iter().enumerate() {
        if i & CHUNK_TICK_MASK == 0 && cx.tripped() {
            break;
        }
        table
            .entry(HashedKey {
                hash: k.hash,
                key: &k.key,
            })
            .or_default()
            .push(k.idx);
    }
    table
}

/// Probe one contiguous chunk against the partition tables.
fn probe_partition_chunk(
    chunk: &[Keyed],
    tables: &[PartitionTable<'_>],
    cx: &WorkerCx,
) -> Vec<Vec<u32>> {
    let nt = tables.len();
    let mut out: Vec<Vec<u32>> = Vec::with_capacity(chunk.len());
    for (i, k) in chunk.iter().enumerate() {
        if i & CHUNK_TICK_MASK == 0 && cx.tripped() {
            break;
        }
        let table = &tables[partition_of(k.hash, nt)];
        out.push(
            table
                .get(&HashedKey {
                    hash: k.hash,
                    key: &k.key,
                })
                .cloned()
                .unwrap_or_default(),
        );
    }
    out
}

/// Partition-parallel hash join over pre-keyed sides. Returns, per
/// probe row, the indices of matching build rows in build-source order.
/// Infallible: both sides were keyed (and every failure mode surfaced)
/// before the fan-out, so the workers are pure data plumbing —
/// partition, group, look up.
///
/// Both phases run on the **morsel scheduler**
/// ([`machiavelli_exec::run_tasks`]): phase 1 is one task per hash
/// partition, phase 2 cuts the probe side into fixed-size morsels
/// pulled via work stealing, so a skewed probe (one range where every
/// key matches a huge group, the rest cheap) no longer serializes on
/// the unluckiest fixed chunk. A denied worker spawn (OS or injected
/// fault) leaves its seeded tasks to the surviving workers' stealers —
/// down to the coordinator draining everything inline.
///
/// Two caveats the caller (`physical.rs`) owns: a worker panic —
/// injected or real — resumes on the coordinator and must be trapped
/// with `catch_unwind`; and under a tripped [`QueryGuard`] workers bail
/// early with a **truncated** result, so the caller must re-check the
/// sticky guard after the call and error instead of using it.
pub fn par_partition_join(build: &[Keyed], probe: &[Keyed], n_threads: usize) -> Vec<Vec<u32>> {
    let nt = n_threads.max(1);
    let cx = WorkerCx::capture();
    let cx = &cx;

    // Pre-bucket the build side by owning partition in one sequential
    // pass (a branch and a pointer push per row), so each worker
    // consumes exactly its rows instead of all of them re-scanning the
    // whole side. Buckets preserve index order, so group index lists
    // ascend (build-source canonical order, same as the sequential
    // build).
    let mut buckets: Vec<Vec<&Keyed>> = (0..nt)
        .map(|_| Vec::with_capacity(build.len() / nt + 1))
        .collect();
    for k in build {
        buckets[partition_of(k.hash, nt)].push(k);
    }

    // Phase 1: build the partition tables, one task per partition
    // (results come back in task = partition order).
    let (tables, _) = machiavelli_exec::run_tasks(
        nt,
        buckets,
        || cx.enter(),
        |_, bucket: Vec<&Keyed>| build_partition_table(&bucket, cx),
    );

    // Phase 2: probe by morsel, any worker reading whichever partition
    // owns each row's hash. Morsel results concatenate in range order,
    // so the match list stays in probe order.
    let tables = &tables;
    let (probed, _) = machiavelli_exec::run_tasks(
        nt,
        machiavelli_exec::morsels(probe.len()),
        || cx.enter(),
        |_, m: machiavelli_exec::Morsel| probe_partition_chunk(&probe[m.start..m.end], tables, cx),
    );

    let mut matches = Vec::with_capacity(probe.len());
    for chunk in probed {
        matches.extend(chunk);
    }
    matches
}

// --- the cached-index parallel probe ----------------------------------------

/// Probe one contiguous chunk of extracted keys against a shared plain
/// index.
fn probe_cached_chunk(index: &PlainIndex, chunk: &[PlainKey], cx: &WorkerCx) -> Vec<Vec<u32>> {
    let mut out: Vec<Vec<u32>> = Vec::with_capacity(chunk.len());
    for (i, k) in chunk.iter().enumerate() {
        if i & CHUNK_TICK_MASK == 0 && cx.tripped() {
            break;
        }
        out.push(index.get(k).to_vec());
    }
    out
}

/// Partition-parallel probe over a **cached** plain index: the build
/// phase already happened (possibly in an earlier evaluation — that is
/// the whole point), so the fan-out is probe-only. The index is
/// `Send + Sync` ([`PlainIndex`]); workers share it by reference and
/// probe **morsels** of the pre-extracted probe keys pulled via work
/// stealing ([`machiavelli_exec::run_tasks`]), returning per probe row
/// the **indices** of matching build rows in build-source order (group
/// lists ascend by construction). Morsel results concatenate in range
/// order, so the caller's re-binding sequence is identical to the
/// sequential cached probe. Infallible for the same reason as
/// [`par_partition_join`]: every failure mode (a key that declines
/// extraction) surfaced before the fan-out, and denied worker spawns
/// leave their tasks to the survivors' stealers. The same caveats
/// apply — worker panics resume on the coordinator (trap with
/// `catch_unwind`), and a tripped guard truncates (re-check after the
/// call).
pub fn par_probe_cached(index: &PlainIndex, probe: &[PlainKey], n_threads: usize) -> Vec<Vec<u32>> {
    let nt = n_threads.max(1);
    let cx = WorkerCx::capture();
    let cx = &cx;
    let (probed, _) = machiavelli_exec::run_tasks(
        nt,
        machiavelli_exec::morsels(probe.len()),
        || cx.enter(),
        |_, m: machiavelli_exec::Morsel| probe_cached_chunk(index, &probe[m.start..m.end], cx),
    );

    let mut matches = Vec::with_capacity(probe.len());
    for chunk in probed {
        matches.extend(chunk);
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use machiavelli_syntax::parse_expr;
    use machiavelli_value::plain::to_plain;
    use machiavelli_value::Value;

    fn plain_record(pairs: &[(&str, i64)]) -> PlainValue {
        to_plain(&Value::record(
            pairs
                .iter()
                .map(|(l, n)| (Symbol::intern(l), Value::Int(*n))),
        ))
        .unwrap()
    }

    fn eval_str(src: &str, env: &PlainBindings<'_>) -> Option<PlainValue> {
        plain_eval(&parse_expr(src).unwrap(), env)
    }

    #[test]
    fn mini_eval_matches_interpreter_semantics() {
        let row = plain_record(&[("K", 7), ("A", -3)]);
        let env = PlainBindings {
            head: Some((Symbol::intern("x"), &row)),
            rest: &[],
        };
        assert_eq!(eval_str("x.K + 1", &env), Some(PlainValue::Int(8)));
        assert_eq!(eval_str("x.K > x.A", &env), Some(PlainValue::Bool(true)));
        assert_eq!(
            eval_str("if x.A < 0 then 0 - x.A else x.A", &env),
            Some(PlainValue::Int(3))
        );
        assert_eq!(
            eval_str("x.K = 7 andalso not(x.A = 0)", &env),
            Some(PlainValue::Bool(true))
        );
        // Short-circuit: the ill-shaped right side is never reached.
        assert_eq!(
            eval_str("false andalso (x.Missing = 1)", &env),
            Some(PlainValue::Bool(false))
        );
        // Unsupported constructs decline rather than guess.
        assert_eq!(eval_str("x.Missing", &env), None);
        assert_eq!(eval_str("f(x.K)", &env), None);
        assert_eq!(eval_str("1 div x.K = 0", &env), None);
    }

    #[test]
    fn mini_eval_sets_and_records_are_canonical() {
        let env = PlainBindings {
            head: None,
            rest: &[],
        };
        let s = eval_str("union({3, 1}, {2, 3})", &env).unwrap();
        let PlainValue::Set(items) = s else { panic!() };
        let ints: Vec<i64> = items
            .iter()
            .map(|p| match p {
                PlainValue::Int(n) => *n,
                _ => panic!(),
            })
            .collect();
        assert_eq!(ints, vec![1, 2, 3]);
        let r = eval_str("[B=2, A=1]", &env).unwrap();
        let PlainValue::Record(entries) = r else {
            panic!()
        };
        assert_eq!(entries[0].0.as_str(), "A");
    }

    #[test]
    fn par_evaluable_classifies() {
        let x = [Symbol::intern("x")];
        for src in ["x.K", "x.K + 1", "if x.A > 0 then x.B else 0", "{x.K}"] {
            assert!(par_evaluable(&parse_expr(src).unwrap(), &x), "{src}");
        }
        for src in ["y.K", "f(x)", "x.K div 2", "con(x, [A=1])", "!x"] {
            assert!(!par_evaluable(&parse_expr(src).unwrap(), &x), "{src}");
        }
    }

    #[test]
    fn safe_eval_mirrors_interpreter_semantics() {
        let row = Value::record([
            (Symbol::intern("K"), Value::Int(7)),
            (Symbol::intern("A"), Value::Int(-3)),
        ]);
        let env = ValueBindings {
            head: Some((Symbol::intern("x"), &row)),
            rest: &[],
        };
        let ev = |src: &str| safe_eval(&parse_expr(src).unwrap(), &env);
        assert_eq!(ev("x.K + 1"), Some(Value::Int(8)));
        assert_eq!(
            ev("(x.K, x.A)"),
            Some(Value::tuple([Value::Int(7), Value::Int(-3)]))
        );
        assert_eq!(ev("if x.A < 0 then 0 - x.A else x.A"), Some(Value::Int(3)));
        assert_eq!(
            ev("union({x.K}, {1})"),
            Some(Value::set([Value::Int(1), Value::Int(7)]))
        );
        assert_eq!(
            ev("false andalso (x.Missing = 1)"),
            Some(Value::Bool(false))
        );
        assert_eq!(ev("x.Missing"), None);
        assert_eq!(ev("f(x.K)"), None);
        assert_eq!(ev("x.K div 2"), None);
    }

    /// Key a side of ints by `<var>.K` (the production extraction path).
    fn keyed_by_k(rows: &[Value], var: &str) -> Vec<Keyed> {
        let var = Symbol::intern(var);
        let key = parse_expr(&format!("{var}.K")).unwrap();
        rows.iter()
            .enumerate()
            .map(|(i, row)| {
                let env = ValueBindings {
                    head: Some((var, row)),
                    rest: &[],
                };
                Keyed::new(extract_key(&[&key], &env).unwrap(), i)
            })
            .collect()
    }

    fn row_k(k: i64, a: i64) -> Value {
        Value::record([
            (Symbol::intern("K"), Value::Int(k)),
            (Symbol::intern("A"), Value::Int(a)),
        ])
    }

    #[test]
    fn partition_join_matches_expected_groups() {
        // build rows: K = 1, 2, 2, 9 — probe for K = 2, 5, 1.
        let build: Vec<Value> = [1, 2, 2, 9]
            .iter()
            .enumerate()
            .map(|(i, &k)| row_k(k, i as i64))
            .collect();
        let probe: Vec<Value> = [2, 5, 1].iter().map(|&k| row_k(k, 0)).collect();
        let build_keyed = keyed_by_k(&build, "x");
        let probe_keyed = keyed_by_k(&probe, "y");
        for threads in [1, 2, 4, 8] {
            let m = par_partition_join(&build_keyed, &probe_keyed, threads);
            assert_eq!(m, vec![vec![1, 2], vec![], vec![0]], "threads={threads}");
        }
    }

    #[test]
    fn identity_bearing_keys_do_not_extract() {
        use machiavelli_value::value::RefValue;
        let row = Value::record([(
            Symbol::intern("K"),
            Value::Ref(RefValue::new(Value::Int(1))),
        )]);
        let env = ValueBindings {
            head: Some((Symbol::intern("x"), &row)),
            rest: &[],
        };
        let key = parse_expr("x.K").unwrap();
        assert!(extract_key(&[&key], &env).is_none());
    }

    #[test]
    fn empty_sides_are_fine() {
        assert_eq!(par_partition_join(&[], &[], 4), Vec::<Vec<u32>>::new());
        let probe = keyed_by_k(&[row_k(1, 0)], "y");
        assert_eq!(par_partition_join(&[], &probe, 4), vec![Vec::<u32>::new()]);
    }

    #[test]
    fn cached_probe_matches_sequential_lookup() {
        // Index: rows with K = 1, 2, 2, 9 grouped by K.
        let rows: Vec<Value> = [1, 2, 2, 9]
            .iter()
            .enumerate()
            .map(|(i, &k)| row_k(k, i as i64))
            .collect();
        let mut groups: Vec<(PlainKey, Vec<u32>)> = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let Value::Record(fs) = row else { panic!() };
            let k = PlainKey::One(to_plain(fs.get("K").unwrap()).unwrap());
            match groups.iter_mut().find(|(g, _)| *g == k) {
                Some((_, idxs)) => idxs.push(i as u32),
                None => groups.push((k, vec![i as u32])),
            }
        }
        let index = PlainIndex::from_groups(
            rows.iter()
                .map(|r| to_plain(r).unwrap())
                .collect::<Vec<_>>()
                .into(),
            groups,
        );
        // Probe keys extracted through the production path.
        let key = parse_expr("y.K").unwrap();
        let probe: Vec<PlainKey> = [2i64, 5, 1]
            .iter()
            .map(|&k| {
                let row = row_k(k, 0);
                let env = ValueBindings {
                    head: Some((Symbol::intern("y"), &row)),
                    rest: &[],
                };
                extract_key(&[&key], &env).unwrap()
            })
            .collect();
        for threads in [1, 2, 4, 8] {
            let m = par_probe_cached(&index, &probe, threads);
            assert_eq!(m, vec![vec![1, 2], vec![], vec![0]], "threads={threads}");
        }
        assert_eq!(par_probe_cached(&index, &[], 4), Vec::<Vec<u32>>::new());
    }

    /// Run `f` with a fault config installed on this thread (workers
    /// inherit it through [`WorkerCx::capture`]), restoring after.
    fn with_faults<T>(cfg: FaultConfig, f: impl FnOnce() -> T) -> T {
        let prev = faults::set_fault_config(Some(cfg));
        let out = f();
        faults::set_fault_config(prev);
        out
    }

    #[test]
    fn injected_worker_panic_resumes_on_the_coordinator() {
        // A panic on a fan-out worker must reach the caller as a
        // catchable unwind with the original payload — the same
        // catch-and-report contract `par_hom` documents — so the
        // driver in `physical.rs` can turn it into a structured
        // `ExecError::WorkerPanic` instead of aborting the process.
        let build = keyed_by_k(&[row_k(1, 0), row_k(2, 1)], "x");
        let probe = keyed_by_k(&[row_k(2, 0)], "y");
        let cfg = FaultConfig {
            worker_panic_ppm: 1_000_000,
            seed: 11,
            ..FaultConfig::off()
        };
        for caller in ["partition_join", "probe_cached"] {
            let caught = with_faults(cfg, || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match caller {
                    "partition_join" => par_partition_join(&build, &probe, 4),
                    _ => {
                        let rows: Arc<[PlainValue]> = vec![PlainValue::Int(1)].into();
                        let index = PlainIndex::from_groups(
                            rows,
                            vec![(PlainKey::One(PlainValue::Int(1)), vec![0])],
                        );
                        par_probe_cached(&index, &[PlainKey::One(PlainValue::Int(1))], 4)
                    }
                }))
            });
            let payload = caught.expect_err("worker panic must propagate");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                msg.contains(machiavelli_value::faults::INJECTED_PANIC_PREFIX),
                "{caller}: original payload survives: {msg:?}"
            );
        }
    }

    #[test]
    fn injected_spawn_denial_degrades_to_inline_with_identical_results() {
        let build: Vec<Value> = [1, 2, 2, 9]
            .iter()
            .enumerate()
            .map(|(i, &k)| row_k(k, i as i64))
            .collect();
        let probe: Vec<Value> = [2, 5, 1].iter().map(|&k| row_k(k, 0)).collect();
        let build_keyed = keyed_by_k(&build, "x");
        let probe_keyed = keyed_by_k(&probe, "y");
        let cfg = FaultConfig {
            spawn_fail_ppm: 1_000_000,
            seed: 5,
            ..FaultConfig::off()
        };
        machiavelli_value::faults::reset_injected_faults();
        let m = with_faults(cfg, || par_partition_join(&build_keyed, &probe_keyed, 4));
        assert_eq!(
            m,
            vec![vec![1, 2], vec![], vec![0]],
            "inline fallback agrees"
        );
        assert!(
            machiavelli_value::faults::injected_faults().spawn_failures > 0,
            "the denial path actually ran"
        );
    }
}
