//! Deeper inference scenarios: interactions between row polymorphism,
//! conditional constraints, let-polymorphism and the value restriction —
//! the corners a downstream user of the type system will hit.

use machiavelli::Session;

fn type_of(src: &str) -> String {
    let mut s = Session::new();
    let outs = s.run(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    outs.last().unwrap().scheme.show()
}

fn fails(src: &str) -> String {
    let mut s = Session::new();
    s.run(src).unwrap_err().to_string()
}

#[test]
fn field_polymorphism_composes() {
    // Selecting two fields merges the kinds into one row.
    assert_eq!(
        type_of("fun both(x) = (x.A, x.B);"),
        "[('a) A:'b,B:'c] -> 'b * 'c"
    );
    // Using the same field twice does not duplicate it.
    assert_eq!(
        type_of("fun twiceA(x) = (x.A, x.A);"),
        "[('a) A:'b] -> 'b * 'b"
    );
}

#[test]
fn modify_chains_preserve_the_row() {
    assert_eq!(
        type_of("fun bump2(x) = modify(modify(x, A, x.A + 1), B, x.B + 1);"),
        "[('a) A:int,B:int] -> [('a) A:int,B:int]"
    );
}

#[test]
fn records_of_functions_are_not_description_types() {
    // A record containing a function is a fine value…
    assert_eq!(
        type_of("val handlers = [OnClick = (fn(x) => x + 1)];"),
        "[OnClick:int -> int]"
    );
    // …but cannot enter sets or be compared.
    assert!(fails("{[F = (fn(x) => x)]};").contains("not a description type"));
    assert!(fails("[F = (fn(x) => x)] = [F = (fn(x) => x)];").contains("not a description type"));
    // Behind a ref it becomes a description again (§3.1's definition).
    assert_eq!(type_of("{ref((fn(x) => x + 1))};"), "{ref(int -> int)}");
}

#[test]
fn select_requires_description_results() {
    assert!(
        fails("select (fn(y) => y) where x <- {1} with true;").contains("not a description type")
    );
}

#[test]
fn conditional_schemes_nest() {
    // join under a lambda under a join: two levels of conditions.
    let shown = type_of("fun f(a, b, c, d) = join(join(a, b), join(c, d));");
    assert_eq!(
        shown,
        "(\"a * \"b * \"c * \"d) -> \"e where { \"e = \"f lub \"g, \"g = \"c lub \"d, \"f = \"a lub \"b }"
    );
}

#[test]
fn conditions_resolve_stepwise_across_phrases() {
    let mut s = Session::new();
    s.run("fun pairjoin(x, y) = join(x, y);").unwrap();
    // First application grounds one instance; the scheme stays general.
    let a = s.eval_one("pairjoin([A=1], [B=2]);").unwrap();
    assert_eq!(a.scheme.show(), "[A:int,B:int]");
    let b = s.eval_one("pairjoin([X=\"s\"], [Y=true]);").unwrap();
    assert_eq!(b.scheme.show(), "[X:string,Y:bool]");
}

#[test]
fn inconsistent_instantiation_of_a_conditional_scheme_errors() {
    let mut s = Session::new();
    s.run("fun pairjoin(x, y) = join(x, y);").unwrap();
    let err = s.run("pairjoin([A=1], [A=\"x\"]);").unwrap_err();
    assert!(err.to_string().contains("no least upper bound"), "{err}");
    // The scheme itself is unharmed by the failed use.
    assert!(s.run("pairjoin([A=1], [B=2]);").is_ok());
}

#[test]
fn join_on_sets_of_nested_records() {
    let mut s = Session::new();
    let out = s
        .eval_one(
            r#"join({[Name=[First="Joe"], Age=21]},
                    {[Name=[Last="Doe"]], [Name=[Last="Poe"]]});"#,
        )
        .unwrap();
    assert_eq!(
        out.show(),
        r#"val it = {[Age=21, Name=[First="Joe", Last="Doe"]], [Age=21, Name=[First="Joe", Last="Poe"]]} : {[Age:int,Name:[First:string,Last:string]]}"#
    );
}

#[test]
fn value_restriction_applications_are_monomorphic() {
    // An application result does not generalize: using it at two types
    // fails on the second use.
    let mut s = Session::new();
    s.run("fun id(x) = x; val f = id(id);").unwrap();
    s.run("f(1);").unwrap();
    let err = s.run("f(\"s\");").unwrap_err();
    assert!(err.to_string().contains("mismatch"), "{err}");
}

#[test]
fn lambda_bound_variables_stay_monomorphic() {
    let err = fails("(fn(f) => (f(1), f(\"s\")))((fn(x) => x));");
    assert!(err.contains("mismatch"), "{err}");
}

#[test]
fn empty_set_interacts_with_everything() {
    assert_eq!(type_of("union({}, {1});"), "{int}");
    assert_eq!(type_of("join({}, {1});"), "{int}");
    assert_eq!(type_of("card({});"), "int");
    let mut s = Session::new();
    assert_eq!(
        s.eval_one("join({}, {1});").unwrap().show(),
        "val it = {} : {int}"
    );
    // Projecting the empty set is fine too.
    assert_eq!(
        s.eval_one("project({}, {[A: int]});").unwrap().show(),
        "val it = {} : {[A:int]}"
    );
}

#[test]
fn variants_inside_conditions() {
    // con over variant-containing records: statically conditional,
    // dynamically branch-sensitive.
    let mut s = Session::new();
    assert_eq!(
        s.eval_one("con([V=(A of 1)], [V=(A of 1)]);")
            .unwrap()
            .show(),
        "val it = true : bool"
    );
    assert_eq!(
        s.eval_one("con([V=(A of 1)], [V=(A of 2)]);")
            .unwrap()
            .show(),
        "val it = false : bool"
    );
    // Different branches of the same variant type are inconsistent values
    // but consistent *types*.
    assert_eq!(
        s.eval_one("con([V=(A of 1)], [V=(B of \"x\")]);")
            .unwrap()
            .show(),
        "val it = false : bool"
    );
}

#[test]
fn deep_row_composition_through_many_functions() {
    // Five layers of field-selecting functions compose into one row.
    let shown = type_of(
        "fun f1(x) = x.A;
         fun f2(x) = (f1(x), x.B);
         fun f3(x) = (f2(x), x.C);
         fun f4(x) = (f3(x), x.D);
         fun f4all(x) = f4(x);",
    );
    assert_eq!(shown, "[('a) A:'b,B:'c,C:'d,D:'e] -> (('b * 'c) * 'd) * 'e");
}

#[test]
fn projection_constraints_propagate_into_functions() {
    // project inside a function constrains the argument's row eagerly.
    let shown = type_of("fun nameOf(x) = project(x, [Name: string]);");
    assert_eq!(shown, "[(\"a) Name:string] -> [Name:string]");
    // And applying it to a record lacking Name fails statically.
    let err = fails(
        "fun nameOf(x) = project(x, [Name: string]);
         nameOf([Age=3]);",
    );
    assert!(err.contains("no field `Name`"), "{err}");
}

#[test]
fn case_arms_unify_result_types() {
    let err = fails("(case (A of 1) of A of x => 1, B of y => \"s\");");
    assert!(err.contains("mismatch"), "{err}");
}

#[test]
fn generalized_literals_are_reusable_at_many_types() {
    // A polymorphic record value (a literal) can be consumed by two
    // differently-shaped contexts thanks to generalization.
    let mut s = Session::new();
    s.run("val point = [X=0, Y=0, Tag=(Origin of ())];")
        .unwrap();
    s.run("fun getX(p) = p.X; fun getTag(p) = p.Tag as Origin;")
        .unwrap();
    assert_eq!(
        s.eval_one("getX(point);").unwrap().show(),
        "val it = 0 : int"
    );
    assert_eq!(
        s.eval_one("getTag(point);").unwrap().show(),
        "val it = () : unit"
    );
}
