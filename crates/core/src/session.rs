//! An interactive Machiavelli session: parse → type-infer → evaluate.
//!
//! [`Session`] reproduces the paper's top-level loop: each phrase is
//! statically checked (rejecting ill-typed programs before evaluation),
//! then evaluated, and the result is reported in the paper's
//! `>> val it = … : …` form.

use crate::error::SessionError;
use machiavelli_eval::{builtin_env, eval_expr, PRELUDE};
use machiavelli_syntax::ast::{Expr, ExprKind, Phrase, PhraseKind};
use machiavelli_syntax::parse_program;
use machiavelli_types::{Inferencer, Scheme, TypeEnv};
use machiavelli_value::{show_value, Env, Value};

/// The result of one top-level phrase.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The bound name (`it` for bare expressions).
    pub name: machiavelli_syntax::Symbol,
    /// The computed value.
    pub value: Value,
    /// The inferred (possibly conditional) type scheme.
    pub scheme: Scheme,
}

impl Outcome {
    /// Render in the paper's output format:
    /// `val Wealthy = fn : {[("a) Name:"b,Salary:int]} -> {"b}`.
    pub fn show(&self) -> String {
        format!(
            "val {} = {} : {}",
            self.name,
            show_value(&self.value),
            self.scheme.show()
        )
    }
}

/// Every statistics surface a session can see, snapshotted at once:
/// the index store, the parallel and columnar lanes, the process-wide
/// server/resilience counters and shared index tier, and the typed
/// decline taxonomy (`machiavelli-trace`). One struct so callers (and
/// the REPL's `:stats`) render all of it through one code path instead
/// of five.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStats {
    /// Cached-index store counters (session-scoped).
    pub store: machiavelli_store::StoreStats,
    /// Parallel-lane hit/fallback counters (session-scoped).
    pub par: machiavelli_value::tuning::ParStats,
    /// Columnar-lane counters (session-scoped).
    pub exec: machiavelli_value::tuning::ExecStats,
    /// Server/resilience counters (process-wide).
    pub server: machiavelli_value::governor::ServerCounters,
    /// Shared index tier counters (process-wide).
    pub shared: machiavelli_store::shared::SharedStats,
    /// The parallel lane's effective worker-thread count.
    pub par_threads: usize,
    /// Typed decline counts (session-scoped), one entry per
    /// [`machiavelli_trace::DeclineReason`] variant in declaration
    /// order, zeros included.
    pub declines: Vec<(machiavelli_trace::DeclineReason, u64)>,
    /// Durability counters (process-wide): WAL records/bytes appended,
    /// commits, checkpoints, recoveries, torn tails truncated.
    pub wal: machiavelli_value::WalCounters,
}

impl SessionStats {
    /// Render every section as the REPL's `:stats` shows it, one line
    /// per subsystem (no prompt decoration — the REPL prefixes `>> `).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let st = &self.store;
        let _ = writeln!(
            out,
            "index store: {} entries ({} plain / {} rc), {} rows cached",
            st.entries, st.plain_entries, st.rc_entries, st.cached_rows
        );
        let _ = writeln!(
            out,
            "hits {} / misses {} / builds {} / invalidated {} / cleared {} / evicted {}",
            st.hits, st.misses, st.builds, st.invalidated, st.cleared, st.evicted
        );
        let ps = &self.par;
        let _ = writeln!(
            out,
            "parallel ({} threads): joins {} / join fallbacks {} / \
             cached probes {} / probe fallbacks {} / \
             homs {} / hom fallbacks {}",
            self.par_threads,
            ps.par_joins,
            ps.par_join_fallbacks,
            ps.par_probes,
            ps.par_probe_fallbacks,
            ps.par_homs,
            ps.par_hom_fallbacks
        );
        let es = &self.exec;
        let _ = writeln!(
            out,
            "columnar: offloads {} / offload fallbacks {} / \
             snapshots {} built / {} adopted / \
             morsels {} executed / {} stolen",
            es.offloads,
            es.offload_fallbacks,
            es.snapshots_built,
            es.snapshots_adopted,
            es.morsels_executed,
            es.morsels_stolen
        );
        let sc = &self.server;
        let sh = &self.shared;
        let _ = writeln!(
            out,
            "server: sessions {} started / {} panicked / {} closed, \
             queries {} completed / {} shed / {} deadline / {} cancelled / {} row-budget, \
             shared tier {} publishes / {} adoptions / {} lock recoveries",
            sc.sessions_started,
            sc.sessions_panicked,
            sc.sessions_closed,
            sc.queries_completed,
            sc.queries_shed,
            sc.deadlines_hit,
            sc.queries_cancelled,
            sc.row_budgets_hit,
            sh.publishes,
            sh.adoptions,
            sh.lock_recoveries
        );
        let w = &self.wal;
        let _ = writeln!(
            out,
            "wal: {} records / {} bytes appended, {} commits / {} checkpoints / \
             {} recoveries / {} torn tails truncated",
            w.records_appended,
            w.bytes_logged,
            w.commits,
            w.checkpoints,
            w.recoveries,
            w.torn_tails_truncated
        );
        let nonzero: Vec<String> = self
            .declines
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(r, n)| format!("{r} {n}"))
            .collect();
        if nonzero.is_empty() {
            out.push_str("declines: none\n");
        } else {
            let _ = writeln!(out, "declines: {}", nonzero.join(" / "));
        }
        out
    }
}

/// A stateful interpreter session.
pub struct Session {
    inferencer: Inferencer,
    type_env: TypeEnv,
    env: Env,
}

impl Session {
    /// A session with the standard prelude (`map`, `filter`, `member`,
    /// `prod`, `Closure`, …) loaded.
    pub fn new() -> Session {
        Session::try_new().expect("the standard prelude must type-check and evaluate")
    }

    /// Like [`Session::new`], reporting a prelude failure instead of
    /// panicking — the constructor server-hosted sessions use, so a
    /// broken prelude (or a governor trip during prelude evaluation)
    /// surfaces as a structured error rather than aborting a worker.
    pub fn try_new() -> Result<Session, SessionError> {
        let mut s = Session::bare();
        s.run(PRELUDE)?;
        Ok(s)
    }

    /// A session with only the language builtins (no prelude).
    pub fn bare() -> Session {
        let inferencer = Inferencer::new();
        let type_env = inferencer.builtin_env();
        Session {
            inferencer,
            type_env,
            env: builtin_env(),
        }
    }

    /// Run a program (one or more `;`-terminated phrases), returning one
    /// [`Outcome`] per phrase.
    pub fn run(&mut self, src: &str) -> Result<Vec<Outcome>, SessionError> {
        let program =
            parse_program(src).map_err(|e| SessionError::Parse(e.display_with_source(src)))?;
        let mut out = Vec::with_capacity(program.len());
        for phrase in &program {
            out.push(self.run_phrase(phrase)?);
        }
        Ok(out)
    }

    /// Run a program and return only the final outcome.
    pub fn eval_one(&mut self, src: &str) -> Result<Outcome, SessionError> {
        let mut outcomes = self.run(src)?;
        outcomes
            .pop()
            .ok_or_else(|| SessionError::Parse("empty program".into()))
    }

    /// Infer the type of a program's final phrase without changing the
    /// session (environments are cloned).
    pub fn type_of(&self, src: &str) -> Result<String, SessionError> {
        let program =
            parse_program(src).map_err(|e| SessionError::Parse(e.display_with_source(src)))?;
        let mut scratch_types = self.type_env.clone();
        // Fresh inferencer sharing nothing: instantiate schemes from the
        // cloned environment (schemes own their quantified variables, so
        // clones are safe to instantiate). Its ids continue from the
        // session's so display names never alias scheme variables.
        let mut inferencer = Inferencer::starting_at(self.inferencer.gen.next_id());
        let mut last = None;
        for phrase in &program {
            last = Some(
                inferencer
                    .infer_phrase(&mut scratch_types, phrase)
                    .map_err(SessionError::Type)?,
            );
        }
        last.map(|p| p.scheme.show())
            .ok_or_else(|| SessionError::Parse("empty program".into()))
    }

    /// Explain how the comprehension planner would execute the first
    /// `select` in the final phrase of `src`: the rendered physical
    /// operator tree, or the fallback line naming why the shape runs
    /// through the interpreter's nested loop instead. The session is not
    /// modified (nothing is type-checked or evaluated).
    ///
    /// Also behind the REPL's `:plan` command.
    pub fn plan_of(&self, src: &str) -> Result<String, SessionError> {
        let program =
            parse_program(src).map_err(|e| SessionError::Parse(e.display_with_source(src)))?;
        let Some(phrase) = program.last() else {
            return Err(SessionError::Parse("empty program".into()));
        };
        let expr = match &phrase.kind {
            PhraseKind::Val { expr, .. } | PhraseKind::Expr(expr) => expr,
            PhraseKind::Fun { body, .. } => body,
        };
        let Some((generators, pred, result)) = machiavelli_plan::find_select(expr) else {
            return Ok("no select comprehension in phrase".into());
        };
        Ok(
            match machiavelli_plan::plan_select(generators, pred, result) {
                Ok(plan) => machiavelli_plan::explain(&plan),
                Err(reason) => format!("Fallback (select_loop): {reason}"),
            },
        )
    }

    /// Statistics of the session's index store (cached hash indexes for
    /// repeated plans — see `machiavelli-store`). The store is scoped to
    /// the thread driving the session, which is the session's home
    /// thread; sessions sharing a thread share the store harmlessly
    /// (entries are keyed by relation storage identity, so they can
    /// never serve each other's relations).
    pub fn store_stats(&self) -> machiavelli_store::StoreStats {
        machiavelli_store::with_store(|s| s.stats())
    }

    /// Describe the live cached indexes in deterministic order (sorted
    /// by fingerprint, then storage id — pinnable in golden tests),
    /// with each entry's representation: `plain` entries are
    /// `Send + Sync` and eligible for the parallel cached probe, `rc`
    /// entries (identity-bearing rows) probe sequentially. Behind the
    /// REPL's `:indexes` command.
    pub fn store_indexes(&self) -> Vec<machiavelli_store::IndexInfo> {
        machiavelli_store::with_store(|s| s.indexes())
    }

    /// Drop all cached indexes and zero the statistics (tests and
    /// benchmarks use this to measure from a cold store; correctness
    /// never requires it — invalidation is automatic).
    pub fn store_reset(&self) {
        machiavelli_store::with_store(|s| s.reset());
    }

    /// Set the parallel lane's worker-thread count for this session
    /// (`None` restores the default: `MACHIAVELLI_PAR_THREADS`, else
    /// the machine's `available_parallelism`). Returns the previous
    /// override. A count of 1 keeps everything sequential. Like the
    /// index store, the setting is scoped to the thread driving the
    /// session.
    pub fn set_par_threads(&self, n: Option<usize>) -> Option<usize> {
        machiavelli_value::tuning::set_par_threads(n)
    }

    /// The parallel lane's effective worker-thread count.
    pub fn par_threads(&self) -> usize {
        machiavelli_value::tuning::par_threads()
    }

    /// This session's parallel-lane hit/fallback counters (joins run on
    /// the plain-value partition lane, proper `hom` folds run through
    /// `par_hom`, and their runtime fallbacks). Behind the REPL's
    /// `:stats` alongside the index-store counters.
    pub fn par_stats(&self) -> machiavelli_value::tuning::ParStats {
        machiavelli_value::tuning::par_stats()
    }

    /// Zero the parallel-lane counters.
    pub fn par_reset(&self) {
        machiavelli_value::tuning::reset_par_stats()
    }

    /// This session's columnar-lane counters (snapshots built/adopted,
    /// morsels executed/stolen, filter offloads and their declines).
    /// Behind the REPL's `:stats` alongside the parallel-lane counters.
    pub fn exec_stats(&self) -> machiavelli_value::tuning::ExecStats {
        machiavelli_value::tuning::exec_stats()
    }

    /// Zero the columnar-lane counters.
    pub fn exec_reset(&self) {
        machiavelli_value::tuning::reset_exec_stats()
    }

    /// The process-wide server/resilience counters: sessions started,
    /// panicked (isolated), closed; queries shed at admission, stopped
    /// by deadline, cancellation, or row budget; queries completed.
    /// All zero unless this process hosts sessions through
    /// `machiavelli-server` (or installs `QueryGuard`s itself). Behind
    /// the REPL's `:stats` alongside the index-store counters.
    pub fn server_stats(&self) -> machiavelli_value::governor::ServerCounters {
        machiavelli_value::governor::server_counters()
    }

    /// The process-wide shared index tier's counters (cross-session
    /// index reuse: publishes, adoptions, lock-poison recoveries — see
    /// `machiavelli_store::shared`). The tier is off outside server
    /// workers unless explicitly enabled.
    pub fn shared_store_stats(&self) -> machiavelli_store::shared::SharedStats {
        machiavelli_store::shared::shared_stats()
    }

    /// One snapshot of every statistics surface — the store, parallel,
    /// columnar, server/shared-tier counters, and the typed decline
    /// counts. Behind the REPL's `:stats` via [`SessionStats::render`].
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            store: self.store_stats(),
            par: self.par_stats(),
            exec: self.exec_stats(),
            server: self.server_stats(),
            shared: self.shared_store_stats(),
            par_threads: self.par_threads(),
            declines: machiavelli_trace::session_declines(),
            wal: machiavelli_value::wal_counters(),
        }
    }

    /// Zero every session-scoped counter in one call: the index store
    /// (entries, counters, and observed per-operator stats), the
    /// parallel and columnar lanes, and the decline counts. The
    /// process-wide surfaces ([`Session::server_stats`],
    /// [`Session::shared_store_stats`], and the `METRICS` totals) are
    /// deliberately untouched — they aggregate across sessions.
    pub fn reset_stats(&self) {
        self.store_reset();
        self.par_reset();
        self.exec_reset();
        machiavelli_trace::reset_session_declines();
    }

    /// Enable/disable query tracing for this session's thread (`None`
    /// restores the `MACHIAVELLI_TRACE` env default), returning the
    /// previous override. With tracing on, every evaluated `select`
    /// records a [`machiavelli_trace::QueryTrace`] retrievable via
    /// [`Session::trace_events`].
    pub fn set_tracing(&self, on: Option<bool>) -> Option<bool> {
        machiavelli_trace::set_tracing(on)
    }

    /// Drain the traced queries recorded on this session's thread since
    /// the last drain (oldest first; the per-thread buffer keeps the
    /// most recent [`machiavelli_trace::MAX_EVENTS`]).
    pub fn trace_events(&self) -> Vec<machiavelli_trace::QueryTrace> {
        machiavelli_trace::take_events()
    }

    /// Per-fingerprint observed execution statistics accumulated by
    /// [`Session::analyze`] (sorted by fingerprint). These survive
    /// `clear()`-style invalidation in the store — cardinality priors
    /// outlive the indexes they were measured on — and drop on
    /// [`Session::store_reset`] / [`Session::reset_stats`].
    pub fn observed_stats(&self) -> Vec<(String, machiavelli_store::ObservedStats)> {
        machiavelli_store::with_store(|s| s.observed())
    }

    /// Run `src` with query tracing forced on and render each traced
    /// `select` as its physical operator tree annotated with what
    /// *actually happened*: per-operator yielded rows, open/next time,
    /// execution lane, cache outcome, and any typed decline codes —
    /// `EXPLAIN ANALYZE`, where [`Session::plan_of`] is `EXPLAIN`. The
    /// phrases evaluate for real (bindings stick, `it` updates), and
    /// fingerprinted operators persist observed row/time stats into the
    /// index store ([`Session::observed_stats`]). Behind the REPL's
    /// `:analyze` command.
    pub fn analyze(&mut self, src: &str) -> Result<String, SessionError> {
        let prev = machiavelli_trace::set_tracing(Some(true));
        // Stale events from earlier traced work would mis-attribute.
        let _ = machiavelli_trace::take_events();
        let result = self.run(src);
        machiavelli_trace::set_tracing(prev);
        let events = machiavelli_trace::take_events();
        result?;
        if events.is_empty() {
            return Ok("no select evaluated".into());
        }
        for q in &events {
            for s in &q.spans {
                if let Some(fp) = &s.fingerprint {
                    machiavelli_store::with_store(|st| {
                        st.note_observed(fp, s.rows, s.open_ns + s.next_ns)
                    });
                }
            }
        }
        let observed = self.observed_stats();
        let mut out = String::new();
        for q in &events {
            render_query_trace(&mut out, q);
        }
        // Accumulated per-fingerprint history (this run included), so
        // repeated `:analyze` shows cardinality stability at a glance.
        for (fp, os) in &observed {
            if events
                .iter()
                .flat_map(|q| &q.spans)
                .any(|s| s.fingerprint.as_deref() == Some(fp))
            {
                use std::fmt::Write as _;
                let _ = writeln!(
                    out,
                    "observed[{fp}]: runs={} last_rows={} avg_rows={}",
                    os.executions,
                    os.last_rows,
                    os.total_rows / os.executions.max(1)
                );
            }
        }
        Ok(out)
    }

    /// Look up a bound value.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.env.lookup(name)
    }

    /// Look up a bound scheme.
    pub fn scheme_of(&self, name: &str) -> Option<&Scheme> {
        self.type_env.lookup(name)
    }

    /// Bind an externally built value (e.g. a relation generated natively
    /// in Rust) with an explicit type, written in Machiavelli type syntax.
    /// The type is checked to be well-formed but the value is trusted.
    pub fn bind_external(
        &mut self,
        name: &str,
        value: Value,
        type_src: &str,
    ) -> Result<(), SessionError> {
        let te = machiavelli_syntax::parse_type(type_src)
            .map_err(|e| SessionError::Parse(e.display_with_source(type_src)))?;
        let ty = machiavelli_types::lower_open(&te, &self.inferencer.gen, 0)
            .map_err(SessionError::Type)?;
        self.type_env.bind(name, Scheme::mono(ty));
        self.env = self.env.bind(name, value);
        Ok(())
    }

    /// Persist bindings (description values only) to a self-contained
    /// string: each entry stores the name, the printed type, and the
    /// encoded value with its reference graph (sharing and cycles
    /// preserved). Only monomorphic bindings persist — polymorphic
    /// functions are code, not data.
    pub fn save_bindings(&self, names: &[&str]) -> Result<String, SessionError> {
        use std::fmt::Write as _;
        let mut out = String::new();
        for name in names {
            let value = self.get(name).ok_or_else(|| {
                SessionError::Type(machiavelli_types::TypeError::UnboundVariable(
                    (*name).to_string(),
                ))
            })?;
            let scheme = self.scheme_of(name).ok_or_else(|| {
                SessionError::Type(machiavelli_types::TypeError::UnboundVariable(
                    (*name).to_string(),
                ))
            })?;
            if !scheme.vars.is_empty() || !scheme.constraints.is_empty() {
                return Err(SessionError::Parse(format!(
                    "cannot persist `{name}`: polymorphic bindings do not persist"
                )));
            }
            let ty = scheme.show();
            let encoded = crate::persist::encode_value(&value)
                .map_err(|e| SessionError::Parse(format!("cannot persist `{name}`: {e}")))?;
            let _ = write!(
                out,
                "b{}:{name}{}:{ty}{}:{encoded}",
                name.len(),
                ty.len(),
                encoded.len()
            );
        }
        Ok(out)
    }

    /// The (printed type, value) of a binding *if it can persist*: bound
    /// and monomorphic. (Whether the value is a description value is
    /// encode-time business — closures surface as
    /// [`PersistError::NotADescription`](crate::persist::PersistError)
    /// there.) The durability layer uses this to decide what a bind
    /// record or checkpoint carries.
    pub fn persistable_binding(&self, name: &str) -> Option<(String, Value)> {
        let value = self.get(name)?;
        let scheme = self.scheme_of(name)?;
        if !scheme.vars.is_empty() || !scheme.constraints.is_empty() {
            return None;
        }
        Some((scheme.show(), value))
    }

    /// [`Session::save_bindings`] straight to a file, written via a
    /// temp file + fsync + atomic rename: a crash mid-save leaves the
    /// previous snapshot intact, never a truncated half-write.
    pub fn save_bindings_to(
        &self,
        path: &std::path::Path,
        names: &[&str],
    ) -> Result<(), SessionError> {
        let data = self.save_bindings(names)?;
        crate::persist::write_atomic(path, data.as_bytes())
            .map_err(|e| SessionError::Io(format!("saving bindings to {}: {e}", path.display())))
    }

    /// Load bindings previously written by [`Session::save_bindings_to`],
    /// returning the bound names.
    pub fn load_bindings_from(
        &mut self,
        path: &std::path::Path,
    ) -> Result<Vec<String>, SessionError> {
        let data = std::fs::read_to_string(path).map_err(|e| {
            SessionError::Io(format!("loading bindings from {}: {e}", path.display()))
        })?;
        self.load_bindings(&data)
    }

    /// Load bindings previously produced by [`Session::save_bindings`],
    /// returning the bound names. Reference identities are fresh (object
    /// identity is per session) but the saved sharing structure is
    /// preserved.
    pub fn load_bindings(&mut self, data: &str) -> Result<Vec<String>, SessionError> {
        let bytes = data.as_bytes();
        let mut pos = 0usize;
        let malformed =
            |pos: usize| SessionError::Parse(format!("malformed saved bindings at byte {pos}"));
        let read_sized = |bytes: &[u8], pos: &mut usize| -> Option<String> {
            let start = *pos;
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
            let n: usize = std::str::from_utf8(&bytes[start..*pos])
                .ok()?
                .parse()
                .ok()?;
            if bytes.get(*pos) != Some(&b':') {
                return None;
            }
            *pos += 1;
            let end = pos.checked_add(n).filter(|&e| e <= bytes.len())?;
            let s = std::str::from_utf8(&bytes[*pos..end]).ok()?.to_string();
            *pos = end;
            Some(s)
        };
        let mut names = Vec::new();
        while pos < bytes.len() {
            if bytes[pos] != b'b' {
                return Err(malformed(pos));
            }
            pos += 1;
            let name = read_sized(bytes, &mut pos).ok_or_else(|| malformed(pos))?;
            let ty = read_sized(bytes, &mut pos).ok_or_else(|| malformed(pos))?;
            let encoded = read_sized(bytes, &mut pos).ok_or_else(|| malformed(pos))?;
            let value = crate::persist::decode_value(&encoded)
                .map_err(|e| SessionError::Parse(format!("cannot load `{name}`: {e}")))?;
            self.bind_external(&name, value, &ty)?;
            names.push(name);
        }
        Ok(names)
    }

    fn run_phrase(&mut self, phrase: &Phrase) -> Result<Outcome, SessionError> {
        let typed = self
            .inferencer
            .infer_phrase(&mut self.type_env, phrase)
            .map_err(SessionError::Type)?;
        let value = match &phrase.kind {
            PhraseKind::Val { expr, .. } | PhraseKind::Expr(expr) => {
                eval_expr(&self.env, expr).map_err(SessionError::Eval)?
            }
            PhraseKind::Fun { name, params, body } => {
                let rec = Expr::new(
                    ExprKind::Rec {
                        name: *name,
                        body: Box::new(Expr::new(
                            ExprKind::Lambda {
                                params: params.clone(),
                                body: Box::new(body.clone()),
                            },
                            phrase.span,
                        )),
                    },
                    phrase.span,
                );
                eval_expr(&self.env, &rec).map_err(SessionError::Eval)?
            }
        };
        self.env = self.env.bind(typed.name, value.clone());
        Ok(Outcome {
            name: typed.name,
            value,
            scheme: typed.scheme,
        })
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

/// Render one traced query as an indented operator tree (children under
/// parents, sibling order = open order), one span per line:
///
/// ```text
/// select: total 1.2ms
///   HashJoin probe(x.K) build(y.K) [seq] [cache build] rows=3 open=1.0ms next=0.2ms
///     Scan x <- r [seq] rows=100 open=10.0µs next=80.0µs
/// ```
///
/// A query with no spans ran through the interpreter's nested loop;
/// decline codes (per-span and query-level) name every fallback taken.
fn render_query_trace(out: &mut String, q: &machiavelli_trace::QueryTrace) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "{}: total {}", q.label, fmt_ns(q.elapsed_ns));
    if q.spans.is_empty() {
        out.push_str("  (no pipeline: interpreted select_loop)\n");
    }
    // Depth-first over the parent links; spans are few (one per
    // operator), so the quadratic child scan is irrelevant.
    fn render_span(out: &mut String, spans: &[machiavelli_trace::OpSpan], id: u32, depth: usize) {
        use std::fmt::Write as _;
        let s = &spans[id as usize];
        let _ = write!(
            out,
            "{:indent$}{} [{}]",
            "",
            s.label,
            s.lane,
            indent = depth * 2
        );
        if let Some(c) = &s.cache {
            let _ = write!(out, " [cache {c}]");
        }
        let _ = write!(
            out,
            " rows={} open={} next={}",
            s.rows,
            fmt_ns(s.open_ns),
            fmt_ns(s.next_ns)
        );
        if !s.declines.is_empty() {
            let codes: Vec<&str> = s.declines.iter().map(|d| d.code()).collect();
            let _ = write!(out, " declines: {}", codes.join(", "));
        }
        out.push('\n');
        for child in spans.iter().filter(|c| c.parent == Some(id)) {
            render_span(out, spans, child.id, depth + 1);
        }
    }
    for root in q.spans.iter().filter(|s| s.parent.is_none()) {
        render_span(out, &q.spans, root.id, 1);
    }
    if !q.declines.is_empty() {
        let codes: Vec<&str> = q.declines.iter().map(|d| d.code()).collect();
        let _ = writeln!(out, "  declines: {}", codes.join(", "));
    }
}

/// Whether `src` can run on a read-only replica: every phrase is a bare
/// expression (no `val`/`fun` declarations, which durably bind names)
/// containing no `:=` assignment anywhere. A bare expression still
/// rebinds the scratch `it` — that is replica-local and overwritten by
/// the next shipped bind, so it does not count as a write.
///
/// Unparsable sources are reported read-only: the evaluator will
/// surface the real parse error, which is strictly more useful than a
/// misleading `ERR read-only`.
pub fn is_read_only_source(src: &str) -> bool {
    let Ok(program) = parse_program(src) else {
        return true;
    };
    let mut work: Vec<&Expr> = Vec::new();
    for phrase in &program {
        match &phrase.kind {
            PhraseKind::Val { .. } | PhraseKind::Fun { .. } => return false,
            PhraseKind::Expr(e) => work.push(e),
        }
    }
    // Iterative walk: query expressions can nest arbitrarily deep.
    while let Some(e) = work.pop() {
        match &e.kind {
            ExprKind::Assign { .. } => return false,
            ExprKind::Unit
            | ExprKind::Int(_)
            | ExprKind::Real(_)
            | ExprKind::Str(_)
            | ExprKind::Bool(_)
            | ExprKind::Var(_)
            | ExprKind::OpVal(_)
            | ExprKind::Raise(_) => {}
            ExprKind::Lambda { body, .. } => work.push(body),
            ExprKind::App { func, args } => {
                work.push(func);
                work.extend(args.iter());
            }
            ExprKind::If {
                cond,
                then_branch,
                else_branch,
            } => work.extend([cond.as_ref(), then_branch, else_branch]),
            ExprKind::Record(fields) => work.extend(fields.iter().map(|(_, e)| e)),
            ExprKind::Modify { expr, value, .. } => work.extend([expr.as_ref(), value]),
            ExprKind::Field { expr, .. }
            | ExprKind::Inject { expr, .. }
            | ExprKind::As { expr, .. }
            | ExprKind::Project { expr, .. }
            | ExprKind::Ref(expr)
            | ExprKind::Deref(expr)
            | ExprKind::Unop { expr, .. }
            | ExprKind::Rec { body: expr, .. }
            | ExprKind::MakeDynamic(expr)
            | ExprKind::Coerce { expr, .. } => work.push(expr),
            ExprKind::Case {
                expr,
                arms,
                default,
            } => {
                work.push(expr);
                work.extend(arms.iter().map(|a| &a.body));
                if let Some(d) = default {
                    work.push(d);
                }
            }
            ExprKind::Set(items) => work.extend(items.iter()),
            ExprKind::Union { left, right }
            | ExprKind::Unionc { left, right }
            | ExprKind::Con { left, right }
            | ExprKind::Join { left, right }
            | ExprKind::Binop { left, right, .. } => work.extend([left.as_ref(), right]),
            ExprKind::Hom { f, op, z, set } => work.extend([f.as_ref(), op, z, set]),
            ExprKind::HomStar { f, op, set } => work.extend([f.as_ref(), op, set]),
            ExprKind::Let { bound, body, .. } => work.extend([bound.as_ref(), body]),
            ExprKind::Select {
                result,
                generators,
                pred,
            } => {
                work.push(result);
                work.extend(generators.iter().map(|g| &g.source));
                work.push(pred);
            }
        }
    }
    true
}

/// Human-scale time with one stable decimal (`0ns` under a zeroed
/// trace clock, so golden tests pin the full rendering).
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_classification() {
        // Pure queries, however nested, are read-only.
        for src in [
            "1 + 2;",
            "!r;",
            "select x.Name where x <- S with x.Salary > 100000;",
            "let val x = !r in x + 1 end;",
            "hom(fn (x) => x, +, 0, {1, 2});",
            "case v of a of x => x, other => 0;",
            "modify(p, Age, 21);",
            "(fn (x) => !x)(r);",
            "ref(1);",                // a fresh local cell, never durable
            "this does not parse;;;", // evaluator surfaces the real error
        ] {
            assert!(is_read_only_source(src), "{src}");
        }
        // Declarations and assignments — anywhere — are writes.
        for src in [
            "val x = 1;",
            "fun f(x) = x;",
            "r := 1;",
            "1; r := 2; 3;",
            "let val x = 1 in r := x end;",
            "if b then r := 1 else ();",
            "(fn (x) => x := 1)(r);",
            "{r := 1};",
            "select (r := 1) where x <- S with true;",
            "modify(p, Age, (fn (u) => (q := 1))(()));",
        ] {
            assert!(!is_read_only_source(src), "{src}");
        }
    }

    #[test]
    fn simple_session() {
        let mut s = Session::bare();
        let out = s.eval_one("1;").unwrap();
        assert_eq!(out.show(), "val it = 1 : int");
        let out = s.eval_one("fun id(x) = x;").unwrap();
        assert_eq!(out.show(), "val id = fn : 'a -> 'a");
        let out = s.eval_one("id(1);").unwrap();
        assert_eq!(out.show(), "val it = 1 : int");
    }

    #[test]
    fn prelude_loads_and_types() {
        let s = Session::new();
        assert_eq!(
            s.scheme_of("map").unwrap().show(),
            "((\"a -> \"b) * {\"a}) -> {\"b}"
        );
        assert_eq!(
            s.scheme_of("member").unwrap().show(),
            "(\"a * {\"a}) -> bool"
        );
        assert_eq!(
            s.scheme_of("Closure").unwrap().show(),
            "{[A:\"a,B:\"a]} -> {[A:\"a,B:\"a]}"
        );
    }

    #[test]
    fn ill_typed_phrase_not_evaluated() {
        let mut s = Session::bare();
        assert!(matches!(s.run("1 + true;"), Err(SessionError::Type(_))));
        // The session stays usable.
        assert!(s.run("2;").is_ok());
    }

    #[test]
    fn it_binding_chains() {
        let mut s = Session::bare();
        s.run("41;").unwrap();
        let out = s.eval_one("it + 1;").unwrap();
        assert_eq!(out.show(), "val it = 42 : int");
    }

    #[test]
    fn type_of_does_not_mutate() {
        let mut s = Session::bare();
        let t = s.type_of("val x = 1; x;").unwrap();
        assert_eq!(t, "int");
        // `x` was not actually bound.
        assert!(matches!(s.run("x;"), Err(SessionError::Type(_))));
    }

    #[test]
    fn bind_external_value() {
        let mut s = Session::new();
        s.bind_external(
            "r",
            Value::set([Value::record([("A".into(), Value::Int(1))])]),
            "{[A: int]}",
        )
        .unwrap();
        let out = s.eval_one("select x.A where x <- r with true;").unwrap();
        assert_eq!(out.show(), "val it = {1} : {int}");
    }

    #[test]
    fn save_and_load_bindings() {
        let mut s = Session::new();
        s.run(
            r#"val db = {[Name="Joe", Salary=1], [Name="Sue", Salary=200000]};
                 val answer = 42;"#,
        )
        .unwrap();
        // The set literal generalizes to a scheme with a quantified desc
        // var? No — all fields are ground, so it is monomorphic enough to
        // persist. Save, then load into a fresh session and query.
        let saved = s.save_bindings(&["db", "answer"]).unwrap();
        let mut s2 = Session::new();
        let names = s2.load_bindings(&saved).unwrap();
        assert_eq!(names, vec!["db", "answer"]);
        let out = s2
            .eval_one("select x.Name where x <- db with x.Salary > 100000;")
            .unwrap();
        assert_eq!(out.show(), r#"val it = {"Sue"} : {string}"#);
        assert_eq!(s2.eval_one("answer;").unwrap().show(), "val it = 42 : int");
    }

    #[test]
    fn functions_do_not_persist() {
        let mut s = Session::new();
        s.run("fun f(x) = x;").unwrap();
        assert!(s.save_bindings(&["f"]).is_err());
    }

    #[test]
    fn persisted_refs_keep_sharing() {
        let mut s = Session::new();
        s.run(
            r#"val d = ref([Building=45]);
                 val emps = {[Name="Jones", Dept=d], [Name="Smith", Dept=d]};"#,
        )
        .unwrap();
        let saved = s.save_bindings(&["emps"]).unwrap();
        let mut s2 = Session::new();
        s2.load_bindings(&saved).unwrap();
        // Update the department through one employee; the other sees it.
        s2.run(
            "val one = hom((fn(x) => (x.Dept := [Building=67])),                            (fn(a,b) => a), (), emps);",
        )
        .unwrap();
        let out = s2
            .eval_one("card(select x where x <- emps with (!(x.Dept)).Building = 67);")
            .unwrap();
        assert_eq!(out.show(), "val it = 2 : int");
    }

    #[test]
    fn plan_of_renders_hash_join_and_fallback() {
        let s = Session::new();
        s.store_reset();
        let tree = s
            .plan_of("select (x.A, y.B) where x <- r, y <- s with x.K = y.K;")
            .unwrap();
        assert!(tree.starts_with("Project"), "{tree}");
        assert!(
            tree.contains("HashJoin[idx build] probe(x.K) build(y.K)"),
            "{tree}"
        );
        // Unsafe predicate: reported as a fallback, not an error.
        let tree = s
            .plan_of("select x where x <- r with member(x, s);")
            .unwrap();
        assert!(tree.starts_with("Fallback (select_loop):"), "{tree}");
        // No comprehension at all.
        let tree = s.plan_of("1 + 2;").unwrap();
        assert_eq!(tree, "no select comprehension in phrase");
        // Finds the select inside a function definition.
        let tree = s
            .plan_of("fun Wealthy(S) = select x.Name where x <- S with x.Salary > 100000;")
            .unwrap();
        assert!(
            tree.contains("Scan x <- S filter (x.Salary > 100000)"),
            "{tree}"
        );
    }

    #[test]
    fn store_stats_track_reuse_and_plan_of_flips_to_cached() {
        let mut s = Session::new();
        s.store_reset();
        // Pin one worker thread so the warm marker is `[idx cached]`
        // (never the machine-dependent `[idx cached, par n=…]`).
        let prev_threads = s.set_par_threads(Some(1));
        s.run("val r = {[K=1, A=10], [K=2, A=20]}; val t = {[K=1, B=5]};")
            .unwrap();
        let q = "select (x.A, y.B) where x <- r, y <- t with x.K = y.K;";
        let cold = s.plan_of(q).unwrap();
        assert!(cold.contains("HashJoin[idx build]"), "{cold}");
        s.eval_one(q).unwrap();
        s.eval_one(q).unwrap();
        let stats = s.store_stats();
        assert_eq!((stats.builds, stats.hits), (1, 1), "{stats:?}");
        assert_eq!(stats.entries, 1, "{stats:?}");
        // The rendering now reports the live index.
        let warm = s.plan_of(q).unwrap();
        assert!(warm.contains("HashJoin[idx cached]"), "{warm}");
        let indexes = s.store_indexes();
        assert_eq!(indexes.len(), 1);
        // Binder names are alpha-normalized to `_` in fingerprints, and
        // pure-data relations cache in plain (parallel-probable) form.
        assert_eq!(indexes[0].fingerprint, "join t build(_.K) filter()");
        assert_eq!(indexes[0].kind, machiavelli_store::IndexKind::Plain);
        s.store_reset();
        assert_eq!(s.store_stats(), machiavelli_store::StoreStats::default());
        s.set_par_threads(prev_threads);
    }

    #[test]
    fn reset_stats_leaves_no_session_counter_behind() {
        let mut s = Session::new();
        s.reset_stats();
        let prev_threads = s.set_par_threads(Some(1));
        // Dirty every session-scoped surface: store counters (build +
        // hit), observed per-fingerprint stats (via analyze), and the
        // decline counts (a planner fallback plus a directly noted
        // lane decline).
        s.run("val r = {[K=1, A=10], [K=2, A=20]}; val t = {[K=1, B=5]};")
            .unwrap();
        let q = "select (x.A, y.B) where x <- r, y <- t with x.K = y.K;";
        s.analyze(q).unwrap();
        s.run(q).unwrap();
        s.run("select x where x <- r with member(x, r);").unwrap();
        machiavelli_trace::note_decline(machiavelli_trace::DeclineReason::ParHomExtract);
        let dirty = s.stats();
        assert!(
            dirty.store != machiavelli_store::StoreStats::default(),
            "{dirty:?}"
        );
        assert!(
            dirty.declines.iter().any(|(_, n)| *n > 0),
            "workload should record at least one decline: {dirty:?}"
        );
        assert!(!s.observed_stats().is_empty());

        s.reset_stats();
        let clean = s.stats();
        assert_eq!(clean.store, machiavelli_store::StoreStats::default());
        assert_eq!(clean.par, machiavelli_value::tuning::ParStats::default());
        assert_eq!(clean.exec, machiavelli_value::tuning::ExecStats::default());
        assert!(
            clean.declines.iter().all(|(_, n)| *n == 0),
            "{:?}",
            clean.declines
        );
        assert_eq!(
            clean.declines.len(),
            machiavelli_trace::DeclineReason::COUNT,
            "snapshot still lists every reason code"
        );
        assert!(s.observed_stats().is_empty());
        assert!(s.store_indexes().is_empty());
        s.set_par_threads(prev_threads);
    }

    #[test]
    fn save_to_file_is_atomic_and_loads_back() {
        let mut s = Session::new();
        s.run(r#"val db = {[Name="Joe", Salary=1]}; val answer = 42;"#)
            .unwrap();
        let dir = std::env::temp_dir().join(format!("mach-save-to-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bindings.mach");
        s.save_bindings_to(&path, &["db", "answer"]).unwrap();
        // Overwrite with a *smaller* save: the rename replaces wholesale
        // (an in-place truncate-and-rewrite could tear here).
        s.save_bindings_to(&path, &["answer"]).unwrap();
        let mut s2 = Session::new();
        assert_eq!(s2.load_bindings_from(&path).unwrap(), vec!["answer"]);
        assert_eq!(s2.eval_one("answer;").unwrap().show(), "val it = 42 : int");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistable_binding_filters_polymorphism() {
        let mut s = Session::new();
        s.run("val n = 7; fun poly(x) = x;").unwrap();
        let (ty, v) = s.persistable_binding("n").unwrap();
        assert_eq!(ty, "int");
        assert_eq!(v, Value::Int(7));
        assert!(s.persistable_binding("poly").is_none(), "polymorphic");
        assert!(s.persistable_binding("missing").is_none());
    }

    #[test]
    fn stats_render_includes_wal_line() {
        let s = Session::new();
        let rendered = s.stats().render();
        assert!(rendered.contains("wal: "), "{rendered}");
    }

    #[test]
    fn parse_errors_carry_position() {
        let mut s = Session::bare();
        let err = s.run("val = ;").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("syntax error"), "{msg}");
    }
}
