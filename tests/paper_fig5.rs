//! E5 — Figure 5: the recursive `cost` function and `expensive_parts`,
//! verified against the native cost computation.

use machiavelli_bench::{fig2_session, scaled_parts_session, FIG5_POLY_SOURCE, FIG5_SOURCE};
use machiavelli_relational::native_cost;

#[test]
fn cost_type_as_written_is_pinned_by_the_global_parts() {
    let mut s = fig2_session();
    let outs = s.run(FIG5_SOURCE).unwrap();
    // The paper prints an open-row scheme
    //   [('a) Pinfo:<BasePart:[('c) Cost:int], …>] -> int
    // but `cost` recurses through the *global* `parts` (cost(z) with
    // z <- parts), so under Milner-style monomorphic recursion the
    // argument type is the concrete parts row — see EXPERIMENTS.md. The
    // polymorphic behaviour the paper demonstrates is recovered by the
    // db-as-parameter variant tested below.
    assert_eq!(
        outs[0].scheme.show(),
        "[P#:int,Pinfo:<BasePart:[Cost:int],CompositePart:[AssemCost:int,SubParts:{[P#:int,Qty:int]}]>,Pname:string] -> int"
    );
}

#[test]
fn cost_in_variant_has_the_papers_polymorphic_shape() {
    let mut s = fig2_session();
    let outs = s.run(FIG5_POLY_SOURCE).unwrap();
    // Row-polymorphic in both the part record and the nested payloads,
    // exactly the shape the paper prints for `cost` (modulo the explicit
    // database parameter).
    assert_eq!(
        outs[0].scheme.show(),
        "({[(\"a) P#:\"b,Pinfo:<BasePart:[(\"c) Cost:int],CompositePart:[(\"d) AssemCost:int,SubParts:{[(\"e) P#:\"b,Qty:int]}]>]} * [(\"a) P#:\"b,Pinfo:<BasePart:[(\"c) Cost:int],CompositePart:[(\"d) AssemCost:int,SubParts:{[(\"e) P#:\"b,Qty:int]}]>]) -> int"
    );
    let ep = outs[1].scheme.show();
    assert!(ep.contains("* int) -> {"), "{ep}");
}

#[test]
fn engine_cost_matches_native() {
    let mut s = fig2_session();
    s.run(FIG5_SOURCE).unwrap();
    let out = s
        .eval_one(
            r#"cost([Pname="engine", P#=2189,
                           Pinfo=(CompositePart of [SubParts={[P#=1,Qty=189],[P#=2,Qty=120]},
                                                    AssemCost=1000])]);"#,
        )
        .unwrap();
    // 1000 + 5*189 + 3*120 = 2305, also checked natively.
    assert_eq!(out.show(), "val it = 2305 : int");
    assert_eq!(
        native_cost(&machiavelli_relational::fig2_parts(), 2189),
        Some(2305)
    );
}

#[test]
fn expensive_parts_query() {
    // -> expensive_parts(parts, 1000);  >> {"engine", ...}
    let mut s = fig2_session();
    s.run(FIG5_SOURCE).unwrap();
    let out = s.eval_one("expensive_parts(parts, 1000);").unwrap();
    assert_eq!(out.show(), r#"val it = {"engine"} : {string}"#);
    // Lower threshold picks up the wheel too (cost 20 + 8·5 + 8·3 = 84).
    let out = s.eval_one("expensive_parts(parts, 50);").unwrap();
    assert_eq!(out.show(), r#"val it = {"engine", "wheel"} : {string}"#);
}

#[test]
fn cost_is_polymorphic_across_part_databases() {
    // "these functions can be shared by all those databases" — apply the
    // db-as-parameter variant to a second database with extra fields.
    let mut s = fig2_session();
    s.run(FIG5_POLY_SOURCE).unwrap();
    let out = s
        .eval_one(
            r#"expensive_parts_in({[Pname="gadget", P#=1, Origin="NL",
                                    Pinfo=(BasePart of [Cost=9999])]}, 1000);"#,
        )
        .unwrap();
    assert_eq!(out.show(), r#"val it = {"gadget"} : {string}"#);
    // And both variants agree on the paper's database.
    s.run(FIG5_SOURCE).unwrap();
    let a = s.eval_one("expensive_parts(parts, 50);").unwrap();
    let b = s.eval_one("expensive_parts_in(parts, 50);").unwrap();
    assert_eq!(a.value, b.value);
}

#[test]
fn interpreted_cost_matches_native_on_generated_db() {
    let (mut s, db) = scaled_parts_session(25, 5, 7);
    s.run(FIG5_SOURCE).unwrap();
    // Compare every part's interpreted cost with the native baseline.
    let out = s
        .eval_one("select [P = x.P#, C = cost(x)] where x <- parts with true;")
        .unwrap();
    let machiavelli::value::Value::Set(rows) = &out.value else {
        panic!()
    };
    assert_eq!(rows.len(), db.parts.len());
    for row in rows.iter() {
        let machiavelli::value::Value::Record(fs) = row else {
            panic!()
        };
        let machiavelli::value::Value::Int(p) = fs["P"] else {
            panic!()
        };
        let machiavelli::value::Value::Int(c) = fs["C"] else {
            panic!()
        };
        assert_eq!(native_cost(&db.parts, p), Some(c), "part {p}");
    }
}
