//! Persistence (§6 future work) end-to-end: whole databases round-trip
//! through the save/load layer, including the OODB object graphs.

use machiavelli::value::Value;
use machiavelli::{decode_value, encode_value, Session};
use machiavelli_bench::{fig2_session, PARTS_TYPE};
use machiavelli_oodb::{gen_university, person_field, UniversityParams};
use machiavelli_relational::gen_part_supplier;

#[test]
fn part_supplier_database_roundtrips() {
    let db = gen_part_supplier(50, 10, 0.5, 77);
    let original = db.parts.clone().into_value();
    let decoded = decode_value(&encode_value(&original).unwrap()).unwrap();
    assert_eq!(decoded, original);
}

#[test]
fn saved_session_answers_the_same_queries() {
    let mut s1 = fig2_session();
    let saved = s1
        .save_bindings(&["parts", "suppliers", "supplied_by"])
        .unwrap();

    let mut s2 = Session::new();
    let names = s2.load_bindings(&saved).unwrap();
    assert_eq!(names.len(), 3);
    s2.run("fun Join3(x,y,z) = join(x, join(y,z));").unwrap();

    let q = r#"select x.Pname
               where x <- join(parts, supplied_by)
               with Join3(x.Suppliers, suppliers, {[Sname="Baker"]}) <> {};"#;
    s1.run("fun Join3(x,y,z) = join(x, join(y,z));").unwrap();
    assert_eq!(s1.eval_one(q).unwrap().value, s2.eval_one(q).unwrap().value);
}

#[test]
fn university_object_graph_roundtrips_with_sharing() {
    // Advisor edges are shared references; after a round trip, a student's
    // advisor must be the *same object* as the corresponding person.
    let uni = gen_university(UniversityParams {
        n_people: 40,
        seed: 31,
        ..Default::default()
    });
    let store = uni.store();
    let decoded = decode_value(&encode_value(&store).unwrap()).unwrap();

    let Value::Set(objs) = &decoded else { panic!() };
    assert_eq!(objs.len(), 40);
    // Collect the ids present in the store; every advisor edge must point
    // at one of them (sharing preserved, no duplicated advisor copies).
    let ids: std::collections::HashSet<u64> = objs
        .iter()
        .filter_map(|v| match v {
            Value::Ref(r) => Some(r.id),
            _ => None,
        })
        .collect();
    let mut advisor_edges = 0;
    for v in objs.iter() {
        let Value::Ref(r) = v else { continue };
        let advisor = person_field(r, "Advisor").unwrap();
        if let Value::Variant(tag, payload) = &advisor {
            if tag == "Value" {
                let Value::Ref(a) = &**payload else { panic!() };
                assert!(ids.contains(&a.id), "advisor outside the store");
                advisor_edges += 1;
            }
        }
    }
    assert_eq!(advisor_edges, uni.count_students());
}

#[test]
fn loaded_views_behave_identically() {
    let uni = gen_university(UniversityParams {
        n_people: 30,
        seed: 5,
        ..Default::default()
    });
    let mut s = Session::new();
    s.bind_external("persons", uni.store(), machiavelli_oodb::PERSON_STORE_TYPE)
        .unwrap();
    s.run(machiavelli_oodb::MACHIAVELLI_VIEWS).unwrap();
    let before = s.eval_one("card(EmployeeView(persons));").unwrap().value;

    let saved = s.save_bindings(&["persons"]).unwrap();
    let mut s2 = Session::new();
    s2.load_bindings(&saved).unwrap();
    s2.run(machiavelli_oodb::MACHIAVELLI_VIEWS).unwrap();
    let after = s2.eval_one("card(EmployeeView(persons));").unwrap().value;
    assert_eq!(before, after);
}

#[test]
fn load_rejects_corrupted_data() {
    let s = fig2_session();
    let saved = s.save_bindings(&["suppliers"]).unwrap();
    let mut s2 = Session::new();
    // Truncations and bit flips must be rejected, not crash.
    for end in [1, saved.len() / 2, saved.len() - 1] {
        assert!(
            s2.load_bindings(&saved[..end]).is_err(),
            "truncated at {end}"
        );
    }
    let corrupted = saved.replace("suppliers", "suppliersX");
    assert!(s2.load_bindings(&corrupted).is_err());
}

#[test]
fn dynamic_payloads_roundtrip() {
    let mut s = Session::new();
    s.run(r#"val external = {dynamic([Name="e1", Salary=10])};"#)
        .unwrap();
    let saved = s.save_bindings(&["external"]).unwrap();
    let mut s2 = Session::new();
    s2.load_bindings(&saved).unwrap();
    let out = s2
        .eval_one("hom((fn(d) => dynamic(d, [Name: string, Salary: int]).Salary), +, 0, external);")
        .unwrap();
    assert_eq!(out.show(), "val it = 10 : int");
}

#[test]
fn values_bound_via_external_types_roundtrip() {
    // The printed type of a bound relation must re-parse on load
    // (exercises the type printer ↔ type parser loop).
    let mut s = Session::new();
    s.bind_external(
        "r",
        machiavelli_relational::fig2_parts().into_value(),
        PARTS_TYPE,
    )
    .unwrap();
    let saved = s.save_bindings(&["r"]).unwrap();
    let mut s2 = Session::new();
    s2.load_bindings(&saved).unwrap();
    assert_eq!(s2.eval_one("card(r);").unwrap().show(), "val it = 4 : int");
}
