//! E8 bench — Figure 9: join of views (intersection of extents) and the
//! advisor-salary query, interpreted vs native, as the store grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Short measurement windows so the full figure suite runs in minutes;
/// rerun individual benches with Criterion CLI flags for precision.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}
use machiavelli::value::Value;
use machiavelli_bench::university_session;
use machiavelli_oodb::{employee_view, student_view, UniversityParams};
use machiavelli_relational::nested_loop_join;

fn bench_join_of_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_join_views");
    group.sample_size(10);
    for n in [50usize, 150, 400] {
        let params = UniversityParams {
            n_people: n,
            seed: 2,
            ..Default::default()
        };
        let (mut session, uni) = university_session(params);
        let store = uni.store();
        group.bench_with_input(BenchmarkId::new("interpreted", n), &n, |b, _| {
            b.iter(|| {
                session
                    .eval_one("join(StudentView(persons), EmployeeView(persons));")
                    .unwrap()
                    .value
            })
        });
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            b.iter(|| nested_loop_join(&student_view(&store), &employee_view(&store)))
        });
    }
    group.finish();
}

fn bench_advisor_salary_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_advisor_salary");
    group.sample_size(10);
    for n in [50usize, 200] {
        let params = UniversityParams {
            n_people: n,
            seed: 2,
            ..Default::default()
        };
        let (mut session, uni) = university_session(params);
        session
            .run("val supported_student = join(StudentView(persons), EmployeeView(persons));")
            .unwrap();
        let query = "select x.Name
                     where x <- supported_student, y <- EmployeeView(persons)
                     with x.Advisor = y.Id andalso x.Salary > y.Salary;";
        group.bench_with_input(BenchmarkId::new("interpreted", n), &n, |b, _| {
            b.iter(|| session.eval_one(query).unwrap().value)
        });

        let store = uni.store();
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            b.iter(|| {
                let supported = nested_loop_join(&student_view(&store), &employee_view(&store));
                let employees = employee_view(&store);
                let mut names = Vec::new();
                for x in supported.iter() {
                    let Value::Record(xf) = x else { continue };
                    for y in employees.iter() {
                        let Value::Record(yf) = y else { continue };
                        if xf.get("Advisor") == yf.get("Id") {
                            if let (Some(Value::Int(xs)), Some(Value::Int(ys))) =
                                (xf.get("Salary"), yf.get("Salary"))
                            {
                                if xs > ys {
                                    names.push(xf["Name"].clone());
                                }
                            }
                        }
                    }
                }
                Value::set(names)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_join_of_views, bench_advisor_salary_query
}
criterion_main!(benches);
