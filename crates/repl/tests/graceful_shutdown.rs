//! Graceful shutdown of the real `machid` binary: SIGTERM in the
//! middle of a multi-connection commit storm must lose **zero** acked
//! commits — every eval the client saw `VAL` for is served after a
//! restart over the same durable root.

#![cfg(unix)]

use machiavelli_repl::proto::LineClient;
use machiavelli_server::{Server, ServerConfig, ServerRole};
use machiavelli_value::faults::FaultConfig;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mach-shutdown-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn free_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = l.local_addr().expect("addr").to_string();
    drop(l);
    addr
}

fn connect_with_retry(addr: &str, timeout: Duration) -> LineClient {
    let start = Instant::now();
    loop {
        match LineClient::connect(addr, Duration::from_secs(5)) {
            Ok(c) => return c,
            Err(e) => {
                assert!(
                    start.elapsed() < timeout,
                    "machid never came up on {addr}: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[test]
fn sigterm_mid_storm_loses_no_acked_commits() {
    let root = tempdir("storm");
    let addr = free_addr();
    let stderr_path = root.join("machid.stderr");
    let stderr_file = std::fs::File::create(&stderr_path).expect("stderr file");
    let mut child = Command::new(env!("CARGO_BIN_EXE_machid"))
        .arg(&addr)
        .env("MACHID_DURABLE_ROOT", root.join("data"))
        .env("MACHID_WORKERS", "2")
        .env("MACHID_QUEUE_CAP", "32")
        .stdout(Stdio::null())
        .stderr(Stdio::from(stderr_file))
        .spawn()
        .expect("spawn machid");
    let pid = child.id();

    // Wait for the listener, then storm it from several connections.
    drop(connect_with_retry(&addr, Duration::from_secs(20)));
    const THREADS: usize = 4;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = connect_with_retry(&addr, Duration::from_secs(10));
                let open = match client.request("OPEN") {
                    Ok(line) => line,
                    Err(_) => return Vec::new(),
                };
                let sid: u64 = open
                    .strip_prefix("OK ")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("bad OPEN reply: {open}"));
                let mut acked = Vec::new();
                for i in 0..2_000u64 {
                    let value = t as u64 * 100_000 + i;
                    let req = format!("EVAL {sid} val n{i} = ref({value});");
                    match client.request(&req) {
                        // VAL = the commit was fsynced before the reply;
                        // it must survive the SIGTERM no matter when it
                        // lands.
                        Ok(line) if line.starts_with("VAL ") => {
                            acked.push((sid, format!("n{i}"), value));
                        }
                        Ok(line) => panic!("unexpected reply mid-storm: {line}"),
                        // Shutdown closed the socket under us — whatever
                        // was in flight is simply not acked.
                        Err(_) => break,
                    }
                }
                acked
            })
        })
        .collect();

    // Let the storm build, then pull the plug.
    std::thread::sleep(Duration::from_millis(250));
    let kill = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("run kill");
    assert!(kill.success(), "kill -TERM failed");

    let status = child.wait().expect("wait machid");
    assert!(
        status.success(),
        "machid should exit 0 on SIGTERM, got {status}"
    );
    let acked: Vec<(u64, String, u64)> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("storm thread"))
        .collect();
    assert!(
        acked.len() >= THREADS,
        "the storm should land some acked commits before the TERM, got {}",
        acked.len()
    );
    let stderr = std::fs::read_to_string(&stderr_path).unwrap_or_default();
    assert!(
        stderr.contains("checkpointed"),
        "graceful path should checkpoint before exit; stderr:\n{stderr}"
    );

    // Reopen the same durable root in-process and check every acked
    // commit — value and pointer semantics (each `n<i>` is a ref cell).
    let server = Arc::new(Server::start(ServerConfig {
        workers: 2,
        queue_cap: 32,
        default_deadline: None,
        row_budget: None,
        shared_store: false,
        faults: Some(FaultConfig::off()),
        durable_root: Some(root.join("data")),
        role: ServerRole::Primary,
    }));
    let max_sid = acked.iter().map(|(sid, _, _)| *sid).max().unwrap_or(0);
    for _ in 0..max_sid {
        server.open_session().expect("reopen session");
    }
    for (sid, name, value) in &acked {
        let got = server
            .eval(*sid, &format!("!{name};"))
            .unwrap_or_else(|e| panic!("acked {name} lost from session {sid}: {e}"));
        assert_eq!(got, [format!("val it = {value} : int")], "sid {sid} {name}");
    }
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}
