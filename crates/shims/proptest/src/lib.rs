//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest 1.x this workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_recursive` / tuples / ranges / simple `[a-z]{n,m}` string
//! patterns, `proptest::collection::{vec, btree_map}`, `prop_oneof!`,
//! `Just`, `any::<bool>()`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros. Generation is random but deterministic per
//! (test name, case index); shrinking is not implemented — a failing
//! case panics with the case number so it can be replayed.

pub mod test_runner {
    use std::fmt;

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Failure raised by `prop_assert!` and friends.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic per-case random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5DEECE66D,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `bound` (> 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift; bias is irrelevant at test-generation scale.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Drives one `#[test]` expanded by `proptest!`.
    pub struct TestRunner {
        config: ProptestConfig,
        name_hash: u64,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRunner {
                config,
                name_hash: h,
            }
        }

        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::from_seed(self.name_hash ^ (u64::from(case) << 32) ^ u64::from(case))
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A reusable value generator.
    pub trait Strategy: Clone + 'static {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone + 'static,
        {
            Map { inner: self, f }
        }

        /// Depth-bounded recursive strategy: `recurse` receives the
        /// strategy for the next-shallower depth. The `desired_size` /
        /// `expected_branch_size` hints are accepted for API parity.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized,
            F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
            S: Strategy<Value = Self::Value>,
        {
            Recursive {
                leaf: self.boxed(),
                recurse: Rc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn DynStrategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate_dyn(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone + 'static,
        U: 'static,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Recursive<T> {
        leaf: BoxedStrategy<T>,
        recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                leaf: self.leaf.clone(),
                recurse: Rc::clone(&self.recurse),
                depth: self.depth,
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            // Random depth in [0, depth]: shallow values stay common.
            let d = rng.below(u64::from(self.depth) + 1) as u32;
            let mut strat = self.leaf.clone();
            for _ in 0..d {
                strat = (self.recurse)(strat);
            }
            strat.generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        pub options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf {
                options: self.options.clone(),
            }
        }
    }

    impl<T: 'static> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let (lo, hi) = (self.start as u32, self.end as u32);
            assert!(lo < hi, "empty char range");
            char::from_u32(lo + rng.below(u64::from(hi - lo)) as u32).unwrap_or(self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
    }

    /// `&'static str` patterns: a tiny regex subset — literal chars,
    /// `[a-z03…]` classes, and `{n}` / `{n,m}` repetition of the
    /// preceding atom — enough for proptest-style `"[a-c]{1,2}"` usage.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            let chars: Vec<char> = self.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                // Parse one atom.
                let mut alphabet: Vec<char> = Vec::new();
                match chars[i] {
                    '[' => {
                        i += 1;
                        while i < chars.len() && chars[i] != ']' {
                            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                                let (lo, hi) = (chars[i], chars[i + 2]);
                                for c in lo..=hi {
                                    alphabet.push(c);
                                }
                                i += 3;
                            } else {
                                alphabet.push(chars[i]);
                                i += 1;
                            }
                        }
                        i += 1; // closing ]
                    }
                    c => {
                        alphabet.push(c);
                        i += 1;
                    }
                }
                // Parse optional {n} / {n,m}.
                let (mut lo, mut hi) = (1usize, 1usize);
                if i < chars.len() && chars[i] == '{' {
                    i += 1;
                    let mut num = String::new();
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        num.push(chars[i]);
                        i += 1;
                    }
                    lo = num.parse().unwrap_or(1);
                    hi = lo;
                    if i < chars.len() && chars[i] == ',' {
                        i += 1;
                        let mut num2 = String::new();
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            num2.push(chars[i]);
                            i += 1;
                        }
                        hi = num2.parse().unwrap_or(lo);
                    }
                    i += 1; // closing }
                }
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                for _ in 0..n {
                    if alphabet.is_empty() {
                        continue;
                    }
                    let k = rng.below(alphabet.len() as u64) as usize;
                    out.push(alphabet[k]);
                }
            }
            out
        }
    }

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized + 'static {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    #[derive(Clone)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }

    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `vec(strategy, size_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(
                self.size.start < self.size.end,
                "empty size range for collection::vec"
            );
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// `btree_map(key_strategy, value_strategy, size_range)`. As in
    /// upstream proptest, duplicate keys collapse, so maps may come out
    /// smaller than the sampled size.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            assert!(
                self.size.start < self.size.end,
                "empty size range for collection::btree_map"
            );
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, OneOf, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            options: vec![$($crate::strategy::Strategy::boxed($strat)),+],
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// The test-defining macro. Expands each `fn name(arg in strategy, …)`
/// into a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $( #[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut prop_rng = runner.rng_for(case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("proptest `{}` case {case} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_generation() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..50 {
            let s = Strategy::generate(&"[a-c]{1,2}", &mut rng);
            assert!((1..=2).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    proptest! {
        #[test]
        fn ranges_and_maps(x in 0i64..10, m in collection::btree_map(Just(1u8), 0i64..5, 0..3)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(m.len() <= 1); // single possible key
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn recursive_terminates(v in (0i64..3).prop_map(|x| x).prop_recursive(3, 8, 2, |inner| {
            prop_oneof![inner.prop_map(|x| x), 0i64..3]
        })) {
            prop_assert!((0..3).contains(&v));
        }
    }
}
