//! `machi` — run Machiavelli programs from files or stdin.
//!
//! ```sh
//! machi program.mch            # run a script, print each result
//! machi -q program.mch         # print only the final result
//! machi -t program.mch         # type-check only (no evaluation)
//! machi                        # read a program from stdin
//! ```

use machiavelli::Session;
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: machi [-q | -t] [FILE.mch]");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut quiet = false;
    let mut type_only = false;
    let mut file: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-q" => quiet = true,
            "-t" => type_only = true,
            "-h" | "--help" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => {
                if file.replace(arg).is_some() {
                    usage();
                }
            }
        }
    }

    let source = match &file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("machi: cannot read {path}: {e}");
                return ExitCode::from(1);
            }
        },
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("machi: cannot read stdin");
                return ExitCode::from(1);
            }
            s
        }
    };

    let mut session = Session::new();
    if type_only {
        match session.type_of(&source) {
            Ok(ty) => {
                println!("{ty}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("machi: {e}");
                ExitCode::from(1)
            }
        }
    } else {
        match session.run(&source) {
            Ok(outcomes) => {
                if quiet {
                    if let Some(last) = outcomes.last() {
                        println!(">> {}", last.show());
                    }
                } else {
                    for o in outcomes {
                        println!(">> {}", o.show());
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("machi: {e}");
                ExitCode::from(1)
            }
        }
    }
}
