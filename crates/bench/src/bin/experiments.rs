//! Regenerate the paper-vs-measured comparison of EXPERIMENTS.md:
//! every figure's inferred types and query results, printed side by side
//! with the paper's output.
//!
//! ```sh
//! cargo run -p machiavelli-bench --bin experiments
//! ```

use machiavelli::value::show_value;
use machiavelli::Session;
use machiavelli_bench::{fig2_session, university_session, FIG5_POLY_SOURCE, FIG5_SOURCE};
use machiavelli_oodb::UniversityParams;

struct Report {
    failures: usize,
}

impl Report {
    fn check(&mut self, what: &str, paper: &str, measured: &str, matches: bool) {
        let status = if matches { "OK " } else { "DIFF" };
        println!("[{status}] {what}");
        println!("       paper    : {paper}");
        println!("       measured : {measured}");
        if !matches {
            self.failures += 1;
        }
    }

    fn exact(&mut self, what: &str, paper_and_expected: &str, measured: &str) {
        let matches = paper_and_expected == measured;
        self.check(what, paper_and_expected, measured, matches);
    }
}

fn as_card(v: &machiavelli::value::Value) -> usize {
    match v {
        machiavelli::value::Value::Set(s) => s.len(),
        _ => 0,
    }
}

fn main() {
    let mut r = Report { failures: 0 };

    println!("== E0: introduction — Wealthy ==");
    let mut s = Session::new();
    let out = s
        .eval_one("fun Wealthy(S) = select x.Name where x <- S with x.Salary > 100000;")
        .unwrap();
    r.exact(
        "Wealthy type",
        "{[(\"a) Name:\"b,Salary:int]} -> {\"b}",
        &out.scheme.show(),
    );
    let out = s
        .eval_one(
            r#"Wealthy({[Name = "Joe", Salary = 22340],
                        [Name = "Fred", Salary = 123456],
                        [Name = "Helen", Salary = 132000]});"#,
        )
        .unwrap();
    r.exact(
        "Wealthy result",
        r#"{"Fred", "Helen"}"#,
        &show_value(&out.value),
    );

    println!("\n== E1: Figure 1 ==");
    let out = s
        .eval_one(
            "fun phone(x) = (case x.Status of Employee of y => y.Extension,
                                              Consultant of y => y.Telephone);",
        )
        .unwrap();
    r.check(
        "phone type (paper names variables differently; α-equivalent)",
        "[('a) Status:<Employee:[('b) Extension:'d], Consultant:[('c) Telephone:'d]>] -> 'd",
        &out.scheme.show(),
        out.scheme.show()
            == "[('a) Status:<Consultant:[('b) Telephone:'c],Employee:[('d) Extension:'c]>] -> 'c",
    );
    s.run(
        r#"val joe = [Name="Joe", Age=21,
                        Status=(Consultant of [Address="Philadelphia", Telephone=2221234])];"#,
    )
    .unwrap();
    let out = s.eval_one("phone(joe);").unwrap();
    r.exact("phone(joe)", "2221234", &show_value(&out.value));
    let out = s
        .eval_one("fun increment_age(x) = modify(x, Age, x.Age + 1);")
        .unwrap();
    r.exact(
        "increment_age type",
        "[('a) Age:int] -> [('a) Age:int]",
        &out.scheme.show(),
    );

    println!("\n== E9: §3.3 — Join3 conditional scheme ==");
    let out = s
        .eval_one("fun Join3(x,y,z) = join(x, join(y,z));")
        .unwrap();
    r.exact(
        "Join3 conditional scheme",
        "(\"a * \"b * \"c) -> \"d where { \"d = \"a lub \"e, \"e = \"b lub \"c }",
        &out.scheme.show(),
    );
    let out = s
        .eval_one(r#"Join3([Name="Joe"],[Age=21],[Office=27]);"#)
        .unwrap();
    r.exact(
        "Join3 application (canonical field order)",
        r#"[Age=21, Name="Joe", Office=27]"#,
        &show_value(&out.value),
    );
    let out = s.eval_one("project(it, [Name: string]);").unwrap();
    r.exact("projection", r#"[Name="Joe"]"#, &show_value(&out.value));

    println!("\n== E2/E3: Figures 2 and 3 ==");
    let mut s = fig2_session();
    let ty = s.type_of("parts;").unwrap();
    r.exact(
        "parts type (canonical field order)",
        "{[P#:int,Pinfo:<BasePart:[Cost:int],CompositePart:[AssemCost:int,SubParts:{[P#:int,Qty:int]}]>,Pname:string]}",
        &ty,
    );
    let out = s
        .eval_one("select x.Pname where x <- join(parts, {[Pinfo=(BasePart of [])]}) with true;")
        .unwrap();
    r.exact("base parts", r#"{"bolt", "nut"}"#, &show_value(&out.value));
    s.run("fun Join3(x,y,z) = join(x, join(y,z));").unwrap();
    let out = s
        .eval_one(
            r#"select x.Pname
               where x <- join(parts, supplied_by)
               with Join3(x.Suppliers, suppliers, {[Sname="Baker"]}) <> {};"#,
        )
        .unwrap();
    r.exact(
        "parts supplied by Baker (paper shows {\"bolt\", ...})",
        r#"{"bolt", "engine"}"#,
        &show_value(&out.value),
    );

    println!("\n== E4: Figure 4 — transitive closure ==");
    let s2 = Session::new();
    r.check(
        "Closure type (paper: {[A:\"a,B:\"b]} -> ...; its own x.B = y.A equates \"a and \"b)",
        "{[A:\"a,B:\"b]} -> {[A:\"a,B:\"b]}",
        &s2.scheme_of("Closure").unwrap().show(),
        s2.scheme_of("Closure").unwrap().show() == "{[A:\"a,B:\"a]} -> {[A:\"a,B:\"a]}",
    );

    println!("\n== E5: Figure 5 — cost and expensive_parts ==");
    let mut s = fig2_session();
    s.run(FIG5_SOURCE).unwrap();
    s.run(FIG5_POLY_SOURCE).unwrap();
    let out = s.eval_one("expensive_parts(parts, 1000);").unwrap();
    r.exact(
        "expensive_parts(parts, 1000) (paper: {\"engine\", ...})",
        r#"{"engine"}"#,
        &show_value(&out.value),
    );
    let out = s
        .eval_one("cost([Pinfo=(BasePart of [Cost=5]), Pname=\"b\", P#=1]);")
        .unwrap();
    r.exact("cost of a base part", "5", &show_value(&out.value));

    println!("\n== E7/E8: Figures 8 and 9 — views ==");
    let (mut s, uni) = university_session(UniversityParams {
        n_people: 100,
        seed: 2026,
        ..Default::default()
    });
    let counts = [
        ("PersonView", uni.objects.len()),
        ("EmployeeView", uni.count_employees()),
        ("StudentView", uni.count_students()),
        ("TFView", uni.count_tfs()),
    ];
    for (view, expected) in counts {
        let out = s.eval_one(&format!("card({view}(persons));")).unwrap();
        r.exact(
            &format!("{view} extent (vs generator ground truth)"),
            &expected.to_string(),
            &show_value(&out.value),
        );
    }
    let both = uni.roles.iter().filter(|x| x.0 && x.1).count();
    let out = s
        .eval_one("card(join(StudentView(persons), EmployeeView(persons)));")
        .unwrap();
    r.exact(
        "join of views = extent intersection",
        &both.to_string(),
        &show_value(&out.value),
    );
    let either = uni.roles.iter().filter(|x| x.0 || x.1).count();
    let out = s
        .eval_one("card(unionc(StudentView(persons), EmployeeView(persons)));")
        .unwrap();
    r.exact(
        "unionc of views = extent union",
        &either.to_string(),
        &show_value(&out.value),
    );

    println!("\n== E11: comprehension planner — plan shapes and agreement ==");
    {
        use machiavelli::eval::set_planner_enabled;
        let (mut s, _db) = machiavelli_bench::scaled_parts_session(400, 40, 11);
        let join_query = "select (p.Pname, sb.P#) where p <- parts, sb <- supplied_by \
                          with p.P# = sb.P#;";
        let tree = s.plan_of(join_query).unwrap();
        println!("{tree}");
        r.check(
            "fig9-shape equi-join plans as hash build/probe",
            "plan contains a HashJoin node",
            if tree.contains("HashJoin") {
                "HashJoin"
            } else {
                "missing"
            },
            tree.contains("HashJoin"),
        );
        let fallback = s
            .plan_of("select x where x <- parts with not(member(x, parts));")
            .unwrap();
        r.check(
            "unsafe predicate falls back to select_loop",
            "Fallback (select_loop): …",
            &fallback,
            fallback.starts_with("Fallback (select_loop)"),
        );
        // Store off: E11 isolates the planner's build/probe win over
        // the nested loop; index *reuse* is measured separately in E12.
        let timed = |s: &mut Session, on: bool, query: &str| {
            let prev = set_planner_enabled(on);
            let prev_store = machiavelli::store::set_store_enabled(false);
            let t0 = std::time::Instant::now();
            let out = s.eval_one(query).unwrap().value;
            let dt = t0.elapsed();
            machiavelli::store::set_store_enabled(prev_store);
            set_planner_enabled(prev);
            (out, dt)
        };
        let (planned, t_plan) = timed(&mut s, true, join_query);
        let (interpreted, t_interp) = timed(&mut s, false, join_query);
        r.check(
            "planner and select_loop agree on the equi-join",
            &format!("{} rows", as_card(&interpreted)),
            &format!("{} rows", as_card(&planned)),
            planned == interpreted,
        );
        let speedup = t_interp.as_secs_f64() / t_plan.as_secs_f64().max(1e-9);
        r.check(
            "hash build/probe beats the nested loop at n=400",
            "≥ 5×",
            &format!("{speedup:.1}× ({t_interp:.2?} vs {t_plan:.2?})"),
            speedup >= 5.0,
        );
    }

    println!("\n== E12: index store — repeated-plan reuse (fig5 cost recursion) ==");
    {
        use machiavelli::eval::set_planner_enabled;
        use machiavelli::store::set_store_enabled;
        let (mut s, _db) = machiavelli_bench::scaled_parts_session(200, 20, 11);
        s.run(machiavelli_bench::FIG5_SOURCE).unwrap();
        let query = "expensive_parts(parts, 0);";
        let reps = 3u32;
        let timed = |s: &mut Session, planner: bool, store: bool| {
            let prev_p = set_planner_enabled(planner);
            let prev_s = set_store_enabled(store);
            s.store_reset();
            let t0 = std::time::Instant::now();
            let mut out = None;
            for _ in 0..reps {
                out = Some(s.eval_one(query).unwrap().value);
            }
            let dt = t0.elapsed();
            set_store_enabled(prev_s);
            set_planner_enabled(prev_p);
            (out.unwrap(), dt)
        };
        let (v_store, t_store) = timed(&mut s, true, true);
        let stats = s.store_stats();
        let (v_rebuild, t_rebuild) = timed(&mut s, true, false);
        let (v_interp, t_interp) = timed(&mut s, false, false);
        r.check(
            "store, always-rebuild and select_loop agree",
            &format!("{} parts", as_card(&v_interp)),
            &format!("{} / {} parts", as_card(&v_store), as_card(&v_rebuild)),
            v_store == v_interp && v_rebuild == v_interp,
        );
        r.check(
            "the whole recursive sweep builds the parts index once",
            "1 build, hits ≥ 1",
            &format!("{} builds, {} hits", stats.builds, stats.hits),
            stats.builds == 1 && stats.hits >= 1,
        );
        let vs_interp = t_interp.as_secs_f64() / t_store.as_secs_f64().max(1e-9);
        let vs_rebuild = t_rebuild.as_secs_f64() / t_store.as_secs_f64().max(1e-9);
        println!(
            "       rebuild-vs-store : {vs_rebuild:.1}× ({t_rebuild:.2?} vs {t_store:.2?}, {reps} reps)"
        );
        r.check(
            "repeated fig5 eval beats the cold interpreted path",
            "≥ 3×",
            &format!("{vs_interp:.1}× ({t_interp:.2?} vs {t_store:.2?})"),
            vs_interp >= 3.0,
        );
    }

    println!("\n== E13: parallel lane — partition join + par_hom folds ==");
    {
        use machiavelli::eval::set_planner_enabled;
        use machiavelli::value::{tuning, Value};
        let _ = set_planner_enabled(true);
        let n = 20_000usize;
        let rows = |offset: usize| {
            Value::set((0..n).map(|i| {
                Value::record([
                    ("K".into(), Value::Int((i + offset) as i64)),
                    ("A".into(), Value::Int(i as i64)),
                ])
            }))
        };
        let mut s = Session::new();
        s.bind_external("r", rows(0), "{[K: int, A: int]}").unwrap();
        s.bind_external("t", rows(n - n / 8), "{[K: int, A: int]}")
            .unwrap();
        s.bind_external(
            "big",
            Value::set((0..n).map(|i| Value::Int(i as i64))),
            "{int}",
        )
        .unwrap();
        let join_q = "card(select (x.A, y.A) where x <- r, y <- t with x.K = y.K);";
        let timed = |s: &mut Session, query: &str, par: Option<usize>| {
            // The store would serve the repeat builds and bypass the
            // lane; disable it so seq-vs-par compare the same work.
            let prev_store = machiavelli::store::set_store_enabled(false);
            let prev_on = tuning::set_parallel_enabled(par.is_some());
            let prev_t = tuning::set_par_threads(par);
            let t0 = std::time::Instant::now();
            let out = s.eval_one(query).unwrap().value;
            let dt = t0.elapsed();
            tuning::set_par_threads(prev_t);
            tuning::set_parallel_enabled(prev_on);
            machiavelli::store::set_store_enabled(prev_store);
            (out, dt)
        };
        // `card` over the join result is itself a proper hom, so one
        // parallel evaluation exercises both halves of the lane.
        tuning::reset_par_stats();
        let (v_seq, t_seq) = timed(&mut s, join_q, None);
        let (v_par, t_par) = timed(&mut s, join_q, Some(4));
        r.check(
            "parallel and sequential join+fold agree",
            &show_value(&v_seq),
            &show_value(&v_par),
            v_par == v_seq,
        );
        let join_speedup = t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9);
        println!(
            "       join seq-vs-par4 : {join_speedup:.2}x ({t_seq:.2?} vs {t_par:.2?}, n={n}; \
             1-core CI runners make this informational — BENCH_PR4.json holds the bar)"
        );
        let (v_hseq, _) = timed(&mut s, "sum(big);", None);
        let (v_hpar, _) = timed(&mut s, "sum(big);", Some(4));
        r.check(
            "par_hom-backed sum agrees",
            &show_value(&v_hseq),
            &show_value(&v_hpar),
            v_hpar == v_hseq,
        );
        let stats = tuning::par_stats();
        r.check(
            "the lane actually engaged (join + hom hits, no fallbacks)",
            "par_joins ≥ 1, par_homs ≥ 1, 0 fallbacks",
            &format!(
                "{} joins, {} homs, {} + {} fallbacks",
                stats.par_joins, stats.par_homs, stats.par_join_fallbacks, stats.par_hom_fallbacks
            ),
            stats.par_joins >= 1
                && stats.par_homs >= 1
                && stats.par_join_fallbacks == 0
                && stats.par_hom_fallbacks == 0,
        );
    }

    println!("\n== E14: composed lane — cached indexes under writes + parallel probes ==");
    {
        use machiavelli::eval::set_planner_enabled;
        use machiavelli::value::{tuning, Value};
        let _ = set_planner_enabled(true);

        // Part A — cache survival: the repeated fig5 `cost` sweep mixed
        // with ref writes to an *unrelated* relation. Under PR 4's
        // epoch contract every write dropped the whole store (one
        // rebuild per write); dependency-tracked invalidation must keep
        // the `parts` index warm through all of them.
        let (mut s, _db) = machiavelli_bench::scaled_parts_session(120, 12, 11);
        s.run(machiavelli_bench::FIG5_SOURCE).unwrap();
        s.run("val side = ref({[K=0]});").unwrap();
        s.store_reset();
        let first = s.eval_one("expensive_parts(parts, 0);").unwrap().value;
        let mut stable = true;
        for i in 0..4 {
            s.eval_one(&format!("side := {{[K={i}]}};")).unwrap();
            let again = s.eval_one("expensive_parts(parts, 0);").unwrap().value;
            stable = stable && again == first;
        }
        let stats = s.store_stats();
        r.check(
            "the parts index survives every unrelated ref write",
            "1 build, 0 invalidated, 0 cleared (PR 4 evicted all)",
            &format!(
                "{} builds, {} invalidated, {} cleared, results stable: {stable}",
                stats.builds, stats.invalidated, stats.cleared
            ),
            stats.builds == 1 && stats.invalidated == 0 && stats.cleared == 0 && stable,
        );

        // Part B — the composed store+parallel path: a fig9-shaped join
        // served from the warm store, probed sequentially vs by four
        // workers, interleaved with more unrelated writes.
        let n = 20_000usize;
        let rows = |offset: usize| {
            Value::set((0..n).map(|i| {
                Value::record([
                    ("K".into(), Value::Int((i + offset) as i64)),
                    ("A".into(), Value::Int(i as i64)),
                ])
            }))
        };
        let mut s = Session::new();
        s.bind_external("r", rows(0), "{[K: int, A: int]}").unwrap();
        s.bind_external("t", rows(n - n / 8), "{[K: int, A: int]}")
            .unwrap();
        s.run("val side = ref(0);").unwrap();
        s.store_reset();
        let q = "card(select (x.A, y.A) where x <- r, y <- t with x.K = y.K);";
        let timed = |s: &mut Session, par: Option<usize>| {
            let prev_on = tuning::set_parallel_enabled(par.is_some());
            let prev_t = tuning::set_par_threads(par);
            let prev_probe = tuning::set_par_probe_min_rows(Some(1));
            let t0 = std::time::Instant::now();
            let out = s.eval_one(q).unwrap().value;
            let dt = t0.elapsed();
            tuning::set_par_probe_min_rows(prev_probe);
            tuning::set_par_threads(prev_t);
            tuning::set_parallel_enabled(prev_on);
            (out, dt)
        };
        let (v_cold, _) = timed(&mut s, None);
        s.eval_one("side := 1;").unwrap();
        tuning::reset_par_stats();
        let (v_seq, t_seq) = timed(&mut s, None);
        s.eval_one("side := 2;").unwrap();
        let (v_par, t_par) = timed(&mut s, Some(4));
        r.check(
            "cached sequential and cached parallel probes agree across writes",
            &show_value(&v_cold),
            &format!("{} / {}", show_value(&v_seq), show_value(&v_par)),
            v_seq == v_cold && v_par == v_cold,
        );
        let stats = s.store_stats();
        let ps = tuning::par_stats();
        r.check(
            "one build serves every probe; the parallel probe engaged",
            "1 build, ≥ 2 hits, par_probes ≥ 1, 0 probe fallbacks",
            &format!(
                "{} builds, {} hits, {} par_probes, {} fallbacks",
                stats.builds, stats.hits, ps.par_probes, ps.par_probe_fallbacks
            ),
            stats.builds == 1
                && stats.hits >= 2
                && ps.par_probes >= 1
                && ps.par_probe_fallbacks == 0,
        );
        let probe_speedup = t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9);
        println!(
            "       cached probe seq-vs-par4 : {probe_speedup:.2}x ({t_seq:.2?} vs {t_par:.2?}, \
             n={n}; 1-core CI runners make this informational — BENCH_PR5.json holds the bar)"
        );
    }

    println!("\n== E10: §5 — unionc equation, member, dynamics ==");
    let mut s = Session::new();
    let lhs = s
        .eval_one(r#"unionc({[Name="a", Advisor=1]}, {[Name="b", Salary=9]});"#)
        .unwrap();
    let rhs = s
        .eval_one(
            r#"union(project({[Name="a", Advisor=1]}, {[Name: string]}),
                     project({[Name="b", Salary=9]}, {[Name: string]}));"#,
        )
        .unwrap();
    r.check(
        "unionc equation: union(s1,s2) = project(s1,⊓) ∪ project(s2,⊓)",
        &show_value(&rhs.value),
        &show_value(&lhs.value),
        lhs.value == rhs.value,
    );
    let out = s.eval_one("dynamic([A=1]) = dynamic([A=1]);").unwrap();
    r.exact(
        "dynamics equal only per creation",
        "false",
        &show_value(&out.value),
    );

    println!();
    if r.failures == 0 {
        println!("all experiments reproduce the paper (modulo documented display conventions)");
    } else {
        println!("{} experiment(s) diverged", r.failures);
        std::process::exit(1);
    }
}
