//! The physical operator pipeline: an executable tree of `Scan` /
//! `IndexScan` / `Filter` / `HashJoin` / `NestedLoop` operators under a
//! `Project`, plus a pull-based executor over [`Value`]/[`MSet`].
//!
//! Operators yield **environments**: each pulled row is the outer
//! evaluation environment extended with one binding per generator
//! (environments are persistent linked lists, so extension is O(1) and
//! shares all tails). Expression evaluation — sources, filters, keys,
//! the result — goes through the [`EvalHook`] callback into the real
//! evaluator, so the pipeline adds strategy, never new semantics.
//!
//! Hash-join and index-scan keys reuse the structural hashing of
//! [`machiavelli_value::hash_value`] with [`value_eq`] equality (the
//! store's [`KeyTuple`]), exactly like the relational substrate's
//! `RowKey` — collision-correct for all description values, no
//! rendering, no reliance on display injectivity.
//!
//! # The index store
//!
//! Operators that group a relation by key — `HashJoin`'s build table,
//! `IndexScan`'s key index — request the grouping from the session's
//! [`machiavelli_store::IndexStore`] before constructing it inline, so
//! repeated plans over the same relation (the fig5 `cost` recursion,
//! re-run REPL queries) build once and probe thereafter. An index is
//! only *cacheable* when its key and pushed-filter expressions are
//! closed under the row binder ([`crate::analysis::closed_under`]) —
//! then its contents are a pure function of the relation's storage
//! identity and the expressions' text (the **fingerprint**), never of
//! the enclosing environment. Groupings hold **row indices** into the
//! relation's canonical slice; the store re-represents fully plain
//! relations in `Send + Sync` form, which is what lets a *cached*
//! index serve the parallel probe (see the parallel execution contract
//! in the crate docs) — and a two-generator join may flip its build
//! side toward an already-cached (or smaller) relation at open
//! ([`SwapInfo`]). Cache consultation is invisible in the results: a
//! hit returns exactly the grouping an inline build would have
//! produced (same rows, same canonical order per group), and the
//! expressions skipped on a hit are planner-safe — pure and total — so
//! not re-evaluating them is unobservable. See `machiavelli-store` for
//! the invalidation contract (pointer-identity keying + dirty-ref
//! tracking).

use crate::analysis::{closed_under, is_safe_expr, mentions_any, stable_source, Conjunct};
use crate::logical::LogicalPlan;
use crate::parallel::{
    extract_key, par_evaluable, par_partition_join, par_probe_cached, plain_binop, plain_eval,
    safe_eval, Keyed, PlainBindings, ValueBindings, WorkerCx, CHUNK_TICK_MASK,
};
use machiavelli_exec::{self as exec, Morsel};
use machiavelli_store::{store_enabled, with_store, CachedIndex, Index, KeyTuple};
use machiavelli_syntax::ast::{BinOp, Expr, ExprKind};
use machiavelli_syntax::pretty::expr_to_string;
use machiavelli_syntax::symbol::Symbol;
use machiavelli_trace::{self as trace, DeclineReason};
use machiavelli_value::plain::{ColumnarRelation, PlainIndex, PlainValue};
use machiavelli_value::tuning::{
    columnar_min_rows, note_offload, note_par_join, note_par_probe, note_snapshot,
    par_join_min_build_rows, par_probe_min_rows, par_threads, parallel_enabled,
};
use machiavelli_value::{show_value, value_eq, Env, MSet, Value};
use std::rc::Rc;
use std::sync::Arc;

/// Callback into the host evaluator. The executor never interprets
/// expressions itself; it only decides *which* expressions to evaluate
/// *in which* environments.
pub trait EvalHook {
    type Error;
    fn eval(&mut self, env: &Env, expr: &Expr) -> Result<Value, Self::Error>;
}

/// Executor errors: either the hook failed, or a value had the wrong
/// shape at an operator boundary (mirroring the evaluator's own errors
/// so the dispatch layer can convert losslessly).
#[derive(Debug)]
pub enum ExecError<E> {
    /// The evaluator callback failed (raised, unbound, …).
    Eval(E),
    /// A generator source evaluated to a non-set (rendered value).
    NotASet(String),
    /// A strict conjunct (left operand of `andalso`) evaluated to a
    /// non-boolean (rendered value).
    NotABool(String),
    /// The governing [`machiavelli_value::governor::QueryGuard`]
    /// stopped the pipeline (checked after every parallel fan-out and
    /// inside worker chunk loops). Non-generic: the guard is outside
    /// the hook's error space.
    Interrupted(machiavelli_value::governor::Trip),
    /// A parallel worker panicked; caught at the lane boundary and
    /// reported as an error instead of unwinding through the session.
    WorkerPanic(String),
}

impl<E> From<E> for ExecError<E> {
    fn from(e: E) -> Self {
        ExecError::Eval(e)
    }
}

/// Render a caught panic payload (the common `&str`/`String` cases;
/// anything else gets a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Run a parallel driver under the lane's panic trap. A worker panic
/// (injected or real) resumes on the coordinator inside `f`; trapping
/// it here turns a would-be session abort into
/// [`ExecError::WorkerPanic`]. After a clean return the (sticky) query
/// guard is re-checked: workers bail early with truncated results when
/// the guard trips mid-fan-out, so a trip must surface as
/// [`ExecError::Interrupted`] before the result can be used.
fn run_par<T, E>(f: impl FnOnce() -> T) -> Result<T, ExecError<E>> {
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        .map_err(|payload| ExecError::WorkerPanic(panic_message(payload.as_ref())))?;
    if let Some(trip) = machiavelli_value::governor::check_current() {
        return Err(ExecError::Interrupted(trip));
    }
    Ok(out)
}

/// Static eligibility of a [`PhysOp::HashJoin`] for the plain-data
/// parallel lane. Present iff the **probe keys** are [`par_evaluable`]
/// under the earlier binders — enough for the partition-parallel probe
/// over a *cached* plain index, which needs no build-side evaluation at
/// all. `build_ok` additionally records whether the build keys and
/// pushed filters are `par_evaluable` under the build binder — the
/// stronger requirement of the inline partition build+probe lane
/// (uncached joins). Carries the probe binders the keys actually
/// mention, so the executor extracts only those per input row.
#[derive(Debug)]
pub struct ParInfo {
    pub probe_vars: Vec<Symbol>,
    pub build_ok: bool,
}

/// Static swappability of a two-generator equi-join: the planner keeps
/// generator order, but when the *first* generator's side already has a
/// live cached index — or is the smaller relation while neither side is
/// cached — building on it instead is a pure physical flip. Computed in
/// [`LogicalPlan::physical`] only when the flip is unobservable: both
/// sources independent, the first lowered to a bare `Scan`, the would-be
/// build keys and filters closed under the first binder (so the swapped
/// build is cacheable under `fingerprint`), and the comprehension's
/// result expression planner-safe (a swap enumerates bindings
/// probe-major over the *other* side, so an effectful result could
/// observe the order change; a safe result cannot). The decision itself
/// is taken at open time from store metadata; `explain` renders the
/// prediction as `HashJoin[idx cached, swapped]`.
#[derive(Debug)]
pub struct SwapInfo {
    /// Store fingerprint of the swapped-orientation build table (over
    /// the first generator's relation, keyed by the probe expressions).
    pub fingerprint: String,
    /// Parallel eligibility of the swapped orientation's probe side
    /// (the original build keys under the join binder).
    pub par: Option<ParInfo>,
}

/// One key of an [`PhysOp::IndexScan`]: an equality conjunct
/// `on = probe` split into the indexed side (mentions only the scan's
/// binder) and the probe side (an environment-level expression that
/// mentions the binder not at all).
#[derive(Debug)]
pub struct IndexKey<'a> {
    pub on: &'a Expr,
    pub probe: &'a Expr,
}

/// A physical operator. The tree is left-deep in generator order:
/// generator 0 is the innermost `Scan`/`IndexScan`, each later
/// generator wraps the pipeline in a join operator, and residual
/// conjuncts sit in `Filter` nodes at the level where they become
/// decidable.
#[derive(Debug)]
pub enum PhysOp<'a> {
    /// Materialize an independent source once and stream its elements,
    /// binding `var` (pushed-down conjuncts applied per element).
    Scan {
        var: Symbol,
        source: &'a Expr,
        filters: Vec<Conjunct<'a>>,
    },
    /// Equality-probe scan: group the source by the `on` key
    /// expressions (through the index store), evaluate the `probe`
    /// sides once in the outer environment, and stream only the
    /// matching group. Formed only when the keys are cacheable, so it
    /// always carries a fingerprint.
    IndexScan {
        var: Symbol,
        source: &'a Expr,
        keys: Vec<IndexKey<'a>>,
        filters: Vec<Conjunct<'a>>,
        fingerprint: String,
    },
    /// Cross/“θ” join: for each input row, iterate the source — evaluated
    /// once when independent, per input row when `dependent`.
    NestedLoop {
        input: Box<PhysOp<'a>>,
        var: Symbol,
        source: &'a Expr,
        dependent: bool,
        filters: Vec<Conjunct<'a>>,
    },
    /// Hash build/probe equi-join: build a table over the (independent)
    /// source keyed by `build_keys(var)`, then probe with
    /// `probe_keys(earlier binders)` per input row. `fingerprint` is
    /// `Some` when the build table is cacheable in the index store
    /// (build keys and pushed filters closed under `var`).
    HashJoin {
        input: Box<PhysOp<'a>>,
        var: Symbol,
        source: &'a Expr,
        filters: Vec<Conjunct<'a>>,
        probe_keys: Vec<&'a Expr>,
        build_keys: Vec<&'a Expr>,
        fingerprint: Option<String>,
        /// `Some` when the join's probe side is statically eligible for
        /// the plain-value lane (see the parallel execution contract in
        /// the crate docs): a *cached plain* build table can then be
        /// probed by parallel workers; `par.build_ok` additionally
        /// enables the inline partition build+probe for uncached
        /// builds. Whether an execution actually parallelizes is
        /// decided at open time: the lane must be enabled with >1
        /// worker threads, size cutoffs
        /// ([`machiavelli_value::tuning::par_join_min_build_rows`] /
        /// [`machiavelli_value::tuning::par_probe_min_rows`]) must
        /// clear, and every key must extract to plain data.
        par: Option<ParInfo>,
        /// `Some` when the build side may be flipped to the first
        /// generator at open time (see [`SwapInfo`]).
        swap: Option<SwapInfo>,
    },
    /// Residual predicate evaluation over input rows.
    Filter {
        input: Box<PhysOp<'a>>,
        conjuncts: Vec<Conjunct<'a>>,
    },
}

/// The full pipeline: operator tree plus the projected result.
#[derive(Debug)]
pub struct PhysicalPlan<'a> {
    pub root: PhysOp<'a>,
    pub result: &'a Expr,
}

/// The static trace-span label of one operator: the `explain` line
/// minus the display-level markers — a span records the lane and cache
/// outcome that *actually happened* as separate fields, so the label
/// carries only what is fixed at plan time. Only built while a trace is
/// active (the span API takes it as a closure).
fn op_label(op: &PhysOp<'_>) -> String {
    use crate::explain::{filters_suffix, keys_list};
    match op {
        PhysOp::Scan {
            var,
            source,
            filters,
        } => scan_label(*var, source, filters),
        PhysOp::IndexScan {
            var,
            source,
            keys,
            filters,
            ..
        } => {
            let rendered: Vec<String> = keys
                .iter()
                .map(|IndexKey { on, probe }| {
                    format!("{} = {}", expr_to_string(on), expr_to_string(probe))
                })
                .collect();
            format!(
                "IndexScan {var} <- {} key({}){}",
                expr_to_string(source),
                rendered.join(", "),
                filters_suffix(filters)
            )
        }
        PhysOp::NestedLoop {
            var,
            source,
            dependent,
            filters,
            ..
        } => {
            let dep = if *dependent { " (dependent)" } else { "" };
            format!(
                "NestedLoop {var} <- {}{dep}{}",
                expr_to_string(source),
                filters_suffix(filters)
            )
        }
        PhysOp::HashJoin {
            probe_keys,
            build_keys,
            ..
        } => format!(
            "HashJoin probe({}) build({})",
            keys_list(probe_keys),
            keys_list(build_keys)
        ),
        PhysOp::Filter { conjuncts, .. } => {
            let rendered: Vec<String> = conjuncts.iter().map(|c| expr_to_string(c.expr)).collect();
            format!("Filter ({})", rendered.join(" andalso "))
        }
    }
}

/// [`op_label`] for a scan opened outside [`Node::open`]'s dispatch (the
/// hash-join arms destructure their probe `Scan` and open it directly).
fn scan_label(var: Symbol, source: &Expr, filters: &[Conjunct<'_>]) -> String {
    format!(
        "Scan {var} <- {}{}",
        expr_to_string(source),
        crate::explain::filters_suffix(filters)
    )
}

/// Recognize an [`IndexKey`]-shaped conjunct of a single-binder scan:
/// `on = probe` with `on` mentioning only `var` and `probe` not
/// mentioning it (either orientation). Equality is total on all values,
/// so replacing the conjunct by an index probe can neither raise nor
/// change which rows pass.
fn index_key(e: &Expr, var: Symbol) -> Option<IndexKey<'_>> {
    let ExprKind::Binop {
        op: BinOp::Eq,
        left,
        right,
    } = &e.kind
    else {
        return None;
    };
    let binder = [var];
    let is_on = |e: &Expr| mentions_any(e, &binder) && closed_under(e, &binder);
    let is_probe = |e: &Expr| !mentions_any(e, &binder);
    if is_on(left) && is_probe(right) {
        Some(IndexKey {
            on: left,
            probe: right,
        })
    } else if is_on(right) && is_probe(left) {
        Some(IndexKey {
            on: right,
            probe: left,
        })
    } else {
        None
    }
}

/// Render a binder-closed key/filter expression with the binder printed
/// as `_`, so alpha-equivalent queries (`y <- t with … y.K …` vs
/// `z <- t with … z.K …`) produce the *same* fingerprint and share one
/// cached index instead of building the identical grouping twice.
/// Covers exactly the planner-safe class (the only expressions that
/// reach fingerprints); fully parenthesized and with string literals
/// escaped, so the rendering is injective on that class.
fn push_key_expr(e: &Expr, binder: Symbol, out: &mut String) {
    use std::fmt::Write as _;
    use ExprKind::*;
    match &e.kind {
        Var(x) if x.id() == binder.id() => out.push('_'),
        // Closed-under-binder expressions have no other variables; kept
        // for totality (`explain` never calls this on open exprs).
        Var(x) => out.push_str(x.as_str()),
        Unit => out.push_str("()"),
        Int(n) => {
            let _ = write!(out, "{n}");
        }
        // Bit pattern, to agree with `total_cmp`/hash equality on reals.
        Real(r) => {
            let _ = write!(out, "real:{}", r.to_bits());
        }
        Str(s) => {
            let _ = write!(out, "{s:?}");
        }
        Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Field { expr, label } => {
            push_key_expr(expr, binder, out);
            out.push('.');
            out.push_str(label.as_str());
        }
        If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str("(if ");
            push_key_expr(cond, binder, out);
            out.push_str(" then ");
            push_key_expr(then_branch, binder, out);
            out.push_str(" else ");
            push_key_expr(else_branch, binder, out);
            out.push(')');
        }
        Record(fields) => {
            out.push('[');
            for (i, (l, fe)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(l.as_str());
                out.push('=');
                push_key_expr(fe, binder, out);
            }
            out.push(']');
        }
        Set(items) => {
            out.push('{');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_key_expr(item, binder, out);
            }
            out.push('}');
        }
        Union { left, right } | Con { left, right } => {
            out.push_str(if matches!(&e.kind, Union { .. }) {
                "union("
            } else {
                "con("
            });
            push_key_expr(left, binder, out);
            out.push_str(", ");
            push_key_expr(right, binder, out);
            out.push(')');
        }
        Binop { op, left, right } => {
            out.push('(');
            push_key_expr(left, binder, out);
            let _ = write!(out, " {} ", op.symbol());
            push_key_expr(right, binder, out);
            out.push(')');
        }
        Unop { op, expr } => {
            out.push('(');
            out.push_str(match op {
                machiavelli_syntax::ast::UnOp::Neg => "-",
                machiavelli_syntax::ast::UnOp::Not => "not ",
            });
            push_key_expr(expr, binder, out);
            out.push(')');
        }
        // Not planner-safe, so never fingerprinted; render via the
        // pretty-printer for totality.
        _ => out.push_str(&expr_to_string(e)),
    }
}

/// The store fingerprint of an index-scan grouping: the rendered
/// source and (alpha-normalized) key expressions. The executor's cache
/// key already includes the relation's storage identity; the source
/// text is in the fingerprint so the *display* probe (`explain`'s
/// `[idx cached]` marker, which cannot evaluate the source) rarely
/// aliases two different relations.
fn scan_fingerprint(source: &Expr, var: Symbol, keys: &[IndexKey<'_>]) -> String {
    let mut out = format!("scan {} key(", expr_to_string(source));
    for (i, k) in keys.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_key_expr(k.on, var, &mut out);
    }
    out.push(')');
    out
}

/// The store fingerprint of a hash-join build table: rendered source
/// plus (alpha-normalized) build keys plus the pushed filters baked
/// into the table.
fn join_fingerprint(
    source: &Expr,
    var: Symbol,
    build_keys: &[&Expr],
    filters: &[Conjunct<'_>],
) -> String {
    let mut out = format!("join {} build(", expr_to_string(source));
    for (i, k) in build_keys.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_key_expr(k, var, &mut out);
    }
    out.push_str(") filter(");
    for (i, c) in filters.iter().enumerate() {
        if i > 0 {
            out.push_str(" andalso ");
        }
        push_key_expr(c.expr, var, &mut out);
    }
    out.push(')');
    out
}

impl<'a> LogicalPlan<'a> {
    /// Lower to the physical operator tree.
    pub fn physical(self) -> PhysicalPlan<'a> {
        let mut steps = self.steps.into_iter();
        let first = steps.next().expect("compile() guarantees ≥1 generator");
        debug_assert!(first.keys.is_empty(), "first generator cannot equi-join");
        // Split the first generator's pushed filters into equality keys
        // an index can answer and ordinary per-row filters. Plain
        // filter shapes (no equality against the environment) stay a
        // `Scan` and never touch the index store — and so do sources
        // that construct fresh storage per evaluation (view calls,
        // literals): their index could never be looked up again, so
        // caching one would only pin dead clones. With the store
        // disabled (ablation mode) everything stays a `Scan`: plans are
        // recompiled per evaluation, so the toggle is always current,
        // and a grouping nothing will reuse is strictly worse than the
        // filtered scan.
        let mut keys: Vec<IndexKey<'a>> = Vec::new();
        let mut filters: Vec<Conjunct<'a>> = Vec::new();
        if store_enabled() && stable_source(first.source) {
            for c in first.filters {
                match index_key(c.expr, first.var) {
                    Some(k) => keys.push(k),
                    None => filters.push(c),
                }
            }
        } else {
            filters = first.filters;
        }
        let mut root = if keys.is_empty() {
            PhysOp::Scan {
                var: first.var,
                source: first.source,
                filters,
            }
        } else {
            let fingerprint = scan_fingerprint(first.source, first.var, &keys);
            PhysOp::IndexScan {
                var: first.var,
                source: first.source,
                keys,
                filters,
                fingerprint,
            }
        };
        if !first.residual.is_empty() {
            root = PhysOp::Filter {
                input: Box::new(root),
                conjuncts: first.residual,
            };
        }
        // Binders of all earlier generators, for probe-side closure
        // analysis (probe keys are expressions over the input rows).
        let mut earlier: Vec<Symbol> = vec![first.var];
        for step in steps {
            root = if !step.keys.is_empty() {
                let build_keys: Vec<&'a Expr> = step.keys.iter().map(|k| k.build).collect();
                let probe_keys: Vec<&'a Expr> = step.keys.iter().map(|k| k.probe).collect();
                // Cacheable iff the table's contents depend on nothing
                // but the relation and the step's own binder, and the
                // source can actually share storage across evaluations
                // (a fresh-storage source can never hit). The
                // store_enabled() guard also skips rendering the
                // fingerprint entirely when nothing will consult it.
                let binder = [step.var];
                let fingerprint = (store_enabled()
                    && stable_source(step.source)
                    && build_keys.iter().all(|k| closed_under(k, &binder))
                    && step.filters.iter().all(|c| closed_under(c.expr, &binder)))
                .then(|| join_fingerprint(step.source, step.var, &build_keys, &step.filters));
                // Parallel-lane eligibility. Probe-key coverage by the
                // plain mini-evaluator is enough to probe a *cached*
                // plain index in parallel (no build-side evaluation
                // happens at all); the inline partition build+probe
                // additionally needs the build keys and pushed filters
                // covered under the build binder (`build_ok`) — the
                // same closure discipline the store uses, plus the
                // mini-evaluator's coverage test.
                let par = probe_keys
                    .iter()
                    .all(|k| par_evaluable(k, &earlier))
                    .then(|| ParInfo {
                        probe_vars: earlier
                            .iter()
                            .copied()
                            .filter(|v| {
                                let v = [*v];
                                probe_keys.iter().any(|k| mentions_any(k, &v))
                            })
                            .collect(),
                        build_ok: build_keys.iter().all(|k| par_evaluable(k, &binder))
                            && step.filters.iter().all(|c| par_evaluable(c.expr, &binder)),
                    });
                // Swappability: a two-generator join over a bare first
                // Scan may flip its build side at open time when the
                // flip is unobservable and the swapped build would be
                // cacheable (see [`SwapInfo`]).
                let swap = if earlier.len() == 1 && store_enabled() && is_safe_expr(self.result) {
                    match &root {
                        PhysOp::Scan {
                            var: pvar,
                            source: psource,
                            filters: pfilters,
                        } => {
                            let pbinder = [*pvar];
                            (stable_source(psource)
                                && probe_keys.iter().all(|k| closed_under(k, &pbinder))
                                && pfilters.iter().all(|c| closed_under(c.expr, &pbinder)))
                            .then(|| SwapInfo {
                                fingerprint: join_fingerprint(
                                    psource,
                                    *pvar,
                                    &probe_keys,
                                    pfilters,
                                ),
                                par: build_keys.iter().all(|k| par_evaluable(k, &binder)).then(
                                    || ParInfo {
                                        probe_vars: vec![step.var],
                                        build_ok: false,
                                    },
                                ),
                            })
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                PhysOp::HashJoin {
                    input: Box::new(root),
                    var: step.var,
                    source: step.source,
                    filters: step.filters,
                    probe_keys,
                    build_keys,
                    fingerprint,
                    par,
                    swap,
                }
            } else {
                PhysOp::NestedLoop {
                    input: Box::new(root),
                    var: step.var,
                    source: step.source,
                    dependent: step.dependent,
                    filters: step.filters,
                }
            };
            earlier.push(step.var);
            if !step.residual.is_empty() {
                root = PhysOp::Filter {
                    input: Box::new(root),
                    conjuncts: step.residual,
                };
            }
        }
        PhysicalPlan {
            root,
            result: self.result,
        }
    }
}

/// Run the pipeline in `env`, returning the canonical result set.
/// Independent sources are evaluated exactly once, in generator order;
/// the result expression runs per surviving binding, in the same order
/// the nested-loop semantics would reach it; deduplication happens once
/// at the end.
pub fn execute<H: EvalHook>(
    plan: &PhysicalPlan<'_>,
    env: &Env,
    hook: &mut H,
) -> Result<Value, ExecError<H::Error>> {
    let mut root = Node::open(&plan.root, env, hook)?;
    let mut out = Vec::new();
    while let Some(binding) = root.next(hook)? {
        out.push(hook.eval(&binding, plan.result)?);
    }
    Ok(Value::Set(MSet::from_iter(out)))
}

/// Check one conjunct against a candidate binding. `Ok(true)` accepts,
/// `Ok(false)` rejects; a strict conjunct evaluating to a non-boolean
/// reproduces the evaluator's `andalso` error.
fn check<H: EvalHook>(
    c: &Conjunct<'_>,
    env: &Env,
    hook: &mut H,
) -> Result<bool, ExecError<H::Error>> {
    match hook.eval(env, c.expr)? {
        Value::Bool(b) => Ok(b),
        other if c.strict => Err(ExecError::NotABool(show_value(&other))),
        _ => Ok(false),
    }
}

fn check_all<H: EvalHook>(
    cs: &[Conjunct<'_>],
    env: &Env,
    hook: &mut H,
) -> Result<bool, ExecError<H::Error>> {
    for c in cs {
        if !check(c, env, hook)? {
            return Ok(false);
        }
    }
    Ok(true)
}

fn as_set<E>(v: Value) -> Result<MSet, ExecError<E>> {
    match v {
        Value::Set(s) => Ok(s),
        other => Err(ExecError::NotASet(show_value(&other))),
    }
}

/// Build a hash-join build table: pushed filters prune rows, then each
/// row is keyed in the *outer* environment extended with only its own
/// binding (keys mention only this binder). Groups hold **row indices**
/// into the relation's canonical slice, accumulated in source order
/// (each group's list ascends) — the executor re-binds matches by
/// index, and the store can re-represent the whole grouping in plain
/// form without touching the rows again.
fn build_join_index<H: EvalHook>(
    items: &MSet,
    var: Symbol,
    filters: &[Conjunct<'_>],
    build_keys: &[&Expr],
    env: &Env,
    hook: &mut H,
) -> Result<Index, ExecError<H::Error>> {
    #[allow(clippy::mutable_key_type)] // refs hash by identity
    let mut table = Index::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let row_env = env.bind(var, item.clone());
        if !check_all(filters, &row_env, hook)? {
            continue;
        }
        let key = KeyTuple(
            build_keys
                .iter()
                .map(|k| hook.eval(&row_env, k))
                .collect::<Result<_, _>>()?,
        );
        table.entry(key).or_default().push(i as u32);
    }
    Ok(table)
}

/// Key pre-filtered build rows: the columnar lane already ran the
/// pushed filters ([`columnar_filter`]), so only the surviving row
/// indices are keyed (through the hook, on the session thread). The
/// result is identical to [`build_join_index`]'s — the survivors are
/// exactly the rows the sequential filters accept, since `plain_eval`
/// agrees with the interpreter on the par-evaluable class — so it is
/// sound to cache through the store.
fn build_join_index_from<H: EvalHook>(
    items: &MSet,
    var: Symbol,
    keep: &[u32],
    build_keys: &[&Expr],
    env: &Env,
    hook: &mut H,
) -> Result<Index, ExecError<H::Error>> {
    #[allow(clippy::mutable_key_type)] // refs hash by identity
    let mut table = Index::with_capacity(keep.len());
    for &i in keep {
        let row_env = env.bind(var, items.as_slice()[i as usize].clone());
        let key = KeyTuple(
            build_keys
                .iter()
                .map(|k| hook.eval(&row_env, k))
                .collect::<Result<_, _>>()?,
        );
        table.entry(key).or_default().push(i);
    }
    Ok(table)
}

/// Build the join table, prefiltering on the columnar lane when the
/// pushed filters are eligible and the lane is live (an outer-`Some`
/// `keep` passes a finished filter outcome through — the
/// independent-generator batch). Declines fall back to the ordinary
/// sequential build.
#[allow(clippy::too_many_arguments)]
fn build_join_index_cols<H: EvalHook>(
    items: &MSet,
    var: Symbol,
    filters: &[Conjunct<'_>],
    build_keys: &[&Expr],
    stable: bool,
    keep: Option<Option<Vec<u32>>>,
    env: &Env,
    hook: &mut H,
) -> Result<Index, ExecError<H::Error>> {
    let keep = match keep {
        Some(outcome) => outcome,
        None if columnar_eligible(filters, var) && columnar_live(items.len()) => {
            columnar_filter(var, filters, items, stable)?
        }
        None => None,
    };
    match keep {
        Some(keep) => build_join_index_from(items, var, &keep, build_keys, env, hook),
        None => build_join_index(items, var, filters, build_keys, env, hook),
    }
}

/// Build an index-scan grouping: the *whole* relation grouped by the
/// `on` key expressions (filters are applied at probe time, so the
/// index is reusable across queries with different residual filters).
fn build_scan_index<H: EvalHook>(
    items: &MSet,
    var: Symbol,
    keys: &[IndexKey<'_>],
    env: &Env,
    hook: &mut H,
) -> Result<Index, ExecError<H::Error>> {
    #[allow(clippy::mutable_key_type)] // refs hash by identity
    let mut table = Index::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let row_env = env.bind(var, item.clone());
        let key = KeyTuple(
            keys.iter()
                .map(|k| hook.eval(&row_env, k.on))
                .collect::<Result<_, _>>()?,
        );
        table.entry(key).or_default().push(i as u32);
    }
    Ok(table)
}

/// Fetch-or-build an index through the store. The hook is never called
/// while the store is borrowed (a nested query evaluated by the hook
/// may consult the store itself), and a build error caches nothing. The
/// store decides the representation: plain (`Send + Sync`,
/// parallel-probable) when the relation extracts, `Rc`-lane otherwise.
#[allow(clippy::mutable_key_type)] // refs hash by identity
fn obtain_index<H: EvalHook>(
    items: &MSet,
    fingerprint: &str,
    build: impl FnOnce(&mut H) -> Result<Index, ExecError<H::Error>>,
    hook: &mut H,
) -> Result<CachedIndex, ExecError<H::Error>> {
    trace::annotate_fingerprint(trace::current_span(), || fingerprint.to_string());
    if !store_enabled() {
        trace::annotate_cache(trace::current_span(), trace::CacheOutcome::Bypass);
        return Ok(CachedIndex::Local(Rc::new(build(hook)?)));
    }
    if let Some(idx) = with_store(|s| s.lookup(items, fingerprint)) {
        trace::annotate_cache(trace::current_span(), trace::CacheOutcome::Hit);
        return Ok(idx);
    }
    let built = build(hook)?;
    trace::annotate_cache(trace::current_span(), trace::CacheOutcome::Build);
    Ok(with_store(|s| s.insert(items, fingerprint, built)))
}

// --- the columnar scan lane --------------------------------------------------

/// Static columnar eligibility of a scan's pushed filters: non-empty,
/// and every conjunct runnable by the plain mini-evaluator under the
/// row binder alone (binder-closed, pure, total). Computed both at open
/// time (whether to offload) and at render time (`explain`'s
/// `[columnar par n=…]` marker) — a cheap syntactic walk, so nothing
/// needs to be stored in the operator.
pub fn columnar_eligible(filters: &[Conjunct<'_>], var: Symbol) -> bool {
    !filters.is_empty() && filters.iter().all(|c| par_evaluable(c.expr, &[var]))
}

/// Runtime gate of the columnar lane: enabled, more than one worker,
/// and the relation over the
/// [`machiavelli_value::tuning::columnar_min_rows`] cutoff (snapshot
/// extraction plus scheduling must have enough rows to amortize over).
fn columnar_live(rows: usize) -> bool {
    parallel_enabled() && par_threads() > 1 && rows >= columnar_min_rows()
}

/// Obtain a plain columnar snapshot of `items`: through the session's
/// index store — and the shared tier behind it — when the source is
/// `stable` (repeated queries then reuse one snapshot per relation),
/// built directly for fresh-storage sources, whose snapshot could never
/// be looked up again. `None` when any row has no plain form: the whole
/// lane declines.
fn columnar_snapshot(items: &MSet, stable: bool) -> Option<Arc<ColumnarRelation>> {
    if store_enabled() && stable {
        return with_store(|s| s.snapshot(items));
    }
    let snap = Arc::new(ColumnarRelation::from_set(items)?);
    note_snapshot(false);
    Some(snap)
}

/// One compiled filter conjunct of a columnar scan.
enum ColPred<'p, 's> {
    /// `_.L op constant` (either orientation, non-short-circuit op)
    /// over a decomposed relation: a direct loop over column `L`'s
    /// contiguous values — no per-row field scan, no expression walk.
    Column {
        values: &'s [PlainValue],
        op: BinOp,
        /// The constant operand, evaluated once (pure and total on the
        /// par-evaluable class, so early evaluation is unobservable).
        other: PlainValue,
        /// The column is the *right* operand.
        flipped: bool,
        strict: bool,
    },
    /// Any other eligible conjunct: the plain mini-evaluator per row.
    Row(&'p Conjunct<'p>),
}

impl<'p, 's> ColPred<'p, 's> {
    fn compile(c: &'p Conjunct<'p>, var: Symbol, snap: &'s ColumnarRelation) -> ColPred<'p, 's> {
        if let ExprKind::Binop { op, left, right } = &c.expr.kind {
            // `andalso`/`orelse` short-circuit per row; they stay on the
            // row path where `plain_eval` mirrors that exactly.
            if !matches!(op, BinOp::Andalso | BinOp::Orelse) {
                let col_of = |e: &'p Expr| -> Option<&'s [PlainValue]> {
                    let ExprKind::Field { expr, label } = &e.kind else {
                        return None;
                    };
                    let ExprKind::Var(x) = &expr.kind else {
                        return None;
                    };
                    if x.id() != var.id() {
                        return None;
                    }
                    snap.column(*label).map(|c| &*c.values)
                };
                let empty = PlainBindings {
                    head: None,
                    rest: &[],
                };
                let constant = |e: &'p Expr| {
                    (!mentions_any(e, &[var]))
                        .then(|| plain_eval(e, &empty))
                        .flatten()
                };
                if let Some(values) = col_of(left) {
                    if let Some(other) = constant(right) {
                        return ColPred::Column {
                            values,
                            op: *op,
                            other,
                            flipped: false,
                            strict: c.strict,
                        };
                    }
                }
                if let Some(values) = col_of(right) {
                    if let Some(other) = constant(left) {
                        return ColPred::Column {
                            values,
                            op: *op,
                            other,
                            flipped: true,
                            strict: c.strict,
                        };
                    }
                }
            }
        }
        ColPred::Row(c)
    }
}

/// Evaluate the compiled conjuncts on row `i`. `Some(true)` accepts,
/// `Some(false)` rejects; `None` **declines** — an operand shape the
/// plain lane cannot handle, or a strict conjunct evaluating
/// non-boolean (where the interpreter raises) — and poisons the whole
/// run, so the sequential re-run reproduces the exact behavior.
fn row_passes(
    preds: &[ColPred<'_, '_>],
    snap: &ColumnarRelation,
    var: Symbol,
    i: usize,
) -> Option<bool> {
    for p in preds {
        let (v, strict) = match p {
            ColPred::Column {
                values,
                op,
                other,
                flipped,
                strict,
            } => {
                let v = if *flipped {
                    plain_binop(*op, other, &values[i])
                } else {
                    plain_binop(*op, &values[i], other)
                };
                (v, *strict)
            }
            ColPred::Row(c) => {
                let env = PlainBindings {
                    head: Some((var, &snap.rows[i])),
                    rest: &[],
                };
                (plain_eval(c.expr, &env), c.strict)
            }
        };
        match v {
            Some(PlainValue::Bool(true)) => {}
            Some(PlainValue::Bool(false)) => return Some(false),
            // A lenient (syntactically last) conjunct rejects the row
            // on a non-boolean, like the sequential `check`.
            Some(_) if !strict => return Some(false),
            _ => return None,
        }
    }
    Some(true)
}

/// Run binder-closed pushed filters over `items` on the morsel-driven
/// columnar lane. `Ok(None)` is a decline — a row with no plain form,
/// or live data a conjunct cannot handle — and the caller takes the
/// sequential path, with zero behavior change. `Ok(Some(keep))` holds
/// the **ascending** indices of surviving rows. Workers poll the
/// coordinator's (sticky) query guard every [`CHUNK_TICK_MASK`]+1 rows;
/// a trip poisons the run and [`run_par`] surfaces it as `Interrupted`
/// before the result can be used.
fn columnar_filter<E>(
    var: Symbol,
    filters: &[Conjunct<'_>],
    items: &MSet,
    stable: bool,
) -> Result<Option<Vec<u32>>, ExecError<E>> {
    let Some(snap) = columnar_snapshot(items, stable) else {
        note_offload(false);
        trace::note_decline(DeclineReason::ColumnarSnapshotExtract);
        return Ok(None);
    };
    let preds: Vec<ColPred<'_, '_>> = filters
        .iter()
        .map(|c| ColPred::compile(c, var, &snap))
        .collect();
    let cx = WorkerCx::capture();
    let keep = run_par(|| {
        let (keep, _) = exec::filter_indices(
            par_threads(),
            &snap,
            || {
                cx.enter();
                0u64
            },
            |ticks: &mut u64, i| {
                *ticks += 1;
                if *ticks & CHUNK_TICK_MASK as u64 == 0 && cx.tripped() {
                    return None;
                }
                row_passes(&preds, &snap, var, i)
            },
        );
        keep
    })?;
    note_offload(keep.is_some());
    Ok(keep)
}

/// Filter two **independent** relations as one morsel batch: the
/// independent-generator schedule. Neither side's filters mention the
/// other's binder (each is closed under its own), so their morsels are
/// order-free and share the worker pool — workers drain whichever side
/// still has rows instead of barriering between the two scans. Each
/// side declines independently (`None` in its slot); the other side's
/// survivors remain valid.
#[allow(clippy::type_complexity)]
fn columnar_filter_pair<E>(
    a: (Symbol, &[Conjunct<'_>], &MSet, bool),
    b: (Symbol, &[Conjunct<'_>], &MSet, bool),
) -> Result<(Option<Vec<u32>>, Option<Vec<u32>>), ExecError<E>> {
    let snaps = [columnar_snapshot(a.2, a.3), columnar_snapshot(b.2, b.3)];
    let preds: Vec<Option<Vec<ColPred<'_, '_>>>> = [&a, &b]
        .iter()
        .zip(&snaps)
        .map(|((var, filters, _, _), snap)| {
            snap.as_ref().map(|s| {
                filters
                    .iter()
                    .map(|c| ColPred::compile(c, *var, s))
                    .collect()
            })
        })
        .collect();
    let vars = [a.0, b.0];
    // Interleave the two sides' morsels into one task list; results
    // come back in task order, so each side's survivor lists
    // reassemble ascending.
    let mut tasks: Vec<(usize, Morsel)> = Vec::new();
    for (side, snap) in snaps.iter().enumerate() {
        if let Some(snap) = snap {
            tasks.extend(exec::morsels(snap.len()).into_iter().map(|m| (side, m)));
        }
    }
    let cx = WorkerCx::capture();
    let parts = run_par(|| {
        let (parts, _) = exec::run_tasks(
            par_threads(),
            tasks,
            || {
                cx.enter();
                0u64
            },
            |ticks: &mut u64, (side, m): (usize, Morsel)| {
                let snap = snaps[side].as_deref().expect("task exists only with snap");
                let preds = preds[side].as_deref().expect("compiled with snap");
                let mut keep = Vec::new();
                for i in m.start..m.end {
                    *ticks += 1;
                    if *ticks & CHUNK_TICK_MASK as u64 == 0 && cx.tripped() {
                        return (side, None);
                    }
                    match row_passes(preds, snap, vars[side], i) {
                        Some(true) => keep.push(i as u32),
                        Some(false) => {}
                        None => return (side, None),
                    }
                }
                (side, Some(keep))
            },
        );
        parts
    })?;
    // Reassemble per side: a poisoned morsel declines its whole side.
    let mut out: [Option<Option<Vec<u32>>>; 2] = [
        snaps[0].as_ref().map(|_| Some(Vec::new())),
        snaps[1].as_ref().map(|_| Some(Vec::new())),
    ];
    for (side, part) in parts {
        if let Some(acc) = &mut out[side] {
            match (acc, part) {
                (Some(acc), Some(mut keep)) => acc.append(&mut keep),
                (acc, None) => *acc = None,
                (None, _) => {}
            }
        }
    }
    let [ka, kb] = out;
    let (ka, kb) = (ka.flatten(), kb.flatten());
    // Per-side decline codes: no snapshot means the relation declined
    // plain extraction; a snapshot with no survivors list means a
    // worker's morsel poisoned at runtime (the single-scan path reports
    // the same code from `exec::filter_indices`).
    for (side, keep) in [(0, &ka), (1, &kb)] {
        if keep.is_none() {
            trace::note_decline(if snaps[side].is_none() {
                DeclineReason::ColumnarSnapshotExtract
            } else {
                DeclineReason::ColumnarRuntimeDecline
            });
        }
    }
    note_offload(ka.is_some());
    note_offload(kb.is_some());
    Ok((ka, kb))
}

/// Open a `Scan` node, offloading its pushed filters onto the columnar
/// lane when they are statically eligible, the lane is live, and the
/// relation clears the row cutoff. On success the surviving rows — an
/// ascending subset of the canonical slice, so itself canonical —
/// become a **filterless** scan over a fresh [`MSet`]: exactly the
/// shape [`open_cached_par_probe`]'s fast path keys raw rows from, so
/// the whole Scan→Filter→Join pipeline composes onto the lane. Any
/// decline yields the ordinary filtered scan with zero behavior change.
/// An outer-`Some` `keep` short-circuits the filter run: the caller
/// already ran it (the independent-generator batch) and passes its
/// outcome — survivors or a decline — through.
fn open_scan_node<'p, E>(
    var: Symbol,
    filters: &'p [Conjunct<'p>],
    source: &Expr,
    env: &Env,
    items: MSet,
    keep: Option<Option<Vec<u32>>>,
) -> Result<Node<'p>, ExecError<E>> {
    let keep = match keep {
        Some(outcome) => outcome,
        None if columnar_eligible(filters, var) && columnar_live(items.len()) => {
            columnar_filter(var, filters, &items, stable_source(source))?
        }
        None => None,
    };
    Ok(match keep {
        Some(keep) => {
            // The offload happened: this scan's filters ran as columnar
            // morsels on worker threads.
            trace::annotate_lane(
                trace::current_span(),
                trace::Lane::Columnar(par_threads() as u32),
            );
            let rows = items.as_slice();
            let filtered = MSet::from_sorted_unchecked(
                keep.iter().map(|&i| rows[i as usize].clone()).collect(),
            );
            Node::Scan {
                var,
                filters: &[],
                base: env.clone(),
                items: filtered,
                idx: 0,
            }
        }
        None => Node::Scan {
            var,
            filters,
            base: env.clone(),
            items,
            idx: 0,
        },
    })
}

/// [`open_scan_node`] under its own trace span, mirroring what
/// [`Node::open`] does for dispatched operators: the hash-join arms
/// destructure their probe `Scan` and open it directly, so without this
/// twin the probe side would vanish from the trace tree.
fn open_scan_traced<'p, E>(
    var: Symbol,
    filters: &'p [Conjunct<'p>],
    source: &Expr,
    env: &Env,
    items: MSet,
    keep: Option<Option<Vec<u32>>>,
) -> Result<Node<'p>, ExecError<E>> {
    if !trace::active() {
        return open_scan_node(var, filters, source, env, items, keep);
    }
    let sid = trace::open_op_with(|| scan_label(var, source, filters));
    let t0 = trace::now_ns();
    let node = open_scan_node(var, filters, source, env, items, keep);
    trace::close_op(sid, trace::now_ns().saturating_sub(t0));
    Ok(match (sid, node?) {
        (Some(sid), inner) => Node::Traced {
            sid,
            inner: Box::new(inner),
        },
        (None, inner) => inner,
    })
}

/// The shared sequential-fallback shape of [`open_par_join`]: count the
/// fallback (with its typed `reason`), build the table inline, and
/// probe `input` — the untouched pipeline, the drained rows, or the
/// drained prefix chained to the live remainder, depending on how far
/// the parallel attempt got.
#[allow(clippy::too_many_arguments)]
fn seq_join_fallback<'p, H: EvalHook>(
    input: Box<Node<'p>>,
    items: &MSet,
    var: Symbol,
    build_keys: &'p [&'p Expr],
    filters: &'p [Conjunct<'p>],
    probe_keys: &'p [&'p Expr],
    reason: DeclineReason,
    env: &Env,
    hook: &mut H,
) -> Result<Node<'p>, ExecError<H::Error>> {
    note_par_join(false);
    trace::note_decline(reason);
    let table = CachedIndex::Local(Rc::new(build_join_index(
        items, var, filters, build_keys, env, hook,
    )?));
    Ok(Node::HashJoin {
        input,
        var,
        probe_keys,
        items: items.clone(),
        table,
        cur: None,
    })
}

/// Open a statically eligible hash join on the parallel lane. Always
/// returns a usable node: on success a [`Node::ParJoin`] holding the
/// precomputed match lists, on any keying or extraction failure the
/// sequential build/probe shape (over the already drained input when
/// draining had happened) — with **zero** behavior change, since
/// everything the parallel attempt evaluated early is planner-safe.
/// Records the hit/fallback in
/// [`machiavelli_value::tuning::par_stats`].
///
/// Both sides are keyed sequentially on the `Rc` lane through
/// [`crate::parallel::safe_eval`] (no interpreter dispatch, no
/// environment allocation) and only the extracted [`PlainKey`] tuples
/// cross into the worker threads; rows are matched by **index** and
/// re-bound on the session thread, so nothing is deep-copied.
#[allow(clippy::too_many_arguments)]
fn open_par_join<'p, H: EvalHook>(
    mut input: Box<Node<'p>>,
    items: MSet,
    var: Symbol,
    build_keys: &'p [&'p Expr],
    filters: &'p [Conjunct<'p>],
    probe_keys: &'p [&'p Expr],
    info: &'p ParInfo,
    build_keep: Option<Vec<u32>>,
    env: &Env,
    hook: &mut H,
) -> Result<Node<'p>, ExecError<H::Error>> {
    // Key the build side: pushed filters prune, then the key closure
    // is evaluated and extracted. Any decline (unsupported shape at
    // runtime, identity-bearing key value, strict filter evaluating
    // non-boolean) abandons the lane before the input is drained.
    // When the columnar lane already ran the filters (`build_keep`,
    // the independent-generator batch), only the survivors are keyed.
    let mut build_keyed: Vec<Keyed> = Vec::with_capacity(items.len());
    let mut keyed_ok = true;
    if let Some(keep) = &build_keep {
        for &i in keep {
            let row_env = ValueBindings {
                head: Some((var, &items.as_slice()[i as usize])),
                rest: &[],
            };
            match extract_key(build_keys, &row_env) {
                Some(key) => build_keyed.push(Keyed::new(key, i as usize)),
                None => {
                    keyed_ok = false;
                    break;
                }
            }
        }
    } else {
        'build: for (i, row) in items.iter().enumerate() {
            let row_env = ValueBindings {
                head: Some((var, row)),
                rest: &[],
            };
            for c in filters {
                match safe_eval(c.expr, &row_env) {
                    Some(Value::Bool(true)) => {}
                    Some(Value::Bool(false)) => continue 'build,
                    // A lenient (syntactically last) conjunct rejects
                    // the row on a non-boolean, like the sequential
                    // `check`; a strict one would error — abandon and
                    // let the sequential path raise it.
                    Some(_) if !c.strict => continue 'build,
                    _ => {
                        keyed_ok = false;
                        break 'build;
                    }
                }
            }
            match extract_key(build_keys, &row_env) {
                Some(key) => build_keyed.push(Keyed::new(key, i)),
                None => {
                    keyed_ok = false;
                    break 'build;
                }
            }
        }
    }
    if !keyed_ok {
        return seq_join_fallback(
            input,
            &items,
            var,
            build_keys,
            filters,
            probe_keys,
            DeclineReason::ParJoinBuildExtract,
            env,
            hook,
        );
    }
    // Materialize and key the probe side (upstream per-row work is
    // planner-safe; evaluating it before the first result row is
    // unobservable). Binder values are O(1) `Rc`-bump clones. The
    // sequential probe streams with O(1) extra memory, so draining is
    // capped relative to the build side: a pathologically large probe
    // pipeline bails to the sequential probe over the drained prefix
    // plus the still-live remainder of the input.
    let max_probe = machiavelli_value::tuning::par_join_max_probe_rows(items.len());
    let mut probe_rows: Vec<Env> = Vec::new();
    let mut drained_all = true;
    while let Some(row) = input.next(hook)? {
        probe_rows.push(row);
        if probe_rows.len() >= max_probe {
            drained_all = false;
            break;
        }
    }
    if !drained_all {
        let drained = Box::new(Node::Materialized {
            rows: probe_rows,
            idx: 0,
            rest: Some(input),
        });
        return seq_join_fallback(
            drained,
            &items,
            var,
            build_keys,
            filters,
            probe_keys,
            DeclineReason::ParJoinProbeCap,
            env,
            hook,
        );
    }
    let mut probe_keyed: Vec<Keyed> = Vec::with_capacity(probe_rows.len());
    'probe: for (i, row) in probe_rows.iter().enumerate() {
        let mut bound: Vec<(Symbol, Value)> = Vec::with_capacity(info.probe_vars.len());
        for v in &info.probe_vars {
            match row.lookup(*v) {
                Some(val) => bound.push((*v, val)),
                None => {
                    keyed_ok = false;
                    break 'probe;
                }
            }
        }
        let row_env = ValueBindings {
            head: None,
            rest: &bound,
        };
        match extract_key(probe_keys, &row_env) {
            Some(key) => probe_keyed.push(Keyed::new(key, i)),
            None => {
                keyed_ok = false;
                break 'probe;
            }
        }
    }
    if !keyed_ok {
        // Fallback: sequential build and probe over the drained rows —
        // identical bindings, identical error points.
        let drained = Box::new(Node::Materialized {
            rows: probe_rows,
            idx: 0,
            rest: None,
        });
        return seq_join_fallback(
            drained,
            &items,
            var,
            build_keys,
            filters,
            probe_keys,
            DeclineReason::ParJoinProbeExtract,
            env,
            hook,
        );
    }
    let matches = run_par(|| par_partition_join(&build_keyed, &probe_keyed, par_threads()))?;
    note_par_join(true);
    trace::annotate_lane(
        trace::current_span(),
        trace::Lane::Par(par_threads() as u32),
    );
    Ok(Node::ParJoin {
        var,
        rows: items,
        probe: ParProbe::Envs(probe_rows),
        matches,
        cursor: (0, 0),
        cur_env: None,
    })
}

/// Open a hash join whose orientation is already fixed: `input` streams
/// the probe side, `items` is the build relation. Routes between the
/// three execution shapes in precedence order — the inline partition
/// lane (uncached, statically `build_ok`, over the build-row cutoff),
/// the **cached parallel probe** (a store-served *plain* table with
/// par-evaluable probe keys), and the sequential build/probe.
#[allow(clippy::too_many_arguments)]
fn open_keyed_join<'p, H: EvalHook>(
    input: Box<Node<'p>>,
    items: MSet,
    var: Symbol,
    build_keys: &'p [&'p Expr],
    filters: &'p [Conjunct<'p>],
    probe_keys: &'p [&'p Expr],
    fingerprint: Option<&str>,
    par: Option<&'p ParInfo>,
    stable: bool,
    build_keep: Option<Option<Vec<u32>>>,
    env: &Env,
    hook: &mut H,
) -> Result<Node<'p>, ExecError<H::Error>> {
    // The inline partition lane serves builds the store will not: a
    // cached index beats any rebuild, so fingerprinted builds stay on
    // the store path. Runtime gates: lane enabled, >1 worker threads,
    // build side over the row cutoff. `open_par_join` then commits to
    // *some* node — parallel on success, the drained sequential shape
    // on extraction/evaluation fallback.
    if fingerprint.is_none() && parallel_enabled() && par_threads() > 1 {
        if let Some(info) = par {
            if info.build_ok && items.len() >= par_join_min_build_rows() {
                return open_par_join(
                    input,
                    items,
                    var,
                    build_keys,
                    filters,
                    probe_keys,
                    info,
                    build_keep.flatten(),
                    env,
                    hook,
                );
            }
        }
    }
    let table = match fingerprint {
        // Cacheable build: request it from the index store (hit ⇒ the
        // whole build phase — filters and keys — is skipped; all
        // planner-safe, so unobservable).
        Some(fp) => obtain_index(
            &items,
            fp,
            |hook| {
                build_join_index_cols(
                    &items, var, filters, build_keys, stable, build_keep, env, hook,
                )
            },
            hook,
        )?,
        // Environment-dependent build: construct inline.
        None => CachedIndex::Local(Rc::new(build_join_index_cols(
            &items, var, filters, build_keys, stable, build_keep, env, hook,
        )?)),
    };
    // The composed lane: a store-served plain table is `Send + Sync`,
    // so eligible probe keys fan the probe out over it directly.
    if let CachedIndex::Plain(index) = &table {
        if parallel_enabled() && par_threads() > 1 {
            if let Some(info) = par {
                let index = index.clone();
                return open_cached_par_probe(input, items, var, probe_keys, index, info, hook);
            }
        }
    }
    Ok(Node::HashJoin {
        input,
        var,
        probe_keys,
        items,
        table,
        cur: None,
    })
}

/// Probe a cached plain index with parallel workers. Always returns a
/// usable node: [`Node::ParJoin`] on success, otherwise the sequential
/// probe over the already-obtained table — with zero behavior change,
/// since everything evaluated early (the probe pipeline's per-row
/// expressions) is planner-safe. The probe side must clear
/// [`machiavelli_value::tuning::par_probe_min_rows`] (distinct from the
/// build-row cutoff: there is no build to amortize here, only probe
/// materialization and thread coordination), and draining is
/// memory-capped exactly like the inline lane's.
fn open_cached_par_probe<'p, H: EvalHook>(
    mut input: Box<Node<'p>>,
    items: MSet,
    var: Symbol,
    probe_keys: &'p [&'p Expr],
    index: Arc<PlainIndex>,
    info: &'p ParInfo,
    hook: &mut H,
) -> Result<Node<'p>, ExecError<H::Error>> {
    let seq = |input: Box<Node<'p>>, items: MSet, index: Arc<PlainIndex>| Node::HashJoin {
        input,
        var,
        probe_keys,
        items,
        table: CachedIndex::Plain(index),
        cur: None,
    };
    // An empty index matches nothing; the sequential node short-circuits
    // without even pulling the input. Not a fallback — there is no probe
    // work to parallelize.
    if index.is_empty() {
        return Ok(seq(input, items, index));
    }
    // Peel an active-trace [`Node::Traced`] wrapper so the fast-path
    // shape match below sees exactly the node an untraced run would:
    // lane selection must not depend on whether a trace is recording.
    // The peeled span keeps its accounting — paths that hand the input
    // back rewrap it, paths that drain it set the row count directly
    // (no `next` has run yet, so the span's count starts at zero and a
    // rewrapped remainder adds on top).
    let mut input_sid: Option<u32> = None;
    if let Node::Traced { sid, .. } = input.as_ref() {
        input_sid = Some(*sid);
        let Node::Traced { inner, .. } = *input else {
            unreachable!()
        };
        input = inner;
    }
    let rewrap = |node: Box<Node<'p>>| match input_sid {
        Some(sid) => Box::new(Node::Traced { sid, inner: node }),
        None => node,
    };
    // Fast path for the dominant shape — the probe side is a bare,
    // filterless `Scan` of an already-materialized relation (the
    // two-generator equi-join). Keys extract straight off the relation
    // slice through borrowed bindings: no per-row environment
    // allocation, no `Env` materialization, and match envs bind lazily
    // (only probe rows that actually matched ever get one) — the same
    // raw-row keying that makes the inline partition lane profitable.
    if let Node::Scan {
        var: svar,
        filters: sfilters,
        base,
        items: pitems,
        idx: 0,
    } = input.as_ref()
    {
        if sfilters.is_empty() {
            if pitems.len() < par_probe_min_rows() {
                return Ok(seq(rewrap(input), items, index));
            }
            let mut keys = Vec::with_capacity(pitems.len());
            let mut keyed_ok = true;
            for row in pitems.iter() {
                let row_env = ValueBindings {
                    head: Some((*svar, row)),
                    rest: &[],
                };
                match extract_key(probe_keys, &row_env) {
                    Some(key) => keys.push(key),
                    None => {
                        keyed_ok = false;
                        break;
                    }
                }
            }
            if !keyed_ok {
                // Nothing was drained: the untouched Scan replays
                // through the sequential probe.
                note_par_probe(false);
                trace::note_decline(DeclineReason::ParProbeExtract);
                return Ok(seq(rewrap(input), items, index));
            }
            let matches = run_par(|| par_probe_cached(&index, &keys, par_threads()))?;
            note_par_probe(true);
            trace::annotate_lane(
                trace::current_span(),
                trace::Lane::CachedPar(par_threads() as u32),
            );
            trace::annotate_rows(input_sid, pitems.len() as u64);
            let probe = ParProbe::Rows {
                base: base.clone(),
                var: *svar,
                items: pitems.clone(),
            };
            return Ok(Node::ParJoin {
                var,
                rows: items,
                probe,
                matches,
                cursor: (0, 0),
                cur_env: None,
            });
        }
    }
    // Materialize the probe side (upstream per-row work is planner-safe;
    // evaluating it before the first result row is unobservable),
    // capped like the inline lane.
    let max_probe = machiavelli_value::tuning::par_join_max_probe_rows(items.len());
    let mut probe_rows: Vec<Env> = Vec::new();
    let mut drained_all = true;
    while let Some(row) = input.next(hook)? {
        probe_rows.push(row);
        if probe_rows.len() >= max_probe {
            drained_all = false;
            break;
        }
    }
    // The drain bypassed the peeled span's `next` accounting: set its
    // yielded-row count directly (a rewrapped remainder adds on top).
    trace::annotate_rows(input_sid, probe_rows.len() as u64);
    if !drained_all {
        note_par_probe(false);
        trace::note_decline(DeclineReason::ParProbeDrainCap);
        let drained = Box::new(Node::Materialized {
            rows: probe_rows,
            idx: 0,
            rest: Some(rewrap(input)),
        });
        return Ok(seq(drained, items, index));
    }
    let drained = |probe_rows| {
        Box::new(Node::Materialized {
            rows: probe_rows,
            idx: 0,
            rest: None,
        })
    };
    // Below the probe cutoff the sequential probe wins; not counted as
    // a fallback (a size gate, not a runtime decline).
    if probe_rows.len() < par_probe_min_rows() {
        return Ok(seq(drained(probe_rows), items, index));
    }
    let mut keys = Vec::with_capacity(probe_rows.len());
    let mut keyed_ok = true;
    'probe: for row in &probe_rows {
        let mut bound: Vec<(Symbol, Value)> = Vec::with_capacity(info.probe_vars.len());
        for v in &info.probe_vars {
            match row.lookup(*v) {
                Some(val) => bound.push((*v, val)),
                None => {
                    keyed_ok = false;
                    break 'probe;
                }
            }
        }
        let row_env = ValueBindings {
            head: None,
            rest: &bound,
        };
        match extract_key(probe_keys, &row_env) {
            Some(key) => keys.push(key),
            None => {
                keyed_ok = false;
                break 'probe;
            }
        }
    }
    if !keyed_ok {
        // A probe key declined extraction (identity-bearing value or an
        // unsupported runtime shape): replay the drained rows through
        // the sequential probe — identical bindings, identical errors.
        note_par_probe(false);
        trace::note_decline(DeclineReason::ParProbeExtract);
        return Ok(seq(drained(probe_rows), items, index));
    }
    let matches = run_par(|| par_probe_cached(&index, &keys, par_threads()))?;
    note_par_probe(true);
    trace::annotate_lane(
        trace::current_span(),
        trace::Lane::CachedPar(par_threads() as u32),
    );
    Ok(Node::ParJoin {
        var,
        rows: items,
        probe: ParProbe::Envs(probe_rows),
        matches,
        cursor: (0, 0),
        cur_env: None,
    })
}

/// Runtime state of one operator (same shape as [`PhysOp`]).
enum Node<'p> {
    Scan {
        var: Symbol,
        filters: &'p [Conjunct<'p>],
        base: Env,
        items: MSet,
        idx: usize,
    },
    /// An opened index scan: the matching group was fetched up front;
    /// iteration applies the residual pushed filters per row.
    IndexScan {
        var: Symbol,
        filters: &'p [Conjunct<'p>],
        base: Env,
        matches: Vec<Value>,
        idx: usize,
    },
    NestedLoop {
        input: Box<Node<'p>>,
        var: Symbol,
        source: &'p Expr,
        filters: &'p [Conjunct<'p>],
        /// `Some` when the source is independent (evaluated at open).
        fixed: Option<MSet>,
        /// The in-flight outer binding and its source cursor.
        cur: Option<(Env, MSet, usize)>,
    },
    HashJoin {
        input: Box<Node<'p>>,
        var: Symbol,
        probe_keys: &'p [&'p Expr],
        /// The build relation: match indices resolve into its canonical
        /// slice (the entry's pinned clone shares this storage on a
        /// cache hit, so indices are valid by construction).
        items: MSet,
        /// Build-row indices grouped by key, in source (canonical set)
        /// order — shared with the index store on a cache hit, in plain
        /// or `Rc`-lane form.
        table: CachedIndex,
        /// The in-flight probe binding and its match cursor.
        cur: Option<(Env, Vec<u32>, usize)>,
    },
    /// A (possibly partially) drained input: the parallel lane
    /// materializes the probe side before fanning out; if it then has
    /// to fall back, the rows replay through the sequential join
    /// unchanged (every per-row upstream expression is planner-safe, so
    /// having evaluated them early is unobservable), followed by
    /// whatever `rest` of the pipeline was never drained (the
    /// probe-drain memory cap stops draining mid-stream).
    Materialized {
        rows: Vec<Env>,
        idx: usize,
        rest: Option<Box<Node<'p>>>,
    },
    /// A completed parallel join: `matches[i]` holds the build-row
    /// indices for probe row `i`, each list ascending (= build-source
    /// canonical order). Yields probe-major with groups in order —
    /// exactly the binding sequence the sequential probe produces.
    ParJoin {
        var: Symbol,
        rows: MSet,
        probe: ParProbe,
        matches: Vec<Vec<u32>>,
        cursor: (usize, usize),
        /// The probe row currently being enumerated, bound at most once
        /// (only rows with matches are ever bound at all on the
        /// [`ParProbe::Rows`] path).
        cur_env: Option<(usize, Env)>,
    },
    Filter {
        input: Box<Node<'p>>,
        conjuncts: &'p [Conjunct<'p>],
    },
    /// A span-wrapped operator, present only while a query trace is
    /// active: `next` adds the inclusive elapsed time and yielded-row
    /// count of the inner node to span `sid`. Lanes that pattern-match
    /// their input's shape (the cached-par probe fast path) peel this
    /// wrapper first — see [`open_cached_par_probe`].
    Traced { sid: u32, inner: Box<Node<'p>> },
}

/// The probe side of a completed [`Node::ParJoin`].
enum ParProbe {
    /// Materialized probe environments, one per probe row (general
    /// pipelines: the rows were drained through the input node).
    Envs(Vec<Env>),
    /// A bare filterless scan: probe row `i` is `items[i]`, and its
    /// environment (`base` extended with the binder) is built lazily —
    /// only for rows that actually matched.
    Rows { base: Env, var: Symbol, items: MSet },
}

impl<'p> Node<'p> {
    /// Open the pipeline: recurse input-first so independent sources are
    /// evaluated in generator order (matching `select_loop`'s up-front
    /// source pass, including which source errors first).
    ///
    /// With a query trace active, every operator opens under its own
    /// span (children nest through this recursion) and comes back
    /// wrapped in [`Node::Traced`]; with tracing off this is one
    /// predicted-false branch per operator and no wrapper.
    fn open<H: EvalHook>(
        op: &'p PhysOp<'p>,
        env: &Env,
        hook: &mut H,
    ) -> Result<Node<'p>, ExecError<H::Error>> {
        if !trace::active() {
            return Node::open_inner(op, env, hook);
        }
        let sid = trace::open_op_with(|| op_label(op));
        let t0 = trace::now_ns();
        let node = Node::open_inner(op, env, hook);
        trace::close_op(sid, trace::now_ns().saturating_sub(t0));
        Ok(match (sid, node?) {
            (Some(sid), inner) => Node::Traced {
                sid,
                inner: Box::new(inner),
            },
            (None, inner) => inner,
        })
    }

    fn open_inner<H: EvalHook>(
        op: &'p PhysOp<'p>,
        env: &Env,
        hook: &mut H,
    ) -> Result<Node<'p>, ExecError<H::Error>> {
        Ok(match op {
            PhysOp::Scan {
                var,
                source,
                filters,
            } => {
                let items = as_set(hook.eval(env, source)?)?;
                open_scan_node(*var, filters, source, env, items, None)?
            }
            PhysOp::IndexScan {
                var,
                source,
                keys,
                filters,
                fingerprint,
            } => {
                let items = as_set(hook.eval(env, source)?)?;
                // The probe sides are planner-safe: evaluating them once
                // here (even when the relation is empty) instead of per
                // element is unobservable.
                let probe: Vec<Value> = keys
                    .iter()
                    .map(|k| hook.eval(env, k.probe))
                    .collect::<Result<_, _>>()?;
                // A relation over the whole row budget would be declined
                // by the store: don't build a grouping nothing can ever
                // reuse — stream it like the filtered scan this shape
                // lowered to before the store existed.
                let matches = if items.len() > with_store(|s| s.budget_rows()) {
                    let mut matches = Vec::new();
                    for item in items.iter() {
                        let row_env = env.bind(*var, item.clone());
                        let mut hit = true;
                        for (k, want) in keys.iter().zip(&probe) {
                            if !value_eq(&hook.eval(&row_env, k.on)?, want) {
                                hit = false;
                                break;
                            }
                        }
                        if hit {
                            matches.push(item.clone());
                        }
                    }
                    matches
                } else {
                    let index = obtain_index(
                        &items,
                        fingerprint,
                        |hook| build_scan_index(&items, *var, keys, env, hook),
                        hook,
                    )?;
                    // Re-binding the group is len × O(1) `Rc` bumps;
                    // indices ascend, so rows stay in canonical order,
                    // exactly as a filter scan yields them.
                    index
                        .rows_for(probe)
                        .iter()
                        .map(|&i| items.as_slice()[i as usize].clone())
                        .collect()
                };
                Node::IndexScan {
                    var: *var,
                    filters,
                    base: env.clone(),
                    matches,
                    idx: 0,
                }
            }
            PhysOp::NestedLoop {
                input,
                var,
                source,
                dependent,
                filters,
            } => {
                let input = Box::new(Node::open(input, env, hook)?);
                let fixed = if *dependent {
                    None
                } else {
                    Some(as_set(hook.eval(env, source)?)?)
                };
                Node::NestedLoop {
                    input,
                    var: *var,
                    source,
                    filters,
                    fixed,
                    cur: None,
                }
            }
            PhysOp::HashJoin {
                input,
                var,
                source,
                filters,
                probe_keys,
                build_keys,
                fingerprint,
                par,
                swap,
            } => {
                // Build-side selection for swappable joins: evaluate
                // both sources (in generator order — observable
                // effects/errors stay put), then pick the orientation
                // from store metadata. A live cached index wins over
                // everything; with neither orientation cached, the
                // smaller relation builds, provided it could actually
                // be cached (a build the budget would decline buys
                // nothing). `peek` is exact ((storage, fingerprint))
                // and stats-neutral.
                if let Some(sw) = swap {
                    if let PhysOp::Scan {
                        var: pvar,
                        source: psource,
                        filters: pfilters,
                    } = input.as_ref()
                    {
                        let first = as_set(hook.eval(env, psource)?)?;
                        let second = as_set(hook.eval(env, source)?)?;
                        let (normal_cached, swapped_cached, budget) = with_store(|s| {
                            (
                                fingerprint.as_ref().is_some_and(|fp| s.peek(&second, fp)),
                                s.peek(&first, &sw.fingerprint),
                                s.budget_rows(),
                            )
                        });
                        let do_swap = !normal_cached
                            && (swapped_cached
                                || (first.len() < second.len() && first.len() <= budget));
                        return if do_swap {
                            // Exchanged roles: the first generator's
                            // relation builds (keyed by the old probe
                            // expressions, its pushed filters baked
                            // in), the second streams as the probe.
                            let probe_node = Box::new(open_scan_traced(
                                *var, filters, source, env, second, None,
                            )?);
                            open_keyed_join(
                                probe_node,
                                first,
                                *pvar,
                                probe_keys,
                                pfilters,
                                build_keys,
                                Some(&sw.fingerprint),
                                sw.par.as_ref(),
                                stable_source(psource),
                                None,
                                env,
                                hook,
                            )
                        } else {
                            let input = Box::new(open_scan_traced(
                                *pvar, pfilters, psource, env, first, None,
                            )?);
                            open_keyed_join(
                                input,
                                second,
                                *var,
                                build_keys,
                                filters,
                                probe_keys,
                                fingerprint.as_deref(),
                                par.as_ref(),
                                stable_source(source),
                                None,
                                env,
                                hook,
                            )
                        };
                    }
                }
                // Independent generators: a bare `Scan` probe side has
                // no dependency on the build binder, so both sources
                // evaluate up front (generator order) and — when the
                // build index is not already cached (a hit skips the
                // build filters entirely, so prefiltering would be
                // wasted work) and both relations clear the columnar
                // gates — both sides' pushed filters run as **one**
                // morsel batch over the shared worker pool.
                let (input, items, build_keep) = if let PhysOp::Scan {
                    var: svar,
                    source: ssource,
                    filters: sfilters,
                } = input.as_ref()
                {
                    let pitems = as_set(hook.eval(env, ssource)?)?;
                    let bitems = as_set(hook.eval(env, source)?)?;
                    let cached = fingerprint
                        .as_ref()
                        .is_some_and(|fp| with_store(|s| s.peek(&bitems, fp)));
                    if !cached
                        && columnar_eligible(sfilters, *svar)
                        && columnar_eligible(filters, *var)
                        && columnar_live(pitems.len())
                        && columnar_live(bitems.len())
                    {
                        let (pkeep, bkeep) = columnar_filter_pair(
                            (*svar, sfilters, &pitems, stable_source(ssource)),
                            (*var, filters, &bitems, stable_source(source)),
                        )?;
                        let input = Box::new(open_scan_traced(
                            *svar,
                            sfilters,
                            ssource,
                            env,
                            pitems,
                            Some(pkeep),
                        )?);
                        (input, bitems, Some(bkeep))
                    } else {
                        let input = Box::new(open_scan_traced(
                            *svar, sfilters, ssource, env, pitems, None,
                        )?);
                        (input, bitems, None)
                    }
                } else {
                    let input = Box::new(Node::open(input, env, hook)?);
                    let items = as_set(hook.eval(env, source)?)?;
                    (input, items, None)
                };
                open_keyed_join(
                    input,
                    items,
                    *var,
                    build_keys,
                    filters,
                    probe_keys,
                    fingerprint.as_deref(),
                    par.as_ref(),
                    stable_source(source),
                    build_keep,
                    env,
                    hook,
                )?
            }
            PhysOp::Filter { input, conjuncts } => Node::Filter {
                input: Box::new(Node::open(input, env, hook)?),
                conjuncts,
            },
        })
    }

    /// Pull the next surviving binding, or `None` when exhausted.
    fn next<H: EvalHook>(&mut self, hook: &mut H) -> Result<Option<Env>, ExecError<H::Error>> {
        match self {
            Node::Scan {
                var,
                filters,
                base,
                items,
                idx,
            } => {
                while *idx < items.len() {
                    let item = items.as_slice()[*idx].clone();
                    *idx += 1;
                    let env = base.bind(*var, item);
                    if check_all(filters, &env, hook)? {
                        return Ok(Some(env));
                    }
                }
                Ok(None)
            }
            Node::IndexScan {
                var,
                filters,
                base,
                matches,
                idx,
            } => {
                while *idx < matches.len() {
                    let item = matches[*idx].clone();
                    *idx += 1;
                    let env = base.bind(*var, item);
                    if check_all(filters, &env, hook)? {
                        return Ok(Some(env));
                    }
                }
                Ok(None)
            }
            Node::NestedLoop {
                input,
                var,
                source,
                filters,
                fixed,
                cur,
            } => loop {
                if let Some((outer, items, idx)) = cur {
                    while *idx < items.len() {
                        let item = items.as_slice()[*idx].clone();
                        *idx += 1;
                        let env = outer.bind(*var, item);
                        if check_all(filters, &env, hook)? {
                            return Ok(Some(env));
                        }
                    }
                    *cur = None;
                }
                let Some(outer) = input.next(hook)? else {
                    return Ok(None);
                };
                let items = match fixed {
                    Some(s) => s.clone(),
                    None => as_set(hook.eval(&outer, source)?)?,
                };
                *cur = Some((outer, items, 0));
            },
            Node::HashJoin {
                input,
                var,
                probe_keys,
                items,
                table,
                cur,
            } => loop {
                if let Some((outer, matches, idx)) = cur {
                    if *idx < matches.len() {
                        let item = items.as_slice()[matches[*idx] as usize].clone();
                        *idx += 1;
                        return Ok(Some(outer.bind(*var, item)));
                    }
                    *cur = None;
                }
                // Empty-build short-circuit: nothing can ever match, so
                // don't even pull. Independent sources were all evaluated
                // at open; what this skips below is only the evaluation
                // of planner-safe dependent sources and pushed filters —
                // pure and total on type-checked programs, so skipping
                // them is unobservable under the crate's contract (an
                // *ill-typed* program driven straight through `eval_expr`
                // could see a NotASet/NotABool here that `select_loop`
                // would have raised).
                if table.is_empty() {
                    return Ok(None);
                }
                let Some(outer) = input.next(hook)? else {
                    return Ok(None);
                };
                let key: Vec<Value> = probe_keys
                    .iter()
                    .map(|k| hook.eval(&outer, k))
                    .collect::<Result<_, _>>()?;
                let matches = table.rows_for(key);
                if !matches.is_empty() {
                    // Copying the index list is a small memcpy; rows
                    // re-bind lazily above (len × O(1) `Rc` bumps).
                    *cur = Some((outer, matches.to_vec(), 0));
                }
            },
            Node::Materialized { rows, idx, rest } => {
                if *idx < rows.len() {
                    let row = rows[*idx].clone();
                    *idx += 1;
                    Ok(Some(row))
                } else if let Some(rest) = rest {
                    rest.next(hook)
                } else {
                    Ok(None)
                }
            }
            Node::ParJoin {
                var,
                rows,
                probe,
                matches,
                cursor,
                cur_env,
            } => loop {
                let (i, j) = *cursor;
                if i >= matches.len() {
                    return Ok(None);
                }
                let group = &matches[i];
                if j < group.len() {
                    *cursor = (i, j + 1);
                    let item = rows.as_slice()[group[j] as usize].clone();
                    let outer = match probe {
                        ParProbe::Envs(envs) => envs[i].clone(),
                        ParProbe::Rows {
                            base,
                            var: svar,
                            items,
                        } => match cur_env {
                            Some((ci, env)) if *ci == i => env.clone(),
                            _ => {
                                let env = base.bind(*svar, items.as_slice()[i].clone());
                                *cur_env = Some((i, env.clone()));
                                env
                            }
                        },
                    };
                    return Ok(Some(outer.bind(*var, item)));
                }
                *cursor = (i + 1, 0);
            },
            Node::Filter { input, conjuncts } => loop {
                let Some(env) = input.next(hook)? else {
                    return Ok(None);
                };
                if check_all(conjuncts, &env, hook)? {
                    return Ok(Some(env));
                }
            },
            Node::Traced { sid, inner } => {
                let t0 = trace::now_ns();
                let r = inner.next(hook);
                let ns = trace::now_ns().saturating_sub(t0);
                let rows = matches!(r, Ok(Some(_))) as u64;
                trace::add_next(*sid, ns, rows);
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::compile;
    use machiavelli_syntax::parse_expr;

    /// A minimal structural evaluator covering the safe-expression class
    /// (the real evaluator lives above this crate; tests only need
    /// variables, fields, literals, `=`/`<`/`>`, sets and records).
    struct MiniEval;

    impl EvalHook for MiniEval {
        type Error = String;
        fn eval(&mut self, env: &Env, expr: &Expr) -> Result<Value, String> {
            Ok(match &expr.kind {
                ExprKind::Int(n) => Value::Int(*n),
                ExprKind::Bool(b) => Value::Bool(*b),
                ExprKind::Str(s) => Value::str(s.as_str()),
                ExprKind::Var(x) => env.lookup(x).ok_or_else(|| format!("unbound {x}"))?,
                ExprKind::Field { expr, label } => match self.eval(env, expr)? {
                    Value::Record(fs) => fs
                        .get(label)
                        .cloned()
                        .ok_or_else(|| format!("no {label}"))?,
                    _ => return Err("not a record".into()),
                },
                ExprKind::Record(fields) => Value::record(
                    fields
                        .iter()
                        .map(|(l, fe)| Ok((*l, self.eval(env, fe)?)))
                        .collect::<Result<Vec<_>, String>>()?,
                ),
                ExprKind::Binop { op, left, right } => {
                    let l = self.eval(env, left)?;
                    let r = self.eval(env, right)?;
                    match op {
                        BinOp::Eq => Value::Bool(l == r),
                        BinOp::Lt => Value::Bool(l < r),
                        BinOp::Gt => Value::Bool(l > r),
                        _ => return Err("mini-eval: unsupported op".into()),
                    }
                }
                _ => return Err("mini-eval: unsupported expr".into()),
            })
        }
    }

    fn rows(label_vals: &[(i64, i64)]) -> Value {
        Value::set(label_vals.iter().map(|(k, a)| {
            Value::record([("K".into(), Value::Int(*k)), ("A".into(), Value::Int(*a))])
        }))
    }

    fn run(src: &str, env: &Env) -> Value {
        let e = parse_expr(src).unwrap();
        let ExprKind::Select {
            result,
            generators,
            pred,
        } = &e.kind
        else {
            panic!()
        };
        let plan = compile(generators, pred, result).unwrap().physical();
        execute(&plan, env, &mut MiniEval).unwrap()
    }

    #[test]
    fn hash_join_pipeline_matches_expected() {
        let env = Env::new()
            .bind("r", rows(&[(1, 10), (2, 20), (3, 30)]))
            .bind("s", rows(&[(2, 200), (3, 300), (3, 301), (9, 900)]));
        let got = run(
            "select (x.A, y.A) where x <- r, y <- s with x.K = y.K",
            &env,
        );
        let want = Value::set([
            Value::tuple([Value::Int(20), Value::Int(200)]),
            Value::tuple([Value::Int(30), Value::Int(300)]),
            Value::tuple([Value::Int(30), Value::Int(301)]),
        ]);
        assert_eq!(got, want);
    }

    #[test]
    fn pushdown_filter_applies_before_join() {
        let env = Env::new()
            .bind("r", rows(&[(1, 1), (2, 2)]))
            .bind("s", rows(&[(1, 5), (2, 6)]));
        let got = run(
            "select y.A where x <- r, y <- s with x.K = y.K andalso x.A > 1",
            &env,
        );
        assert_eq!(got, Value::set([Value::Int(6)]));
    }

    #[test]
    fn empty_build_side_yields_empty() {
        let env = Env::new()
            .bind("r", rows(&[(1, 1)]))
            .bind("s", Value::set([]));
        let got = run("select x where x <- r, y <- s with x.K = y.K", &env);
        assert_eq!(got, Value::set([]));
    }

    #[test]
    fn non_set_source_errors_like_the_evaluator() {
        let env = Env::new().bind("r", Value::Int(3));
        let e = parse_expr("select x where x <- r with true").unwrap();
        let ExprKind::Select {
            result,
            generators,
            pred,
        } = &e.kind
        else {
            panic!()
        };
        let plan = compile(generators, pred, result).unwrap().physical();
        match execute(&plan, &env, &mut MiniEval) {
            Err(ExecError::NotASet(shown)) => assert_eq!(shown, "3"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn index_scan_matches_filter_semantics() {
        let env = Env::new()
            .bind("r", rows(&[(1, 10), (2, 20), (2, 21), (3, 30)]))
            .bind("limit", Value::Int(2));
        let got = run("select x.A where x <- r with x.K = limit", &env);
        assert_eq!(got, Value::set([Value::Int(20), Value::Int(21)]));
        // Swapped orientation and an extra residual filter.
        let got = run(
            "select x.A where x <- r with x.A > 20 andalso limit = x.K",
            &env,
        );
        assert_eq!(got, Value::set([Value::Int(21)]));
    }

    #[test]
    fn index_scan_reuses_the_cached_grouping() {
        with_store(|s| s.reset());
        let env = Env::new()
            .bind("r", rows(&[(1, 10), (2, 20)]))
            .bind("limit", Value::Int(1));
        let q = "select x.A where x <- r with x.K = limit";
        assert_eq!(run(q, &env), Value::set([Value::Int(10)]));
        // Different probe constant, same relation storage: same index.
        let env2 = env.bind("limit", Value::Int(2));
        assert_eq!(run(q, &env2), Value::set([Value::Int(20)]));
        let stats = with_store(|s| s.stats());
        assert_eq!((stats.builds, stats.hits), (1, 1), "{stats:?}");
    }

    #[test]
    fn cacheable_join_builds_once_across_executions() {
        with_store(|s| s.reset());
        let env = Env::new()
            .bind("r", rows(&[(1, 10), (2, 20)]))
            .bind("s", rows(&[(1, 100), (2, 200)]));
        let q = "select (x.A, y.A) where x <- r, y <- s with x.K = y.K";
        let first = run(q, &env);
        let second = run(q, &env);
        assert_eq!(first, second);
        let stats = with_store(|s| s.stats());
        assert_eq!((stats.builds, stats.hits), (1, 1), "{stats:?}");
    }

    #[test]
    fn environment_dependent_build_is_not_cached() {
        with_store(|s| s.reset());
        let env = Env::new()
            .bind("r", rows(&[(1, 10), (2, 20)]))
            .bind("s", rows(&[(1, 100), (2, 200)]))
            .bind("cutoff", Value::Int(150));
        // The build-side filter mentions `cutoff`: correct results, but
        // the table must be rebuilt per execution (no fingerprint).
        let q = "select (x.A, y.A) where x <- r, y <- s \
                 with x.K = y.K andalso y.A > cutoff";
        let got = run(q, &env);
        assert_eq!(
            got,
            Value::set([Value::tuple([Value::Int(20), Value::Int(200)])])
        );
        run(q, &env);
        let stats = with_store(|s| s.stats());
        assert_eq!(stats.builds, 0, "{stats:?}");
        assert_eq!(stats.entries, 0, "{stats:?}");
    }
}
