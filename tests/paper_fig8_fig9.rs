//! E7/E8 — Figures 8 and 9: views over person objects, join of views as
//! intersection, and the advisor-salary query.

use machiavelli::value::Value;
use machiavelli::Session;
use machiavelli_bench::university_session;
use machiavelli_oodb::{
    employee_view, make_person, person_view, store_value, student_view, tf_view, PersonSpec,
    UniversityParams, MACHIAVELLI_VIEWS, PERSON_STORE_TYPE,
};

#[test]
fn views_typecheck_with_expected_instances() {
    // "The types inferred for these functions will be quite general, but
    // the following are the instances that are important": applying each
    // view to a {PersonObj} store yields the Figure 7 class types.
    let (s, _) = university_session(UniversityParams {
        n_people: 10,
        ..Default::default()
    });
    // (The Id type prints one unfolding of the equi-recursive PersonObj;
    // the checker treats rec types up to unfolding.)
    let person = s.type_of("PersonView(persons);").unwrap();
    assert!(
        person.starts_with("{[Id:ref(") && person.ends_with("Name:string]}"),
        "{person}"
    );
    assert!(person.contains("rec v0 . ref("), "{person}");
    let employee = s.type_of("EmployeeView(persons);").unwrap();
    assert!(employee.contains("Salary:int"), "{employee}");
    let student = s.type_of("StudentView(persons);").unwrap();
    assert!(student.contains("Advisor:re"), "{student}");
    let tf = s.type_of("TFView(persons);").unwrap();
    assert!(
        tf.contains("Class:string") && tf.contains("Salary:int") && tf.contains("Advisor:re"),
        "{tf}"
    );
}

#[test]
fn interpreted_views_agree_with_native_views() {
    let (mut s, uni) = university_session(UniversityParams {
        n_people: 60,
        seed: 3,
        ..Default::default()
    });
    let store = uni.store();
    for (mach, native) in [
        ("PersonView(persons);", person_view(&store)),
        ("EmployeeView(persons);", employee_view(&store)),
        ("StudentView(persons);", student_view(&store)),
        ("TFView(persons);", tf_view(&store)),
    ] {
        let interpreted = s.eval_one(mach).unwrap().value;
        assert_eq!(interpreted, native.into_value(), "{mach}");
    }
}

#[test]
fn fig9_supported_student_is_intersection() {
    // val supported_student = join(StudentView(persons), EmployeeView(persons));
    let (mut s, uni) = university_session(UniversityParams {
        n_people: 80,
        seed: 5,
        ..Default::default()
    });
    s.run("val supported_student = join(StudentView(persons), EmployeeView(persons));")
        .unwrap();
    let out = s.eval_one("card(supported_student);").unwrap();
    let both = uni.roles.iter().filter(|r| r.0 && r.1).count();
    assert_eq!(out.show(), format!("val it = {both} : int"));
    // Every row carries the union of fields.
    let rows = s.eval_one("supported_student;").unwrap().value;
    let Value::Set(rows) = rows else { panic!() };
    for row in rows.iter() {
        let Value::Record(fs) = row else { panic!() };
        for f in ["Name", "Salary", "Advisor", "Id"] {
            assert!(fs.contains_key(f), "missing {f}");
        }
    }
}

#[test]
fn fig9_students_earning_more_than_their_advisors() {
    // Hand-built store with known salaries so the answer is exact.
    let prof = make_person(PersonSpec::new("Prof").salary(90000));
    let poor_prof = make_person(PersonSpec::new("PoorProf").salary(1000));
    let rich_tf = make_person(
        PersonSpec::new("RichTF")
            .salary(50000)
            .advisor(poor_prof.clone())
            .class("CS1"),
    );
    let modest_tf = make_person(
        PersonSpec::new("ModestTF")
            .salary(20000)
            .advisor(prof.clone())
            .class("CS2"),
    );
    let store = store_value(&[prof, poor_prof, rich_tf, modest_tf]);

    let mut s = Session::new();
    s.bind_external("persons", store, PERSON_STORE_TYPE)
        .unwrap();
    s.run(MACHIAVELLI_VIEWS).unwrap();
    s.run("val supported_student = join(StudentView(persons), EmployeeView(persons));")
        .unwrap();
    let out = s
        .eval_one(
            "select x.Name
             where x <- supported_student, y <- EmployeeView(persons)
             with x.Advisor = y.Id andalso x.Salary > y.Salary;",
        )
        .unwrap();
    assert_eq!(out.show(), r#"val it = {"RichTF"} : {string}"#);
}

#[test]
fn wealthy_method_is_inherited_by_subclass_views() {
    // §5: Wealthy applies to EmployeeView(persons) and, by inheritance
    // (record polymorphism), to TFView(persons).
    let (mut s, _) = university_session(UniversityParams {
        n_people: 120,
        seed: 8,
        ..Default::default()
    });
    s.run("fun Wealthy(S) = select x.Name where x <- S with x.Salary > 100000;")
        .unwrap();
    let on_employees = s.eval_one("Wealthy(EmployeeView(persons));").unwrap();
    let on_tfs = s.eval_one("Wealthy(TFView(persons));").unwrap();
    let Value::Set(emp) = &on_employees.value else {
        panic!()
    };
    let Value::Set(tfs) = &on_tfs.value else {
        panic!()
    };
    // TF wealthy names ⊆ employee wealthy names.
    assert!(tfs.is_subset(emp));
}

#[test]
fn shared_object_update_via_view() {
    // §5's reference semantics through views: update the object found in
    // a view; all views see the change.
    let (mut s, _) = university_session(UniversityParams {
        n_people: 10,
        seed: 2,
        ..Default::default()
    });
    // Give every employee a raise through the view's Id field.
    s.run(
        "val raises = select (x.Id := modify(!(x.Id), Salary, (Value of 999999)))
         where x <- EmployeeView(persons) with true;",
    )
    .unwrap();
    let out = s
        .eval_one("select x.Name where x <- EmployeeView(persons) with x.Salary = 999999;")
        .unwrap();
    let count = s.eval_one("card(EmployeeView(persons));").unwrap();
    let Value::Set(names) = &out.value else {
        panic!()
    };
    let Value::Int(n) = count.value else { panic!() };
    assert_eq!(names.len() as i64, n);
}

#[test]
fn projection_property_of_views() {
    // τ ≤ σ implies Project(View_σ(S), τ) ⊆ View_τ(S): checked in the
    // interpreter for Employee → Person.
    let (mut s, _) = university_session(UniversityParams {
        n_people: 40,
        seed: 13,
        ..Default::default()
    });
    let out = s
        .eval_one(
            "subset(select [Name = x.Name, Id = x.Id] where x <- EmployeeView(persons) with true,
                    PersonView(persons));",
        )
        .unwrap();
    assert_eq!(out.show(), "val it = true : bool");
}
