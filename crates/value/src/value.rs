//! The runtime value representation.
//!
//! Description values (§2 of the paper) carry a *total order* so sets can
//! be kept canonical (sorted, deduplicated): equality of sets is then
//! plain structural equality, matching the paper's mathematical sets.
//!
//! * records — [`Fields`]: label-sorted slices of interned [`Symbol`]
//!   labels, so field access is a scan/binary-search over pointer-identity
//!   ids and record comparison hits the identity fast path on equal labels;
//! * variants — a label plus payload;
//! * sets — [`crate::set::MSet`], always canonical;
//! * references — a mutable cell plus a session-unique id; equality and
//!   order are *identity* (`ref(3) = ref(3)` is `false`, per §5);
//! * dynamics — a value packaged with its runtime type; compared by the
//!   identity of the `dynamic` invocation that created them (§5).
//!
//! Containers (`Fields`, strings, set storage) sit behind `Rc`, so
//! cloning a value — environment lookup, row materialization in joins —
//! is a reference-count bump, not a deep copy.

use crate::set::MSet;
use machiavelli_syntax::ast::{BinOp, Expr};
pub use machiavelli_syntax::symbol::{tuple_label, Symbol};
use machiavelli_types::Ty;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Record/variant labels (interned).
pub type Label = Symbol;

/// Session-unique identity supply for references and dynamics.
static NEXT_IDENTITY: AtomicU64 = AtomicU64::new(1);

fn fresh_identity() -> u64 {
    NEXT_IDENTITY.fetch_add(1, AtomicOrdering::Relaxed)
}

/// A mutable reference cell with object identity.
#[derive(Debug, Clone)]
pub struct RefValue {
    pub id: u64,
    pub cell: Rc<RefCell<Value>>,
}

impl RefValue {
    /// Allocate a fresh reference (fresh identity).
    pub fn new(v: Value) -> Self {
        RefValue {
            id: fresh_identity(),
            cell: Rc::new(RefCell::new(v)),
        }
    }

    /// Read the current contents (cloned).
    pub fn get(&self) -> Value {
        self.cell.borrow().clone()
    }

    /// Overwrite the contents. Every write — the evaluator's `:=`, OODB
    /// object updates, persistence decoding — funnels through here, so
    /// this is where the thread's mutation epoch is advanced **and the
    /// written identity recorded in the dirty-ref set**: any cache
    /// keyed on the epoch (the index store) can never serve a snapshot
    /// computed before this write, and caches that track which refs
    /// they depend on can keep every entry this write cannot reach.
    pub fn set(&self, v: Value) {
        *self.cell.borrow_mut() = v;
        crate::epoch::note_ref_write(self.id);
    }
}

/// A dynamic value: payload + its description type, with creation
/// identity (two dynamics are equal only if created by the same
/// `dynamic(…)` invocation).
#[derive(Debug, Clone)]
pub struct DynValue {
    pub id: u64,
    pub value: Rc<Value>,
    /// The runtime type recorded at creation, when known.
    pub ty: Option<Ty>,
}

impl DynValue {
    pub fn new(v: Value, ty: Option<Ty>) -> Self {
        DynValue {
            id: fresh_identity(),
            value: Rc::new(v),
            ty,
        }
    }
}

/// A function closure: parameters, body, captured environment.
#[derive(Debug)]
pub struct Closure {
    pub params: Vec<Symbol>,
    pub body: Expr,
    pub env: Env,
    /// For recursive closures (`fun` / `rec`): the closure's own name,
    /// rebound to itself at application time.
    pub rec_name: Option<Symbol>,
}

/// Builtin function values (identifiers in the initial environment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `union : ({"a} * {"a}) -> {"a}` as a first-class value.
    Union,
    /// `not : bool -> bool`.
    Not,
    /// `applyc(f, x)` — §6's coercion application: statically the
    /// argument may be any description ≥ the domain; dynamically the
    /// application is ordinary (field access is structural).
    ApplyC,
}

// --- record fields --------------------------------------------------------

/// The fields of a record value: `(label, value)` entries sorted by the
/// canonical (string) label order, behind an `Rc` so clones are O(1).
///
/// Lookup by [`Symbol`] scans/binary-searches by interned-label identity;
/// lookup by `&str` binary-searches the (string-sorted) labels. The
/// entry list is immutable — "mutation" (`insert`/`remove`) rebuilds,
/// which matches the paper's pure `modify`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Fields {
    entries: Rc<[(Symbol, Value)]>,
}

/// Lookup keys for [`Fields`]: symbols (fast id compare) or plain
/// strings (order-based search).
pub trait FieldKey {
    fn find_in(&self, entries: &[(Symbol, Value)]) -> Option<usize>;
}

impl FieldKey for Symbol {
    fn find_in(&self, entries: &[(Symbol, Value)]) -> Option<usize> {
        // Records are narrow; a linear id scan beats binary search with
        // its string-compare fallback until surprisingly wide rows.
        if entries.len() <= 12 {
            entries.iter().position(|(l, _)| l.id() == self.id())
        } else {
            entries.binary_search_by(|(l, _)| l.cmp(self)).ok()
        }
    }
}

impl FieldKey for &Symbol {
    fn find_in(&self, entries: &[(Symbol, Value)]) -> Option<usize> {
        (**self).find_in(entries)
    }
}

impl FieldKey for &str {
    fn find_in(&self, entries: &[(Symbol, Value)]) -> Option<usize> {
        entries.binary_search_by(|(l, _)| l.as_str().cmp(self)).ok()
    }
}

impl FieldKey for &String {
    fn find_in(&self, entries: &[(Symbol, Value)]) -> Option<usize> {
        self.as_str().find_in(entries)
    }
}

impl Fields {
    /// The empty field list.
    pub fn new() -> Fields {
        Fields::default()
    }

    /// Build from unsorted `(label, value)` pairs; on duplicate labels
    /// the *last* value wins (`BTreeMap`-collect semantics).
    pub fn from_vec(mut entries: Vec<(Symbol, Value)>) -> Fields {
        entries.sort_by_key(|(a, _)| *a);
        // Keep the last of each run of equal labels.
        let mut out: Vec<(Symbol, Value)> = Vec::with_capacity(entries.len());
        for (l, v) in entries {
            match out.last_mut() {
                Some((pl, pv)) if pl.id() == l.id() => *pv = v,
                _ => out.push((l, v)),
            }
        }
        Fields {
            entries: out.into(),
        }
    }

    /// Wrap entries already sorted by label (checked in debug builds).
    pub fn from_sorted_vec(entries: Vec<(Symbol, Value)>) -> Fields {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        Fields {
            entries: entries.into(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The sorted `(label, value)` entries.
    pub fn entries(&self) -> &[(Symbol, Value)] {
        &self.entries
    }

    pub fn get(&self, key: impl FieldKey) -> Option<&Value> {
        key.find_in(&self.entries).map(|i| &self.entries[i].1)
    }

    pub fn contains_key(&self, key: impl FieldKey) -> bool {
        key.find_in(&self.entries).is_some()
    }

    pub fn iter(&self) -> impl ExactSizeIterator<Item = (&Symbol, &Value)> + Clone {
        self.entries.iter().map(|(l, v)| (l, v))
    }

    pub fn keys(&self) -> impl ExactSizeIterator<Item = &Symbol> + Clone {
        self.entries.iter().map(|(l, _)| l)
    }

    pub fn values(&self) -> impl ExactSizeIterator<Item = &Value> + Clone {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Insert/overwrite a field, rebuilding the entry list (records are
    /// immutable values; this is the pure-update primitive).
    pub fn insert(&mut self, label: Symbol, value: Value) -> Option<Value> {
        let mut entries: Vec<(Symbol, Value)> = self.entries.to_vec();
        match entries.binary_search_by(|(l, _)| l.cmp(&label)) {
            Ok(i) => {
                let old = std::mem::replace(&mut entries[i].1, value);
                self.entries = entries.into();
                Some(old)
            }
            Err(i) => {
                entries.insert(i, (label, value));
                self.entries = entries.into();
                None
            }
        }
    }

    /// Remove a field, rebuilding the entry list.
    pub fn remove(&mut self, key: impl FieldKey) -> Option<Value> {
        let i = key.find_in(&self.entries)?;
        let mut entries: Vec<(Symbol, Value)> = self.entries.to_vec();
        let (_, v) = entries.remove(i);
        self.entries = entries.into();
        Some(v)
    }

    /// When the record is an n-tuple (`#1 … #n`), its items in index
    /// order.
    pub fn tuple_items(&self) -> Option<Vec<&Value>> {
        if self.is_empty() {
            return None;
        }
        let n = self.len();
        let mut out: Vec<Option<&Value>> = vec![None; n];
        for (l, v) in self.iter() {
            let s = l.as_str();
            let idx: usize = s.strip_prefix('#')?.parse().ok()?;
            if !(1..=n).contains(&idx) || out[idx - 1].is_some() {
                return None;
            }
            out[idx - 1] = Some(v);
        }
        out.into_iter().collect()
    }
}

impl FromIterator<(Symbol, Value)> for Fields {
    fn from_iter<T: IntoIterator<Item = (Symbol, Value)>>(iter: T) -> Fields {
        Fields::from_vec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Fields {
    type Item = (&'a Symbol, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (Symbol, Value)>,
        fn(&'a (Symbol, Value)) -> (&'a Symbol, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(l, v)| (l, v))
    }
}

impl<K: FieldKey> std::ops::Index<K> for Fields {
    type Output = Value;
    fn index(&self, key: K) -> &Value {
        self.get(key).expect("no such record field")
    }
}

/// A Machiavelli runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    Unit,
    Int(i64),
    Real(f64),
    Str(Rc<str>),
    Bool(bool),
    Record(Fields),
    Variant(Label, Box<Value>),
    Set(MSet),
    Ref(RefValue),
    Dynamic(DynValue),
    Closure(Rc<Closure>),
    /// A first-class infix operator (`hom(f, +, 0, S)`).
    Op(BinOp),
    Builtin(Builtin),
}

impl Value {
    pub fn record(fields: impl IntoIterator<Item = (Label, Value)>) -> Value {
        Value::Record(fields.into_iter().collect())
    }

    pub fn variant(label: impl Into<Label>, payload: Value) -> Value {
        Value::Variant(label.into(), Box::new(payload))
    }

    pub fn set(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Set(MSet::from_iter(items))
    }

    pub fn str(s: impl Into<Rc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// An n-ary tuple (record with `#1`, … labels).
    pub fn tuple(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Record(
            items
                .into_iter()
                .enumerate()
                .map(|(i, v)| (tuple_label(i + 1), v))
                .collect(),
        )
    }

    /// True for values on which equality (and set membership) is defined.
    pub fn is_description(&self) -> bool {
        match self {
            Value::Unit
            | Value::Int(_)
            | Value::Real(_)
            | Value::Str(_)
            | Value::Bool(_)
            | Value::Ref(_)
            | Value::Dynamic(_) => true,
            Value::Record(fs) => fs.values().all(Value::is_description),
            Value::Variant(_, p) => p.is_description(),
            Value::Set(s) => s.iter().all(Value::is_description),
            Value::Closure(_) | Value::Op(_) | Value::Builtin(_) => false,
        }
    }

    /// Constructor rank for the total order.
    fn rank(&self) -> u8 {
        match self {
            Value::Unit => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Real(_) => 3,
            Value::Str(_) => 4,
            Value::Record(_) => 5,
            Value::Variant(..) => 6,
            Value::Set(_) => 7,
            Value::Ref(_) => 8,
            Value::Dynamic(_) => 9,
            Value::Closure(_) => 10,
            Value::Op(_) => 11,
            Value::Builtin(_) => 12,
        }
    }
}

/// Total order over all values. Description values order structurally
/// (reals via IEEE `total_cmp`; refs and dynamics by identity); function
/// values order by address/opcode so the order stays total — the type
/// system keeps them out of sets.
pub fn value_cmp(a: &Value, b: &Value) -> Ordering {
    use Value::*;
    let rank_cmp = a.rank().cmp(&b.rank());
    if rank_cmp != Ordering::Equal {
        return rank_cmp;
    }
    match (a, b) {
        (Unit, Unit) => Ordering::Equal,
        (Bool(x), Bool(y)) => x.cmp(y),
        (Int(x), Int(y)) => x.cmp(y),
        (Real(x), Real(y)) => x.total_cmp(y),
        (Str(x), Str(y)) => x.cmp(y),
        (Record(xs), Record(ys)) => {
            // Entries are label-sorted, so this lexicographic walk is
            // label-wise; equal labels compare as a pointer-identity check.
            let xs = xs.entries();
            let ys = ys.entries();
            for ((lx, vx), (ly, vy)) in xs.iter().zip(ys) {
                let lc = lx.cmp(ly);
                if lc != Ordering::Equal {
                    return lc;
                }
                let vc = value_cmp(vx, vy);
                if vc != Ordering::Equal {
                    return vc;
                }
            }
            xs.len().cmp(&ys.len())
        }
        (Variant(lx, px), Variant(ly, py)) => {
            let lc = lx.cmp(ly);
            if lc != Ordering::Equal {
                return lc;
            }
            value_cmp(px, py)
        }
        (Set(xs), Set(ys)) => {
            for (x, y) in xs.iter().zip(ys.iter()) {
                let c = value_cmp(x, y);
                if c != Ordering::Equal {
                    return c;
                }
            }
            xs.len().cmp(&ys.len())
        }
        (Ref(x), Ref(y)) => x.id.cmp(&y.id),
        (Dynamic(x), Dynamic(y)) => x.id.cmp(&y.id),
        (Closure(x), Closure(y)) => (Rc::as_ptr(x) as usize).cmp(&(Rc::as_ptr(y) as usize)),
        (Op(x), Op(y)) => (*x as u8).cmp(&(*y as u8)),
        (Builtin(x), Builtin(y)) => (*x as u8).cmp(&(*y as u8)),
        _ => unreachable!("rank() already discriminated"),
    }
}

/// Structural equality (identity for refs, dynamics, closures).
pub fn value_eq(a: &Value, b: &Value) -> bool {
    value_cmp(a, b) == Ordering::Equal
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        value_eq(self, other)
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        value_cmp(self, other)
    }
}

// --- reference reachability -------------------------------------------------

/// The reference cells reachable from a value, collected by
/// [`scan_refs`]: the identities of every `ref` a future write could
/// target, plus an `opaque` flag for values whose reachability cannot
/// be traced (closures capture whole environments — walking them would
/// drag in the entire session, so a closure-bearing value is simply
/// marked "could reach anything").
///
/// This is the *dependency record* of the index store's fine-grained
/// invalidation: an entry built over a relation remembers the refs its
/// rows can reach, and a later [`RefValue::set`] evicts only entries
/// whose record contains the written identity.
#[derive(Debug, Default)]
pub struct RefScan {
    ids: std::collections::HashSet<u64>,
    /// A closure (or other untraceable value) was encountered: callers
    /// must treat every write as potentially reaching this value.
    pub opaque: bool,
}

impl RefScan {
    /// The collected identities, sorted (ready for
    /// [`crate::epoch::DirtyRefs::intersects`]).
    pub fn into_sorted_ids(self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.ids.into_iter().collect();
        ids.sort_unstable();
        ids
    }
}

/// Collect the identities of every reference cell reachable from `v`
/// into `scan`, descending through records, variants, sets, dynamics
/// and the *contents* of refs themselves (cycle-safe: a ref already
/// collected is not re-entered). New reachability can only appear via a
/// write to an already-reachable ref, and that write itself dirties the
/// entry — so a scan taken at build time stays sound for the entry's
/// whole life.
pub fn scan_refs(v: &Value, scan: &mut RefScan) {
    match v {
        Value::Unit
        | Value::Int(_)
        | Value::Real(_)
        | Value::Str(_)
        | Value::Bool(_)
        | Value::Op(_)
        | Value::Builtin(_) => {}
        Value::Record(fs) => {
            for fv in fs.values() {
                scan_refs(fv, scan);
            }
        }
        Value::Variant(_, p) => scan_refs(p, scan),
        Value::Set(items) => {
            for item in items.iter() {
                scan_refs(item, scan);
            }
        }
        Value::Ref(r) => {
            if scan.ids.insert(r.id) {
                scan_refs(&r.cell.borrow(), scan);
            }
        }
        // Dynamics have an immutable payload but the payload can hold
        // refs whose *contents* mutate — descend.
        Value::Dynamic(d) => scan_refs(&d.value, scan),
        // A closure's captured environment is the whole enclosing
        // scope; tracing it is not worth the walk. Opaque: reachable-
        // by-anything.
        Value::Closure(_) => scan.opaque = true,
    }
}

// --- environments --------------------------------------------------------

/// A persistent (shared-tail) evaluation environment, keyed by interned
/// symbols: lookup walks the spine comparing interned-pointer ids, and the returned
/// clone is cheap (values share their backing storage via `Rc`).
#[derive(Debug, Clone, Default)]
pub struct Env {
    head: Option<Rc<EnvNode>>,
}

#[derive(Debug)]
struct EnvNode {
    name: Symbol,
    value: RefCell<Value>,
    next: Option<Rc<EnvNode>>,
}

impl Env {
    pub fn new() -> Env {
        Env::default()
    }

    /// Extend with a binding, returning the new environment (the original
    /// is untouched — closures capture cheaply).
    pub fn bind(&self, name: impl Into<Symbol>, value: Value) -> Env {
        Env {
            head: Some(Rc::new(EnvNode {
                name: name.into(),
                value: RefCell::new(value),
                next: self.head.clone(),
            })),
        }
    }

    /// Look up a name (innermost binding wins). The clone on return is
    /// O(1) for containers (shared representation).
    pub fn lookup(&self, name: impl Into<Symbol>) -> Option<Value> {
        let id = name.into().id();
        let mut cur = self.head.as_ref();
        while let Some(node) = cur {
            if node.name.id() == id {
                return Some(node.value.borrow().clone());
            }
            cur = node.next.as_ref();
        }
        None
    }

    /// Run `f` on the bound value without cloning it (the truly
    /// zero-cost read for callers that only need a look).
    pub fn with_lookup<R>(
        &self,
        name: impl Into<Symbol>,
        f: impl FnOnce(&Value) -> R,
    ) -> Option<R> {
        let id = name.into().id();
        let mut cur = self.head.as_ref();
        while let Some(node) = cur {
            if node.name.id() == id {
                return Some(f(&node.value.borrow()));
            }
            cur = node.next.as_ref();
        }
        None
    }

    /// Overwrite the innermost binding of `name` (used to tie recursive
    /// knots for `fun`).
    pub fn set(&self, name: impl Into<Symbol>, value: Value) -> bool {
        let id = name.into().id();
        let mut cur = self.head.as_ref();
        while let Some(node) = cur {
            if node.name.id() == id {
                *node.value.borrow_mut() = value;
                return true;
            }
            cur = node.next.as_ref();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_identity_equality() {
        let a = Value::Ref(RefValue::new(Value::Int(3)));
        let b = Value::Ref(RefValue::new(Value::Int(3)));
        assert_ne!(a, b, "ref(3) = ref(3) must be false (object identity)");
        assert_eq!(a, a.clone());
    }

    #[test]
    fn ref_mutation_shared() {
        let r = RefValue::new(Value::Int(1));
        let alias = Value::Ref(r.clone());
        r.set(Value::Int(2));
        let Value::Ref(r2) = &alias else { panic!() };
        assert_eq!(r2.get(), Value::Int(2));
    }

    #[test]
    fn dynamic_identity() {
        let a = Value::Dynamic(DynValue::new(Value::Int(3), None));
        let b = Value::Dynamic(DynValue::new(Value::Int(3), None));
        assert_ne!(a, b);
    }

    #[test]
    fn scan_refs_collects_reachable_identities() {
        let inner = RefValue::new(Value::Int(1));
        let outer = RefValue::new(Value::record([("In".into(), Value::Ref(inner.clone()))]));
        let row = Value::record([
            ("D".into(), Value::Ref(outer.clone())),
            ("N".into(), Value::Int(7)),
        ]);
        let mut scan = RefScan::default();
        scan_refs(&row, &mut scan);
        assert!(!scan.opaque);
        let ids = scan.into_sorted_ids();
        assert!(
            ids.contains(&outer.id) && ids.contains(&inner.id),
            "{ids:?}"
        );
        // Plain data reaches nothing.
        let mut scan = RefScan::default();
        scan_refs(&Value::set([Value::Int(1), Value::Int(2)]), &mut scan);
        assert!(scan.into_sorted_ids().is_empty());
    }

    #[test]
    fn scan_refs_survives_cycles_and_flags_closures() {
        // Build a reference cycle: r -> record -> r.
        let r = RefValue::new(Value::Unit);
        r.set(Value::record([("Me".into(), Value::Ref(r.clone()))]));
        let mut scan = RefScan::default();
        scan_refs(&Value::Ref(r.clone()), &mut scan);
        assert_eq!(scan.into_sorted_ids(), vec![r.id]);
        // Closures are opaque.
        let mut scan = RefScan::default();
        scan_refs(
            &Value::Closure(Rc::new(Closure {
                params: vec![],
                body: machiavelli_syntax::parse_expr("1").unwrap(),
                env: Env::new(),
                rec_name: None,
            })),
            &mut scan,
        );
        assert!(scan.opaque);
    }

    #[test]
    fn record_equality_ignores_insertion_order() {
        let a = Value::record([("B".into(), Value::Int(2)), ("A".into(), Value::Int(1))]);
        let b = Value::record([("A".into(), Value::Int(1)), ("B".into(), Value::Int(2))]);
        assert_eq!(a, b);
    }

    #[test]
    fn fields_lookup_by_symbol_and_str() {
        let Value::Record(fs) =
            Value::record([("A".into(), Value::Int(1)), ("B".into(), Value::Int(2))])
        else {
            panic!()
        };
        assert_eq!(fs.get(Symbol::intern("A")), Some(&Value::Int(1)));
        assert_eq!(fs.get("B"), Some(&Value::Int(2)));
        assert_eq!(fs.get("C"), None);
        assert_eq!(fs["A"], Value::Int(1));
        assert!(fs.contains_key("B"));
    }

    #[test]
    fn fields_last_duplicate_wins() {
        let f = Fields::from_vec(vec![
            (Symbol::intern("A"), Value::Int(1)),
            (Symbol::intern("A"), Value::Int(2)),
        ]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.get("A"), Some(&Value::Int(2)));
    }

    #[test]
    fn fields_insert_remove() {
        let mut f = Fields::from_vec(vec![(Symbol::intern("A"), Value::Int(1))]);
        assert_eq!(f.insert(Symbol::intern("B"), Value::Int(2)), None);
        assert_eq!(
            f.insert(Symbol::intern("A"), Value::Int(9)),
            Some(Value::Int(1))
        );
        assert_eq!(f.len(), 2);
        assert_eq!(f.remove("A"), Some(Value::Int(9)));
        assert_eq!(f.remove("A"), None);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn fields_clone_is_shallow() {
        let Value::Record(fs) = Value::record([("A".into(), Value::Int(1))]) else {
            panic!()
        };
        let copy = fs.clone();
        assert!(std::ptr::eq(fs.entries().as_ptr(), copy.entries().as_ptr()));
    }

    #[test]
    fn tuple_detection() {
        let Value::Record(fs) = Value::tuple([Value::Int(1), Value::Int(2)]) else {
            panic!()
        };
        let items = fs.tuple_items().unwrap();
        assert_eq!(items, vec![&Value::Int(1), &Value::Int(2)]);
        let Value::Record(not) = Value::record([("A".into(), Value::Int(1))]) else {
            panic!()
        };
        assert!(not.tuple_items().is_none());
    }

    #[test]
    fn wide_tuples_order_numerically() {
        let vals: Vec<Value> = (0..12).map(Value::Int).collect();
        let Value::Record(fs) = Value::tuple(vals) else {
            panic!()
        };
        let items = fs.tuple_items().unwrap();
        assert_eq!(items[9], &Value::Int(9));
        assert_eq!(items[11], &Value::Int(11));
    }

    #[test]
    fn total_order_across_constructors() {
        let mut vals = [
            Value::str("z"),
            Value::Int(0),
            Value::Unit,
            Value::Bool(true),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Unit);
        assert!(matches!(vals[3], Value::Str(_)));
    }

    #[test]
    fn real_total_cmp_handles_nan() {
        let a = Value::Real(f64::NAN);
        let b = Value::Real(1.0);
        // No panic, deterministic order.
        let _ = value_cmp(&a, &b);
        assert_eq!(value_cmp(&a, &a.clone()), Ordering::Equal);
    }

    #[test]
    fn record_order_is_label_then_value() {
        let ab = Value::record([("A".into(), Value::Int(1)), ("B".into(), Value::Int(2))]);
        let ac = Value::record([("A".into(), Value::Int(1)), ("C".into(), Value::Int(0))]);
        let a = Value::record([("A".into(), Value::Int(1))]);
        assert_eq!(value_cmp(&ab, &ac), Ordering::Less);
        assert_eq!(value_cmp(&a, &ab), Ordering::Less, "prefix orders first");
    }

    #[test]
    fn env_shadowing_and_sharing() {
        let base = Env::new().bind("x", Value::Int(1));
        let inner = base.bind("x", Value::Int(2));
        assert_eq!(base.lookup("x"), Some(Value::Int(1)));
        assert_eq!(inner.lookup("x"), Some(Value::Int(2)));
        assert_eq!(inner.lookup("y"), None);
    }

    #[test]
    fn env_set_ties_knots() {
        let env = Env::new().bind("f", Value::Unit);
        assert!(env.set("f", Value::Int(42)));
        assert_eq!(env.lookup("f"), Some(Value::Int(42)));
        assert!(!env.set("g", Value::Unit));
    }

    #[test]
    fn env_with_lookup_borrows() {
        let env = Env::new().bind("r", Value::record([("A".into(), Value::Int(7))]));
        let got = env.with_lookup("r", |v| matches!(v, Value::Record(_)));
        assert_eq!(got, Some(true));
    }

    #[test]
    fn is_description() {
        assert!(Value::record([("A".into(), Value::Int(1))]).is_description());
        assert!(Value::Ref(RefValue::new(Value::Unit)).is_description());
        assert!(!Value::Op(BinOp::Add).is_description());
    }
}
