//! **Durable Machiavelli sessions** — a write-ahead delta log,
//! generation-stamped checkpoints, and paranoid crash recovery.
//!
//! The paper calls persistence "the most important \[way\] in which
//! Machiavelli needs to be augmented" (§6); `persist.rs` gives values a
//! durable encoding, but re-encoding every binding per save is linear
//! in session size and a crash between saves loses everything. This
//! crate closes both gaps:
//!
//! * **Delta logging.** Every committed evaluation appends only what
//!   changed: bind records for (re)bound names and ref-delta records
//!   for the cells the PR 5 dirty-ref channel attributes
//!   ([`machiavelli_value::epoch`] `note_ref_write` → the WAL dirty
//!   set). Payloads reuse the `persist.rs` grammar threaded through one
//!   [`RefRegistry`] per generation, so sharing and cycles survive
//!   across records, and commit cost is flat in session size.
//! * **Commit groups.** Records are CRC-framed and batched under a
//!   trailing commit marker; recovery applies only complete groups. A
//!   torn tail — a partial frame, a failed checksum, records with no
//!   marker — is a *normal crash artifact*: it is truncated, counted,
//!   and never applied half-way.
//! * **Checkpointing.** [`SessionLog::checkpoint`] compacts current
//!   state into an atomically-renamed snapshot stamped with the next
//!   generation, then resets the log to that generation. A crash
//!   between the two steps leaves a stale log whose generation no
//!   longer matches — recovery discards it, because its effects are
//!   already inside the snapshot.
//! * **Self-healing.** A torn append or failed sync *dooms* the log
//!   (appends refuse; memory is ahead of disk, and pretending otherwise
//!   is how databases lose data). The next commit escalates to a full
//!   checkpoint, which rebuilds durability from current state.
//!
//! Injected faults (`MACHIAVELLI_FAULT_WAL_TORN_PPM`,
//! `MACHIAVELLI_FAULT_WAL_SYNC_FAIL_PPM`,
//! `MACHIAVELLI_FAULT_CHECKPOINT_KILL_PPM` — see
//! [`machiavelli_value::faults`]) drive the seeded kill-replay-verify
//! harness in `tests/crash_recovery.rs`.
//!
//! # Thread discipline
//!
//! The dirty-ref channel is thread-local and shared by every session a
//! thread hosts, so attribution relies on one rule: **after each
//! evaluation, drain the channel into that session's log** — via
//! [`SessionLog::commit`] on success or [`SessionLog::absorb_dirty`] on
//! failure — before touching any other session on the thread.
//! [`DurableSession`] and the server's workers both follow it.

use std::collections::BTreeSet;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use machiavelli::persist::{
    decode_with_registry, encode_with_registry, write_atomic, PersistError, RefRegistry,
};
use machiavelli::{Outcome, Session};
use machiavelli_value::epoch::DIRTY_REFS_CAP;
use machiavelli_value::wal_counters::{
    note_wal_append, note_wal_checkpoint, note_wal_commit, note_wal_recovery, note_wal_torn_tail,
};
use machiavelli_value::{faults, set_wal_tracking, take_wal_dirty_refs, DirtyRefs};

pub mod crc;
pub mod log;

use crc::crc32;
use log::{
    build_bind, build_delta, frame_record, log_header, parse_bind_at, parse_log_header,
    parse_payload, parse_snap_header, scan_records, snap_header, Payload, COMMIT,
};

/// Errors from the durability layer.
#[derive(Debug)]
pub enum WalError {
    Io(std::io::Error),
    /// A value failed to encode or decode.
    Persist(PersistError),
    /// Replay could not re-bind into the session (pre-rendered).
    Session(String),
    /// A file header failed its magic/version/field checks.
    BadHeader(String),
    /// A structure that is *not* allowed to be torn (snapshot payload,
    /// record payload grammar) failed validation.
    Corrupt {
        offset: u64,
        what: &'static str,
    },
    /// A single record payload exceeded the u32 frame limit.
    RecordTooLarge(usize),
    /// Injected fault: the append was torn mid-write. The log is doomed
    /// until the next checkpoint.
    TornWrite,
    /// The log sync failed (injected or real). The unsynced tail was
    /// discarded and the log is doomed until the next checkpoint.
    SyncFailed,
    /// Injected fault: the checkpoint died between steps. `renamed`
    /// tells whether the new snapshot had already taken effect.
    CheckpointKilled {
        renamed: bool,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Persist(e) => write!(f, "wal persist error: {e}"),
            WalError::Session(msg) => write!(f, "wal replay error: {msg}"),
            WalError::BadHeader(msg) => write!(f, "wal header error: {msg}"),
            WalError::Corrupt { offset, what } => {
                write!(f, "wal corruption at byte {offset}: expected {what}")
            }
            WalError::RecordTooLarge(n) => write!(f, "wal record too large: {n} bytes"),
            WalError::TornWrite => write!(f, "wal append torn (injected); log doomed"),
            WalError::SyncFailed => write!(f, "wal sync failed; unsynced tail dropped, log doomed"),
            WalError::CheckpointKilled { renamed } => {
                write!(
                    f,
                    "checkpoint killed (injected; snapshot renamed: {renamed})"
                )
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}

impl From<PersistError> for WalError {
    fn from(e: PersistError) -> WalError {
        WalError::Persist(e)
    }
}

/// What one [`SessionLog::commit`] made durable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitReceipt {
    /// Records appended (commit marker included); 0 when there was
    /// nothing to log or the commit escalated to a checkpoint.
    pub records: u64,
    /// On-disk bytes appended (framing included).
    pub bytes: u64,
    /// Outcomes/deltas that cannot persist (polymorphic bindings,
    /// function values) and were deliberately left out.
    pub skipped: u64,
    /// The commit escalated to a full checkpoint (dirty-set overflow,
    /// or a doomed log self-healing).
    pub checkpointed: bool,
}

/// What [`SessionLog::open`] found and replayed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Bindings restored from the snapshot.
    pub snapshot_bindings: usize,
    /// Complete commit groups replayed from the log.
    pub commits_replayed: u64,
    /// Records applied from those groups (markers excluded).
    pub records_replayed: u64,
    /// A torn tail (partial frame, bad CRC, or uncommitted group) was
    /// truncated — the normal signature of a crash mid-commit.
    pub torn_tail_truncated: bool,
    /// The log's generation predated the snapshot's (crash between
    /// checkpoint steps); its contents were already compacted into the
    /// snapshot and the log was discarded.
    pub stale_log_discarded: bool,
    /// Anything at all was restored (snapshot or log).
    pub recovered: bool,
}

/// The write-ahead log and checkpoint state attached to one session.
///
/// On-disk layout under `dir`: `wal.log` (the delta log) and
/// `snapshot.mach` (the last checkpoint). Both are generation-stamped;
/// only a log whose generation matches the snapshot's replays.
pub struct SessionLog {
    dir: PathBuf,
    file: std::fs::File,
    /// The durable-id space of the current generation, shared by every
    /// record since the last checkpoint.
    reg: RefRegistry,
    gen: u64,
    /// Names with at least one durable bind record this generation —
    /// the checkpoint's working set.
    names: BTreeSet<String>,
    /// Attributed ref writes awaiting their commit.
    pending: DirtyRefs,
    /// Set after a torn append or failed sync: appends refuse until a
    /// checkpoint rebuilds durability from current state.
    doomed: bool,
    /// Byte length of the log known to be on disk and synced; appends
    /// always start here.
    synced_len: u64,
}

impl SessionLog {
    /// Open (creating if absent) the durable state under `dir` and
    /// recover it into `session`: snapshot first, then every complete
    /// commit group of a generation-matching log; torn tails truncated,
    /// stale logs discarded. Enables the thread's WAL dirty channel and
    /// drains replay's own writes from it.
    pub fn open(
        dir: &Path,
        session: &mut Session,
    ) -> Result<(SessionLog, RecoveryReport), WalError> {
        std::fs::create_dir_all(dir)?;
        let snap_path = dir.join("snapshot.mach");
        let log_path = dir.join("wal.log");
        // Stray temp files are debris of an interrupted atomic write;
        // the rename never happened, so they hold nothing durable.
        let _ = std::fs::remove_file(dir.join("snapshot.mach.tmp"));
        let _ = std::fs::remove_file(dir.join("wal.log.tmp"));

        set_wal_tracking(true);
        let mut report = RecoveryReport::default();
        let mut reg = RefRegistry::new();
        let mut names = BTreeSet::new();
        let mut gen = 0u64;

        if let Ok(bytes) = std::fs::read(&snap_path) {
            let (g, len, crc, hlen) = parse_snap_header(&bytes)?;
            let payload = bytes
                .get(hlen..hlen.saturating_add(len))
                .filter(|p| p.len() == len && hlen + len == bytes.len())
                .ok_or(WalError::Corrupt {
                    offset: hlen as u64,
                    what: "a snapshot payload matching its declared length",
                })?;
            if crc32(payload) != crc {
                return Err(WalError::Corrupt {
                    offset: hlen as u64,
                    what: "a snapshot payload matching its checksum",
                });
            }
            let mut pos = 0usize;
            while pos < payload.len() {
                let (name, ty, enc) = parse_bind_at(payload, &mut pos)?;
                let value = decode_with_registry(&enc, &mut reg)?;
                session
                    .bind_external(&name, value, &ty)
                    .map_err(|e| WalError::Session(e.to_string()))?;
                names.insert(name);
                report.snapshot_bindings += 1;
            }
            gen = g;
            report.recovered = true;
        }

        let mut synced_len = 0u64;
        let mut log_usable = false;
        if let Ok(bytes) = std::fs::read(&log_path) {
            let (log_gen, hlen) = parse_log_header(&bytes)?;
            if log_gen == gen {
                let scan = scan_records(&bytes, hlen);
                for group in &scan.groups {
                    for payload in group {
                        apply_payload(payload, session, &mut reg, &mut names)?;
                        report.records_replayed += 1;
                    }
                    report.commits_replayed += 1;
                }
                if report.commits_replayed > 0 {
                    report.recovered = true;
                }
                if scan.torn {
                    report.torn_tail_truncated = true;
                    note_wal_torn_tail();
                    let f = std::fs::OpenOptions::new().write(true).open(&log_path)?;
                    f.set_len(scan.keep_len)?;
                    f.sync_all()?;
                }
                synced_len = scan.keep_len;
                log_usable = true;
            } else {
                // A crash landed between the checkpoint's snapshot
                // rename and its log reset: every effect in this log is
                // already inside the snapshot.
                report.stale_log_discarded = true;
            }
        }
        if !log_usable {
            synced_len = create_log(&log_path, gen)?;
        }
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&log_path)?;
        if report.recovered {
            note_wal_recovery();
        }
        // Replay applied writes through `RefValue::set`; they are
        // durable by construction and must not re-surface as the next
        // commit's deltas.
        let _ = take_wal_dirty_refs();
        Ok((
            SessionLog {
                dir: dir.to_path_buf(),
                file,
                reg,
                gen,
                names,
                pending: DirtyRefs::default(),
                doomed: false,
                synced_len,
            },
            report,
        ))
    }

    /// The directory holding `wal.log` and `snapshot.mach`.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current generation (incremented by every checkpoint).
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Whether a torn append or failed sync has doomed the log. The
    /// next [`SessionLog::commit`] heals it with a full checkpoint.
    pub fn is_doomed(&self) -> bool {
        self.doomed
    }

    /// Names with durable state this generation.
    pub fn tracked_names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Drain the thread's WAL dirty channel into this log's pending
    /// set. Call after *any* evaluation on the attached session —
    /// including failed ones, whose partial ref writes are real — and
    /// before evaluating any other session on this thread.
    /// [`SessionLog::commit`] does this itself.
    pub fn absorb_dirty(&mut self) {
        let drained = take_wal_dirty_refs();
        if drained.overflowed || self.pending.overflowed {
            self.pending.ids.clear();
            self.pending.overflowed = true;
            return;
        }
        self.pending.ids.extend(drained.ids);
        if self.pending.ids.len() > DIRTY_REFS_CAP {
            self.pending.ids.clear();
            self.pending.overflowed = true;
        }
    }

    /// Make one evaluation durable: bind records for `outcomes`,
    /// ref-delta records for every attributed write since the last
    /// commit, one commit marker, one sync. Flat in session size — cost
    /// scales with what changed, not with what exists.
    ///
    /// Escalates to a full [`SessionLog::checkpoint`] when attribution
    /// was lost (dirty-set overflow / unattributed write) or the log is
    /// doomed. On [`WalError::TornWrite`] / [`WalError::SyncFailed`]
    /// the evaluation is *not* durable and the log is doomed.
    pub fn commit(
        &mut self,
        session: &Session,
        outcomes: &[Outcome],
    ) -> Result<CommitReceipt, WalError> {
        self.absorb_dirty();
        let mut skipped = 0u64;
        if self.doomed || self.pending.overflowed {
            self.pending = DirtyRefs::default();
            // Re-track every outcome name so a brand-new binding isn't
            // dropped by a checkpoint that only walks tracked names.
            for o in outcomes {
                self.names.insert(o.name.to_string());
            }
            self.checkpoint(session)?;
            return Ok(CommitReceipt {
                checkpointed: true,
                ..CommitReceipt::default()
            });
        }

        let mut payloads: Vec<Vec<u8>> = Vec::new();
        for o in outcomes {
            let name = o.name.to_string();
            match session.persistable_binding(&name) {
                Some((ty, value)) => match encode_with_registry(&value, &mut self.reg) {
                    Ok(enc) => {
                        payloads.push(build_bind(&name, &ty, &enc));
                        self.names.insert(name);
                    }
                    Err(PersistError::NotADescription) => skipped += 1,
                    Err(e) => return Err(WalError::Persist(e)),
                },
                None => skipped += 1,
            }
        }
        let mut dirty: Vec<u64> = self.pending.ids.drain().collect();
        dirty.sort_unstable();
        for session_ref_id in dirty {
            // Unregistered cells are unreachable from durable state; if
            // one just *became* reachable, the bind above carried its
            // full contents already.
            let Some(did) = self.reg.durable_id(session_ref_id) else {
                continue;
            };
            let Some(cell) = self.reg.cell(did).cloned() else {
                continue;
            };
            match encode_with_registry(&cell.get(), &mut self.reg) {
                Ok(enc) => payloads.push(build_delta(did, &enc)),
                // A durable cell assigned a function value: the write
                // cannot persist; the cell keeps its last durable
                // contents across recovery.
                Err(PersistError::NotADescription) => skipped += 1,
                Err(e) => return Err(WalError::Persist(e)),
            }
        }
        if payloads.is_empty() {
            return Ok(CommitReceipt {
                skipped,
                ..CommitReceipt::default()
            });
        }

        let mut buf = Vec::new();
        for p in &payloads {
            frame_record(p, &mut buf)?;
        }
        frame_record(COMMIT, &mut buf)?;
        let records = payloads.len() as u64 + 1;
        self.append_synced(&buf)?;
        note_wal_append(records, buf.len() as u64);
        note_wal_commit();
        Ok(CommitReceipt {
            records,
            bytes: buf.len() as u64,
            skipped,
            checkpointed: false,
        })
    }

    /// One batched, synced append at the trusted end of the log, with
    /// the torn-write and sync-failure fail points.
    fn append_synced(&mut self, buf: &[u8]) -> Result<(), WalError> {
        self.file.seek(SeekFrom::Start(self.synced_len))?;
        if faults::wal_torn_due() {
            // A kill mid-`write(2)`: a seeded prefix lands, nothing is
            // trusted past the old synced length, and this log stops
            // accepting appends until a checkpoint rebuilds it.
            let cut = faults::torn_cut(buf.len());
            let _ = self.file.write_all(&buf[..cut]);
            let _ = self.file.sync_data();
            self.doomed = true;
            return Err(WalError::TornWrite);
        }
        self.file.write_all(buf)?;
        let sync_failed = if faults::wal_sync_fails() {
            true
        } else {
            self.file.sync_data().is_err()
        };
        if sync_failed {
            // The kernel may or may not have persisted the tail; the
            // only safe model is "it did not". Cut the file back so a
            // later recovery can never observe a commit this process
            // reported as failed.
            let _ = self.file.set_len(self.synced_len);
            let _ = self.file.sync_data();
            self.doomed = true;
            return Err(WalError::SyncFailed);
        }
        self.synced_len += buf.len() as u64;
        Ok(())
    }

    /// Compact current session state into a fresh generation: snapshot
    /// written via temp + rename, then the log reset to the new
    /// generation. Crash-safe at every step — an interrupted checkpoint
    /// leaves either the old state (snapshot not yet renamed) or the
    /// new snapshot plus a stale log that recovery discards.
    pub fn checkpoint(&mut self, session: &Session) -> Result<(), WalError> {
        self.absorb_dirty();
        // Any failure below leaves disk state ambiguous relative to
        // memory; doom appends until a checkpoint fully succeeds.
        self.doomed = true;
        let mut reg = RefRegistry::new();
        let mut payload: Vec<u8> = Vec::new();
        let mut kept = BTreeSet::new();
        for name in &self.names {
            // Dropped or no-longer-persistable names fall out of the
            // snapshot (a rebind to a function value does not persist).
            let Some((ty, value)) = session.persistable_binding(name) else {
                continue;
            };
            match encode_with_registry(&value, &mut reg) {
                Ok(enc) => {
                    payload.extend_from_slice(&build_bind(name, &ty, &enc));
                    kept.insert(name.clone());
                }
                Err(PersistError::NotADescription) => continue,
                Err(e) => return Err(WalError::Persist(e)),
            }
        }
        let next_gen = self.gen + 1;
        if faults::checkpoint_kill_due() {
            return Err(WalError::CheckpointKilled { renamed: false });
        }
        let mut snap = snap_header(next_gen, payload.len(), crc32(&payload)).into_bytes();
        snap.extend_from_slice(&payload);
        write_atomic(&self.dir.join("snapshot.mach"), &snap)?;
        if faults::checkpoint_kill_due() {
            return Err(WalError::CheckpointKilled { renamed: true });
        }
        let log_path = self.dir.join("wal.log");
        self.synced_len = create_log(&log_path, next_gen)?;
        self.file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&log_path)?;
        self.gen = next_gen;
        self.reg = reg;
        self.names = kept;
        self.pending = DirtyRefs::default();
        self.doomed = false;
        note_wal_checkpoint();
        Ok(())
    }

    /// Read the log back and count its complete commit groups (testing
    /// and diagnostics; recovery proper goes through `open`).
    pub fn committed_groups(&mut self) -> Result<u64, WalError> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        let (_, hlen) = parse_log_header(&bytes)?;
        Ok(scan_records(&bytes, hlen).groups.len() as u64)
    }
}

/// Write a fresh log containing only a generation header, atomically,
/// returning its length (the initial synced watermark).
fn create_log(path: &Path, gen: u64) -> Result<u64, WalError> {
    let header = log_header(gen);
    write_atomic(path, header.as_bytes())?;
    Ok(header.len() as u64)
}

fn apply_payload(
    payload: &[u8],
    session: &mut Session,
    reg: &mut RefRegistry,
    names: &mut BTreeSet<String>,
) -> Result<(), WalError> {
    match parse_payload(payload)? {
        Payload::Bind { name, ty, enc } => {
            let value = decode_with_registry(&enc, reg)?;
            session
                .bind_external(&name, value, &ty)
                .map_err(|e| WalError::Session(e.to_string()))?;
            names.insert(name);
        }
        Payload::Delta { durable_id, enc } => {
            let Some(cell) = reg.cell(durable_id).cloned() else {
                return Err(WalError::Corrupt {
                    offset: 0,
                    what: "a delta naming a known durable ref",
                });
            };
            let value = decode_with_registry(&enc, reg)?;
            cell.set(value);
        }
        // Markers are group boundaries; the scanner strips them, but a
        // stray one is harmless.
        Payload::Commit => {}
    }
    Ok(())
}

/// A [`Session`] bundled with its [`SessionLog`]: evaluate, commit,
/// recover — the shape the crash-recovery harness and single-process
/// embedders use. (The server composes `Session` + `SessionLog`
/// directly, one pair per slot.)
pub struct DurableSession {
    session: Session,
    log: SessionLog,
}

impl DurableSession {
    /// Open with a full prelude session ([`Session::new`]).
    pub fn open(dir: &Path) -> Result<(DurableSession, RecoveryReport), WalError> {
        let mut session = Session::try_new().map_err(|e| WalError::Session(e.to_string()))?;
        let (log, report) = SessionLog::open(dir, &mut session)?;
        Ok((DurableSession { session, log }, report))
    }

    /// Open with a prelude-less session ([`Session::bare`]) — the
    /// harness's fast path.
    pub fn open_bare(dir: &Path) -> Result<(DurableSession, RecoveryReport), WalError> {
        let mut session = Session::bare();
        let (log, report) = SessionLog::open(dir, &mut session)?;
        Ok((DurableSession { session, log }, report))
    }

    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable session access. Changes made here are durable only once
    /// a later [`DurableSession::eval`] or
    /// [`DurableSession::checkpoint`] captures them.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    pub fn log(&self) -> &SessionLog {
        &self.log
    }

    /// Evaluate `src` and commit its effects. On an evaluation error
    /// nothing commits, but partial ref writes are absorbed and ride
    /// with the next commit (they happened; durability must not forget
    /// them). A program failing at phrase *k* leaves phrases `0..k`
    /// bound in memory but not yet durable — single-phrase programs
    /// sidestep the distinction.
    pub fn eval(&mut self, src: &str) -> Result<(Vec<Outcome>, CommitReceipt), WalError> {
        match self.session.run(src) {
            Ok(outcomes) => {
                let receipt = self.log.commit(&self.session, &outcomes)?;
                Ok((outcomes, receipt))
            }
            Err(e) => {
                self.log.absorb_dirty();
                Err(WalError::Session(e.to_string()))
            }
        }
    }

    pub fn checkpoint(&mut self) -> Result<(), WalError> {
        self.log.checkpoint(&self.session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machiavelli_value::{RefValue, Value};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mach-wal-{tag}-{}-{}",
            std::process::id(),
            RefValue::new(Value::Unit).id
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn bindings_survive_reopen() {
        let dir = tempdir("reopen");
        {
            let (mut ds, report) = DurableSession::open_bare(&dir).unwrap();
            assert!(!report.recovered);
            let (_, r) = ds.eval("val x = 41;").unwrap();
            assert!(r.records > 0);
            ds.eval("val y = x + 1;").unwrap();
        }
        let (mut ds, report) = DurableSession::open_bare(&dir).unwrap();
        assert!(report.recovered);
        assert_eq!(report.commits_replayed, 2);
        assert!(!report.torn_tail_truncated);
        assert_eq!(
            ds.eval("y;").unwrap().0.pop().unwrap().show(),
            "val it = 42 : int"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ref_deltas_replay_and_sharing_survives() {
        let dir = tempdir("deltas");
        {
            let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
            ds.eval("val d = ref(45);").unwrap();
            ds.eval("val d2 = d;").unwrap();
            // A pure ref write: no bind outcome beyond `it = ()`, so
            // durability rides on the delta record.
            let (_, r) = ds.eval("d := 67;").unwrap();
            assert!(r.records > 0 && !r.checkpointed);
        }
        let (mut ds, report) = DurableSession::open_bare(&dir).unwrap();
        assert_eq!(report.commits_replayed, 3);
        assert_eq!(
            ds.eval("!d;").unwrap().0.pop().unwrap().show(),
            "val it = 67 : int"
        );
        // d and d2 still alias one cell.
        ds.eval("d2 := 99;").unwrap();
        assert_eq!(
            ds.eval("!d;").unwrap().0.pop().unwrap().show(),
            "val it = 99 : int"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_and_resets_generation() {
        let dir = tempdir("ckpt");
        {
            let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
            ds.eval("val a = 1;").unwrap();
            ds.eval("val b = ref(2);").unwrap();
            assert_eq!(ds.log().generation(), 0);
            ds.checkpoint().unwrap();
            assert_eq!(ds.log().generation(), 1);
            // Post-checkpoint commits land in the new generation's log.
            ds.eval("b := 3;").unwrap();
        }
        let (mut ds, report) = DurableSession::open_bare(&dir).unwrap();
        assert_eq!(report.snapshot_bindings, 2, "a and b");
        assert_eq!(report.commits_replayed, 1, "only the post-checkpoint delta");
        assert_eq!(
            ds.eval("!b;").unwrap().0.pop().unwrap().show(),
            "val it = 3 : int"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn functions_are_skipped_not_fatal() {
        let dir = tempdir("skip");
        {
            let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
            let (_, r) = ds.eval("fun f(x) = x;").unwrap();
            assert!(r.skipped > 0, "{r:?}");
            ds.eval("val n = 5;").unwrap();
        }
        let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
        assert_eq!(
            ds.eval("n;").unwrap().0.pop().unwrap().show(),
            "val it = 5 : int"
        );
        assert!(ds.eval("f(1);").is_err(), "functions do not persist");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_commit_appends_nothing() {
        let dir = tempdir("empty");
        let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
        ds.eval("val x = 1;").unwrap();
        let before = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        let receipt = ds.log.commit(
            &Session::bare(), // no outcomes, no dirty refs
            &[],
        );
        assert_eq!(receipt.unwrap().records, 0);
        let after = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
