//! **Durable Machiavelli sessions** — a write-ahead delta log,
//! generation-stamped checkpoints, and paranoid crash recovery.
//!
//! The paper calls persistence "the most important \[way\] in which
//! Machiavelli needs to be augmented" (§6); `persist.rs` gives values a
//! durable encoding, but re-encoding every binding per save is linear
//! in session size and a crash between saves loses everything. This
//! crate closes both gaps:
//!
//! * **Delta logging.** Every committed evaluation appends only what
//!   changed: bind records for (re)bound names and ref-delta records
//!   for the cells the PR 5 dirty-ref channel attributes
//!   ([`machiavelli_value::epoch`] `note_ref_write` → the WAL dirty
//!   set). Payloads reuse the `persist.rs` grammar threaded through one
//!   [`RefRegistry`] per generation, so sharing and cycles survive
//!   across records, and commit cost is flat in session size.
//! * **Commit groups.** Records are CRC-framed and batched under a
//!   trailing commit marker; recovery applies only complete groups. A
//!   torn tail — a partial frame, a failed checksum, records with no
//!   marker — is a *normal crash artifact*: it is truncated, counted,
//!   and never applied half-way.
//! * **Checkpointing.** [`SessionLog::checkpoint`] compacts current
//!   state into an atomically-renamed snapshot stamped with the next
//!   generation, then resets the log to that generation. A crash
//!   between the two steps leaves a stale log whose generation no
//!   longer matches — recovery discards it, because its effects are
//!   already inside the snapshot.
//! * **Self-healing.** A torn append or failed sync *dooms* the log
//!   (appends refuse; memory is ahead of disk, and pretending otherwise
//!   is how databases lose data). The next commit escalates to a full
//!   checkpoint, which rebuilds durability from current state.
//!
//! Injected faults (`MACHIAVELLI_FAULT_WAL_TORN_PPM`,
//! `MACHIAVELLI_FAULT_WAL_SYNC_FAIL_PPM`,
//! `MACHIAVELLI_FAULT_CHECKPOINT_KILL_PPM` — see
//! [`machiavelli_value::faults`]) drive the seeded kill-replay-verify
//! harness in `tests/crash_recovery.rs`.
//!
//! # Thread discipline
//!
//! The dirty-ref channel is thread-local and shared by every session a
//! thread hosts, so attribution relies on one rule: **after each
//! evaluation, drain the channel into that session's log** — via
//! [`SessionLog::commit`] on success or [`SessionLog::absorb_dirty`] on
//! failure — before touching any other session on the thread.
//! [`DurableSession`] and the server's workers both follow it.

use std::collections::BTreeSet;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use machiavelli::persist::{
    decode_with_registry, encode_with_registry, write_atomic, PersistError, RefRegistry,
};
use machiavelli::{Outcome, Session};
use machiavelli_value::epoch::DIRTY_REFS_CAP;
use machiavelli_value::repl_counters::{
    note_repl_groups_applied, note_repl_ship, note_repl_snap_transfer, note_repl_stale_rejected,
};
use machiavelli_value::wal_counters::{
    note_wal_append, note_wal_checkpoint, note_wal_commit, note_wal_recovery, note_wal_torn_tail,
};
use machiavelli_value::{faults, set_wal_tracking, take_wal_dirty_refs, DirtyRefs};

pub mod crc;
pub mod log;

use crc::{crc32, crc32_resume};
use log::{
    build_bind, build_delta, frame_record, log_header, parse_bind_at, parse_log_header,
    parse_payload, parse_snap_header, scan_records, snap_header, Payload, COMMIT,
};

/// Errors from the durability layer.
#[derive(Debug)]
pub enum WalError {
    Io(std::io::Error),
    /// A value failed to encode or decode.
    Persist(PersistError),
    /// Replay could not re-bind into the session (pre-rendered).
    Session(String),
    /// A file header failed its magic/version/field checks.
    BadHeader(String),
    /// A structure that is *not* allowed to be torn (snapshot payload,
    /// record payload grammar) failed validation.
    Corrupt {
        offset: u64,
        what: &'static str,
    },
    /// A single record payload exceeded the u32 frame limit.
    RecordTooLarge(usize),
    /// Injected fault: the append was torn mid-write. The log is doomed
    /// until the next checkpoint.
    TornWrite,
    /// The log sync failed (injected or real). The unsynced tail was
    /// discarded and the log is doomed until the next checkpoint.
    SyncFailed,
    /// Injected fault: the checkpoint died between steps. `renamed`
    /// tells whether the new snapshot had already taken effect.
    CheckpointKilled {
        renamed: bool,
    },
    /// A shipped commit group carried a generation that does not match
    /// this log's — the signature of a fenced old primary replaying
    /// stale groups after a promotion. The group is rejected whole.
    StaleGeneration {
        got: u64,
        have: u64,
    },
    /// Replica apply could not use the shipped bytes against local
    /// state (e.g. a delta naming an unknown durable ref): the streams
    /// have diverged and the follower must heal by snapshot transfer.
    ReplicaDiverged(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Persist(e) => write!(f, "wal persist error: {e}"),
            WalError::Session(msg) => write!(f, "wal replay error: {msg}"),
            WalError::BadHeader(msg) => write!(f, "wal header error: {msg}"),
            WalError::Corrupt { offset, what } => {
                write!(f, "wal corruption at byte {offset}: expected {what}")
            }
            WalError::RecordTooLarge(n) => write!(f, "wal record too large: {n} bytes"),
            WalError::TornWrite => write!(f, "wal append torn (injected); log doomed"),
            WalError::SyncFailed => write!(f, "wal sync failed; unsynced tail dropped, log doomed"),
            WalError::CheckpointKilled { renamed } => {
                write!(
                    f,
                    "checkpoint killed (injected; snapshot renamed: {renamed})"
                )
            }
            WalError::StaleGeneration { got, have } => {
                write!(
                    f,
                    "stale generation: shipped group stamped gen {got}, log is at gen {have}"
                )
            }
            WalError::ReplicaDiverged(msg) => {
                write!(f, "replica diverged from its primary: {msg}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}

impl From<PersistError> for WalError {
    fn from(e: PersistError) -> WalError {
        WalError::Persist(e)
    }
}

/// What one [`SessionLog::commit`] made durable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitReceipt {
    /// Records appended (commit marker included); 0 when there was
    /// nothing to log or the commit escalated to a checkpoint.
    pub records: u64,
    /// On-disk bytes appended (framing included).
    pub bytes: u64,
    /// Outcomes/deltas that cannot persist (polymorphic bindings,
    /// function values) and were deliberately left out.
    pub skipped: u64,
    /// The commit escalated to a full checkpoint (dirty-set overflow,
    /// or a doomed log self-healing).
    pub checkpointed: bool,
}

/// What [`SessionLog::open`] found and replayed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Bindings restored from the snapshot.
    pub snapshot_bindings: usize,
    /// Complete commit groups replayed from the log.
    pub commits_replayed: u64,
    /// Records applied from those groups (markers excluded).
    pub records_replayed: u64,
    /// A torn tail (partial frame, bad CRC, or uncommitted group) was
    /// truncated — the normal signature of a crash mid-commit.
    pub torn_tail_truncated: bool,
    /// The log's generation predated the snapshot's (crash between
    /// checkpoint steps); its contents were already compacted into the
    /// snapshot and the log was discarded.
    pub stale_log_discarded: bool,
    /// Anything at all was restored (snapshot or log).
    pub recovered: bool,
}

/// A replication cursor: where in a primary's log a follower stands.
///
/// The triple is the divergence detector: two logs agree at a cursor
/// iff they share the generation, the trusted byte offset, *and* the
/// CRC of every log byte up to that offset. Byte-identical prefixes are
/// the replication invariant — shipped groups are appended verbatim —
/// so a CRC mismatch means the streams forked (e.g. a fenced old
/// primary committed groups the new primary never saw) and the follower
/// must heal by snapshot transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogCursor {
    /// Checkpoint generation of the log.
    pub gen: u64,
    /// Byte length of the trusted (synced, commit-complete) prefix.
    pub offset: u64,
    /// CRC-32 of the log bytes `[0..offset]`, header included.
    pub crc: u32,
}

/// What a primary ships for one catch-up request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ship {
    /// Verbatim committed-group bytes from the requested offset to the
    /// primary's synced watermark. Empty means the follower is caught
    /// up. `groups` counts the complete commit groups in `bytes`.
    Groups {
        gen: u64,
        from: u64,
        groups: u64,
        bytes: Vec<u8>,
    },
    /// The cursor could not be served incrementally (stale generation
    /// after a checkpoint reset, or a diverged prefix): ship full state.
    Snapshot(SnapshotTransfer),
}

/// A full-state transfer: the primary's snapshot file (absent at
/// generation 0 before any checkpoint) plus its gen-matched log prefix,
/// both verbatim. Installing these under a follower's directory and
/// re-opening runs the ordinary crash-recovery path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotTransfer {
    pub gen: u64,
    pub snap: Option<Vec<u8>>,
    pub log: Vec<u8>,
}

/// What one [`SessionLog::replica_apply`] did with a shipped chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaApplyReport {
    /// Complete commit groups applied (and made durable locally).
    pub groups_applied: u64,
    /// Records applied from those groups (markers excluded).
    pub records_applied: u64,
    /// The chunk ended mid-group — an injected ship disconnect (or a
    /// sender bug). The partial tail was discarded; re-request from
    /// [`SessionLog::cursor`].
    pub torn: bool,
}

/// The write-ahead log and checkpoint state attached to one session.
///
/// On-disk layout under `dir`: `wal.log` (the delta log) and
/// `snapshot.mach` (the last checkpoint). Both are generation-stamped;
/// only a log whose generation matches the snapshot's replays.
pub struct SessionLog {
    dir: PathBuf,
    file: std::fs::File,
    /// The durable-id space of the current generation, shared by every
    /// record since the last checkpoint.
    reg: RefRegistry,
    gen: u64,
    /// Names with at least one durable bind record this generation —
    /// the checkpoint's working set.
    names: BTreeSet<String>,
    /// Attributed ref writes awaiting their commit.
    pending: DirtyRefs,
    /// Set after a torn append or failed sync: appends refuse until a
    /// checkpoint rebuilds durability from current state.
    doomed: bool,
    /// Byte length of the log known to be on disk and synced; appends
    /// always start here.
    synced_len: u64,
    /// Byte length of the generation header line.
    header_len: u64,
    /// Rolling CRC-32 of the trusted prefix `[0..synced_len]`.
    prefix_crc: u32,
    /// Complete commit groups in the current log (recovery-counted,
    /// then bumped per commit / replica group) — the lag unit.
    groups: u64,
}

impl SessionLog {
    /// Open (creating if absent) the durable state under `dir` and
    /// recover it into `session`: snapshot first, then every complete
    /// commit group of a generation-matching log; torn tails truncated,
    /// stale logs discarded. Enables the thread's WAL dirty channel and
    /// drains replay's own writes from it.
    pub fn open(
        dir: &Path,
        session: &mut Session,
    ) -> Result<(SessionLog, RecoveryReport), WalError> {
        std::fs::create_dir_all(dir)?;
        let snap_path = dir.join("snapshot.mach");
        let log_path = dir.join("wal.log");
        // Stray temp files are debris of an interrupted atomic write;
        // the rename never happened, so they hold nothing durable.
        let _ = std::fs::remove_file(dir.join("snapshot.mach.tmp"));
        let _ = std::fs::remove_file(dir.join("wal.log.tmp"));

        set_wal_tracking(true);
        let mut report = RecoveryReport::default();
        let mut reg = RefRegistry::new();
        let mut names = BTreeSet::new();
        let mut gen = 0u64;

        if let Ok(bytes) = std::fs::read(&snap_path) {
            let (g, len, crc, hlen) = parse_snap_header(&bytes)?;
            let payload = bytes
                .get(hlen..hlen.saturating_add(len))
                .filter(|p| p.len() == len && hlen + len == bytes.len())
                .ok_or(WalError::Corrupt {
                    offset: hlen as u64,
                    what: "a snapshot payload matching its declared length",
                })?;
            if crc32(payload) != crc {
                return Err(WalError::Corrupt {
                    offset: hlen as u64,
                    what: "a snapshot payload matching its checksum",
                });
            }
            let mut pos = 0usize;
            while pos < payload.len() {
                let (name, ty, enc) = parse_bind_at(payload, &mut pos)?;
                let value = decode_with_registry(&enc, &mut reg)?;
                session
                    .bind_external(&name, value, &ty)
                    .map_err(|e| WalError::Session(e.to_string()))?;
                names.insert(name);
                report.snapshot_bindings += 1;
            }
            gen = g;
            report.recovered = true;
        }

        let mut synced_len = 0u64;
        let mut header_len = 0u64;
        let mut prefix_crc = 0u32;
        let mut groups = 0u64;
        let mut log_usable = false;
        if let Ok(bytes) = std::fs::read(&log_path) {
            let (log_gen, hlen) = parse_log_header(&bytes)?;
            if log_gen == gen {
                let scan = scan_records(&bytes, hlen);
                for group in &scan.groups {
                    for payload in group {
                        apply_payload(payload, session, &mut reg, &mut names)?;
                        report.records_replayed += 1;
                    }
                    report.commits_replayed += 1;
                }
                if report.commits_replayed > 0 {
                    report.recovered = true;
                }
                if scan.torn {
                    report.torn_tail_truncated = true;
                    note_wal_torn_tail();
                    let f = std::fs::OpenOptions::new().write(true).open(&log_path)?;
                    f.set_len(scan.keep_len)?;
                    f.sync_all()?;
                }
                synced_len = scan.keep_len;
                header_len = hlen as u64;
                prefix_crc = crc32(&bytes[..scan.keep_len as usize]);
                groups = scan.groups.len() as u64;
                log_usable = true;
            } else {
                // A crash landed between the checkpoint's snapshot
                // rename and its log reset: every effect in this log is
                // already inside the snapshot.
                report.stale_log_discarded = true;
            }
        }
        if !log_usable {
            synced_len = create_log(&log_path, gen)?;
            header_len = synced_len;
            prefix_crc = crc32(log_header(gen).as_bytes());
        }
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&log_path)?;
        if report.recovered {
            note_wal_recovery();
        }
        // Replay applied writes through `RefValue::set`; they are
        // durable by construction and must not re-surface as the next
        // commit's deltas.
        let _ = take_wal_dirty_refs();
        Ok((
            SessionLog {
                dir: dir.to_path_buf(),
                file,
                reg,
                gen,
                names,
                pending: DirtyRefs::default(),
                doomed: false,
                synced_len,
                header_len,
                prefix_crc,
                groups,
            },
            report,
        ))
    }

    /// The directory holding `wal.log` and `snapshot.mach`.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current generation (incremented by every checkpoint).
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Whether a torn append or failed sync has doomed the log. The
    /// next [`SessionLog::commit`] heals it with a full checkpoint.
    pub fn is_doomed(&self) -> bool {
        self.doomed
    }

    /// Names with durable state this generation.
    pub fn tracked_names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Drain the thread's WAL dirty channel into this log's pending
    /// set. Call after *any* evaluation on the attached session —
    /// including failed ones, whose partial ref writes are real — and
    /// before evaluating any other session on this thread.
    /// [`SessionLog::commit`] does this itself.
    pub fn absorb_dirty(&mut self) {
        let drained = take_wal_dirty_refs();
        if drained.overflowed || self.pending.overflowed {
            self.pending.ids.clear();
            self.pending.overflowed = true;
            return;
        }
        self.pending.ids.extend(drained.ids);
        if self.pending.ids.len() > DIRTY_REFS_CAP {
            self.pending.ids.clear();
            self.pending.overflowed = true;
        }
    }

    /// Make one evaluation durable: bind records for `outcomes`,
    /// ref-delta records for every attributed write since the last
    /// commit, one commit marker, one sync. Flat in session size — cost
    /// scales with what changed, not with what exists.
    ///
    /// Escalates to a full [`SessionLog::checkpoint`] when attribution
    /// was lost (dirty-set overflow / unattributed write) or the log is
    /// doomed. On [`WalError::TornWrite`] / [`WalError::SyncFailed`]
    /// the evaluation is *not* durable and the log is doomed.
    pub fn commit(
        &mut self,
        session: &Session,
        outcomes: &[Outcome],
    ) -> Result<CommitReceipt, WalError> {
        self.absorb_dirty();
        let mut skipped = 0u64;
        if self.doomed || self.pending.overflowed {
            self.pending = DirtyRefs::default();
            // Re-track every outcome name so a brand-new binding isn't
            // dropped by a checkpoint that only walks tracked names.
            for o in outcomes {
                self.names.insert(o.name.to_string());
            }
            self.checkpoint(session)?;
            return Ok(CommitReceipt {
                checkpointed: true,
                ..CommitReceipt::default()
            });
        }

        let mut payloads: Vec<Vec<u8>> = Vec::new();
        for o in outcomes {
            let name = o.name.to_string();
            match session.persistable_binding(&name) {
                Some((ty, value)) => match encode_with_registry(&value, &mut self.reg) {
                    Ok(enc) => {
                        payloads.push(build_bind(&name, &ty, &enc));
                        self.names.insert(name);
                    }
                    Err(PersistError::NotADescription) => skipped += 1,
                    Err(e) => return Err(WalError::Persist(e)),
                },
                None => skipped += 1,
            }
        }
        let mut dirty: Vec<u64> = self.pending.ids.drain().collect();
        dirty.sort_unstable();
        for session_ref_id in dirty {
            // Unregistered cells are unreachable from durable state; if
            // one just *became* reachable, the bind above carried its
            // full contents already.
            let Some(did) = self.reg.durable_id(session_ref_id) else {
                continue;
            };
            let Some(cell) = self.reg.cell(did).cloned() else {
                continue;
            };
            match encode_with_registry(&cell.get(), &mut self.reg) {
                Ok(enc) => payloads.push(build_delta(did, &enc)),
                // A durable cell assigned a function value: the write
                // cannot persist; the cell keeps its last durable
                // contents across recovery.
                Err(PersistError::NotADescription) => skipped += 1,
                Err(e) => return Err(WalError::Persist(e)),
            }
        }
        if payloads.is_empty() {
            return Ok(CommitReceipt {
                skipped,
                ..CommitReceipt::default()
            });
        }

        let mut buf = Vec::new();
        for p in &payloads {
            frame_record(p, &mut buf)?;
        }
        frame_record(COMMIT, &mut buf)?;
        let records = payloads.len() as u64 + 1;
        self.append_synced(&buf)?;
        self.groups += 1;
        note_wal_append(records, buf.len() as u64);
        note_wal_commit();
        Ok(CommitReceipt {
            records,
            bytes: buf.len() as u64,
            skipped,
            checkpointed: false,
        })
    }

    /// One batched, synced append at the trusted end of the log, with
    /// the torn-write and sync-failure fail points.
    fn append_synced(&mut self, buf: &[u8]) -> Result<(), WalError> {
        self.file.seek(SeekFrom::Start(self.synced_len))?;
        if faults::wal_torn_due() {
            // A kill mid-`write(2)`: a seeded prefix lands, nothing is
            // trusted past the old synced length, and this log stops
            // accepting appends until a checkpoint rebuilds it.
            let cut = faults::torn_cut(buf.len());
            let _ = self.file.write_all(&buf[..cut]);
            let _ = self.file.sync_data();
            self.doomed = true;
            return Err(WalError::TornWrite);
        }
        self.file.write_all(buf)?;
        let sync_failed = if faults::wal_sync_fails() {
            true
        } else {
            self.file.sync_data().is_err()
        };
        if sync_failed {
            // The kernel may or may not have persisted the tail; the
            // only safe model is "it did not". Cut the file back so a
            // later recovery can never observe a commit this process
            // reported as failed.
            let _ = self.file.set_len(self.synced_len);
            let _ = self.file.sync_data();
            self.doomed = true;
            return Err(WalError::SyncFailed);
        }
        self.synced_len += buf.len() as u64;
        self.prefix_crc = crc32_resume(self.prefix_crc, buf);
        Ok(())
    }

    /// Compact current session state into a fresh generation: snapshot
    /// written via temp + rename, then the log reset to the new
    /// generation. Crash-safe at every step — an interrupted checkpoint
    /// leaves either the old state (snapshot not yet renamed) or the
    /// new snapshot plus a stale log that recovery discards.
    pub fn checkpoint(&mut self, session: &Session) -> Result<(), WalError> {
        self.absorb_dirty();
        // Any failure below leaves disk state ambiguous relative to
        // memory; doom appends until a checkpoint fully succeeds.
        self.doomed = true;
        let mut reg = RefRegistry::new();
        let mut payload: Vec<u8> = Vec::new();
        let mut kept = BTreeSet::new();
        for name in &self.names {
            // Dropped or no-longer-persistable names fall out of the
            // snapshot (a rebind to a function value does not persist).
            let Some((ty, value)) = session.persistable_binding(name) else {
                continue;
            };
            match encode_with_registry(&value, &mut reg) {
                Ok(enc) => {
                    payload.extend_from_slice(&build_bind(name, &ty, &enc));
                    kept.insert(name.clone());
                }
                Err(PersistError::NotADescription) => continue,
                Err(e) => return Err(WalError::Persist(e)),
            }
        }
        let next_gen = self.gen + 1;
        if faults::checkpoint_kill_due() {
            return Err(WalError::CheckpointKilled { renamed: false });
        }
        let mut snap = snap_header(next_gen, payload.len(), crc32(&payload)).into_bytes();
        snap.extend_from_slice(&payload);
        write_atomic(&self.dir.join("snapshot.mach"), &snap)?;
        if faults::checkpoint_kill_due() {
            return Err(WalError::CheckpointKilled { renamed: true });
        }
        let log_path = self.dir.join("wal.log");
        self.synced_len = create_log(&log_path, next_gen)?;
        self.header_len = self.synced_len;
        self.prefix_crc = crc32(log_header(next_gen).as_bytes());
        self.groups = 0;
        self.file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&log_path)?;
        self.gen = next_gen;
        self.reg = reg;
        self.names = kept;
        self.pending = DirtyRefs::default();
        self.doomed = false;
        note_wal_checkpoint();
        Ok(())
    }

    /// Read the log back and count its complete commit groups (testing
    /// and diagnostics; recovery proper goes through `open`).
    pub fn committed_groups(&mut self) -> Result<u64, WalError> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        let (_, hlen) = parse_log_header(&bytes)?;
        Ok(scan_records(&bytes, hlen).groups.len() as u64)
    }

    // ---- replication -------------------------------------------------

    /// Where this log's trusted prefix ends — what a follower sends to
    /// request the next chunk, and what a primary compares acks against.
    pub fn cursor(&self) -> LogCursor {
        LogCursor {
            gen: self.gen,
            offset: self.synced_len,
            crc: self.prefix_crc,
        }
    }

    /// Complete commit groups in the current log — the unit replication
    /// lag is measured in.
    pub fn groups(&self) -> u64 {
        self.groups
    }

    /// CRC-32 of the trusted prefix `[0..offset]`. The watermark case
    /// is free (the rolling checksum); a lagging offset re-reads the
    /// prefix from disk.
    fn prefix_crc_at(&mut self, offset: u64) -> Result<u32, WalError> {
        if offset == self.synced_len {
            return Ok(self.prefix_crc);
        }
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = vec![0u8; offset as usize];
        self.file.read_exact(&mut buf)?;
        Ok(crc32(&buf))
    }

    /// Serve one follower catch-up request. A cursor matching this
    /// log's generation and prefix gets the verbatim committed bytes
    /// from its offset to the synced watermark; anything else — a
    /// generation reset under the follower, an offset outside the
    /// trusted range, a prefix CRC that disagrees — gets a full
    /// [`SnapshotTransfer`], because an incremental chunk appended to a
    /// diverged log would silently corrupt it.
    pub fn ship_from(&mut self, cursor: LogCursor) -> Result<Ship, WalError> {
        let incremental = cursor.gen == self.gen
            && cursor.offset >= self.header_len
            && cursor.offset <= self.synced_len
            && self.prefix_crc_at(cursor.offset.min(self.synced_len))? == cursor.crc;
        if !incremental {
            return Ok(Ship::Snapshot(self.snapshot_transfer()?));
        }
        let len = (self.synced_len - cursor.offset) as usize;
        let mut bytes = vec![0u8; len];
        self.file.seek(SeekFrom::Start(cursor.offset))?;
        self.file.read_exact(&mut bytes)?;
        let scan = scan_records(&bytes, 0);
        // The trusted prefix is commit-complete by construction, so a
        // torn scan of a slice of it is a local invariant violation.
        debug_assert!(!scan.torn, "trusted prefix scanned torn");
        note_repl_ship(bytes.len() as u64);
        Ok(Ship::Groups {
            gen: self.gen,
            from: cursor.offset,
            groups: scan.groups.len() as u64,
            bytes,
        })
    }

    /// The full durable state of this log for a follower that cannot be
    /// served incrementally: the snapshot file verbatim (absent before
    /// the first checkpoint) plus the gen-matched log prefix.
    pub fn snapshot_transfer(&mut self) -> Result<SnapshotTransfer, WalError> {
        let snap = match std::fs::read(self.dir.join("snapshot.mach")) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        self.file.seek(SeekFrom::Start(0))?;
        let mut log = vec![0u8; self.synced_len as usize];
        self.file.read_exact(&mut log)?;
        note_repl_snap_transfer();
        Ok(SnapshotTransfer {
            gen: self.gen,
            snap,
            log,
        })
    }

    /// Apply a shipped chunk on a follower: complete groups replay into
    /// `session` through the same machinery crash recovery uses, then
    /// land verbatim at the synced watermark — so a follower's log stays
    /// byte-identical to the primary's prefix it has acked.
    ///
    /// A generation mismatch is the fencing check: after a `PROMOTE`
    /// bumps the survivor's generation, a re-appearing old primary's
    /// groups carry the old one and are rejected whole
    /// ([`WalError::StaleGeneration`]). A chunk cut mid-group (the
    /// injected ship-disconnect, or a real half-received stream) applies
    /// its complete prefix and reports `torn` — the follower re-requests
    /// from its advanced cursor, exactly like recovery truncating a torn
    /// tail. [`WalError::ReplicaDiverged`] means local state could not
    /// absorb the bytes; the follower must heal by snapshot transfer.
    pub fn replica_apply(
        &mut self,
        session: &mut Session,
        gen: u64,
        bytes: &[u8],
    ) -> Result<ReplicaApplyReport, WalError> {
        if gen != self.gen {
            note_repl_stale_rejected();
            return Err(WalError::StaleGeneration {
                got: gen,
                have: self.gen,
            });
        }
        if self.doomed {
            return Err(WalError::ReplicaDiverged(
                "log doomed; reinstall from snapshot transfer".to_string(),
            ));
        }
        // Injected fault: the stream dropped mid-chunk and only a
        // seeded prefix arrived.
        let landed = if faults::ship_disconnect_due() {
            &bytes[..faults::torn_cut(bytes.len())]
        } else {
            bytes
        };
        let scan = scan_records(landed, 0);
        let keep = &landed[..scan.keep_len as usize];
        let mut records = 0u64;
        for group in &scan.groups {
            for payload in group {
                if let Err(e) = apply_payload(payload, session, &mut self.reg, &mut self.names) {
                    // Memory may be part-way through the group; only a
                    // fresh install makes this slot trustworthy again.
                    self.doomed = true;
                    let _ = take_wal_dirty_refs();
                    return Err(WalError::ReplicaDiverged(e.to_string()));
                }
                records += 1;
            }
        }
        // Replay wrote through `RefValue::set`; those deltas are the
        // primary's, already durable in the bytes we are about to land.
        let _ = take_wal_dirty_refs();
        if let Err(e) = self.append_synced(keep) {
            self.doomed = true;
            return Err(e);
        }
        self.groups += scan.groups.len() as u64;
        note_repl_groups_applied(scan.groups.len() as u64);
        Ok(ReplicaApplyReport {
            groups_applied: scan.groups.len() as u64,
            records_applied: records,
            torn: scan.torn || landed.len() < bytes.len(),
        })
    }
}

/// Install a [`SnapshotTransfer`] under `dir`, replacing whatever
/// durable state is there. Headers and the snapshot checksum are
/// validated *before* anything is overwritten — a corrupt transfer must
/// not destroy the follower's last good state. The caller re-opens via
/// [`SessionLog::open`] with a fresh session; install order (snapshot,
/// then log) keeps every crash point recoverable: a new snapshot with
/// the old log is exactly the "stale log discarded" checkpoint crash.
pub fn install_replica(dir: &Path, transfer: &SnapshotTransfer) -> Result<(), WalError> {
    std::fs::create_dir_all(dir)?;
    let (log_gen, _) = parse_log_header(&transfer.log)?;
    if log_gen != transfer.gen {
        return Err(WalError::BadHeader(format!(
            "transfer log gen {log_gen} != transfer gen {}",
            transfer.gen
        )));
    }
    if let Some(snap) = &transfer.snap {
        let (g, len, crc, hlen) = parse_snap_header(snap)?;
        if g != transfer.gen {
            return Err(WalError::BadHeader(format!(
                "transfer snapshot gen {g} != transfer gen {}",
                transfer.gen
            )));
        }
        let payload = snap
            .get(hlen..hlen.saturating_add(len))
            .filter(|p| p.len() == len && hlen + len == snap.len())
            .ok_or(WalError::Corrupt {
                offset: hlen as u64,
                what: "a transfer snapshot matching its declared length",
            })?;
        if crc32(payload) != crc {
            return Err(WalError::Corrupt {
                offset: hlen as u64,
                what: "a transfer snapshot matching its checksum",
            });
        }
        write_atomic(&dir.join("snapshot.mach"), snap)?;
    } else {
        if transfer.gen != 0 {
            return Err(WalError::BadHeader(format!(
                "snapshot-less transfer at gen {} (only gen 0 may lack one)",
                transfer.gen
            )));
        }
        let _ = std::fs::remove_file(dir.join("snapshot.mach"));
    }
    write_atomic(&dir.join("wal.log"), &transfer.log)?;
    Ok(())
}

/// Write a fresh log containing only a generation header, atomically,
/// returning its length (the initial synced watermark).
fn create_log(path: &Path, gen: u64) -> Result<u64, WalError> {
    let header = log_header(gen);
    write_atomic(path, header.as_bytes())?;
    Ok(header.len() as u64)
}

fn apply_payload(
    payload: &[u8],
    session: &mut Session,
    reg: &mut RefRegistry,
    names: &mut BTreeSet<String>,
) -> Result<(), WalError> {
    match parse_payload(payload)? {
        Payload::Bind { name, ty, enc } => {
            let value = decode_with_registry(&enc, reg)?;
            session
                .bind_external(&name, value, &ty)
                .map_err(|e| WalError::Session(e.to_string()))?;
            names.insert(name);
        }
        Payload::Delta { durable_id, enc } => {
            let Some(cell) = reg.cell(durable_id).cloned() else {
                return Err(WalError::Corrupt {
                    offset: 0,
                    what: "a delta naming a known durable ref",
                });
            };
            let value = decode_with_registry(&enc, reg)?;
            cell.set(value);
        }
        // Markers are group boundaries; the scanner strips them, but a
        // stray one is harmless.
        Payload::Commit => {}
    }
    Ok(())
}

/// A [`Session`] bundled with its [`SessionLog`]: evaluate, commit,
/// recover — the shape the crash-recovery harness and single-process
/// embedders use. (The server composes `Session` + `SessionLog`
/// directly, one pair per slot.)
pub struct DurableSession {
    session: Session,
    log: SessionLog,
}

impl DurableSession {
    /// Open with a full prelude session ([`Session::new`]).
    pub fn open(dir: &Path) -> Result<(DurableSession, RecoveryReport), WalError> {
        let mut session = Session::try_new().map_err(|e| WalError::Session(e.to_string()))?;
        let (log, report) = SessionLog::open(dir, &mut session)?;
        Ok((DurableSession { session, log }, report))
    }

    /// Open with a prelude-less session ([`Session::bare`]) — the
    /// harness's fast path.
    pub fn open_bare(dir: &Path) -> Result<(DurableSession, RecoveryReport), WalError> {
        let mut session = Session::bare();
        let (log, report) = SessionLog::open(dir, &mut session)?;
        Ok((DurableSession { session, log }, report))
    }

    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable session access. Changes made here are durable only once
    /// a later [`DurableSession::eval`] or
    /// [`DurableSession::checkpoint`] captures them.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    pub fn log(&self) -> &SessionLog {
        &self.log
    }

    /// Evaluate `src` and commit its effects. On an evaluation error
    /// nothing commits, but partial ref writes are absorbed and ride
    /// with the next commit (they happened; durability must not forget
    /// them). A program failing at phrase *k* leaves phrases `0..k`
    /// bound in memory but not yet durable — single-phrase programs
    /// sidestep the distinction.
    pub fn eval(&mut self, src: &str) -> Result<(Vec<Outcome>, CommitReceipt), WalError> {
        match self.session.run(src) {
            Ok(outcomes) => {
                let receipt = self.log.commit(&self.session, &outcomes)?;
                Ok((outcomes, receipt))
            }
            Err(e) => {
                self.log.absorb_dirty();
                Err(WalError::Session(e.to_string()))
            }
        }
    }

    pub fn checkpoint(&mut self) -> Result<(), WalError> {
        self.log.checkpoint(&self.session)
    }

    /// Mutable log access — the primary side of replication
    /// ([`SessionLog::ship_from`], [`SessionLog::snapshot_transfer`]).
    pub fn log_mut(&mut self) -> &mut SessionLog {
        &mut self.log
    }

    /// Follower side of replication: absorb a shipped chunk into both
    /// the in-memory session and the local log
    /// ([`SessionLog::replica_apply`]).
    pub fn replica_apply(
        &mut self,
        gen: u64,
        bytes: &[u8],
    ) -> Result<ReplicaApplyReport, WalError> {
        self.log.replica_apply(&mut self.session, gen, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machiavelli_value::{RefValue, Value};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mach-wal-{tag}-{}-{}",
            std::process::id(),
            RefValue::new(Value::Unit).id
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn bindings_survive_reopen() {
        let dir = tempdir("reopen");
        {
            let (mut ds, report) = DurableSession::open_bare(&dir).unwrap();
            assert!(!report.recovered);
            let (_, r) = ds.eval("val x = 41;").unwrap();
            assert!(r.records > 0);
            ds.eval("val y = x + 1;").unwrap();
        }
        let (mut ds, report) = DurableSession::open_bare(&dir).unwrap();
        assert!(report.recovered);
        assert_eq!(report.commits_replayed, 2);
        assert!(!report.torn_tail_truncated);
        assert_eq!(
            ds.eval("y;").unwrap().0.pop().unwrap().show(),
            "val it = 42 : int"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ref_deltas_replay_and_sharing_survives() {
        let dir = tempdir("deltas");
        {
            let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
            ds.eval("val d = ref(45);").unwrap();
            ds.eval("val d2 = d;").unwrap();
            // A pure ref write: no bind outcome beyond `it = ()`, so
            // durability rides on the delta record.
            let (_, r) = ds.eval("d := 67;").unwrap();
            assert!(r.records > 0 && !r.checkpointed);
        }
        let (mut ds, report) = DurableSession::open_bare(&dir).unwrap();
        assert_eq!(report.commits_replayed, 3);
        assert_eq!(
            ds.eval("!d;").unwrap().0.pop().unwrap().show(),
            "val it = 67 : int"
        );
        // d and d2 still alias one cell.
        ds.eval("d2 := 99;").unwrap();
        assert_eq!(
            ds.eval("!d;").unwrap().0.pop().unwrap().show(),
            "val it = 99 : int"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_and_resets_generation() {
        let dir = tempdir("ckpt");
        {
            let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
            ds.eval("val a = 1;").unwrap();
            ds.eval("val b = ref(2);").unwrap();
            assert_eq!(ds.log().generation(), 0);
            ds.checkpoint().unwrap();
            assert_eq!(ds.log().generation(), 1);
            // Post-checkpoint commits land in the new generation's log.
            ds.eval("b := 3;").unwrap();
        }
        let (mut ds, report) = DurableSession::open_bare(&dir).unwrap();
        assert_eq!(report.snapshot_bindings, 2, "a and b");
        assert_eq!(report.commits_replayed, 1, "only the post-checkpoint delta");
        assert_eq!(
            ds.eval("!b;").unwrap().0.pop().unwrap().show(),
            "val it = 3 : int"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn functions_are_skipped_not_fatal() {
        let dir = tempdir("skip");
        {
            let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
            let (_, r) = ds.eval("fun f(x) = x;").unwrap();
            assert!(r.skipped > 0, "{r:?}");
            ds.eval("val n = 5;").unwrap();
        }
        let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
        assert_eq!(
            ds.eval("n;").unwrap().0.pop().unwrap().show(),
            "val it = 5 : int"
        );
        assert!(ds.eval("f(1);").is_err(), "functions do not persist");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Pump every pending group from `p` to `f`, acking nothing —
    /// returns the groups applied.
    fn pump(p: &mut DurableSession, f: &mut DurableSession) -> u64 {
        let mut applied = 0;
        loop {
            match p.log.ship_from(f.log.cursor()).unwrap() {
                Ship::Groups { bytes, .. } if bytes.is_empty() => break,
                Ship::Groups { gen, bytes, .. } => {
                    let DurableSession { session, log } = f;
                    let rep = log.replica_apply(session, gen, &bytes).unwrap();
                    applied += rep.groups_applied;
                }
                Ship::Snapshot(t) => {
                    install_replica(f.log.dir(), &t).unwrap();
                    let dir = f.log.dir().to_path_buf();
                    *f = DurableSession::open_bare(&dir).unwrap().0;
                }
            }
        }
        applied
    }

    #[test]
    fn follower_log_is_byte_identical_after_streaming() {
        let pd = tempdir("ship-p");
        let fd = tempdir("ship-f");
        let (mut p, _) = DurableSession::open_bare(&pd).unwrap();
        let (mut f, _) = DurableSession::open_bare(&fd).unwrap();
        p.eval("val x = 10;").unwrap();
        p.eval("val r = ref(1);").unwrap();
        p.eval("r := 2;").unwrap();
        let applied = pump(&mut p, &mut f);
        assert_eq!(applied, 3);
        assert_eq!(f.log.cursor(), p.log.cursor(), "cursors converge");
        assert_eq!(
            std::fs::read(pd.join("wal.log")).unwrap(),
            std::fs::read(fd.join("wal.log")).unwrap(),
            "follower log is the primary's, byte for byte"
        );
        assert_eq!(
            f.session.run("!r + x;").unwrap().pop().unwrap().show(),
            "val it = 12 : int"
        );
        // Caught-up ship is empty and counts zero groups.
        match p.log.ship_from(f.log.cursor()).unwrap() {
            Ship::Groups { bytes, groups, .. } => {
                assert!(bytes.is_empty());
                assert_eq!(groups, 0);
            }
            other => panic!("expected empty groups, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&pd);
        let _ = std::fs::remove_dir_all(&fd);
    }

    #[test]
    fn checkpointed_primary_serves_snapshot_transfer() {
        let pd = tempdir("snap-p");
        let fd = tempdir("snap-f");
        let (mut p, _) = DurableSession::open_bare(&pd).unwrap();
        let (mut f, _) = DurableSession::open_bare(&fd).unwrap();
        p.eval("val a = 1;").unwrap();
        pump(&mut p, &mut f);
        // Checkpoint resets the primary's log generation under the
        // follower's cursor: incremental shipping is impossible.
        p.checkpoint().unwrap();
        p.eval("val b = 2;").unwrap();
        match p.log.ship_from(f.log.cursor()).unwrap() {
            Ship::Snapshot(t) => {
                assert_eq!(t.gen, 1);
                assert!(t.snap.is_some());
                install_replica(f.log.dir(), &t).unwrap();
            }
            other => panic!("expected snapshot transfer, got {other:?}"),
        }
        let (mut f, report) = DurableSession::open_bare(&fd).unwrap();
        assert_eq!(report.snapshot_bindings, 1);
        assert_eq!(report.commits_replayed, 1);
        assert_eq!(f.log.cursor(), p.log.cursor());
        assert_eq!(
            f.session.run("a + b;").unwrap().pop().unwrap().show(),
            "val it = 3 : int"
        );
        let _ = std::fs::remove_dir_all(&pd);
        let _ = std::fs::remove_dir_all(&fd);
    }

    #[test]
    fn stale_generation_groups_are_rejected_whole() {
        let pd = tempdir("stale-p");
        let fd = tempdir("stale-f");
        let (mut p, _) = DurableSession::open_bare(&pd).unwrap();
        let (mut f, _) = DurableSession::open_bare(&fd).unwrap();
        p.eval("val x = 1;").unwrap();
        let Ship::Groups { bytes, .. } = p.log.ship_from(f.log.cursor()).unwrap() else {
            panic!("expected groups");
        };
        // Fence the follower: a checkpoint bumps its generation, which
        // is exactly what PROMOTE does.
        f.checkpoint().unwrap();
        let before = f.log.cursor();
        let DurableSession { session, log } = &mut f;
        match log.replica_apply(session, 0, &bytes) {
            Err(WalError::StaleGeneration { got: 0, have: 1 }) => {}
            other => panic!("expected StaleGeneration, got {other:?}"),
        }
        assert_eq!(f.log.cursor(), before, "rejection applies nothing");
        let _ = std::fs::remove_dir_all(&pd);
        let _ = std::fs::remove_dir_all(&fd);
    }

    #[test]
    fn diverged_cursor_heals_via_snapshot_transfer() {
        let pd = tempdir("div-p");
        let fd = tempdir("div-f");
        let (mut p, _) = DurableSession::open_bare(&pd).unwrap();
        let (mut f, _) = DurableSession::open_bare(&fd).unwrap();
        p.eval("val x = 1;").unwrap();
        pump(&mut p, &mut f);
        // Fork the streams: the follower commits locally (as a wrongly
        // un-fenced primary would), so offsets match but CRCs do not.
        f.eval("val y = 2;").unwrap();
        p.eval("val z = 3;").unwrap();
        let cur = f.log.cursor();
        assert_eq!(cur.gen, p.log.cursor().gen);
        match p.log.ship_from(cur).unwrap() {
            Ship::Snapshot(t) => {
                install_replica(f.log.dir(), &t).unwrap();
            }
            other => panic!("diverged prefix must force a snapshot, got {other:?}"),
        }
        let (mut f, _) = DurableSession::open_bare(&fd).unwrap();
        assert_eq!(f.log.cursor(), p.log.cursor());
        assert!(
            f.session.run("y;").is_err(),
            "the forked commit is gone after healing"
        );
        assert_eq!(
            f.session.run("x + z;").unwrap().pop().unwrap().show(),
            "val it = 4 : int"
        );
        let _ = std::fs::remove_dir_all(&pd);
        let _ = std::fs::remove_dir_all(&fd);
    }

    #[test]
    fn torn_ship_applies_prefix_and_resumes() {
        use machiavelli_value::faults::{set_fault_config, FaultConfig};
        let pd = tempdir("torn-p");
        let fd = tempdir("torn-f");
        let (mut p, _) = DurableSession::open_bare(&pd).unwrap();
        let (mut f, _) = DurableSession::open_bare(&fd).unwrap();
        for i in 0..6 {
            p.eval(&format!("val n{i} = {i};")).unwrap();
        }
        let Ship::Groups { bytes, groups, .. } = p.log.ship_from(f.log.cursor()).unwrap() else {
            panic!("expected groups");
        };
        assert_eq!(groups, 6);
        // First apply is cut mid-stream; the complete prefix lands.
        let prev = set_fault_config(Some(FaultConfig {
            ship_disconnect_ppm: 1_000_000,
            seed: 21,
            ..FaultConfig::off()
        }));
        let DurableSession { session, log } = &mut f;
        let rep = log.replica_apply(session, 0, &bytes).unwrap();
        set_fault_config(prev);
        assert!(rep.torn, "certain disconnect must report torn");
        assert!(rep.groups_applied < 6);
        // Re-request from the advanced cursor: the remainder streams.
        pump(&mut p, &mut f);
        assert_eq!(f.log.cursor(), p.log.cursor());
        assert_eq!(
            f.session
                .run("n0 + n1 + n2 + n3 + n4 + n5;")
                .unwrap()
                .pop()
                .unwrap()
                .show(),
            "val it = 15 : int"
        );
        let _ = std::fs::remove_dir_all(&pd);
        let _ = std::fs::remove_dir_all(&fd);
    }

    #[test]
    fn install_replica_validates_before_overwriting() {
        let fd = tempdir("inst-f");
        let (mut f, _) = DurableSession::open_bare(&fd).unwrap();
        f.eval("val keep = 7;").unwrap();
        drop(f);
        // Gen-mismatched log: refused, state intact.
        let bad = SnapshotTransfer {
            gen: 3,
            snap: None,
            log: log_header(2).into_bytes(),
        };
        assert!(matches!(
            install_replica(&fd, &bad),
            Err(WalError::BadHeader(_))
        ));
        // Corrupt snapshot payload: refused, state intact.
        let mut snap = snap_header(1, 4, 0xDEAD_BEEF).into_bytes();
        snap.extend_from_slice(b"i7:4");
        let bad = SnapshotTransfer {
            gen: 1,
            snap: Some(snap),
            log: log_header(1).into_bytes(),
        };
        assert!(matches!(
            install_replica(&fd, &bad),
            Err(WalError::Corrupt { .. })
        ));
        let (mut f, _) = DurableSession::open_bare(&fd).unwrap();
        assert_eq!(
            f.session.run("keep;").unwrap().pop().unwrap().show(),
            "val it = 7 : int"
        );
        let _ = std::fs::remove_dir_all(&fd);
    }

    #[test]
    fn cursor_tracks_groups_and_survives_reopen() {
        let dir = tempdir("cursor");
        let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
        assert_eq!(ds.log.groups(), 0);
        ds.eval("val x = 1;").unwrap();
        ds.eval("val y = 2;").unwrap();
        assert_eq!(ds.log.groups(), 2);
        let cur = ds.log.cursor();
        drop(ds);
        let (ds, _) = DurableSession::open_bare(&dir).unwrap();
        assert_eq!(ds.log.cursor(), cur, "cursor is recovery-stable");
        assert_eq!(ds.log.groups(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_commit_appends_nothing() {
        let dir = tempdir("empty");
        let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
        ds.eval("val x = 1;").unwrap();
        let before = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        let receipt = ds.log.commit(
            &Session::bare(), // no outcomes, no dirty refs
            &[],
        );
        assert_eq!(receipt.unwrap().records, 0);
        let after = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
