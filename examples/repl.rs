//! An interactive Machiavelli REPL, in the style of the paper's
//! transcripts.
//!
//! ```sh
//! cargo run --example repl
//! -> fun id(x) = x;
//! >> val id = fn : 'a -> 'a
//! -> id(1);
//! >> val it = 1 : int
//! -> quit;
//! ```

use machiavelli::{run_repl, Session};
use std::io::BufReader;

fn main() -> std::io::Result<()> {
    let mut session = Session::new();
    let stdin = std::io::stdin();
    run_repl(
        &mut session,
        BufReader::new(stdin.lock()),
        std::io::stdout(),
    )
}
