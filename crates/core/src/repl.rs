//! A line-oriented REPL harness over [`crate::Session`].
//!
//! Mirrors the paper's interactive transcripts: `->` prompts, `>>`
//! result lines. Input accumulates until a `;` completes a phrase.

use crate::session::Session;
use std::io::{BufRead, Write};

/// Run a REPL over arbitrary input/output streams. Returns when the
/// input ends or a line is exactly `quit;`.
pub fn run_repl(
    session: &mut Session,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<()> {
    writeln!(
        output,
        "Machiavelli (SIGMOD 1989 reproduction). End phrases with `;`; \
         `:plan <phrase>;` explains a comprehension; `:analyze <phrase>;` \
         runs it and shows the traced operator tree; `:indexes;` lists \
         cached indexes; `:stats;` shows engine counters; `quit;` \
         exits."
    )?;
    let mut pending = String::new();
    write!(output, "-> ")?;
    output.flush()?;
    for line in input.lines() {
        let line = line?;
        if line.trim() == "quit;" {
            writeln!(output, "goodbye")?;
            return Ok(());
        }
        pending.push_str(&line);
        pending.push('\n');
        if complete(&pending) {
            // The command token needs a word boundary: `:plans …` is not
            // `:plan s …`, it falls through to the parser's error.
            if let Some(rest) = pending
                .trim_start()
                .strip_prefix(":plan")
                .filter(|r| r.starts_with(char::is_whitespace))
            {
                match session.plan_of(rest) {
                    Ok(tree) => {
                        for l in tree.lines() {
                            writeln!(output, ">> {l}")?;
                        }
                    }
                    Err(e) => writeln!(output, ">> error: {e}")?,
                }
            } else if let Some(rest) = pending
                .trim_start()
                .strip_prefix(":analyze")
                .filter(|r| r.starts_with(char::is_whitespace))
            {
                match session.analyze(rest) {
                    Ok(report) => {
                        for l in report.lines() {
                            writeln!(output, ">> {l}")?;
                        }
                    }
                    Err(e) => writeln!(output, ">> error: {e}")?,
                }
            } else if bare_command(&pending, ":stats") {
                for l in session.stats().render().lines() {
                    writeln!(output, ">> {l}")?;
                }
            } else if bare_command(&pending, ":indexes") {
                let infos = session.store_indexes();
                if infos.is_empty() {
                    writeln!(output, ">> no cached indexes")?;
                }
                for i in infos {
                    writeln!(
                        output,
                        ">> [{}, {} rows, {} groups, {} hits] {}",
                        i.kind, i.rows, i.groups, i.hits, i.fingerprint
                    )?;
                }
            } else {
                match session.run(&pending) {
                    Ok(outcomes) => {
                        for o in outcomes {
                            writeln!(output, ">> {}", o.show())?;
                        }
                    }
                    Err(e) => writeln!(output, ">> error: {e}")?,
                }
            }
            pending.clear();
            write!(output, "-> ")?;
        } else {
            write!(output, ".. ")?;
        }
        output.flush()?;
    }
    Ok(())
}

/// Is the pending input exactly the argument-less REPL command `name`
/// (with its terminating `;`)? `:statsfoo;` is not `:stats;` — it falls
/// through to the parser's error.
fn bare_command(src: &str, name: &str) -> bool {
    src.trim()
        .strip_prefix(name)
        .is_some_and(|rest| rest.trim() == ";")
}

/// A phrase is complete when a `;` appears outside strings, comments and
/// brackets — a cheap scan sufficient for interactive use.
fn complete(src: &str) -> bool {
    let mut depth = 0i32;
    let mut in_string = false;
    let mut comment = 0i32;
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut semi_at_top = false;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            match b {
                b'\\' => i += 1,
                b'"' => in_string = false,
                _ => {}
            }
        } else if comment > 0 {
            if b == b'(' && bytes.get(i + 1) == Some(&b'*') {
                comment += 1;
                i += 1;
            } else if b == b'*' && bytes.get(i + 1) == Some(&b')') {
                comment -= 1;
                i += 1;
            }
        } else {
            match b {
                b'(' if bytes.get(i + 1) == Some(&b'*') => {
                    comment += 1;
                    i += 1;
                }
                b'"' => {
                    // Heuristic: only treat as a string opener when a
                    // closing quote exists later on the same line.
                    let rest = &src[i + 1..];
                    if let Some(end) = rest.find(['"', '\n']) {
                        if rest.as_bytes()[end] == b'"' {
                            in_string = true;
                        }
                    }
                }
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b';' if depth <= 0 => semi_at_top = true,
                _ => {}
            }
        }
        i += 1;
    }
    semi_at_top
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_detection() {
        assert!(complete("1;"));
        assert!(!complete("fun f(x) ="));
        assert!(!complete("{[A=1"));
        assert!(complete("select x where x <- S with true;"));
        assert!(!complete("(* comment; *)"));
        assert!(!complete("\"semi; in string\""));
        assert!(complete("\"done\";"));
    }

    #[test]
    fn scripted_repl_session() {
        let mut session = Session::new();
        let input = b"1 + 1;\nfun double(x) =\nx * 2;\ndouble(21);\nquit;\n" as &[u8];
        let mut out = Vec::new();
        run_repl(&mut session, input, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(">> val it = 2 : int"), "{text}");
        assert!(text.contains(">> val double = fn : int -> int"), "{text}");
        assert!(text.contains(">> val it = 42 : int"), "{text}");
        assert!(text.contains("goodbye"), "{text}");
    }

    #[test]
    fn repl_plan_command() {
        let mut session = Session::new();
        session.store_reset();
        let input =
            b":plan select (x, y) where x <- r, y <- s with x.K = y.K;\n1;\nquit;\n" as &[u8];
        let mut out = Vec::new();
        run_repl(&mut session, input, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(">> Project (x, y)"), "{text}");
        assert!(
            text.contains(">>   HashJoin[idx build] probe(x.K) build(y.K)"),
            "{text}"
        );
        // The session keeps running after :plan.
        assert!(text.contains(">> val it = 1 : int"), "{text}");
    }

    #[test]
    fn repl_plan_requires_word_boundary() {
        let mut session = Session::new();
        let input = b":plans 1;\nquit;\n" as &[u8];
        let mut out = Vec::new();
        run_repl(&mut session, input, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        // Not treated as `:plan s 1;` — it reaches the parser instead.
        assert!(text.contains(">> error:"), "{text}");
        assert!(!text.contains("Project"), "{text}");
    }

    #[test]
    fn repl_stats_and_indexes_commands() {
        let mut session = Session::new();
        session.store_reset();
        session.par_reset();
        session.exec_reset();
        // Pin the thread count so the parallel line is deterministic
        // under any machine/env configuration.
        let prev = session.set_par_threads(Some(1));
        let input = b":stats;\n\
                      val r = {[K=1, A=10], [K=2, A=20]};\n\
                      select x.A where x <- r with x.K = 2;\n\
                      select x.A where x <- r with x.K = 1;\n\
                      :indexes;\n:stats;\nquit;\n" as &[u8];
        let mut out = Vec::new();
        run_repl(&mut session, input, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        // Cold store first.
        assert!(
            text.contains(">> index store: 0 entries (0 plain / 0 rc), 0 rows cached"),
            "{text}"
        );
        // The two equality queries share one cached grouping of `r` —
        // plain rows, so the entry is in parallel-probable form.
        assert!(
            text.contains(">> [plain, 2 rows, 2 groups, 1 hits] scan r key(_.K)"),
            "{text}"
        );
        assert!(
            text.contains(">> index store: 1 entries (1 plain / 0 rc), 2 rows cached"),
            "{text}"
        );
        assert!(
            text.contains(
                ">> hits 1 / misses 1 / builds 1 / invalidated 0 / cleared 0 / evicted 0"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                ">> parallel (1 threads): joins 0 / join fallbacks 0 / cached probes 0 / \
                 probe fallbacks 0 / homs 0 / hom fallbacks 0"
            ),
            "{text}"
        );
        // Nothing in this run clears the columnar cutoffs: the line is
        // present with all counters at zero.
        assert!(
            text.contains(
                ">> columnar: offloads 0 / offload fallbacks 0 / \
                 snapshots 0 built / 0 adopted / morsels 0 executed / 0 stolen"
            ),
            "{text}"
        );
        // No server hosts sessions in this process (and the shared
        // tier is off outside server workers): the server line is
        // present with all counters at zero.
        assert!(
            text.contains(
                ">> server: sessions 0 started / 0 panicked / 0 closed, \
                 queries 0 completed / 0 shed / 0 deadline / 0 cancelled / 0 row-budget, \
                 shared tier 0 publishes / 0 adoptions / 0 lock recoveries"
            ),
            "{text}"
        );
        session.set_par_threads(prev);
    }

    #[test]
    fn repl_commands_require_exact_name() {
        let mut session = Session::new();
        let input = b":statsfoo;\n:indexes extra;\nquit;\n" as &[u8];
        let mut out = Vec::new();
        run_repl(&mut session, input, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.matches(">> error:").count(), 2, "{text}");
        assert!(!text.contains("index store"), "{text}");
    }

    #[test]
    fn repl_reports_errors_and_continues() {
        let mut session = Session::new();
        let input = b"1 + true;\n2;\n" as &[u8];
        let mut out = Vec::new();
        run_repl(&mut session, input, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(">> error:"), "{text}");
        assert!(text.contains(">> val it = 2 : int"), "{text}");
    }
}
