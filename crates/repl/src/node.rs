//! A single-process replication endpoint: one durable session with a
//! role.
//!
//! [`ReplNode`] is the unit the failover chaos harness kills,
//! partitions, and promotes. It is deliberately the *same* machinery
//! the server tier uses — [`DurableSession`] underneath, shipping via
//! [`SessionLog::ship_from`], applying via
//! [`SessionLog::replica_apply`] — so what the harness proves about a
//! node pair holds for the TCP tier too.

use machiavelli::{is_read_only_source, Outcome};
use machiavelli_value::repl_counters::note_repl_promotion;
use machiavelli_wal::{
    install_replica, CommitReceipt, DurableSession, LogCursor, RecoveryReport, ReplicaApplyReport,
    SessionLog, Ship, SnapshotTransfer, WalError,
};
use std::path::{Path, PathBuf};

/// Which side of the replication stream a node is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes; serves `ship` requests from followers.
    Primary,
    /// Read-only; pulls committed groups from a primary.
    Follower,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Role::Primary => "primary",
            Role::Follower => "follower",
        })
    }
}

/// Errors a [`ReplNode`] evaluation can raise beyond the WAL's own.
#[derive(Debug)]
pub enum NodeError {
    /// The node is a follower and the source would write (a `val`/`fun`
    /// declaration or a `:=` assignment). Writes belong on the primary.
    ReadOnly,
    /// The underlying durable session failed.
    Wal(WalError),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::ReadOnly => {
                write!(f, "read-only follower: writes belong on the primary")
            }
            NodeError::Wal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<WalError> for NodeError {
    fn from(e: WalError) -> NodeError {
        NodeError::Wal(e)
    }
}

/// What one [`ReplNode::pull_from`] round did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PullOutcome {
    /// The follower's cursor already sat at the primary's watermark.
    CaughtUp,
    /// Incremental groups were applied (possibly a torn prefix — check
    /// [`ReplicaApplyReport::torn`] and pull again).
    Applied(ReplicaApplyReport),
    /// The cursor could not be served incrementally (generation reset
    /// or divergence); full state was installed and the node re-opened
    /// through crash recovery.
    Installed(RecoveryReport),
}

/// One replication endpoint: a durable session, its directory, and a
/// role.
pub struct ReplNode {
    dir: PathBuf,
    ds: DurableSession,
    role: Role,
}

impl ReplNode {
    /// Open a primary under `dir` (prelude-less session).
    pub fn open_primary(dir: &Path) -> Result<(ReplNode, RecoveryReport), WalError> {
        ReplNode::open(dir, Role::Primary)
    }

    /// Open a follower under `dir` (prelude-less session).
    pub fn open_follower(dir: &Path) -> Result<(ReplNode, RecoveryReport), WalError> {
        ReplNode::open(dir, Role::Follower)
    }

    fn open(dir: &Path, role: Role) -> Result<(ReplNode, RecoveryReport), WalError> {
        let (ds, report) = DurableSession::open_bare(dir)?;
        Ok((
            ReplNode {
                dir: dir.to_path_buf(),
                ds,
                role,
            },
            report,
        ))
    }

    pub fn role(&self) -> Role {
        self.role
    }

    pub fn session(&self) -> &machiavelli::Session {
        self.ds.session()
    }

    pub fn log(&self) -> &SessionLog {
        self.ds.log()
    }

    pub fn cursor(&self) -> LogCursor {
        self.ds.log().cursor()
    }

    /// Evaluate on this node. A primary commits durably; a follower
    /// accepts only read-only sources (evaluated in memory, nothing
    /// logged — the replicated stream stays byte-identical to the
    /// primary's) and declines writes with [`NodeError::ReadOnly`].
    pub fn eval(&mut self, src: &str) -> Result<(Vec<Outcome>, CommitReceipt), NodeError> {
        match self.role {
            Role::Primary => Ok(self.ds.eval(src)?),
            Role::Follower => {
                if !is_read_only_source(src) {
                    return Err(NodeError::ReadOnly);
                }
                let outcomes = self
                    .ds
                    .session_mut()
                    .run(src)
                    .map_err(|e| NodeError::Wal(WalError::Session(e.to_string())))?;
                // A read-only source has no ref writes, but replayed
                // reads may still have touched the dirty channel's
                // bookkeeping; never let scratch reads leak into a
                // later replicated append.
                self.ds.log_mut().absorb_dirty();
                Ok((outcomes, CommitReceipt::default()))
            }
        }
    }

    /// Force a checkpoint (primary compaction; also the promotion
    /// fence).
    pub fn checkpoint(&mut self) -> Result<(), WalError> {
        self.ds.checkpoint()
    }

    /// Promote this node to primary, fencing the old one: the
    /// checkpoint bumps the log generation, so any groups a
    /// re-appearing old primary ships carry a stale generation and are
    /// rejected whole. Idempotent. Returns the fenced generation.
    ///
    /// A replicating follower tracks the primary's generation in its
    /// own log, so one bump fences it. A follower that missed primary
    /// checkpoints behind a partition should use
    /// [`ReplNode::promote_above`] with the deposed primary's last
    /// known generation instead.
    pub fn promote(&mut self) -> Result<u64, WalError> {
        let own = self.ds.log().generation();
        self.promote_above(own)
    }

    /// Promote, guaranteeing the fenced generation exceeds `floor` —
    /// the deposed primary's last known generation (from `HEALTH`, or
    /// whatever failover controller decided the old primary is dead).
    /// Without the floor, a follower several checkpoints behind could
    /// promote onto a generation the old primary already used, and its
    /// stale groups would no longer be distinguishable.
    pub fn promote_above(&mut self, floor: u64) -> Result<u64, WalError> {
        if self.role == Role::Primary {
            return Ok(self.ds.log().generation());
        }
        loop {
            self.ds.checkpoint()?;
            if self.ds.log().generation() > floor {
                break;
            }
        }
        self.role = Role::Primary;
        note_repl_promotion();
        Ok(self.ds.log().generation())
    }

    /// Demote to follower (an old primary rejoining the cluster). Its
    /// next [`ReplNode::pull_from`] heals it — usually via snapshot
    /// transfer, since its log forked from the new primary's.
    pub fn demote(&mut self) {
        self.role = Role::Follower;
    }

    /// Serve one follower catch-up request (the primary side).
    pub fn ship(&mut self, cursor: LogCursor) -> Result<Ship, WalError> {
        self.ds.log_mut().ship_from(cursor)
    }

    /// Apply a shipped chunk directly (the follower side of a push; the
    /// pull path is [`ReplNode::pull_from`]). Stale generations are
    /// rejected whole with [`WalError::StaleGeneration`].
    pub fn apply(&mut self, gen: u64, bytes: &[u8]) -> Result<ReplicaApplyReport, WalError> {
        self.ds.replica_apply(gen, bytes)
    }

    /// One pull round against a primary: request from the local cursor,
    /// apply incrementally, or heal via snapshot transfer when the
    /// cursor cannot be served (generation reset, divergence, or a
    /// local apply failure that doomed the log).
    pub fn pull_from(&mut self, primary: &mut ReplNode) -> Result<PullOutcome, WalError> {
        let cursor = self.cursor();
        match primary.ship(cursor)? {
            Ship::Groups { bytes, .. } if bytes.is_empty() => Ok(PullOutcome::CaughtUp),
            Ship::Groups { gen, bytes, .. } => match self.apply(gen, &bytes) {
                Ok(report) => Ok(PullOutcome::Applied(report)),
                Err(WalError::StaleGeneration { .. }) | Err(WalError::ReplicaDiverged(_)) => {
                    let transfer = primary.ds.log_mut().snapshot_transfer()?;
                    self.install(&transfer).map(PullOutcome::Installed)
                }
                Err(e) => Err(e),
            },
            Ship::Snapshot(transfer) => self.install(&transfer).map(PullOutcome::Installed),
        }
    }

    /// Install a full-state transfer and re-open through crash
    /// recovery. The transfer is validated before anything on disk is
    /// overwritten.
    pub fn install(&mut self, transfer: &SnapshotTransfer) -> Result<RecoveryReport, WalError> {
        install_replica(&self.dir, transfer)?;
        self.reopen()
    }

    /// Drop in-memory state and recover from disk — the "kill -9 and
    /// restart" the chaos harness exercises.
    pub fn reopen(&mut self) -> Result<RecoveryReport, WalError> {
        let (ds, report) = DurableSession::open_bare(&self.dir)?;
        self.ds = ds;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machiavelli_value::faults::{set_fault_config, FaultConfig};
    use machiavelli_value::{RefValue, Value};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mach-repl-node-{tag}-{}-{}",
            std::process::id(),
            RefValue::new(Value::Unit).id
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn show(outcomes: &[Outcome]) -> String {
        outcomes
            .iter()
            .map(|o| o.show())
            .collect::<Vec<_>>()
            .join("; ")
    }

    #[test]
    fn follower_pulls_serve_reads_and_decline_writes() {
        let prev = set_fault_config(Some(FaultConfig::off()));
        let dp = tempdir("p");
        let df = tempdir("f");
        let (mut p, _) = ReplNode::open_primary(&dp).unwrap();
        let (mut f, _) = ReplNode::open_follower(&df).unwrap();
        p.eval("val x = ref(1);").unwrap();
        p.eval("x := 41;").unwrap();
        assert!(matches!(
            f.pull_from(&mut p).unwrap(),
            PullOutcome::Applied(_)
        ));
        assert_eq!(f.pull_from(&mut p).unwrap(), PullOutcome::CaughtUp);
        let (o, receipt) = f.eval("!x;").unwrap();
        assert_eq!(show(&o), "val it = 41 : int");
        assert_eq!(
            receipt,
            CommitReceipt::default(),
            "follower reads log nothing"
        );
        assert!(matches!(f.eval("x := 9;"), Err(NodeError::ReadOnly)));
        assert!(matches!(f.eval("val y = 1;"), Err(NodeError::ReadOnly)));
        let _ = std::fs::remove_dir_all(&dp);
        let _ = std::fs::remove_dir_all(&df);
        set_fault_config(prev);
    }

    #[test]
    fn promotion_fences_the_old_primary() {
        let prev = set_fault_config(Some(FaultConfig::off()));
        let dp = tempdir("fence-p");
        let df = tempdir("fence-f");
        let (mut p, _) = ReplNode::open_primary(&dp).unwrap();
        let (mut f, _) = ReplNode::open_follower(&df).unwrap();
        p.eval("val a = ref(10);").unwrap();
        f.pull_from(&mut p).unwrap();

        // Partition: the primary keeps committing, unreplicated.
        p.eval("a := 11;").unwrap();
        let stale = match p.ship(f.cursor()).unwrap() {
            Ship::Groups { gen, bytes, .. } => (gen, bytes),
            other => panic!("expected groups, got {other:?}"),
        };

        // Failover: the follower is promoted; its generation bumps.
        let fenced_gen = f.promote().unwrap();
        assert_eq!(f.role(), Role::Primary);
        assert!(fenced_gen > stale.0);

        // The old primary's in-flight chunk arrives late: rejected
        // whole, state unchanged.
        let err = f.apply(stale.0, &stale.1).unwrap_err();
        assert!(matches!(err, WalError::StaleGeneration { .. }), "{err}");
        let (o, _) = f.eval("!a;").unwrap();
        assert_eq!(show(&o), "val it = 10 : int");

        // The new primary accepts writes; the old one heals as a
        // follower via snapshot transfer and converges.
        f.eval("a := 12;").unwrap();
        p.demote();
        assert!(matches!(
            p.pull_from(&mut f).unwrap(),
            PullOutcome::Installed(_)
        ));
        let (o, _) = p.eval("!a;").unwrap();
        assert_eq!(show(&o), "val it = 12 : int");
        let _ = std::fs::remove_dir_all(&dp);
        let _ = std::fs::remove_dir_all(&df);
        set_fault_config(prev);
    }

    #[test]
    fn promote_is_idempotent() {
        let prev = set_fault_config(Some(FaultConfig::off()));
        let d = tempdir("idem");
        let (mut p, _) = ReplNode::open_primary(&d).unwrap();
        p.eval("val x = 1;").unwrap();
        let g1 = p.promote().unwrap();
        let g2 = p.promote().unwrap();
        assert_eq!(g1, g2, "promoting a primary must not churn generations");
        let _ = std::fs::remove_dir_all(&d);
        set_fault_config(prev);
    }
}
