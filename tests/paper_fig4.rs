//! E4 — Figure 4: the polymorphic transitive closure, in the language and
//! against the native implementations.

use machiavelli::Session;
use machiavelli_relational::{
    chain_edges, closure_relation, edges_to_relation, gen_edges, naive_closure, seminaive_closure,
    Relation,
};

#[test]
fn closure_type_matches_paper_modulo_equality() {
    // Paper prints {[A:"a,B:"b]} -> {[A:"a,B:"b]}; its own predicate
    // `x.B = y.A` equates the two field types, so the principal scheme
    // identifies them (see EXPERIMENTS.md).
    let s = Session::new();
    assert_eq!(
        s.scheme_of("Closure").unwrap().show(),
        "{[A:\"a,B:\"a]} -> {[A:\"a,B:\"a]}"
    );
}

#[test]
fn closure_of_small_graph_in_machiavelli() {
    let mut s = Session::new();
    let out = s
        .eval_one("Closure({[A=1,B=2],[A=2,B=3],[A=3,B=4]});")
        .unwrap();
    let expected = s
        .eval_one("{[A=1,B=2],[A=2,B=3],[A=3,B=4],[A=1,B=3],[A=2,B=4],[A=1,B=4]};")
        .unwrap();
    assert_eq!(out.value, expected.value);
}

#[test]
fn closure_is_polymorphic_in_field_type() {
    // Works on string-labelled graphs too — the paper's point about
    // "any binary relation".
    let mut s = Session::new();
    let out = s
        .eval_one(r#"card(Closure({[A="x",B="y"],[A="y",B="z"]}));"#)
        .unwrap();
    assert_eq!(out.show(), "val it = 3 : int");
}

#[test]
fn renaming_adapts_other_binary_relations() {
    // "By using a renaming operation, this function can be used to
    // compute the transitive closure of any binary relation."
    let r = Relation::from_rows([
        machiavelli_relational::row(&[
            ("Src", machiavelli::value::Value::Int(1)),
            ("Dst", machiavelli::value::Value::Int(2)),
        ]),
        machiavelli_relational::row(&[
            ("Src", machiavelli::value::Value::Int(2)),
            ("Dst", machiavelli::value::Value::Int(3)),
        ]),
    ]);
    let renamed = r.rename("Src", "A").rename("Dst", "B");
    let closed = closure_relation(&renamed, true);
    assert_eq!(closed.len(), 3);
}

#[test]
fn interpreter_matches_native_closures_on_random_graphs() {
    let mut s = Session::new();
    for seed in 0..3 {
        let edges = gen_edges(8, 12, seed);
        let rel = edges_to_relation(&edges);
        s.bind_external("g", rel.clone().into_value(), "{[A: int, B: int]}")
            .unwrap();
        let interpreted = s.eval_one("Closure(g);").unwrap().value;
        let native_naive = closure_relation(&rel, false).into_value();
        let native_semi = closure_relation(&rel, true).into_value();
        assert_eq!(interpreted, native_naive, "seed {seed}");
        assert_eq!(interpreted, native_semi, "seed {seed}");
    }
}

#[test]
fn native_closures_agree_on_chains_and_random_graphs() {
    for n in [0, 1, 5, 20] {
        let edges = chain_edges(n);
        assert_eq!(naive_closure(&edges), seminaive_closure(&edges));
    }
    for seed in 0..5 {
        let edges = gen_edges(30, 60, seed);
        assert_eq!(naive_closure(&edges), seminaive_closure(&edges));
    }
}

#[test]
fn closure_result_is_transitively_closed_and_minimal() {
    let edges = gen_edges(15, 25, 99);
    let closed = seminaive_closure(&edges);
    // Closed under composition:
    for &(a, b) in &closed {
        for &(c, d) in &closed {
            if b == c {
                assert!(closed.contains(&(a, d)), "missing ({a},{d})");
            }
        }
    }
    // Contains the original edges.
    for e in &edges {
        assert!(closed.contains(e));
    }
    // Sound: every pair is reachable in the original graph.
    let reach = |from: i64, to: i64| -> bool {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            for &(a, b) in &edges {
                if a == x && seen.insert(b) {
                    if b == to {
                        return true;
                    }
                    stack.push(b);
                }
            }
        }
        false
    };
    for &(a, b) in &closed {
        assert!(reach(a, b), "unsound pair ({a},{b})");
    }
}
