//! Anchor library for the workspace-level integration suite.
//!
//! The repository root is a package only so that `tests/` (the paper
//! figure tests) and `examples/` attach to the workspace; all real code
//! lives in the `crates/*` members, re-exported here for convenience.

pub use machiavelli;
pub use machiavelli_oodb;
pub use machiavelli_relational;
