//! E7 bench — building the Figure 8 views over growing object stores:
//! interpreted vs native.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Short measurement windows so the full figure suite runs in minutes;
/// rerun individual benches with Criterion CLI flags for precision.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}
use machiavelli_bench::university_session;
use machiavelli_oodb::{employee_view, gen_university, tf_view, UniversityParams};

fn bench_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_views");
    group.sample_size(10);
    for n in [50usize, 150, 500] {
        let params = UniversityParams {
            n_people: n,
            seed: 1,
            ..Default::default()
        };
        let (mut session, uni) = university_session(params);
        let store = uni.store();

        group.bench_with_input(
            BenchmarkId::new("employee_view/interpreted", n),
            &n,
            |b, _| b.iter(|| session.eval_one("EmployeeView(persons);").unwrap().value),
        );
        group.bench_with_input(BenchmarkId::new("employee_view/native", n), &n, |b, _| {
            b.iter(|| employee_view(&store))
        });
        group.bench_with_input(BenchmarkId::new("tf_view/interpreted", n), &n, |b, _| {
            b.iter(|| session.eval_one("TFView(persons);").unwrap().value)
        });
        group.bench_with_input(BenchmarkId::new("tf_view/native", n), &n, |b, _| {
            b.iter(|| tf_view(&store))
        });
    }
    group.finish();
}

fn bench_store_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_store_generation");
    group.sample_size(10);
    for n in [100usize, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                gen_university(UniversityParams {
                    n_people: n,
                    seed: 1,
                    ..Default::default()
                })
                .store()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_views, bench_store_generation
}
criterion_main!(benches);
