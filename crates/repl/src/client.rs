//! The follower's replication client.
//!
//! A [`Replicator`] is a background thread a follower server runs: it
//! dials the primary's wire port and, per session, pulls `SHIP` chunks
//! from the follower's own cursor, applies them to the local
//! [`Server`], and `ACK`s the advanced position. Connection failures
//! retry with exponential backoff plus seeded jitter; a follower that
//! cannot absorb a chunk (divergence) heals itself by forcing a
//! snapshot transfer. The thread stops when asked — flushing a final
//! round of acks — or when the local server stops being a follower
//! (promotion).

use crate::proto::{parse_ship, parse_sids, LineClient};
use machiavelli_server::{Server, ServerError, ServerRole};
use machiavelli_wal::Ship;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for a [`Replicator`].
#[derive(Debug, Clone)]
pub struct ReplicatorConfig {
    /// The primary's wire address (`host:port`).
    pub primary_addr: String,
    /// Pause between catch-up rounds when healthy.
    pub poll: Duration,
    /// Exponential backoff cap for reconnects (starts at 10ms).
    pub backoff_cap: Duration,
    /// Per-request I/O timeout.
    pub io_timeout: Duration,
    /// Seed for reconnect jitter (decorrelates a fleet of followers).
    pub seed: u64,
}

impl ReplicatorConfig {
    pub fn new(primary_addr: impl Into<String>) -> ReplicatorConfig {
        ReplicatorConfig {
            primary_addr: primary_addr.into(),
            poll: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(1),
            io_timeout: Duration::from_secs(5),
            seed: 1989,
        }
    }
}

/// Counters and the last error of a running [`Replicator`].
#[derive(Debug, Clone, Default)]
pub struct ReplicatorStatus {
    /// Completed catch-up rounds (every hosted session synced once).
    pub rounds: u64,
    /// Reconnect attempts after a connection failure.
    pub reconnects: u64,
    /// Incremental chunks applied.
    pub chunks_applied: u64,
    /// Full snapshot transfers installed.
    pub installs: u64,
    /// Most recent error (connection or apply), if any.
    pub last_error: Option<String>,
}

/// Handle to the background replication thread.
pub struct Replicator {
    stop: Arc<AtomicBool>,
    status: Arc<Mutex<ReplicatorStatus>>,
    handle: Option<JoinHandle<()>>,
}

impl Replicator {
    /// Start replicating `local` (which should be a
    /// [`ServerRole::Follower`]) from the primary in `config`.
    pub fn start(local: Arc<Server>, config: ReplicatorConfig) -> Replicator {
        let stop = Arc::new(AtomicBool::new(false));
        let status = Arc::new(Mutex::new(ReplicatorStatus::default()));
        let handle = {
            let stop = Arc::clone(&stop);
            let status = Arc::clone(&status);
            std::thread::Builder::new()
                .name("machid-replicator".to_string())
                .spawn(move || run_loop(&local, &config, &stop, &status))
                .ok()
        };
        Replicator {
            stop,
            status,
            handle,
        }
    }

    /// A snapshot of the replication counters.
    pub fn status(&self) -> ReplicatorStatus {
        self.status
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Stop the thread (it flushes a final round of acks first) and
    /// return the final status.
    pub fn stop(mut self) -> ReplicatorStatus {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.status()
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn note_error(status: &Mutex<ReplicatorStatus>, e: impl std::fmt::Display) {
    status.lock().unwrap_or_else(|p| p.into_inner()).last_error = Some(e.to_string());
}

/// Sleep in short slices so a stop request is honored promptly.
fn interruptible_sleep(total: Duration, stop: &AtomicBool) {
    let mut left = total;
    let slice = Duration::from_millis(5);
    while !left.is_zero() && !stop.load(Ordering::SeqCst) {
        let step = left.min(slice);
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
}

fn run_loop(
    local: &Arc<Server>,
    config: &ReplicatorConfig,
    stop: &AtomicBool,
    status: &Mutex<ReplicatorStatus>,
) {
    let base = Duration::from_millis(10);
    let mut backoff = base;
    // xorshift64* jitter stream, seeded so fleets decorrelate.
    let mut jitter_state = config.seed | 1;
    let mut jitter = move || {
        jitter_state ^= jitter_state << 13;
        jitter_state ^= jitter_state >> 7;
        jitter_state ^= jitter_state << 17;
        jitter_state
    };
    'outer: while !stop.load(Ordering::SeqCst) && local.role() == ServerRole::Follower {
        let mut client = match LineClient::connect(&config.primary_addr, config.io_timeout) {
            Ok(c) => c,
            Err(e) => {
                note_error(status, format!("connect {}: {e}", config.primary_addr));
                {
                    let mut s = status.lock().unwrap_or_else(|p| p.into_inner());
                    s.reconnects += 1;
                }
                // Full jitter: sleep U(0, backoff], then double.
                let nanos = backoff.as_nanos().max(1) as u64;
                interruptible_sleep(Duration::from_nanos(jitter() % nanos + 1), stop);
                backoff = (backoff * 2).min(config.backoff_cap);
                continue;
            }
        };
        backoff = base;
        while !stop.load(Ordering::SeqCst) && local.role() == ServerRole::Follower {
            match sync_once(local, &mut client, status) {
                Ok(()) => interruptible_sleep(config.poll, stop),
                Err(e) => {
                    note_error(status, e);
                    let mut s = status.lock().unwrap_or_else(|p| p.into_inner());
                    s.reconnects += 1;
                    drop(s);
                    continue 'outer;
                }
            }
        }
    }
    // Final ack flush: tell the primary exactly where this follower's
    // durable log stands before going away, so its lag gauge is honest
    // across a graceful shutdown.
    if let Ok(mut client) = LineClient::connect(&config.primary_addr, config.io_timeout) {
        for sid in local.session_ids() {
            if let Ok((cursor, groups)) = local.cursor(sid) {
                let _ = client.request(&format!("ACK {sid} {} {}", cursor.gen, groups));
            }
        }
    }
}

/// One catch-up round: mirror the primary's session space, then pull,
/// apply, and ack each session.
fn sync_once(
    local: &Arc<Server>,
    client: &mut LineClient,
    status: &Mutex<ReplicatorStatus>,
) -> Result<(), String> {
    let sids = parse_sids(&client.request("SIDS").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    for sid in sids {
        local
            .adopt_session(sid)
            .map_err(|e| format!("adopt {sid}: {e}"))?;
        let (cursor, _) = local
            .cursor(sid)
            .map_err(|e| format!("cursor {sid}: {e}"))?;
        let resp = client
            .request(&format!(
                "SHIP {sid} {} {} {}",
                cursor.gen, cursor.offset, cursor.crc
            ))
            .map_err(|e| e.to_string())?;
        match parse_ship(&resp).map_err(|e| e.to_string())? {
            Ship::Groups { bytes, .. } if bytes.is_empty() => {
                ack(local, client, sid)?;
            }
            Ship::Groups { gen, bytes, .. } => {
                match local.replica_apply(sid, gen, bytes) {
                    Ok(_) => {
                        let mut s = status.lock().unwrap_or_else(|p| p.into_inner());
                        s.chunks_applied += 1;
                    }
                    // Local divergence (or a fencing race): heal with a
                    // full transfer — a cursor no log can match forces
                    // the snapshot path.
                    Err(
                        ServerError::Replication(_)
                        | ServerError::StaleGeneration { .. }
                        | ServerError::Durability(_),
                    ) => {
                        install_full(local, client, sid, status)?;
                    }
                    Err(e) => return Err(format!("apply {sid}: {e}")),
                }
                ack(local, client, sid)?;
            }
            Ship::Snapshot(transfer) => {
                local
                    .replica_install(sid, transfer)
                    .map_err(|e| format!("install {sid}: {e}"))?;
                let mut s = status.lock().unwrap_or_else(|p| p.into_inner());
                s.installs += 1;
                drop(s);
                ack(local, client, sid)?;
            }
        }
    }
    let mut s = status.lock().unwrap_or_else(|p| p.into_inner());
    s.rounds += 1;
    Ok(())
}

fn install_full(
    local: &Arc<Server>,
    client: &mut LineClient,
    sid: u64,
    status: &Mutex<ReplicatorStatus>,
) -> Result<(), String> {
    let resp = client
        .request(&format!("SHIP {sid} 0 0 1"))
        .map_err(|e| e.to_string())?;
    match parse_ship(&resp).map_err(|e| e.to_string())? {
        Ship::Snapshot(transfer) => {
            local
                .replica_install(sid, transfer)
                .map_err(|e| format!("install {sid}: {e}"))?;
            let mut s = status.lock().unwrap_or_else(|p| p.into_inner());
            s.installs += 1;
            Ok(())
        }
        other => Err(format!(
            "expected a snapshot for the null cursor, got {other:?}"
        )),
    }
}

fn ack(local: &Arc<Server>, client: &mut LineClient, sid: u64) -> Result<(), String> {
    let (cursor, groups) = local
        .cursor(sid)
        .map_err(|e| format!("cursor {sid}: {e}"))?;
    client
        .request(&format!("ACK {sid} {} {}", cursor.gen, groups))
        .map_err(|e| e.to_string())?;
    Ok(())
}
