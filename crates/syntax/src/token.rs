//! The token alphabet of Machiavelli.

use crate::span::Span;
use std::fmt;

/// A lexed token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// Token kinds.
///
/// Keywords follow the paper's surface syntax (ML-flavoured). `hom*` is a
/// single token (`HomStar`) lexed when `*` immediately follows `hom`.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and names
    Int(i64),
    Real(f64),
    Str(String),
    Ident(String),
    /// A type variable written `'a` (any type) — used in type syntax.
    TyVar(String),
    /// A description type variable written `"a` — used in type syntax.
    DescVar(String),

    // Keywords
    Val,
    Fun,
    Fn,
    If,
    Then,
    Else,
    Case,
    Of,
    Other,
    Let,
    In,
    End,
    Select,
    Where,
    With,
    As,
    True,
    False,
    Andalso,
    Orelse,
    Not,
    Div,
    Mod,
    Modify,
    Join,
    Con,
    Project,
    Union,
    Unionc,
    Hom,
    HomStar,
    Ref,
    /// `rec` — used both for recursive types (`rec v . τ`) and recursive
    /// descriptions (`rec(x, e)`).
    Rec,
    /// `raise` — only used by the `as` desugaring in the paper; accepted
    /// for completeness.
    Raise,
    // Type keywords
    TyUnit,
    TyInt,
    TyBool,
    TyString,
    TyReal,
    Dynamic,

    // Punctuation / operators
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Colon,
    Dot,
    Eq,
    NotEq,
    Lt,
    Gt,
    Le,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    Bang,
    Assign,
    Arrow,
    DArrow,
    LArrow,

    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// Short human-readable description used in error messages.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Int(n) => format!("integer `{n}`"),
            Real(r) => format!("real `{r}`"),
            Str(s) => format!("string {s:?}"),
            Ident(s) => format!("identifier `{s}`"),
            TyVar(s) => format!("type variable `'{s}`"),
            DescVar(s) => format!("description variable `\"{s}`"),
            Eof => "end of input".to_string(),
            other => format!("`{other}`"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        let s = match self {
            Int(n) => return write!(f, "{n}"),
            Real(r) => return write!(f, "{r}"),
            Str(s) => return write!(f, "{s:?}"),
            Ident(s) => return write!(f, "{s}"),
            TyVar(s) => return write!(f, "'{s}"),
            DescVar(s) => return write!(f, "\"{s}"),
            Val => "val",
            Fun => "fun",
            Fn => "fn",
            If => "if",
            Then => "then",
            Else => "else",
            Case => "case",
            Of => "of",
            Other => "other",
            Let => "let",
            In => "in",
            End => "end",
            Select => "select",
            Where => "where",
            With => "with",
            As => "as",
            True => "true",
            False => "false",
            Andalso => "andalso",
            Orelse => "orelse",
            Not => "not",
            Div => "div",
            Mod => "mod",
            Modify => "modify",
            Join => "join",
            Con => "con",
            Project => "project",
            Union => "union",
            Unionc => "unionc",
            Hom => "hom",
            HomStar => "hom*",
            Ref => "ref",
            Rec => "rec",
            Raise => "raise",
            TyUnit => "unit",
            TyInt => "int",
            TyBool => "bool",
            TyString => "string",
            TyReal => "real",
            Dynamic => "dynamic",
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            LBrace => "{",
            RBrace => "}",
            Comma => ",",
            Semi => ";",
            Colon => ":",
            Dot => ".",
            Eq => "=",
            NotEq => "<>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Caret => "^",
            Bang => "!",
            Assign => ":=",
            Arrow => "->",
            DArrow => "=>",
            LArrow => "<-",
            Eof => "<eof>",
        };
        f.write_str(s)
    }
}

/// Look up a keyword, returning `None` for ordinary identifiers.
pub fn keyword(s: &str) -> Option<TokenKind> {
    use TokenKind::*;
    Some(match s {
        "val" => Val,
        "fun" => Fun,
        "fn" => Fn,
        "if" => If,
        "then" => Then,
        "else" => Else,
        "case" => Case,
        "of" => Of,
        "other" => Other,
        "let" => Let,
        "in" => In,
        "end" => End,
        "select" => Select,
        "where" => Where,
        "with" => With,
        "as" => As,
        "true" => True,
        "false" => False,
        "andalso" => Andalso,
        "orelse" => Orelse,
        "not" => Not,
        "div" => Div,
        "mod" => Mod,
        "modify" => Modify,
        "join" => Join,
        "con" => Con,
        "project" => Project,
        "union" => Union,
        "unionc" => Unionc,
        "hom" => Hom,
        "ref" => Ref,
        "rec" => Rec,
        "raise" => Raise,
        "unit" => TyUnit,
        "int" => TyInt,
        "bool" => TyBool,
        "string" => TyString,
        "real" => TyReal,
        "dynamic" => Dynamic,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_roundtrip_display() {
        for kw in ["val", "fun", "select", "hom", "project", "andalso"] {
            let tok = keyword(kw).unwrap();
            assert_eq!(tok.to_string(), kw);
        }
    }

    #[test]
    fn non_keyword() {
        assert_eq!(keyword("Wealthy"), None);
        assert_eq!(keyword("homx"), None);
    }

    #[test]
    fn describe_forms() {
        assert_eq!(TokenKind::Int(3).describe(), "integer `3`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
        assert_eq!(TokenKind::LArrow.describe(), "`<-`");
    }
}
