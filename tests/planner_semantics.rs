//! Comprehension semantics the planner must preserve, checked by
//! running every query twice — once through the planner pipeline, once
//! through the interpreter's `select_loop` (via the thread-local
//! toggle) — and demanding identical outcomes:
//!
//! * dependent generators (sources re-evaluated per binding);
//! * predicate evaluation order is not observable: pushdown/reordering
//!   only happens for safe conjuncts, and conjuncts that *can* raise
//!   force the fallback, so errors in branches the optimizer would have
//!   pruned still surface (or still don't) exactly as in the nested
//!   loop;
//! * empty-source short-circuit (no predicate evaluation at all);
//! * duplicate elimination matches set semantics.

use machiavelli::eval::set_planner_enabled;
use machiavelli::value::show_value;
use machiavelli::Session;
use machiavelli_bench::scaled_parts_session;

/// Run `f` with planner dispatch forced on/off, restoring the previous
/// setting afterwards.
fn with_planner<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let prev = set_planner_enabled(on);
    let out = f();
    set_planner_enabled(prev);
    out
}

/// Evaluate `src` in a fresh Figure-2-scaled session under both
/// execution paths, normalizing to `Ok(rendered value)` / `Err(message)`.
fn both_paths(src: &str) -> (Result<String, String>, Result<String, String>) {
    let run = |on: bool| {
        let (mut s, _db) = scaled_parts_session(12, 5, 7);
        with_planner(on, || {
            s.eval_one(src)
                .map(|o| show_value(&o.value))
                .map_err(|e| e.to_string())
        })
    };
    (run(true), run(false))
}

#[track_caller]
fn assert_agree(src: &str) {
    let (planned, interpreted) = both_paths(src);
    assert_eq!(planned, interpreted, "planner vs select_loop on: {src}");
}

#[test]
fn dependent_generators_agree() {
    // Classic Figure 3 shape: the supplier set is a field of the outer
    // row, re-evaluated per binding.
    assert_agree("select (p.P#, s.S#) where p <- supplied_by, s <- p.Suppliers with true;");
    // Dependent generator with a pushed filter and a (residual) equality
    // back to the outer binder.
    assert_agree(
        "select s.S# where p <- supplied_by, s <- p.Suppliers with s.S# > 2 andalso p.P# > 1;",
    );
    assert_agree("select (p.P#, s.S#) where p <- supplied_by, s <- p.Suppliers with s.S# = p.P#;");
    // Three generators: independent join on top of a dependent middle.
    assert_agree(
        "select (p.P#, s.S#, q.S#)
         where p <- supplied_by, s <- p.Suppliers, q <- suppliers
         with s.S# = q.S#;",
    );
}

#[test]
fn index_scan_agrees_with_nested_loop() {
    // Equality against a constant lowers to an IndexScan probe of a
    // cached grouping; the rows and their order must match the plain
    // filtering loop exactly.
    assert_agree("select x.Sname where x <- suppliers with x.S# = 2;");
    assert_agree("select x.Sname where x <- suppliers with x.S# = 99;");
    // IndexScan under a hash join, plus a residual ordering filter.
    assert_agree(
        "select (x.S#, y.P#)
         where x <- suppliers, y <- supplied_by
         with x.S# = 2 andalso x.S# = y.P# andalso y.P# > 0;",
    );
}

#[test]
fn equi_join_agrees_with_nested_loop() {
    assert_agree(
        "select (p.Pname, sb.P#)
         where p <- parts, sb <- supplied_by
         with p.P# = sb.P#;",
    );
    // Conjunct order scrambled relative to the optimal plan: the planner
    // reorders (join key between filters), the nested loop doesn't —
    // same answer.
    assert_agree(
        "select (p.Pname, sb.P#)
         where p <- parts, sb <- supplied_by
         with sb.P# > 0 andalso p.P# = sb.P# andalso p.P# > 1;",
    );
}

#[test]
fn empty_sources_short_circuit_without_evaluating_the_predicate() {
    // The predicate would raise `Div` on any binding — but there are no
    // bindings, and neither path may ever evaluate it. (The `div` also
    // forces the planner's fallback; the fallback must then reproduce
    // the interpreter exactly.)
    assert_agree("select x where x <- {} with 1 div 0 = 0;");
    let (planned, interpreted) = both_paths("select x where x <- {} with 1 div 0 = 0;");
    assert_eq!(planned, Ok("{}".into()));
    assert_eq!(interpreted, Ok("{}".into()));

    // Empty build side of a plannable equi-join: short-circuits to {}.
    let (planned, interpreted) = both_paths(
        "select (x.S#, y.P#) where x <- suppliers, y <- {[P# = 1]} with x.S# = y.P# andalso 1 > 2;",
    );
    assert_eq!(planned, interpreted);
}

#[test]
fn raising_predicates_fall_back_and_still_raise() {
    // `div` in a conjunct forces the nested loop; with non-empty
    // sources the error must surface on both paths, identically.
    let (planned, interpreted) = both_paths("select p.P# where p <- parts with p.P# div 0 = 0;");
    assert!(planned.is_err(), "{planned:?}");
    assert_eq!(planned, interpreted);
}

#[test]
fn result_errors_in_join_pruned_branches_stay_pruned() {
    // The result expression raises for `sb.P# = 0` rows — but no such
    // row survives the join, so *neither* path raises: the planner may
    // prune harder, never softer, and the nested loop never reaches the
    // result expression for non-matching bindings either.
    assert_agree(
        "select 100 div sb.P#
         where p <- parts, sb <- supplied_by
         with p.P# = sb.P# andalso sb.P# > 0;",
    );
    // And when a surviving binding does raise, both paths raise.
    let (planned, interpreted) = both_paths(
        "select 1 div (p.P# - p.P#) where p <- parts, sb <- supplied_by with p.P# = sb.P#;",
    );
    assert!(planned.is_err(), "{planned:?}");
    assert_eq!(planned, interpreted);
}

#[test]
fn duplicate_elimination_matches_set_semantics() {
    // Projecting the join key collapses all matches per key: the result
    // is a *set*, deduplicated once at the end on both paths.
    assert_agree("select p.P# where p <- parts, sb <- supplied_by with p.P# = sb.P#;");
    let (mut s, db) = scaled_parts_session(12, 5, 7);
    let out = s
        .eval_one("card(select sb.P# where sb <- supplied_by, p <- parts with p.P# = sb.P#);")
        .map(|o| show_value(&o.value))
        .expect("join cardinality query runs");
    // Cardinality can never exceed the number of distinct keys.
    let n: i64 = out.parse().unwrap();
    assert!(n as usize <= db.supplied_by.len());
}

#[test]
fn fresh_identities_in_independent_sources_are_created_once() {
    // An independent source allocating `ref` identities is evaluated
    // exactly once on both paths — the result has one element per
    // distinct identity.
    assert_agree("card(select (x, y) where x <- {ref(1), ref(1)}, y <- {ref(2)} with true);");
    let (planned, _) =
        both_paths("card(select (x, y) where x <- {ref(1), ref(1)}, y <- {ref(2)} with true);");
    assert_eq!(planned, Ok("2".into()));
}

#[test]
fn planner_toggle_is_restored() {
    let mut s = Session::new();
    let inner = with_planner(false, || {
        assert!(!machiavelli::eval::planner_enabled());
        s.eval_one("select x where x <- {1, 2} with x > 1;")
            .unwrap()
            .show()
    });
    assert!(machiavelli::eval::planner_enabled());
    assert_eq!(inner, "val it = {2} : {int}");
}
