//! Quickstart: the paper's introduction, as a program.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use machiavelli::Session;

fn main() {
    let mut session = Session::new();

    // A polymorphic query: names of people earning over 100K. No types
    // are written anywhere — inference discovers the record polymorphism.
    let program = r#"
        fun Wealthy(S) = select x.Name
                         where x <- S
                         with x.Salary > 100000;

        Wealthy({[Name = "Joe",   Salary = 22340],
                 [Name = "Fred",  Salary = 123456],
                 [Name = "Helen", Salary = 132000]});

        (* The same function applies to records with extra fields… *)
        Wealthy({[Name = "Ada", Age = 36, Salary = 150000]});

        (* …and to nested Name records. *)
        Wealthy({[Name = [First = "Joe", Last = "Doe"], Weight = 70, Salary = 150000]});

        (* Generalized join and projection on records. *)
        join([Name = [First = "Joe"], Age = 21], [Name = [Last = "Doe"]]);
        project(it, [Name: [Last: string]]);

        (* Sets are mathematical sets; hom is the fold that builds the
           standard library. *)
        hom((fn(x) => x * x), +, 0, {1, 2, 3, 4});
        card(powerset({1, 2, 3}));
    "#;

    match session.run(program) {
        Ok(outcomes) => {
            for o in outcomes {
                println!(">> {}", o.show());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }

    // Static typing catches schema errors before anything runs:
    let err = session
        .run(r#"Wealthy({[Name = "NoSalary"]});"#)
        .expect_err("missing Salary must be a type error");
    println!("\nstatically rejected: {err}");
}
