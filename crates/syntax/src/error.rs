//! Lexer and parser errors.

use crate::span::{line_col, Span};
use std::fmt;

/// A syntax error with a source span.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub kind: ParseErrorKind,
    pub span: Span,
}

/// What went wrong during lexing or parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A character that cannot begin any token.
    UnexpectedChar(char),
    /// A string literal missing its closing quote.
    UnterminatedString,
    /// An integer literal that does not fit in `i64`.
    IntOverflow,
    /// A malformed real literal such as `1.`.
    MalformedReal,
    /// A `'`/`"` type-variable sigil not followed by a letter.
    MalformedTypeVar,
    /// An invalid escape sequence inside a string literal.
    BadEscape(char),
    /// The parser found `got` where it needed something matching `expected`.
    Expected { expected: String, got: String },
    /// A record or variant wrote the same label twice.
    DuplicateLabel(crate::symbol::Symbol),
    /// `select` with an empty generator list.
    EmptySelect,
    /// `case` with no arms.
    EmptyCase,
    /// A `case` with an `other` arm that is not last.
    MisplacedOther,
}

impl ParseError {
    pub fn new(kind: ParseErrorKind, span: Span) -> Self {
        ParseError { kind, span }
    }

    /// Render with 1-based line/column information against `src`.
    pub fn display_with_source(&self, src: &str) -> String {
        let lc = line_col(src, self.span.start);
        format!("syntax error at {lc}: {self}")
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ParseErrorKind::*;
        match &self.kind {
            UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            UnterminatedString => write!(f, "unterminated string literal"),
            IntOverflow => write!(f, "integer literal out of range"),
            MalformedReal => write!(f, "malformed real literal"),
            MalformedTypeVar => write!(f, "expected a letter after type-variable sigil"),
            BadEscape(c) => write!(f, "invalid escape sequence `\\{c}`"),
            Expected { expected, got } => write!(f, "expected {expected}, found {got}"),
            DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            EmptySelect => write!(f, "`select` requires at least one generator"),
            EmptyCase => write!(f, "`case` requires at least one arm"),
            MisplacedOther => write!(f, "`other` arm must come last in a `case`"),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_source_reports_position() {
        let err = ParseError::new(ParseErrorKind::UnterminatedString, Span::new(4, 5));
        let msg = err.display_with_source("ab\ncd\"x");
        assert!(msg.contains("2:2"), "{msg}");
        assert!(msg.contains("unterminated"), "{msg}");
    }

    #[test]
    fn expected_message() {
        let err = ParseError::new(
            ParseErrorKind::Expected {
                expected: "`)`".into(),
                got: "`,`".into(),
            },
            Span::point(0),
        );
        assert_eq!(err.to_string(), "expected `)`, found `,`");
    }
}
