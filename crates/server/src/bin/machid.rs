//! `machid` — the Machiavelli session server over TCP.
//!
//! ```text
//! machid [ADDR]          # default 127.0.0.1:7878
//! ```
//!
//! One thread per connection, speaking the line protocol from
//! `machiavelli_server::wire`. Tuning via environment:
//!
//! * `MACHID_WORKERS`      — worker threads (default 4)
//! * `MACHID_QUEUE_CAP`    — per-worker queue bound (default 64)
//! * `MACHID_DEADLINE_MS`  — default per-query deadline (default none)
//! * `MACHID_DURABLE_ROOT` — directory for durable sessions (default
//!   none = in-memory). With it set, every session write-ahead-logs its
//!   commits and a restarted `machid` serves the same bindings.
//! * `MACHIAVELLI_QUERY_MAX_ROWS` — per-query row budget
//! * `MACHIAVELLI_FAULT_*` — fault injection (chaos drills)

use machiavelli_server::{serve_connection, Server, ServerConfig};
use std::io::BufReader;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn env_usize(var: &str) -> Option<usize> {
    std::env::var(var).ok()?.trim().parse().ok()
}

fn main() -> ExitCode {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let config = ServerConfig {
        workers: env_usize("MACHID_WORKERS").unwrap_or(4),
        queue_cap: env_usize("MACHID_QUEUE_CAP").unwrap_or(64),
        default_deadline: env_usize("MACHID_DEADLINE_MS")
            .map(|ms| Duration::from_millis(ms as u64)),
        durable_root: std::env::var("MACHID_DURABLE_ROOT")
            .ok()
            .filter(|s| !s.trim().is_empty())
            .map(std::path::PathBuf::from),
        ..ServerConfig::default()
    };
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("machid: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = Arc::new(Server::start(config));
    eprintln!(
        "machid: listening on {addr} ({} workers)",
        server.live_workers()
    );
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("machid: accept failed: {e}");
                continue;
            }
        };
        let server = Arc::clone(&server);
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_string());
        let spawned = std::thread::Builder::new()
            .name(format!("machid-conn-{peer}"))
            .spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(r) => BufReader::new(r),
                    Err(e) => {
                        eprintln!("machid: cannot clone stream for {peer}: {e}");
                        return;
                    }
                };
                if let Err(e) = serve_connection(&server, reader, stream) {
                    eprintln!("machid: connection {peer} ended with error: {e}");
                }
            });
        if let Err(e) = spawned {
            eprintln!("machid: cannot spawn connection thread: {e}");
        }
    }
    ExitCode::SUCCESS
}
